#!/usr/bin/env python
"""Instrument your own application: a 2-D halo-exchange stencil.

Shows the framework's application-facing features on user code rather
than a NAS kernel: monitoring sections (which phase loses time to
non-overlapped communication?), per-message-size breakdown, pause/resume
around untimed setup, and the Sec. 2.3 interpretation of the bounds.

Run:  python examples/characterize_stencil.py
"""

import math

from repro.analysis import render_size_breakdown
from repro.mpisim import mvapich2_like
from repro.runtime import run_app

GRID = 2048  # global grid side (doubles)
STEPS = 8
TAG_HALO = 5


def stencil_app(ctx):
    """Jacobi-style sweep on a 1-D strip decomposition."""
    rows = GRID // ctx.size
    halo_bytes = GRID * 8
    up = ctx.rank - 1 if ctx.rank > 0 else None
    down = ctx.rank + 1 if ctx.rank < ctx.size - 1 else None
    compute_time = rows * GRID * 6 / 400e6  # 6 flops/point at 400 Mflop/s

    # Untimed setup (mesh generation): excluded via pause/resume.
    ctx.monitor.pause()
    yield from ctx.compute(50e-3)
    ctx.monitor.resume()

    for _step in range(STEPS):
        with ctx.section("halo"):
            reqs = []
            for nb in (up, down):
                if nb is not None:
                    reqs.append((yield from ctx.comm.irecv(nb, TAG_HALO)))
            for nb in (up, down):
                if nb is not None:
                    reqs.append(
                        (yield from ctx.comm.isend(nb, TAG_HALO, halo_bytes,
                                                   bufkey=("halo", nb)))
                    )
            # Interior points don't need the halo: compute them now, while
            # the ghost rows travel.
            yield from ctx.compute(compute_time * (rows - 2) / rows)
            yield from ctx.comm.waitall(reqs)
        # Boundary rows after the halo arrives.
        yield from ctx.compute(compute_time * 2 / rows)
        with ctx.section("reduction"):
            residual = yield from ctx.comm.allreduce(1.0 / (ctx.rank + 1), 8)
    return residual


def main():
    result = run_app(stencil_app, nprocs=4, config=mvapich2_like(),
                     label="stencil")
    report = result.report(0)
    print(report.render_text())
    print()
    print(render_size_breakdown(report, "rank 0, by message size:"))
    print()
    halo = report.sections["halo"]
    saved = halo.guaranteed_overlap_time
    lost = halo.min_nonoverlapped_time
    print(f"halo phase: guaranteed savings from overlap  {saved * 1e3:.3f} ms")
    print(f"            provably non-overlapped comm     {lost * 1e3:.3f} ms")
    if lost > saved:
        print("-> the halo exchange is the place to restructure "
              "(try smaller strips, more interior work, or probes).")
    else:
        print("-> latency hiding in the halo phase is working.")
    assert not math.isnan(saved)


if __name__ == "__main__":
    main()
