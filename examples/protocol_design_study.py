#!/usr/bin/env python
"""Use the framework to evaluate protocol designs (paper Sec. 5 claim).

"Our technique can be used for evaluating different algorithm designs on
different systems."  This study asks a concrete design question a
middleware author faces: for long messages, should the rendezvous move
data with an RDMA Read (receiver pulls) or an RDMA Write (sender pushes
after a CTS)?  The answer depends on *which side has computation to
hide* -- and the overlap bounds expose exactly that, where a latency
benchmark alone would call the two designs near-identical.

Run:  python examples/protocol_design_study.py
"""

from repro.mpisim.config import MpiConfig
from repro.runtime import run_app

MB = 1024 * 1024

RGET = MpiConfig(name="rget", eager_limit=16 * 1024, rndv_mode="rget",
                 leave_pinned=True)
RPUT = MpiConfig(name="rput", eager_limit=16 * 1024, rndv_mode="rput",
                 leave_pinned=True)


def busy_sender(ctx):
    """The sender computes; the receiver is a service loop (blocking)."""
    for _ in range(30):
        if ctx.rank == 0:
            req = yield from ctx.comm.isend(1, 0, MB, bufkey="b")
            yield from ctx.compute(1.6e-3)
            yield from ctx.comm.wait(req)
        else:
            yield from ctx.comm.recv(0, 0)


def busy_receiver(ctx):
    """The receiver computes between Irecv and Wait; the sender is a
    service loop feeding it."""
    for _ in range(30):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 0, MB, bufkey="b")
        else:
            req = yield from ctx.comm.irecv(0, 0)
            yield from ctx.compute(1.6e-3)
            # A single probe keeps the polling engine honest mid-compute.
            yield from ctx.comm.iprobe(0, 0)
            yield from ctx.compute(1.6e-3)
            yield from ctx.comm.wait(req)


def measure(app, side):
    rows = {}
    for config in (RGET, RPUT):
        result = run_app(app, 2, config=config)
        rep = result.report(side)
        rows[config.name] = (
            rep.total.min_overlap_pct,
            rep.total.max_overlap_pct,
            rep.mean_call_time("MPI_Wait") * 1e6,
            result.elapsed * 1e3,
        )
    return rows


def show(title, rows):
    print(title)
    print(f"  {'design':>6} {'min%':>7} {'max%':>7} {'wait(us)':>10} {'total(ms)':>10}")
    for name, (mn, mx, wait, total) in rows.items():
        print(f"  {name:>6} {mn:>7.1f} {mx:>7.1f} {wait:>10.1f} {total:>10.2f}")
    print()


def main():
    print("design question: RDMA Read (receiver pulls) vs RDMA Write "
          "(sender pushes after CTS)?\n")
    show("scenario A -- the SENDER has computation to hide (sender's report):",
         measure(busy_sender, side=0))
    show("scenario B -- the RECEIVER has computation to hide (receiver's report):",
         measure(busy_receiver, side=1))
    print("Reading: with a busy sender, rget wins outright -- the receiver's")
    print("continuous polling starts the read immediately and the sender's")
    print("bounds go to ~100%.  With a busy receiver, BOTH designs need the")
    print("receiver's progress engine (to post the read, or to send the CTS),")
    print("so the probe placement -- not the verb choice -- decides the")
    print("overlap.  A pure latency comparison would have missed all of this.")


if __name__ == "__main__":
    main()
