#!/usr/bin/env python
"""Compare rendezvous protocols with the overlap microbenchmark (Sec. 3).

Sweeps inserted computation for a 1 MiB Isend-Recv exchange under the
three long-message schemes -- Open MPI's pipelined RDMA, direct RDMA
(``mpi_leave_pinned``), and single-shot RDMA Write -- and plots the
sender's maximum overlap bound and MPI_Wait time as ASCII charts
(the shapes of the paper's Figs. 4 and 5).

Run:  python examples/protocol_comparison.py
"""

from repro.analysis import ascii_plot, render_micro_series
from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import MpiConfig, openmpi_like

MB = 1024 * 1024
COMPUTES = [0.0, 0.25e-3, 0.5e-3, 0.75e-3, 1.0e-3, 1.25e-3, 1.5e-3, 1.75e-3]

CONFIGS = {
    "pipelined": openmpi_like(leave_pinned=False),
    "direct (rget)": openmpi_like(leave_pinned=True),
    "rput": MpiConfig(name="rput", eager_limit=64 * 1024, rndv_mode="rput"),
}


def main():
    max_series = {}
    wait_series = {}
    for name, cfg in CONFIGS.items():
        points = overlap_sweep("isend_recv", MB, COMPUTES, cfg, iters=40)
        max_series[name] = [p.max_pct("sender") for p in points]
        wait_series[name] = [p.wait_time("sender") * 1e3 for p in points]
        print(render_micro_series(points, "sender", f"--- {name} ---"))
        print()

    x_ms = [c * 1e3 for c in COMPUTES]
    print(ascii_plot(max_series, x_ms,
                     title="sender max overlap (%) vs compute (ms)",
                     y_label="max %"))
    print()
    print(ascii_plot(wait_series, x_ms,
                     title="sender MPI_Wait time (ms) vs compute (ms)",
                     y_label="wait ms"))
    print()
    print("Reading: direct RDMA climbs to ~100% overlap and its wait time")
    print("collapses; pipelined RDMA stays flat at the first-fragment share;")
    print("rput sits between (the write starts only once the CTS is drained).")


if __name__ == "__main__":
    main()
