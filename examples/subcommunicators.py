#!/usr/bin/env python
"""Sub-communicators + traffic diagnostics on a 2-D stencil.

A 4x2 process grid splits the world communicator into row and column
communicators (MPI_Comm_split).  Halo exchanges travel point-to-point
in the world communicator; row-wise partial reductions and a global
residual run inside the sub-communicators -- contexts keep all three
traffic classes from ever cross-matching, even on identical tags.

The ground-truth traffic matrix at the end shows the resulting
communication topology.

Run:  python examples/subcommunicators.py
"""

import numpy as np

from repro.analysis import render_traffic_matrix, traffic_matrix
from repro.mpisim import mvapich2_like
from repro.runtime import run_app

PX, PY = 4, 2
GRID = 1024
STEPS = 4
TAG = 1  # deliberately the same tag everywhere: contexts disambiguate


def stencil_app(ctx):
    row, col = divmod(ctx.rank, PY)
    row_comm = yield from ctx.comm.split(color=row)   # size PY
    col_comm = yield from ctx.comm.split(color=col)   # size PX
    assert row_comm.size == PY and col_comm.size == PX

    halo_bytes = GRID // PY * 8
    up = (row - 1) * PY + col if row > 0 else None
    down = (row + 1) * PY + col if row < PX - 1 else None
    compute_time = (GRID // PX) * (GRID // PY) * 6 / 400e6

    residual = None
    for _step in range(STEPS):
        # Halo exchange in the world communicator.
        reqs = []
        for nb in (up, down):
            if nb is not None:
                reqs.append((yield from ctx.comm.irecv(nb, TAG)))
        for nb in (up, down):
            if nb is not None:
                reqs.append((yield from ctx.comm.isend(nb, TAG, halo_bytes)))
        yield from ctx.compute(compute_time)
        yield from ctx.comm.waitall(reqs)
        # Row-wise partial sums (e.g. line relaxation pivots).
        row_sum = yield from row_comm.allreduce(float(ctx.rank), 8)
        assert row_sum == sum(row * PY + c for c in range(PY))
        # Column-wise max (e.g. CFL condition).
        col_max = yield from col_comm.allreduce(float(ctx.rank), 8, op=max)
        assert col_max == (PX - 1) * PY + col
        # Global residual.
        residual = yield from ctx.comm.allreduce(1.0, 8)
        assert residual == ctx.size
    return residual


def main():
    result = run_app(stencil_app, PX * PY, config=mvapich2_like(),
                     record_transfers=True, label="stencil2d")
    report = result.report(0)
    print(report.render_text())
    print()
    matrix = traffic_matrix(result.fabric)
    print(render_traffic_matrix(matrix, "payload traffic matrix (KiB):"))
    print()
    # The halo pattern is visible: rank r talks to r +/- PY (its column
    # neighbours), plus the collective trees.
    halo_pairs = int(np.count_nonzero(matrix))
    print(f"{halo_pairs} communicating pairs across halos + 3 communicators;")
    print("identical tags throughout -- communicator contexts kept them apart.")


if __name__ == "__main__":
    main()
