#!/usr/bin/env python
"""The paper's Sec. 4.3 story: diagnose and repair overlap in NAS SP.

1.  Run the original SP and read the framework's diagnosis: the
    overlapping section's transfers resolve as case 1 (begin and end in
    the same MPI_Wait) -- the explicit Irecv-compute-Wait overlap attempt
    is not working, because the polling progress engine never sees the
    rendezvous RTS during the computation.
2.  Apply the fix: insert MPI_Iprobe calls into the computation region.
3.  Re-measure: the section's bounds jump, and overall MPI time drops.

Run:  python examples/tune_sp_overlap.py
"""

from repro.analysis import render_size_breakdown, render_sp_tuning
from repro.experiments.sp_tuning import iprobe_placement_sweep, sp_tuning
from repro.nas.sp import OVERLAP_SECTION


def main():
    print("running NAS SP class A on 4 simulated ranks (MVAPICH2-like)...")
    result = sp_tuning("A", 4, niter=2, iprobe_calls=4)

    sec = result.section("original")
    print("\n-- diagnosis (original code, overlapping section) --")
    print(f"  transfers: {sec.transfer_count}, resolved as "
          f"case1={sec.case_counts[1]} case2={sec.case_counts[2]} "
          f"case3={sec.case_counts[3]}")
    print(f"  overlap bounds: [{sec.min_overlap_pct:.1f}%, "
          f"{sec.max_overlap_pct:.1f}%]")
    print(f"  non-overlapped transfer time >= "
          f"{sec.min_nonoverlapped_time * 1e3:.3f} ms")
    print("  -> the receiver-side messages complete entirely inside MPI_Wait:")
    print("     the overlap the code structure attempts is not happening.")
    print()
    print(render_size_breakdown(result.original,
                                "original, whole code, by message size:"))

    print("\n-- fix: 4 Iprobe calls inside the computation region --")
    print(render_sp_tuning([result], "section",
                           f"section {OVERLAP_SECTION!r}:"))
    print()
    print(render_sp_tuning([result], "full", "complete code:"))
    print(f"\noverall MPI time: {result.mpi_time_original * 1e3:.2f} ms -> "
          f"{result.mpi_time_modified * 1e3:.2f} ms "
          f"({result.mpi_time_improvement_pct:.1f}% better)")

    print("\n-- how many probes are needed? --")
    for r in iprobe_placement_sweep("A", 4, counts=(0, 1, 2, 4, 8), niter=1):
        m = r.section("modified")
        print(f"  {r.iprobe_calls:>2} probes: section max overlap "
              f"{m.max_overlap_pct:5.1f}%  MPI time "
              f"{r.mpi_time_modified * 1e3:7.3f} ms")


if __name__ == "__main__":
    main()
