#!/usr/bin/env python
"""One-sided overlap: NAS MG on ARMCI, blocking vs non-blocking (Fig. 19).

The blocking variant's puts begin and end inside one ARMCI_Put -- the
framework proves zero overlap.  The non-blocking variant issues the next
dimension's ghost updates before smoothing the current dimension and
reaches ~99% maximum overlap, reproducing the paper's explanation for why
the non-blocking MG port was faster.

Run:  python examples/armci_overlap.py
"""

from repro.analysis import render_nas_char
from repro.experiments.nas_char import characterize_mg


def main():
    points = []
    for blocking in (True, False):
        for nprocs in (4, 8, 16):
            points.append(
                characterize_mg("A", nprocs, blocking=blocking, niter=1)
            )
    print(render_nas_char(points, "NAS MG class A on simulated ARMCI:"))
    print()
    blocking_max = max(p.max_pct for p in points if p.variant == "blocking")
    nb_min_bound = min(p.min_pct for p in points if p.variant == "nonblocking")
    print(f"blocking puts:     max overlap bound {blocking_max:.1f}% "
          "(the transfer always completes inside the Put call)")
    print(f"non-blocking puts: even the *guaranteed* overlap is "
          f"{nb_min_bound:.1f}%+ -- latency genuinely hidden")


if __name__ == "__main__":
    main()
