#!/usr/bin/env python
"""Check the paper's bounds against ground truth (simulator-only magic).

On real hardware the precise times of NIC-initiated transfers are
unobservable -- that is the paper's whole motivation for *bounding*
overlap instead of measuring it.  The simulator, however, knows the
truth: every physical transfer interval and every computation interval.
This example runs the Sec.-3 microbenchmark under three protocols,
computes the true overlapped transfer time per process, and shows it
landing between the framework's min and max bounds.

Run:  python examples/validate_bounds.py
"""

from repro.experiments.validation import render_validation, validate_bounds
from repro.mpisim.config import MpiConfig, openmpi_like
from repro.runtime import run_app

MB = 1024 * 1024


def exchange(ctx):
    """Isend-compute-Wait sender vs blocking receiver, 30 iterations."""
    for _ in range(30):
        if ctx.rank == 0:
            req = yield from ctx.comm.isend(1, 0, MB, bufkey="buf")
            yield from ctx.compute(1.5e-3)
            yield from ctx.comm.wait(req)
        else:
            yield from ctx.comm.recv(0, 0)


CONFIGS = {
    "pipelined RDMA (Open MPI default)": openmpi_like(leave_pinned=False),
    "direct RDMA (mpi_leave_pinned)": openmpi_like(leave_pinned=True),
    "single-shot RDMA write": MpiConfig(name="rput", rndv_mode="rput"),
}


def main():
    for name, config in CONFIGS.items():
        result = run_app(exchange, 2, config=config, record_transfers=True)
        checks = validate_bounds(result)
        print(render_validation(checks, f"{name}:"))
        sender = checks[0]
        spread = sender.max_bound - sender.min_bound
        print(f"  bound width on the sender: {spread * 1e3:.3f} ms "
              f"({'tight' if spread < 0.2 * max(sender.max_bound, 1e-12) else 'wide'})")
        assert all(c.holds for c in checks)
        print()
    print("every bound bracketed the true overlap -- the estimation "
          "strategy of Sec. 2.2 is sound, not just plausible.")


if __name__ == "__main__":
    main()
