#!/usr/bin/env python
"""Quickstart: measure computation-communication overlap of a tiny app.

Two simulated ranks exchange a 1 MiB message with Isend-compute-Wait; the
instrumented library derives lower and upper bounds on how much of the
transfer was hidden behind the computation, and we print each rank's
overlap report -- the per-process output file of the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.mpisim import openmpi_like
from repro.runtime import run_app


def app(ctx):
    """One simulated MPI rank (a generator coroutine)."""
    payload = np.arange(131_072, dtype=np.float64)  # 1 MiB of doubles
    if ctx.rank == 0:
        # Sender: start the transfer, compute for 2 ms, then complete it.
        req = yield from ctx.comm.isend(1, tag=7, nbytes=payload.nbytes,
                                        data=payload, bufkey="payload")
        yield from ctx.compute(2e-3)
        yield from ctx.comm.wait(req)
    else:
        # Receiver: a plain blocking receive.
        status, data = yield from ctx.comm.recv(0, tag=7)
        assert status.nbytes == payload.nbytes
        np.testing.assert_array_equal(data, payload)


def main():
    # mpi_leave_pinned selects the direct-RDMA rendezvous, which can
    # actually overlap -- try leave_pinned=False to watch the bounds drop.
    result = run_app(app, nprocs=2, config=openmpi_like(leave_pinned=True),
                     label="quickstart")
    for rank in range(2):
        print(result.report(rank).render_text())
        print()
    sender = result.report(0).total
    print(f"sender hid at least {sender.min_overlap_pct:.0f}% and at most "
          f"{sender.max_overlap_pct:.0f}% of its data transfer time "
          f"behind computation")


if __name__ == "__main__":
    main()
