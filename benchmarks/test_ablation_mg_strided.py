"""Ablation EA8: ghost-face wire strategy in ARMCI MG.

The real MG port expresses ghost faces as strided regions.  ``packed``
ships each face as one message after a local pack (one latency, one
bounce copy); ``direct`` posts one RDMA write per face pencil (no copies,
many descriptors).  Packing keeps the non-blocking variant's guaranteed
overlap high; per-pencil posting burns in-library CPU on descriptor
posts, which the min bound correctly punishes.
"""

from conftest import run_once

from repro.armci import ArmciConfig, run_armci_app
from repro.nas.mg import mg_app

VARIANTS = [None, "packed", "direct"]


def test_ablation_mg_strided(benchmark, emit):
    def run():
        out = {}
        for strided in VARIANTS:
            result = run_armci_app(
                mg_app, 8, config=ArmciConfig(),
                app_args=("A", 1, None, False, 2, strided),
            )
            out[strided] = result
        return out

    results = run_once(benchmark, run)
    text = ["EA8: MG ghost-face strategy (non-blocking), class A / 8 ranks",
            f"{'strategy':>10} {'min%':>7} {'max%':>7} {'armci(ms)':>10}"]
    for strided, result in results.items():
        m = result.report(0).total
        text.append(
            f"{str(strided or 'contig'):>10} {m.min_overlap_pct:>7.1f} "
            f"{m.max_overlap_pct:>7.1f} "
            f"{m.communication_call_time * 1e3:>10.3f}"
        )
    emit("ablation_ea8_mg_strided", "\n".join(text))

    contig = results[None].report(0).total
    packed = results["packed"].report(0).total
    direct = results["direct"].report(0).total
    # Packing preserves most of the guaranteed overlap.
    assert packed.min_overlap_pct > 50.0
    # Per-pencil posting erodes the min bound (descriptor CPU in-library).
    assert direct.min_overlap_pct < packed.min_overlap_pct
    # The contiguous baseline is the best case.
    assert contig.min_overlap_pct >= packed.min_overlap_pct - 1.0
