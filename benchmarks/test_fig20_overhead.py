"""Figure 20: instrumentation overhead across the NAS suite.

Claim: "an instrumentation overhead of less than 0.9% of the total
execution time for all test cases".
"""

from conftest import run_once

from repro.analysis.tables import render_overhead
from repro.experiments.overhead import overhead_suite

CELLS = (
    ("bt", "A", 4),
    ("bt", "A", 9),
    ("cg", "A", 4),
    ("cg", "A", 8),
    ("lu", "A", 4),
    ("ft", "A", 4),
    ("sp", "A", 4),
    ("sp", "A", 9),
    ("mg", "A", 4),
    ("mg", "A", 8),
)


def test_fig20_overhead(benchmark, emit):
    points = run_once(benchmark, lambda: overhead_suite(cells=CELLS, niter=2))
    emit(
        "fig20_overhead",
        render_overhead(points, "Fig 20: instrumentation overhead (NAS suite)"),
    )
    for p in points:
        assert p.time_instrumented >= p.time_uninstrumented
        assert p.overhead_pct < 0.9, (p.benchmark, p.overhead_pct)
