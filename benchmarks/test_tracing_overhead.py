"""Host-side cost of span tracing on the sharded full stack.

The tracing subsystem's contract mirrors the metrics registry's: a
``tracer=None`` default that costs nothing, and an attached tracer that
records coarse stage spans (fence rounds, shard advances, sampled engine
bursts) for well under 5% extra wall-clock.  This bench holds the
attached path to that budget on the configuration the explain tool is
built for -- NAS LU on the sharded engine -- and re-checks the
bit-identity contract while it is at it.  Extends
``BENCH_simulator.json`` (key ``tracing_overhead_lu``)::

    pytest benchmarks/test_tracing_overhead.py --benchmark-only
"""

from __future__ import annotations

import statistics
import time

from repro.mpisim.config import mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.lu import lu_app
from repro.runtime import run_app
from repro.tracing import Tracer, flatten_payloads

#: Interleaved (plain, traced) measurement pairs; median of per-pair
#: ratios cancels host drift (see test_telemetry_overhead.py).
PAIRS = 7
#: Absolute slop per pair on top of the 5% budget under test.
NOISE_EPSILON_S = 0.005
SHARDS = 4


def _lu_run(tracer=None):
    return run_app(
        lu_app, 4, config=mvapich2_like(),
        app_args=("A", 2, CpuModel(), None),
        shards=SHARDS, tracer=tracer,
    )


def test_tracing_overhead_under_five_percent(benchmark, bench_record, emit):
    _lu_run()  # warm both paths before timing
    _lu_run(tracer=Tracer(process="warmup"))

    ratios = []
    base_times, with_times = [], []
    plain = result = tracer = None
    for _ in range(PAIRS):
        t0 = time.perf_counter()
        plain = _lu_run()
        base = time.perf_counter() - t0
        tracer = Tracer(process="bench")
        t0 = time.perf_counter()
        result = _lu_run(tracer=tracer)
        dur = time.perf_counter() - t0
        base_times.append(base)
        with_times.append(dur)
        ratios.append(dur / (base + NOISE_EPSILON_S))

    benchmark.pedantic(lambda: _lu_run(tracer=Tracer(process="bench")),
                       rounds=1, iterations=1)

    # Tracing must not change what is simulated...
    for rank in range(4):
        assert plain.report(rank).to_dict() == result.report(rank).to_dict()
    # ...and the tracer must actually have watched the run: one payload
    # per process (coordinator + shards) with spans on each.
    payloads = flatten_payloads(tracer)
    spans_total = sum(len(p.get("spans", ())) for p in payloads)
    assert len(payloads) == 1 + SHARDS
    assert spans_total > 0

    baseline = statistics.median(base_times)
    with_tracing = statistics.median(with_times)
    ratio = statistics.median(ratios)
    overhead_pct = (with_tracing / baseline - 1.0) * 100.0
    bench_record["tracing_overhead_lu"] = {
        "baseline_median_s": round(baseline, 6),
        "tracing_median_s": round(with_tracing, 6),
        "overhead_pct": round(overhead_pct, 2),
        "paired_ratio_median": round(ratio, 4),
        "spans_total": int(spans_total),
        "processes": len(payloads),
    }
    emit(
        "tracing_overhead",
        f"tracing overhead (LU class A, 4 ranks, {SHARDS} shards):\n"
        f"  plain sharded run        {baseline * 1e3:.1f} ms\n"
        f"  with span tracer         {with_tracing * 1e3:.1f} ms\n"
        f"  overhead (medians)       {overhead_pct:+.1f}%\n"
        f"  paired-ratio median      {ratio:.3f}\n"
        f"  spans recorded           {spans_total} "
        f"across {len(payloads)} processes",
    )
    # The tracer's contract: <5% on top of the untraced sharded run.
    assert ratio <= 1.05, (
        f"tracing added {(ratio - 1) * 100:.1f}% (paired-ratio median; "
        f"medians {baseline * 1e3:.1f} ms -> {with_tracing * 1e3:.1f} ms)"
    )
