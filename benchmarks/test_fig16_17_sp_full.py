"""Figures 16 & 17: SP overlap over the *complete code*,
original vs modified, classes A and B.

Claim: "The gains over the complete code are limited by a substantial
volume of data being communicated in routine copy_faces with no
computation to overlap."
"""

from conftest import run_once

from repro.analysis.tables import render_sp_tuning
from repro.experiments.sp_tuning import sp_tuning

PROCS = [4, 9, 16]


def _check_limited_gains(results):
    for r in results:
        full_o, full_m = r.full("original"), r.full("modified")
        sec_o, sec_m = r.section("original"), r.section("modified")
        assert full_m.max_overlap_pct > full_o.max_overlap_pct  # still a gain
        # ... but smaller than the section-level gain (copy_faces dilutes it).
        full_gain = full_m.max_overlap_pct - full_o.max_overlap_pct
        sec_gain = sec_m.max_overlap_pct - sec_o.max_overlap_pct
        assert full_gain < sec_gain
        # copy_faces transfers stay non-overlapped: full-code max < section max.
        assert full_m.max_overlap_pct < sec_m.max_overlap_pct


def test_fig16_sp_full_class_a(benchmark, emit):
    results = run_once(benchmark, lambda: [sp_tuning("A", n, niter=2) for n in PROCS])
    emit(
        "fig16_sp_full_A",
        render_sp_tuning(results, "full", "Fig 16: SP class A, complete code"),
    )
    _check_limited_gains(results)


def test_fig17_sp_full_class_b(benchmark, emit):
    results = run_once(benchmark, lambda: [sp_tuning("B", n, niter=1) for n in PROCS])
    emit(
        "fig17_sp_full_B",
        render_sp_tuning(results, "full", "Fig 17: SP class B, complete code"),
    )
    _check_limited_gains(results)
