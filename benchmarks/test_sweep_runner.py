"""Benchmarks for the parallel, cached sweep runner.

Two claims are measured:

* a cold sweep fanned over a process pool beats the serial sweep when
  cores are available (the speedup assertion is gated on ``cpu_count``,
  so single-core CI still runs the correctness half);
* a warm rerun is served entirely from the on-disk cache -- identical
  reports, zero simulation.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.micro import overlap_sweep
from repro.experiments.runner import ResultCache, overlap_sweep_parallel
from repro.mpisim.config import mvapich2_like

PATTERN = "isend_recv"
NBYTES = 256 * 1024.0
COMPUTES = [0.0, 2e-4, 4e-4, 6e-4, 8e-4, 1e-3, 1.2e-3, 1.4e-3]
ITERS = 30


def _dicts(points):
    return [(p.compute_time, p.sender.to_dict(), p.receiver.to_dict())
            for p in points]


def test_warm_cache_rerun_is_identical_and_fast(benchmark, tmp_path):
    """Cold once to fill the cache, then benchmark the all-hits rerun."""
    cfg = mvapich2_like()
    root = tmp_path / "cache"
    cold_cache = ResultCache(root)
    cold = overlap_sweep_parallel(
        PATTERN, NBYTES, COMPUTES, cfg, iters=ITERS, cache=cold_cache)
    assert cold_cache.misses == len(COMPUTES)

    def warm_run():
        cache = ResultCache(root)
        points = overlap_sweep_parallel(
            PATTERN, NBYTES, COMPUTES, cfg, iters=ITERS, cache=cache)
        return points, cache

    warm, cache = benchmark(warm_run)
    # Entirely served from cache, bit-identical to the cold results.
    assert (cache.hits, cache.misses) == (len(COMPUTES), 0)
    assert _dicts(warm) == _dicts(cold)


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="parallel speedup needs >= 4 cores")
def test_cold_parallel_sweep_beats_serial(benchmark, tmp_path):
    """jobs=4 on a cold cache vs the plain serial sweep."""
    cfg = mvapich2_like()

    t0 = time.perf_counter()
    serial = overlap_sweep(PATTERN, NBYTES, COMPUTES, cfg, iters=ITERS)
    serial_s = time.perf_counter() - t0

    def cold_parallel():
        cache = ResultCache(tmp_path / f"c{time.monotonic_ns()}")
        return overlap_sweep_parallel(
            PATTERN, NBYTES, COMPUTES, cfg, iters=ITERS, jobs=4, cache=cache)

    parallel = benchmark.pedantic(cold_parallel, rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.mean
    assert _dicts(parallel) == _dicts(serial)
    # 4 workers over 8 independent points: expect close to 4x; assert a
    # conservative 2x so loaded CI machines do not flake.
    assert serial_s / parallel_s >= 2.0, (
        f"parallel sweep not faster: serial {serial_s:.2f}s vs "
        f"jobs=4 {parallel_s:.2f}s"
    )
