"""Ablation EA1: eager-threshold sweep.

Where does the protocol crossover fall?  Messages under the eager limit
fully overlap on the receiver (case-3 optimism) and buffer instantly on
the sender; above it, the rendezvous machinery takes over and overlap
depends on the scheme.  The sweep moves the limit across a fixed message
size and watches the receiver's bounds flip.
"""

from conftest import run_once

from repro.analysis.tables import render_micro_series
from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import MpiConfig

MSG = 64 * 1024
LIMITS = [8 * 1024, 32 * 1024, 128 * 1024]


def test_ablation_eager_limit(benchmark, emit):
    def run():
        out = {}
        for limit in LIMITS:
            cfg = MpiConfig(
                name=f"eager{limit}", eager_limit=limit, rndv_mode="rget",
                leave_pinned=True,
            )
            out[limit] = overlap_sweep(
                "isend_irecv", MSG, [0.5e-3], cfg, iters=40
            )[0]
        return out

    points = run_once(benchmark, run)
    text = ["EA1: eager-limit sweep, 64KiB Isend-Irecv, 0.5ms compute",
            f"{'limit':>10} {'rcv min%':>9} {'rcv max%':>9} {'snd max%':>9}"]
    for limit, p in points.items():
        text.append(
            f"{limit:>10} {p.min_pct('receiver'):>9.1f} "
            f"{p.max_pct('receiver'):>9.1f} {p.max_pct('sender'):>9.1f}"
        )
    emit("ablation_ea1_eager_limit", "\n".join(text))

    # Below the limit (128K): eager -> receiver case-3 (max 100, min 0).
    assert points[128 * 1024].max_pct("receiver") == 100.0
    assert points[128 * 1024].min_pct("receiver") == 0.0
    # Above the limit (8K): rget rendezvous -> receiver reads in Wait: ~0.
    assert points[8 * 1024].max_pct("receiver") < 10.0


def test_ablation_eager_limit_sender_series(benchmark, emit):
    cfg = MpiConfig(name="small-eager", eager_limit=1024, rndv_mode="rget",
                    leave_pinned=True)
    points = run_once(
        benchmark,
        lambda: overlap_sweep(
            "isend_recv", MSG, [0.0, 0.2e-3, 0.4e-3], cfg, iters=40
        ),
    )
    emit(
        "ablation_ea1_sender_series",
        render_micro_series(points, "sender", "EA1: 64KiB forced rendezvous (sender)"),
    )
    assert points[-1].max_pct("sender") > 90.0
