"""Shared helpers for the figure-regeneration benchmarks.

Each ``test_figNN_*`` benchmark regenerates one paper figure: it runs the
experiment under ``pytest-benchmark`` (timing the simulation itself),
prints the figure's data series, writes it to ``benchmarks/results/``,
and asserts the figure's shape claims (who wins, what is flat, what
crosses over).  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_simulator.json"

#: Measured on the seed revision (before the O(1) processor clocks, the
#: inlined engine run loop, and the shared endpoint waiter), same
#: workloads, same machine class.  Kept frozen for before/after context.
BASELINE_PRE_PR = {
    "engine_ping_pong": {"mean_s": 0.067, "events": 40004,
                         "events_per_s": 597_000},
    "full_stack_lu": {"mean_s": 0.1437, "instrumented_events": 7380,
                      "simulated_s": 0.5362},
}


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_record():
    """Collect per-test numbers; merge them into BENCH_simulator.json.

    Session-scoped and merge-on-write so benchmark modules can run
    independently (``test_simulator_performance.py`` and
    ``test_telemetry_overhead.py`` each update only their own keys,
    preserving the other's last numbers and the frozen baseline).
    """
    current: dict[str, dict] = {}
    yield current
    if not current:
        return
    payload = {
        "description": "simulator host-throughput and telemetry-overhead "
        "benchmarks (pytest benchmarks/test_simulator_performance.py "
        "benchmarks/test_telemetry_overhead.py --benchmark-only)",
        "baseline_pre_pr": BASELINE_PRE_PR,
        "current": {},
    }
    if BENCH_PATH.exists():
        try:
            previous = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
            payload["current"] = dict(previous.get("current", {}))
        except (json.JSONDecodeError, OSError):
            pass
    payload["current"].update(current)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


@pytest.fixture
def emit(results_dir, capsys):
    """Print a figure's rendered series and persist it to results/."""

    def _emit(figure_id: str, text: str) -> None:
        path = results_dir / f"{figure_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        with capsys.disabled():
            print(f"\n=== {figure_id} ===\n{text}")

    return _emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
