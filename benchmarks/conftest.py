"""Shared helpers for the figure-regeneration benchmarks.

Each ``test_figNN_*`` benchmark regenerates one paper figure: it runs the
experiment under ``pytest-benchmark`` (timing the simulation itself),
prints the figure's data series, writes it to ``benchmarks/results/``,
and asserts the figure's shape claims (who wins, what is flat, what
crosses over).  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Print a figure's rendered series and persist it to results/."""

    def _emit(figure_id: str, text: str) -> None:
        path = results_dir / f"{figure_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        with capsys.disabled():
            print(f"\n=== {figure_id} ===\n{text}")

    return _emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
