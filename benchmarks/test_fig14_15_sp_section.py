"""Figures 14 & 15: SP overlap over the *overlapping section*,
original vs Iprobe-modified, classes A and B.

Claims: the original code shows "a high non-overlapped overhead for
messages that are communicated in the overlapping section"; after the
Iprobe modification, "maximum overlap percentage for all processor counts
with problem size B was improved to around 80%" and "a high of 98%
overlap with problem size A and 9 processors".
"""

from conftest import run_once

from repro.analysis.tables import render_sp_tuning
from repro.experiments.sp_tuning import sp_tuning

PROCS = [4, 9, 16]


def _run(klass, niter):
    return [sp_tuning(klass, n, niter=niter) for n in PROCS]


def test_fig14_sp_section_class_a(benchmark, emit):
    results = run_once(benchmark, lambda: _run("A", 2))
    emit(
        "fig14_sp_section_A",
        render_sp_tuning(results, "section", "Fig 14: SP class A, overlapping section"),
    )
    for r in results:
        orig, mod = r.section("original"), r.section("modified")
        assert mod.max_overlap_pct > orig.max_overlap_pct + 20.0
        assert mod.max_overlap_pct > 90.0  # the paper's 98% @ A/9 territory
    # Highest improvement should be visible at 9 ranks too.
    assert results[1].section("modified").max_overlap_pct > 90.0


def test_fig15_sp_section_class_b(benchmark, emit):
    results = run_once(benchmark, lambda: _run("B", 1))
    emit(
        "fig15_sp_section_B",
        render_sp_tuning(results, "section", "Fig 15: SP class B, overlapping section"),
    )
    for r in results:
        mod = r.section("modified")
        assert mod.max_overlap_pct > 75.0  # "improved to around 80%"
        assert mod.max_overlap_pct > r.section("original").max_overlap_pct
