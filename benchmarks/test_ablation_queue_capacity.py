"""Ablation EA4: circular event-queue capacity (the Fig. 2 design choice).

The queue size trades memory for drain frequency; because the processing
module is O(events) either way, measured overlap must be *identical* for
any capacity, and only the drain count changes.  This validates the
paper's no-tracing design: bounded memory with no loss of information.
"""

from conftest import run_once

from repro.experiments.nas_char import characterize
from repro.mpisim.config import mvapich2_like

CAPACITIES = [16, 256, 4096]


def test_ablation_queue_capacity(benchmark, emit):
    def run():
        out = {}
        for cap in CAPACITIES:
            cfg = mvapich2_like(queue_capacity=cap)
            out[cap] = characterize("lu", "S", 4, niter=1, config=cfg)
        return out

    points = run_once(benchmark, run)
    text = ["EA4: event-queue capacity sweep, LU class S / 4 ranks",
            f"{'capacity':>9} {'min%':>7} {'max%':>7} {'xfer(ms)':>9} {'events':>8}"]
    for cap, p in points.items():
        m = p.report.total
        text.append(
            f"{cap:>9} {m.min_overlap_pct:>7.2f} {m.max_overlap_pct:>7.2f} "
            f"{m.data_transfer_time * 1e3:>9.3f} {p.report.event_count:>8}"
        )
    emit("ablation_ea4_queue_capacity", "\n".join(text))

    base = points[CAPACITIES[0]].report.total
    for cap in CAPACITIES[1:]:
        m = points[cap].report.total
        assert m.min_overlap_time == base.min_overlap_time
        assert m.max_overlap_time == base.max_overlap_time
        assert m.data_transfer_time == base.data_transfer_time
        assert m.case_counts == base.case_counts
