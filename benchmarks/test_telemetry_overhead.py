"""Host-side cost of time-resolved telemetry on the full stack.

The paper's framework is sold on low overhead (Sec. 4's < 2% application
perturbation); this bench holds the reproduction's *telemetry subsystem*
to the same standard on the host: windowed collection plus raw event
capture must add less than 10% wall-clock to an instrumented NAS LU run.
Extends ``BENCH_simulator.json`` (key ``telemetry_overhead_lu``) next to
the throughput numbers::

    pytest benchmarks/test_telemetry_overhead.py --benchmark-only
"""

from __future__ import annotations

import statistics
import time

from repro.mpisim.config import mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.lu import lu_app
from repro.runtime import run_app
from repro.telemetry import TelemetryConfig

#: Interleaved (plain, telemetry) measurement pairs.  Pairing and taking
#: the median of per-pair ratios cancels host drift (thermal throttling,
#: noisy CI neighbors) that sequential blocks cannot.
PAIRS = 7
#: Absolute slop per pair on top of the 10% budget under test -- covers a
#: single scheduler preemption inside one ~100 ms run.
NOISE_EPSILON_S = 0.005


def _lu_run(telemetry=None):
    return run_app(
        lu_app, 4, config=mvapich2_like(),
        app_args=("A", 2, CpuModel(), None),
        telemetry=telemetry,
    )


def test_telemetry_overhead_under_ten_percent(benchmark, bench_record, emit):
    cfg = TelemetryConfig()
    _lu_run()  # warm both paths before timing
    _lu_run(telemetry=cfg)

    ratios = []
    base_times, tele_times = [], []
    plain = result = None
    for _ in range(PAIRS):
        t0 = time.perf_counter()
        plain = _lu_run()
        base = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = _lu_run(telemetry=cfg)
        tele = time.perf_counter() - t0
        base_times.append(base)
        tele_times.append(tele)
        ratios.append(tele / (base + NOISE_EPSILON_S))

    # One extra telemetry run under the benchmark timer so the
    # pytest-benchmark table reports the configuration under test.
    benchmark.pedantic(lambda: _lu_run(telemetry=cfg), rounds=1, iterations=1)

    # Telemetry must not change what is measured...
    assert result.telemetry is not None
    for rank in range(4):
        series = result.telemetry.series(rank)
        assert series.totals()["max_overlap_time"] == (
            result.report(rank).total.max_overlap_time
        )
        assert plain.report(rank).total.transfer_count == (
            result.report(rank).total.transfer_count
        )

    baseline = statistics.median(base_times)
    with_telemetry = statistics.median(tele_times)
    ratio = statistics.median(ratios)
    overhead_pct = (with_telemetry / baseline - 1.0) * 100.0
    bench_record["telemetry_overhead_lu"] = {
        "baseline_median_s": round(baseline, 6),
        "telemetry_median_s": round(with_telemetry, 6),
        "overhead_pct": round(overhead_pct, 2),
        "paired_ratio_median": round(ratio, 4),
        "windows_rank0": len(result.telemetry.series(0)),
        "trace_events_rank0": len(result.telemetry.per_rank[0].events or ()),
    }
    emit(
        "telemetry_overhead",
        "telemetry overhead (LU class A, 4 ranks, 2 iterations):\n"
        f"  plain instrumented run   {baseline * 1e3:.1f} ms\n"
        f"  with windows + trace     {with_telemetry * 1e3:.1f} ms\n"
        f"  overhead (medians)       {overhead_pct:+.1f}%\n"
        f"  paired-ratio median      {ratio:.3f}\n"
        f"  windows (rank 0)         {len(result.telemetry.series(0))}",
    )
    # The subsystem's contract: <10% on top of the instrumented run.
    assert ratio <= 1.10, (
        f"telemetry added {(ratio - 1) * 100:.1f}% (paired-ratio median; "
        f"medians {baseline * 1e3:.1f} ms -> {with_telemetry * 1e3:.1f} ms)"
    )
