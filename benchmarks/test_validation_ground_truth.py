"""Validation EV1: derived bounds vs simulator ground truth.

Not a paper figure -- the paper *cannot* do this on real hardware.  The
simulator records every physical transfer interval and every computation
interval, computes the true overlapped transfer time per process, and
checks that the framework's min/max bounds bracket it (within one wire
latency of observation slack per transfer).
"""

from conftest import run_once

from repro.experiments.validation import render_validation, validate_bounds
from repro.mpisim.config import MpiConfig, mvapich2_like, openmpi_like
from repro.nas.base import CpuModel
from repro.nas.sp import sp_app
from repro.runtime import run_app

MB = 1024 * 1024


def _micro(nbytes, compute):
    def app(ctx):
        for _ in range(30):
            if ctx.rank == 0:
                req = yield from ctx.comm.isend(1, 0, nbytes, bufkey="b")
                yield from ctx.compute(compute)
                yield from ctx.comm.wait(req)
            else:
                yield from ctx.comm.recv(0, 0)

    return app


SCENARIOS = [
    ("eager 10KB / 30us compute", _micro(10 * 1024, 30e-6), openmpi_like()),
    ("pipelined 1MB / 1.5ms", _micro(MB, 1.5e-3), openmpi_like()),
    ("direct 1MB / 1.5ms", _micro(MB, 1.5e-3), openmpi_like(leave_pinned=True)),
    ("rput 1MB / 1.5ms", _micro(MB, 1.5e-3),
     MpiConfig(name="rput", rndv_mode="rput")),
]


def test_validation_ground_truth(benchmark, emit):
    def run():
        out = []
        for name, app, config in SCENARIOS:
            result = run_app(app, 2, config=config, record_transfers=True)
            out.append((name, validate_bounds(result)))
        sp = run_app(sp_app, 4, config=mvapich2_like(), record_transfers=True,
                     app_args=("A", 2, CpuModel(10e9), True))
        out.append(("SP class A modified, 4 ranks", validate_bounds(sp)))
        return out

    results = run_once(benchmark, run)
    blocks = []
    for name, checks in results:
        blocks.append(render_validation(checks, f"-- {name} --"))
        for check in checks:
            assert check.holds, (name, check)
    emit("validation_ev1_ground_truth", "\n\n".join(blocks))
