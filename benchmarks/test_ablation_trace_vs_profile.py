"""Ablation EA7: the framework's no-tracing design vs full tracing.

Section 5: trace-based approaches must store "voluminous trace files"
while this framework keeps a fixed-size queue.  We attach a TraceSink to
a NAS LU run, compare memory footprints, and verify the bounded pipeline
computed exactly what offline trace analysis computes.
"""

from conftest import run_once

from repro.core.monitor import DEFAULT_QUEUE_CAPACITY
from repro.core.trace import TraceSink, replay_overlap
from repro.mpisim.config import mvapich2_like
from repro.nas.lu import lu_app
from repro.runtime.launcher import default_xfer_table, run_app


def test_ablation_trace_vs_profile(benchmark, emit):
    sinks = {}

    def traced_lu(ctx, klass, niter, cpu, planes):
        sink = TraceSink()
        ctx.monitor.peruse.subscribe(sink)
        sinks[ctx.rank] = sink
        result = yield from lu_app(ctx, klass, niter, cpu, planes)
        return result

    def run():
        return run_app(
            traced_lu, 4, config=mvapich2_like(), label="lu-traced",
            app_args=("A", 6, None, None),
        )

    result = run_once(benchmark, run)
    report = result.report(0)
    sink = sinks[0]
    queue_bytes = 32 * DEFAULT_QUEUE_CAPACITY

    text = [
        "EA7: tracing vs bounded profiling, LU class A / 4 ranks, rank 0",
        f"  events generated           {len(sink)}",
        f"  trace memory               {sink.nbytes_estimate} B (unbounded, grows with run length)",
        f"  framework queue memory     {queue_bytes} B (fixed)",
        f"  profiled overlap bounds    [{report.total.min_overlap_pct:.1f}%, "
        f"{report.total.max_overlap_pct:.1f}%]",
    ]

    # Offline replay of the full trace reproduces the live pipeline exactly.
    replayed = replay_overlap(sink.events, default_xfer_table(result.fabric.params))
    assert replayed.total.min_overlap_time == report.total.min_overlap_time
    assert replayed.total.max_overlap_time == report.total.max_overlap_time
    assert replayed.total.case_counts == report.total.case_counts
    text.append("  offline trace replay       identical bounds (no information lost)")
    emit("ablation_ea7_trace_vs_profile", "\n".join(text))

    # The run is long enough that a trace visibly outgrows the fixed queue.
    assert len(sink) > DEFAULT_QUEUE_CAPACITY
