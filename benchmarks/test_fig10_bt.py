"""Figure 10: NAS BT overlap characterization (Open MPI, pipelined RDMA).

Claims: BT is dominated by long messages; overlap is lower than CG's
(checked in fig11); overlap drops for larger problem sizes at small
processor counts ("since long messages have less potential for overlap,
observed overlaps drop").
"""

from conftest import run_once

from repro.analysis.tables import render_nas_char, render_size_breakdown
from repro.experiments.nas_char import characterize_matrix

KLASSES = ["S", "W", "A"]
PROCS = [4, 9, 16]


def test_fig10_bt(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: characterize_matrix("bt", KLASSES, PROCS, niter=2),
    )
    emit("fig10_bt", render_nas_char(points, "Fig 10: NAS BT / Open MPI (process 0)"))
    emit(
        "fig10_bt_sizes",
        render_size_breakdown(points[-1].report, "BT class A, 16 ranks, by size"),
    )
    by_cell = {(p.klass, p.nprocs): p for p in points}
    # Long messages carry most of BT's bytes (class A).
    bins = by_cell[("A", 4)].report.total.bins.bins
    assert sum(b.bytes for b in bins[2:]) > sum(b.bytes for b in bins[:2])
    # Bigger problem at fixed ranks -> lower max overlap (A vs S at 4).
    assert by_cell[("A", 4)].max_pct <= by_cell[("S", 4)].max_pct + 1.0
