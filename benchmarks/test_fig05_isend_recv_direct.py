"""Figure 5: Isend-Recv, 1 MB, direct RDMA (``mpi_leave_pinned``).

Claim: "the receiver is free to read the sending application's buffer on
arrival of the initial request ...  This explains the improved overlap
when computation is increased and the progressive drop in wait time ...
With full computation-communication overlap, the wait time does not
change any further."
"""

from conftest import run_once

from repro.analysis.tables import render_micro_series
from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import openmpi_like

COMPUTES = [0.0, 0.25e-3, 0.5e-3, 0.75e-3, 1.0e-3, 1.25e-3, 1.5e-3, 1.75e-3, 2.0e-3]
MB = 1024 * 1024


def test_fig05_isend_recv_direct(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: overlap_sweep(
            "isend_recv", MB, COMPUTES, openmpi_like(leave_pinned=True), iters=40
        ),
    )
    emit(
        "fig05_sender",
        render_micro_series(points, "sender", "Fig 5 (sender, Isend): 1MB direct RDMA"),
    )
    maxes = [p.max_pct("sender") for p in points]
    mins = [p.min_pct("sender") for p in points]
    waits = [p.wait_time("sender") for p in points]
    assert maxes[0] < 30.0 and maxes[-1] > 90.0
    assert mins[-1] > 80.0  # the min bound rises too: real guaranteed savings
    assert waits[-1] < 0.15 * waits[0]  # progressive drop in wait time
    assert abs(waits[-1] - waits[-2]) < 0.2 * waits[0]  # then flat
