"""Figure 13: NAS FT overlap characterization (MVAPICH2).

Claims: "FT has low scope for overlap ...  Most of the communication in
FT is done by the Alltoall collective which sends long messages.  These
transfers do not get overlapped with computation.  The limited amount of
overlap is due to short messages being exchanged in collectives like
Reduce and Bcast."
"""

from conftest import run_once

from repro.analysis.tables import render_nas_char
from repro.experiments.nas_char import characterize_matrix

KLASSES = ["S", "W", "A"]
PROCS = [4, 8, 16]


def test_fig13_ft(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: characterize_matrix("ft", KLASSES, PROCS, niter=2),
    )
    emit("fig13_ft", render_nas_char(points, "Fig 13: NAS FT / MVAPICH2 (process 0)"))
    for p in points:
        assert p.max_pct < 35.0, (p.klass, p.nprocs, p.max_pct)
        assert p.min_pct < 5.0
    # The limited overlap that exists comes from the short-message bins.
    bins = points[-1].report.total.bins.bins
    assert sum(b.max_overlap for b in bins[2:]) == 0.0
    assert sum(b.max_overlap for b in bins[:2]) > 0.0
