"""Ablation EA2: fragment size in the pipelined rendezvous.

The overlappable share of a pipelined transfer is the first fragment, so
the sender's maximum overlap should track ``frag_size / message_size``
(modulo the fragment's own latency overhead).
"""

from conftest import run_once

from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import MpiConfig

MB = 1024 * 1024
FRAGS = [32 * 1024, 128 * 1024, 512 * 1024]


def test_ablation_frag_size(benchmark, emit):
    def run():
        out = {}
        for frag in FRAGS:
            cfg = MpiConfig(
                name=f"frag{frag}", eager_limit=16 * 1024,
                rndv_mode="pipelined", frag_size=frag,
            )
            out[frag] = overlap_sweep("isend_recv", MB, [1.5e-3], cfg, iters=30)[0]
        return out

    points = run_once(benchmark, run)
    text = ["EA2: pipelined fragment-size sweep, 1MiB Isend-Recv, 1.5ms compute",
            f"{'frag':>10} {'snd max%':>9} {'snd wait(us)':>13}"]
    for frag, p in points.items():
        text.append(
            f"{frag:>10} {p.max_pct('sender'):>9.1f} "
            f"{p.wait_time('sender') * 1e6:>13.1f}"
        )
    emit("ablation_ea2_frag_size", "\n".join(text))

    # Larger first fragment -> more overlappable share -> higher max bound.
    maxes = [points[f].max_pct("sender") for f in FRAGS]
    assert maxes[0] < maxes[1] < maxes[2]
    # And less data pushed inside Wait -> shorter waits.
    waits = [points[f].wait_time("sender") for f in FRAGS]
    assert waits[2] < waits[0]
