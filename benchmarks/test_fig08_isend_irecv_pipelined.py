"""Figure 8: Isend-Irecv, 1 MB, pipelined RDMA rendezvous.

Claim: "the initiating fragment is the only portion of the message that
is overlapped in pipelined RDMA" -- for both sides.
"""

from conftest import run_once

from repro.analysis.tables import render_micro_series
from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import openmpi_like

COMPUTES = [0.0, 0.25e-3, 0.5e-3, 0.75e-3, 1.0e-3, 1.25e-3, 1.5e-3, 1.75e-3]
MB = 1024 * 1024


def test_fig08_isend_irecv_pipelined(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: overlap_sweep(
            "isend_irecv", MB, COMPUTES, openmpi_like(leave_pinned=False), iters=40
        ),
    )
    emit(
        "fig08_sender",
        render_micro_series(points, "sender", "Fig 8 (sender): 1MB pipelined RDMA"),
    )
    emit(
        "fig08_receiver",
        render_micro_series(points, "receiver", "Fig 8 (receiver): 1MB pipelined RDMA"),
    )
    for p in points:
        assert p.max_pct("sender") < 30.0
        assert p.max_pct("receiver") < 30.0
