"""Ablation EA6: multi-rail fragment striping.

Open MPI's pipelined scheme can schedule fragments "for delivery across
multiple NICs" (paper Sec. 3.5).  With two rails the bulk fragments
stream in parallel, halving the in-Wait streaming time; overlap bounds do
not improve (the fragments are still case 1), which is exactly the
paper's point that striping buys bandwidth, not overlap.
"""

from conftest import run_once

from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import MpiConfig

MB = 2 * 1024 * 1024
RAILS = [1, 2, 4]


def test_ablation_multirail(benchmark, emit):
    def run():
        out = {}
        for rails in RAILS:
            cfg = MpiConfig(
                name=f"rails{rails}", eager_limit=16 * 1024,
                rndv_mode="pipelined", frag_size=128 * 1024,
                nics_per_node=rails,
            )
            out[rails] = overlap_sweep("isend_recv", MB, [1.0e-3], cfg, iters=20)[0]
        return out

    points = run_once(benchmark, run)
    text = ["EA6: rail-count sweep, 2MiB pipelined Isend-Recv, 1ms compute",
            f"{'rails':>6} {'snd max%':>9} {'snd wait(ms)':>13}"]
    for rails, p in points.items():
        text.append(
            f"{rails:>6} {p.max_pct('sender'):>9.1f} "
            f"{p.wait_time('sender') * 1e3:>13.3f}"
        )
    emit("ablation_ea6_multirail", "\n".join(text))

    waits = [points[r].wait_time("sender") for r in RAILS]
    assert waits[1] < 0.7 * waits[0]  # 2 rails stream the bulk ~2x faster
    assert waits[2] < waits[1] + 1e-5
    # Striping does not create overlap: the fragments remain case 1.
    maxes = [points[r].max_pct("sender") for r in RAILS]
    assert max(maxes) - min(maxes) < 5.0
