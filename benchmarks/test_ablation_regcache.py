"""Ablation EA3: the leave_pinned registration cache.

With caching off, every rendezvous pays the pinning cost inside the send
call; with the MRU cache and a reused buffer, pinning is a one-time cost.
The effect shows up as longer in-library time (and a worse min bound) in
the uncached configuration.
"""

from conftest import run_once

from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import MpiConfig

MB = 1024 * 1024


def _cfg(cached: bool) -> MpiConfig:
    return MpiConfig(
        name="rc-on" if cached else "rc-off",
        eager_limit=16 * 1024,
        rndv_mode="rget",
        leave_pinned=cached,
    )


def test_ablation_regcache(benchmark, emit):
    def run():
        return {
            cached: overlap_sweep(
                "isend_recv", MB, [2.0e-3], _cfg(cached), iters=30, warmup=3
            )[0]
            for cached in (True, False)
        }

    points = run_once(benchmark, run)
    text = ["EA3: registration cache on/off, 1MiB rget, reused buffer",
            f"{'cache':>6} {'snd min%':>9} {'snd max%':>9} {'isend(us)':>10} "
            f"{'recv mpi(ms)':>13}"]
    for cached, p in points.items():
        text.append(
            f"{'on' if cached else 'off':>6} "
            f"{p.min_pct('sender'):>9.1f} {p.max_pct('sender'):>9.1f} "
            f"{p.sender.mean_call_time('MPI_Isend') * 1e6:>10.2f} "
            f"{p.receiver.mpi_time * 1e3:>13.3f}"
        )
    emit("ablation_ea3_regcache", "\n".join(text))

    on, off = points[True], points[False]
    # Uncached pinning is paid inside MPI_Isend on every iteration.
    assert off.sender.mean_call_time("MPI_Isend") > 2 * on.sender.mean_call_time(
        "MPI_Isend"
    )
    # The receiver also re-pins per message: more in-library time.
    assert off.receiver.mpi_time > on.receiver.mpi_time
