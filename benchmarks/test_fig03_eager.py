"""Figure 3: Isend-Irecv with the eager protocol (10 KB messages).

Paper claims reproduced: sender overlap rises with inserted computation;
receiver min overlap is asserted zero and max overlap is the full
transfer time; receiver wait time stops changing once overlap saturates;
"short message transfers exhibit full overlap ability".
"""

from conftest import run_once

from repro.analysis.tables import render_micro_series
from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import openmpi_like

COMPUTES = [0.0, 2e-6, 5e-6, 10e-6, 15e-6, 20e-6, 25e-6, 30e-6, 45e-6, 60e-6]


def test_fig03_eager_isend_irecv(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: overlap_sweep(
            "isend_irecv", 10 * 1024, COMPUTES, openmpi_like(), iters=100
        ),
    )
    emit(
        "fig03_sender",
        render_micro_series(points, "sender", "Fig 3 (sender, Isend): eager 10KB"),
    )
    emit(
        "fig03_receiver",
        render_micro_series(points, "receiver", "Fig 3 (receiver, Irecv): eager 10KB"),
    )

    sender_max = [p.max_pct("sender") for p in points]
    assert sender_max[0] < 35.0 and sender_max[-1] > 95.0
    for p in points:
        assert p.min_pct("receiver") == 0.0
        assert p.max_pct("receiver") == 100.0
    # Receiver wait time settles once computation covers the transfer.
    waits = [p.wait_time("receiver") for p in points]
    assert waits[-1] <= waits[0]
    assert abs(waits[-1] - waits[-2]) < 2e-6
