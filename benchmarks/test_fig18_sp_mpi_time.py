"""Figure 18: SP overall MPI time, original vs modified, classes A and B.

Claim: "The changes still provide a performance benefit with overall MPI
time showing a drop in all cases and a maximum improvement of close to
23% with problem size B and 4 processors."
"""

from conftest import run_once

from repro.analysis.tables import render_sp_tuning
from repro.experiments.sp_tuning import sp_tuning

CELLS = [("A", 4), ("A", 9), ("A", 16), ("B", 4), ("B", 9), ("B", 16)]


def test_fig18_sp_mpi_time(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: [
            sp_tuning(klass, n, niter=2 if klass == "A" else 1)
            for klass, n in CELLS
        ],
    )
    emit(
        "fig18_sp_mpi_time",
        render_sp_tuning(results, "full", "Fig 18: SP overall MPI time (ms)"),
    )
    # MPI time drops in every cell.
    for r in results:
        assert r.mpi_time_modified < r.mpi_time_original, (r.klass, r.nprocs)
        assert r.mpi_time_improvement_pct > 0.0
    # A sizeable best-case improvement exists (the paper saw ~23%).
    assert max(r.mpi_time_improvement_pct for r in results) > 15.0
