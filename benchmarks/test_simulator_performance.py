"""Host-performance benchmark: simulation throughput.

Unlike the figure benches (which time one deterministic experiment),
this one exists for its wall-clock numbers: how many simulated engine
events per host second the stack sustains on a standard workload.  Run
with more rounds for stable numbers::

    pytest benchmarks/test_simulator_performance.py --benchmark-only
"""

from repro.mpisim.config import mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.lu import lu_app
from repro.runtime import run_app
from repro.sim import Engine


def test_engine_event_throughput(benchmark):
    """Raw kernel: ping-pong timeouts between two coroutines."""

    def run():
        eng = Engine()

        def worker(n):
            for _ in range(n):
                yield eng.timeout(1e-6)

        eng.process(worker(20_000))
        eng.process(worker(20_000))
        eng.run()
        return eng.processed_count

    events = benchmark(run)
    assert events >= 40_000


def test_full_stack_throughput(benchmark, emit):
    """NAS LU on the full stack (protocols + instrumentation)."""

    def run():
        result = run_app(
            lu_app, 4, config=mvapich2_like(),
            app_args=("A", 2, CpuModel(), None),
        )
        return result

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    stats = benchmark.stats.stats
    events = sum(r.event_count for r in result.reports)
    emit(
        "simulator_performance",
        "simulator throughput (LU class A, 4 ranks, 2 iterations):\n"
        f"  host time per run     {stats.mean * 1e3:.1f} ms\n"
        f"  instrumented events   {events}\n"
        f"  simulated time        {result.elapsed * 1e3:.1f} ms",
    )
    # Loose floor so CI-class machines pass; catches 10x regressions only.
    assert stats.mean < 30.0
