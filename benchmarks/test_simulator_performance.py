"""Host-performance benchmark: simulation throughput.

Unlike the figure benches (which time one deterministic experiment),
this one exists for its wall-clock numbers: how many simulated engine
events per host second the stack sustains on a standard workload.  Run
with more rounds for stable numbers::

    pytest benchmarks/test_simulator_performance.py --benchmark-only

Besides the pytest-benchmark table, the module writes
``BENCH_simulator.json`` at the repo root: the measured numbers next to
the frozen pre-optimization baseline, so any checkout documents its own
before/after (see ``docs/performance.md``).
"""

from __future__ import annotations

import time

from repro.mpisim.config import mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.lu import lu_app
from repro.runtime import run_app
from repro.sim import Engine

from conftest import BASELINE_PRE_PR

#: Ping-pong timeouts per coroutine and burst-train shape.  The workload
#: mirrors what a full-stack run feeds the engine: interactive coroutine
#: wakeups (heap-scheduled) plus NIC packet trains (macro-event bursts).
PING = 20_000
TRAINS = 3
SUBS_PER_TRAIN = 40_000


def _noop(_ev):
    return None


def test_engine_event_throughput(benchmark, bench_record):
    """Engine kernel: simulated-events-retired per host second.

    Two coroutines ping-pong timeouts through the pending store, then
    NIC-style coalesced packet trains drain through the macro-event path.
    Throughput is events retired over time spent inside ``run()`` --
    train construction is the producer's cost, not the scheduler's.
    """
    laps: list[tuple[int, float]] = []

    def run():
        eng = Engine()

        def worker(n):
            for _ in range(n):
                yield eng.timeout(1e-6)

        eng.process(worker(PING))
        eng.process(worker(PING))
        for t in range(TRAINS):
            burst = eng.new_burst()
            base = 1.0 + 0.05 * t
            for i in range(SUBS_PER_TRAIN):
                burst.try_at(base + i * 1e-9).callbacks.append(_noop)
            burst.close()
        t0 = time.perf_counter()
        eng.run()
        laps.append((eng.processed_count, time.perf_counter() - t0))
        return eng.processed_count

    events = benchmark(run)
    assert events >= 2 * PING + TRAINS * SUBS_PER_TRAIN
    # Every recorded number times run() only: pytest-benchmark's own mean
    # also counts train construction (the producer's cost, not the
    # scheduler's), which used to leave a misleading mean_s ~6x the run_s
    # in BENCH_simulator.json for the same block.
    best_events, best_s = min(laps, key=lambda lap: lap[1] / lap[0])
    mean_run = sum(s for _, s in laps) / len(laps)
    bench_record["engine_ping_pong"] = {
        "mean_s": round(mean_run, 6),
        "events": events,
        "run_s": round(best_s, 6),
        "events_per_s": round(best_events / best_s),
    }


def test_full_stack_throughput(benchmark, bench_record, emit):
    """NAS LU on the full stack (protocols + instrumentation)."""

    def run():
        result = run_app(
            lu_app, 4, config=mvapich2_like(),
            app_args=("A", 2, CpuModel(), None),
        )
        return result

    result = benchmark.pedantic(run, rounds=5, iterations=1)
    stats = benchmark.stats.stats
    events = sum(r.event_count for r in result.reports)
    baseline = BASELINE_PRE_PR["full_stack_lu"]["mean_s"]
    bench_record["full_stack_lu"] = {
        "mean_s": round(stats.mean, 6),
        "min_s": round(stats.min, 6),
        "instrumented_events": events,
        "simulated_s": round(result.elapsed, 6),
        "speedup_vs_baseline": round(baseline / stats.mean, 2),
    }
    emit(
        "simulator_performance",
        "simulator throughput (LU class A, 4 ranks, 2 iterations):\n"
        f"  host time per run     {stats.mean * 1e3:.1f} ms\n"
        f"  instrumented events   {events}\n"
        f"  simulated time        {result.elapsed * 1e3:.1f} ms\n"
        f"  speedup vs pre-opt    {baseline / stats.mean:.2f}x",
    )
    # ~3x headroom over the optimized mean on a CI-class machine: trips on
    # a real 3x regression, not on scheduler noise.  (The seed floor was
    # 30 s, which only caught order-of-magnitude disasters.)
    assert stats.mean < 0.5
