"""Appendix: the detailed per-size-range data the paper omitted.

Sec. 4: "Data was gathered for different message size ranges, to provide
information on the degree of overlap for messages of different sizes.
While we omit detailed data due to space considerations, we briefly
discuss our findings in each case."  The simulator has no space
constraints: this bench emits the full size-range breakdown for every
NAS benchmark and asserts the textual findings quantitatively.
"""

from conftest import run_once

from repro.analysis.tables import render_size_breakdown
from repro.core.measures import DETAILED_EDGES
from repro.experiments.nas_char import MPI_BENCHMARKS, characterize

import dataclasses

CELLS = [
    ("bt", "A", 4),
    ("cg", "A", 4),
    ("lu", "A", 4),
    ("ft", "A", 4),
    ("sp", "A", 4),
    ("is", "A", 4),
]


def test_appendix_size_distributions(benchmark, emit):
    def run():
        out = {}
        for bench, klass, nprocs in CELLS:
            _, config_factory = MPI_BENCHMARKS[bench]
            config = dataclasses.replace(
                config_factory(), bin_edges=DETAILED_EDGES
            )
            out[bench] = characterize(bench, klass, nprocs, niter=2,
                                      config=config)
        return out

    points = run_once(benchmark, run)
    blocks = []
    for bench, point in points.items():
        blocks.append(
            render_size_breakdown(
                point.report,
                f"-- {bench.upper()} class {point.klass}, {point.nprocs} "
                "ranks, process 0 --",
            )
        )
    emit("appendix_size_distributions", "\n\n".join(blocks))

    def bins(bench):
        return points[bench].report.total.bins

    def split_at(bench, edge_bytes):
        b = bins(bench)
        short = sum(
            s.bytes for i, s in enumerate(b.bins)
            if (b.edges[i] if i < len(b.edges) else float("inf")) <= edge_bytes
        )
        total = sum(s.bytes for s in b.bins)
        return short / total if total else 0.0

    # The paper's per-benchmark findings, now with numbers attached:
    # BT: "long messages constitute the majority of communication".
    assert split_at("bt", 16384) < 0.25
    # CG: "a larger proportion of short messages" (by count).
    cg = bins("cg")
    short_count = sum(
        s.count for i, s in enumerate(cg.bins)
        if (cg.edges[i] if i < len(cg.edges) else float("inf")) <= 16384
    )
    assert short_count > 0.5 * sum(s.count for s in cg.bins)
    # LU: "a mix of short and long messages".
    assert 0.0 < split_at("lu", 16384) < 1.0
    # FT / IS: collective long transfers dominate the bytes.
    assert split_at("ft", 16384) < 0.05
    assert split_at("is", 16384) < 0.3
