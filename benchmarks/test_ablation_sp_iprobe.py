"""Ablation EA5: Iprobe count/placement in NAS SP (Sec. 4.3's manual search).

"We tried different numbers as well as positions of Iprobe calls, each
time measuring the change in overlap."  Zero probes degenerate to the
original; one probe already recovers most of the overlap (the progress
engine only needs to see the RTS once); additional probes buy little but
cost calls.
"""

from conftest import run_once

from repro.experiments.sp_tuning import iprobe_placement_sweep

COUNTS = (0, 1, 2, 4, 8, 16)


def test_ablation_sp_iprobe(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: iprobe_placement_sweep("A", 4, counts=COUNTS, niter=2),
    )
    text = ["EA5: SP Iprobe-count sweep, class A / 4 ranks (section scope)",
            f"{'probes':>7} {'min%':>7} {'max%':>7} {'mpi(ms)':>9}"]
    for r in results:
        m = r.section("modified")
        text.append(
            f"{r.iprobe_calls:>7} {m.min_overlap_pct:>7.1f} "
            f"{m.max_overlap_pct:>7.1f} {r.mpi_time_modified * 1e3:>9.3f}"
        )
    emit("ablation_ea5_sp_iprobe", "\n".join(text))

    by_count = {r.iprobe_calls: r for r in results}
    zero = by_count[0].section("modified")
    one = by_count[1].section("modified")
    assert one.max_overlap_pct > zero.max_overlap_pct + 20.0
    # Diminishing returns: 16 probes barely beat 4.
    assert (
        by_count[16].section("modified").max_overlap_pct
        - by_count[4].section("modified").max_overlap_pct
        < 10.0
    )
