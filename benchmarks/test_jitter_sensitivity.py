"""Robustness EJ1: are the measured bounds artifacts of a perfectly
regular network?

Real fabrics jitter; the simulator's default wire is exact.  Re-running
the Fig.-5 operating point under growing seeded latency jitter must keep
(a) the bounding invariants intact and (b) the measured characterization
stable -- the framework's conclusions do not depend on clockwork timing.
"""

import statistics

from conftest import run_once

from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import openmpi_like
from repro.netsim.params import NetworkParams

JITTERS = [0.0, 0.1, 0.3, 0.6]
SEEDS = range(4)

#: Latency-sensitive operating point: 10 KB eager with 10 us of inserted
#: computation -- here the +/- microseconds of jitter actually move the
#: per-message timing, unlike the ms-scale rendezvous points.
SHORT = 10 * 1024
COMPUTE = 10e-6


def test_jitter_sensitivity(benchmark, emit):
    def run():
        out = {}
        for jitter in JITTERS:
            params = NetworkParams(latency_jitter_frac=jitter)
            samples = []
            # Vary iteration counts to decorrelate the draws (the sweep
            # fixes the fabric seed; message order shifts the RNG stream).
            for extra in SEEDS:
                points = overlap_sweep(
                    "isend_irecv", SHORT, [COMPUTE], openmpi_like(),
                    params=params, iters=20 + extra,
                )
                samples.append((points[0].min_pct("sender"),
                                points[0].max_pct("sender"),
                                points[0].wait_time("receiver")))
            out[jitter] = samples
        return out

    results = run_once(benchmark, run)
    text = ["EJ1: eager 10KB / 10us compute under latency jitter",
            f"{'jitter':>7} {'mean min%':>10} {'mean max%':>10} "
            f"{'rcv wait(us)':>13}"]
    for jitter, samples in results.items():
        mins = [s[0] for s in samples]
        maxes = [s[1] for s in samples]
        waits = [s[2] * 1e6 for s in samples]
        text.append(
            f"{jitter:>7.1f} {statistics.mean(mins):>10.1f} "
            f"{statistics.mean(maxes):>10.1f} "
            f"{statistics.mean(waits):>13.3f}"
        )
    emit("jitter_ej1_sensitivity", "\n".join(text))

    base_max = statistics.mean(s[1] for s in results[0.0])
    base_wait = statistics.mean(s[2] for s in results[0.0])
    for jitter, samples in results.items():
        for lo, hi, _wait in samples:
            assert 0.0 <= lo <= hi + 1e-9 <= 100.0 + 1e-6
        # Characterization stays within a few points of the exact wire.
        assert abs(statistics.mean(s[1] for s in samples) - base_max) < 10.0
    # The jitter is genuinely active: timing-level metrics (receiver wait)
    # shift, even though the characterization is robust to it.
    jittered_wait = statistics.mean(s[2] for s in results[0.6])
    assert jittered_wait != base_wait
