"""Figure 9: Isend-Irecv, 1 MB, direct RDMA.

Claim: "the direct RDMA approach allows the possibility of complete
overlap for the sender" (the max bound reaches ~100% with enough
computation), while the receiver -- blinded by polling progress during
its compute region -- initiates the read only inside Wait.
"""

from conftest import run_once

from repro.analysis.tables import render_micro_series
from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import openmpi_like

COMPUTES = [0.0, 0.25e-3, 0.5e-3, 0.75e-3, 1.0e-3, 1.25e-3, 1.5e-3, 1.75e-3, 2.0e-3]
MB = 1024 * 1024


def test_fig09_isend_irecv_direct(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: overlap_sweep(
            "isend_irecv", MB, COMPUTES, openmpi_like(leave_pinned=True), iters=40
        ),
    )
    emit(
        "fig09_sender",
        render_micro_series(points, "sender", "Fig 9 (sender): 1MB direct RDMA"),
    )
    emit(
        "fig09_receiver",
        render_micro_series(points, "receiver", "Fig 9 (receiver): 1MB direct RDMA"),
    )
    maxes = [p.max_pct("sender") for p in points]
    assert maxes[0] < 30.0 and maxes[-1] > 90.0  # rises to complete overlap
    assert all(b >= a - 1.0 for a, b in zip(maxes, maxes[1:]))  # monotone rise
    for p in points[1:]:
        assert p.max_pct("receiver") < 15.0
