"""Figure 6: Send-Irecv, 1 MB, pipelined RDMA rendezvous.

Claim: "Both schemes exhibit minimal overlap in Send-Irecv communication
...  Since the progress engine is polling-based, the receiver detects the
initial request on entering MPI_Wait ...  pipelined RDMA is able to
overlap the first fragment.  Consequently, the wait time is high and is
unchanged for varying computation lengths."
"""

from conftest import run_once

from repro.analysis.tables import render_micro_series
from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import openmpi_like

COMPUTES = [0.0, 0.25e-3, 0.5e-3, 0.75e-3, 1.0e-3, 1.25e-3, 1.5e-3, 1.75e-3]
MB = 1024 * 1024


def test_fig06_send_irecv_pipelined(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: overlap_sweep(
            "send_irecv", MB, COMPUTES, openmpi_like(leave_pinned=False), iters=40
        ),
    )
    emit(
        "fig06_receiver",
        render_micro_series(
            points, "receiver", "Fig 6 (receiver, Irecv): 1MB pipelined RDMA"
        ),
    )
    for p in points:
        assert p.max_pct("receiver") < 30.0  # only the first fragment
    waits = [p.wait_time("receiver") for p in points]
    assert min(waits) > 1e-4
    assert max(waits[1:]) / min(waits[1:]) < 1.5  # high and unchanged
