"""Figure 19: NAS MG on ARMCI, blocking vs non-blocking.

Claim: "The non-blocking code shows very high maximum overlap percentage,
with 99% overlap being reported for all processor counts with problem
size B."  The blocking variant, whose transfers begin and end inside one
call, cannot overlap at all.
"""

from conftest import run_once

from repro.analysis.tables import render_nas_char
from repro.experiments.nas_char import characterize_mg

PROCS = [4, 8, 16]


def test_fig19_mg_armci(benchmark, emit):
    def run():
        points = []
        # MG classes A and B share the 256^3 grid and differ in iteration
        # count (4 vs 20); scaled to 1 vs 3 here.
        for klass, niter in (("A", 1), ("B", 3)):
            for nprocs in PROCS:
                for blocking in (True, False):
                    points.append(
                        characterize_mg(klass, nprocs, blocking, niter=niter)
                    )
        return points

    points = run_once(benchmark, run)
    emit("fig19_mg_armci", render_nas_char(points, "Fig 19: NAS MG / ARMCI"))
    for p in points:
        if p.variant == "blocking":
            assert p.max_pct == 0.0
    nb_b = [p for p in points if p.variant == "nonblocking" and p.klass == "B"]
    for p in nb_b:
        assert p.max_pct > 95.0, (p.nprocs, p.max_pct)  # the paper's 99%
