"""Figure 12: NAS LU overlap characterization (MVAPICH2).

Claims: "LU overlap numbers are above 70% and increase as the problem
size is reduced or the processor count is increased.  The non-overlapped
time is incurred in communicating long messages."
"""

from conftest import run_once

from repro.analysis.tables import render_nas_char
from repro.experiments.nas_char import characterize_matrix

KLASSES = ["S", "W", "A"]
PROCS = [4, 8, 16]


def test_fig12_lu(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: characterize_matrix("lu", KLASSES, PROCS, niter=2),
    )
    emit("fig12_lu", render_nas_char(points, "Fig 12: NAS LU / MVAPICH2 (process 0)"))
    by_cell = {(p.klass, p.nprocs): p for p in points}
    for p in points:
        assert p.max_pct > 70.0, (p.klass, p.nprocs, p.max_pct)
    # More ranks at fixed class -> higher (or equal) overlap.
    assert by_cell[("A", 16)].max_pct >= by_cell[("A", 4)].max_pct - 1.0
    # Smaller class at fixed ranks -> higher (or equal) overlap.
    assert by_cell[("S", 4)].max_pct >= by_cell[("A", 4)].max_pct - 1.0
    # The non-overlapped time sits in the long-message bins.
    bins = by_cell[("A", 4)].report.total.bins.bins
    long_nonov = sum(b.xfer_time - b.max_overlap for b in bins[2:])
    short_nonov = sum(b.xfer_time - b.max_overlap for b in bins[:2])
    assert long_nonov > short_nonov
