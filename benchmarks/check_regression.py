"""CI benchmark-regression guard.

Compares a freshly measured ``BENCH_simulator.json`` against the floor
committed in the repository and fails (exit 1) when a guarded number
regresses by more than the tolerance: ``engine_ping_pong.events_per_s``
and the sharded scale curve (``shard_scale.events_per_s_x1``, the
``speedup_x4`` capacity ratio) may not drop, and ``full_stack_lu.mean_s``
may not rise, by more than 15% (CI machines are noisy; a real perf bug
moves these far more).  With the committed ``speedup_x4`` at ~3x, the
15% tolerance keeps the effective floor above the 2.5x acceptance bar.

Usage (CI snapshots the committed file before the bench run rewrites
it)::

    cp BENCH_simulator.json /tmp/bench_floor.json
    pytest benchmarks/test_simulator_performance.py \\
        benchmarks/test_shard_scale.py --benchmark-only
    python benchmarks/check_regression.py \\
        --floor /tmp/bench_floor.json --current BENCH_simulator.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: (block, key, direction[, tolerance]) -- "higher" means bigger is
#: better; an optional fourth element overrides the run's tolerance for
#: that one check.  Blocks missing from either file are SKIPped, so one
#: guard serves both ``BENCH_simulator.json`` and ``BENCH_service.json``
#: (the CI service job runs it a second time against the service file,
#: with a wider tolerance: HTTP latency numbers are noisier than
#: simulator throughput).
#:
#: The fence-speedup ratio gets a wide 0.5 tolerance of its own: it is a
#: ratio of two sub-millisecond-per-round measurements and swings
#: session to session, and the hard >= 5x acceptance bar is asserted
#: inside ``test_shard_scale.py`` itself -- this floor only catches the
#: optimization being lost outright (a drop to ~1x).
CHECKS = (
    ("engine_ping_pong", "events_per_s", "higher"),
    ("full_stack_lu", "mean_s", "lower"),
    ("shard_scale", "events_per_s_x1", "higher"),
    ("shard_scale", "speedup_x4", "higher"),
    ("shard_scale", "speedup_x8", "higher"),
    ("shard_scale_hi", "events_per_s_1024", "higher"),
    ("shard_scale_hi", "events_per_s_4096", "higher"),
    ("shard_fence", "speedup_vs_reference", "higher", 0.5),
    # Socket-backend capacity rides real TCP + subprocess scheduling on
    # a shared runner; guard only against outright collapse.
    ("shard_socket", "events_per_s", "higher", 0.5),
    ("tracing_overhead_lu", "paired_ratio_median", "lower"),
    ("service_load", "submissions_per_s", "higher"),
    ("service_load", "served_hot_ratio", "higher"),
    ("service_load", "warm_hit_p50_ms", "lower"),
)
DEFAULT_TOLERANCE = 0.15


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/check_regression.py",
        description="Fail when benchmark numbers regress past the "
        "committed floor.",
    )
    parser.add_argument("--floor", required=True,
                        help="committed BENCH_simulator.json (the floor)")
    parser.add_argument("--current", required=True,
                        help="freshly measured BENCH_simulator.json")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression "
                        "(default %(default)s)")
    args = parser.parse_args(argv)

    def load(path: str) -> dict:
        # Measured blocks live under the "current" key; accept a bare
        # top-level layout too so the tool works on extracted blocks.
        with open(path) as fh:
            data = json.load(fh)
        return data.get("current", data)

    floor = load(args.floor)
    current = load(args.current)

    failures = []
    for block, key, direction, *extra in CHECKS:
        tolerance = extra[0] if extra else args.tolerance
        ref = floor.get(block, {}).get(key)
        got = current.get(block, {}).get(key)
        name = f"{block}.{key}"
        if ref is None or got is None:
            print(f"SKIP {name}: missing from "
                  f"{'floor' if ref is None else 'current'} file")
            continue
        if direction == "higher":
            limit = ref * (1.0 - tolerance)
            ok = got >= limit
            verdict = f"{got:.6g} >= {limit:.6g}"
        else:
            limit = ref * (1.0 + tolerance)
            ok = got <= limit
            verdict = f"{got:.6g} <= {limit:.6g}"
        status = "OK  " if ok else "FAIL"
        print(f"{status} {name}: {verdict} (floor {ref:.6g}, "
              f"tolerance {tolerance:.0%})")
        if not ok:
            failures.append(name)

    if failures:
        print(f"benchmark regression in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("no benchmark regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
