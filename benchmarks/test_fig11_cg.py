"""Figure 11: NAS CG overlap characterization (Open MPI).

Claims: "CG sends a larger proportion of short messages ...  Consequently
the overlap results are higher for CG than for BT"; overlap drops for
larger problems at small processor counts.
"""

from conftest import run_once

from repro.analysis.tables import render_nas_char
from repro.experiments.nas_char import characterize, characterize_matrix

KLASSES = ["S", "W", "A"]
PROCS = [4, 8, 16]


def test_fig11_cg(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: characterize_matrix("cg", KLASSES, PROCS, niter=2),
    )
    emit("fig11_cg", render_nas_char(points, "Fig 11: NAS CG / Open MPI (process 0)"))
    by_cell = {(p.klass, p.nprocs): p for p in points}
    # Short messages dominate CG's message count.
    bins = by_cell[("A", 4)].report.total.bins.bins
    assert sum(b.count for b in bins[:2]) > sum(b.count for b in bins[2:])
    # CG overlaps better than BT on the same cell (the Sec. 4.1 ranking).
    bt = characterize("bt", "A", 4, niter=2)
    assert by_cell[("A", 4)].max_pct > bt.max_pct
    # Class B at 4 ranks (long transpose messages) overlaps worse than S.
    big = characterize("cg", "B", 4, niter=1)
    assert big.max_pct < by_cell[("S", 4)].max_pct
