"""Host-side cost of the self-observability metrics on the full stack.

The metrics registry is designed to be close to free: everything hot is
a sampled callable read only at collection time, plus a handful of
single-compare high-water updates.  This bench holds it to that design:
an instrumented NAS LU run with a registry attached must cost less than
5% extra wall-clock over the same run without one.  Extends
``BENCH_simulator.json`` (key ``metrics_overhead_lu``)::

    pytest benchmarks/test_metrics_overhead.py --benchmark-only
"""

from __future__ import annotations

import statistics
import time

from repro.metrics import MetricsRegistry, parse_openmetrics, render_openmetrics
from repro.mpisim.config import mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.lu import lu_app
from repro.runtime import run_app

#: Interleaved (plain, metrics) measurement pairs; median of per-pair
#: ratios cancels host drift (see test_telemetry_overhead.py).
PAIRS = 7
#: Absolute slop per pair on top of the 5% budget under test.
NOISE_EPSILON_S = 0.005


def _lu_run(metrics=None):
    return run_app(
        lu_app, 4, config=mvapich2_like(),
        app_args=("A", 2, CpuModel(), None),
        metrics=metrics,
    )


def test_metrics_overhead_under_five_percent(benchmark, bench_record, emit):
    _lu_run()  # warm both paths before timing
    _lu_run(metrics=MetricsRegistry())

    ratios = []
    base_times, with_times = [], []
    plain = result = registry = None
    for _ in range(PAIRS):
        t0 = time.perf_counter()
        plain = _lu_run()
        base = time.perf_counter() - t0
        registry = MetricsRegistry()
        t0 = time.perf_counter()
        result = _lu_run(metrics=registry)
        dur = time.perf_counter() - t0
        base_times.append(base)
        with_times.append(dur)
        ratios.append(dur / (base + NOISE_EPSILON_S))

    benchmark.pedantic(lambda: _lu_run(metrics=MetricsRegistry()),
                       rounds=1, iterations=1)

    # Observability must not change what is observed...
    for rank in range(4):
        assert plain.report(rank).total.transfer_count == (
            result.report(rank).total.transfer_count
        )
    # ...and the registry must actually have watched the run.
    exposition = parse_openmetrics(render_openmetrics(registry))
    pushed = sum(
        exposition["repro_equeue_events_pushed"]["samples"].values()
    )
    assert pushed > 0

    baseline = statistics.median(base_times)
    with_metrics = statistics.median(with_times)
    ratio = statistics.median(ratios)
    overhead_pct = (with_metrics / baseline - 1.0) * 100.0
    bench_record["metrics_overhead_lu"] = {
        "baseline_median_s": round(baseline, 6),
        "metrics_median_s": round(with_metrics, 6),
        "overhead_pct": round(overhead_pct, 2),
        "paired_ratio_median": round(ratio, 4),
        "metric_families": len(exposition),
        "equeue_events_pushed": int(pushed),
    }
    emit(
        "metrics_overhead",
        "metrics overhead (LU class A, 4 ranks, 2 iterations):\n"
        f"  plain instrumented run   {baseline * 1e3:.1f} ms\n"
        f"  with metrics registry    {with_metrics * 1e3:.1f} ms\n"
        f"  overhead (medians)       {overhead_pct:+.1f}%\n"
        f"  paired-ratio median      {ratio:.3f}\n"
        f"  metric families          {len(exposition)}",
    )
    # The registry's contract: <5% on top of the instrumented run.
    assert ratio <= 1.05, (
        f"metrics added {(ratio - 1) * 100:.1f}% (paired-ratio median; "
        f"medians {baseline * 1e3:.1f} ms -> {with_metrics * 1e3:.1f} ms)"
    )
