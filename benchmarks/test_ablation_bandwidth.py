"""Ablation EA10: how much does the Iprobe fix matter across fabrics?

The slower the network, the longer each rendezvous transfer and the more
MPI time the original SP wastes waiting -- so the Iprobe fix's absolute
savings grow as bandwidth shrinks.  On a fast-enough fabric the transfers
vanish under the computation and the fix stops mattering.  This sweep
locates the paper's result on that axis.
"""

import dataclasses

from conftest import run_once

from repro.experiments.sp_tuning import sp_tuning
from repro.netsim.params import NetworkParams

BANDWIDTHS = [100e6, 350e6, 700e6, 1.4e9, 5.6e9]


def test_ablation_bandwidth(benchmark, emit):
    def run():
        out = {}
        for bw in BANDWIDTHS:
            params = dataclasses.replace(NetworkParams(), bandwidth=bw)
            out[bw] = sp_tuning("A", 4, niter=1, params=params)
        return out

    results = run_once(benchmark, run)
    text = ["EA10: SP Iprobe fix vs fabric bandwidth (class A / 4 ranks)",
            f"{'MB/s':>7} {'mpi orig(ms)':>13} {'mpi mod(ms)':>12} "
            f"{'saved(ms)':>10} {'gain %':>7}"]
    for bw, r in results.items():
        saved = r.mpi_time_original - r.mpi_time_modified
        text.append(
            f"{bw / 1e6:>7.0f} {r.mpi_time_original * 1e3:>13.3f} "
            f"{r.mpi_time_modified * 1e3:>12.3f} {saved * 1e3:>10.3f} "
            f"{r.mpi_time_improvement_pct:>7.1f}"
        )
    emit("ablation_ea10_bandwidth", "\n".join(text))

    saved = {
        bw: r.mpi_time_original - r.mpi_time_modified
        for bw, r in results.items()
    }
    # Absolute savings shrink monotonically as the fabric gets faster.
    ordered = [saved[bw] for bw in BANDWIDTHS]
    assert all(a >= b - 1e-6 for a, b in zip(ordered, ordered[1:]))
    # On the slowest fabric the fix saves an order of magnitude more than
    # on the fastest.
    assert saved[BANDWIDTHS[0]] > 5 * saved[BANDWIDTHS[-1]]
    # The fix never hurts.
    for r in results.values():
        assert r.mpi_time_improvement_pct >= 0.0
