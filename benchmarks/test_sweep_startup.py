"""Host-performance benchmark: sweep startup overhead with pool reuse.

A CLI invocation renders several figures back to back, each its own
``run_tasks`` sweep.  Before pool reuse every sweep forked a fresh
``multiprocessing`` pool (process spawn + interpreter + ``import repro``
per worker); with the persistent shared pool that cost is paid once per
invocation.  This benchmark times a short *sequence* of small parallel
sweeps both ways -- the realistic shape of ``repro.tools`` invocations --
and records the ratio in ``BENCH_simulator.json``.

Run with::

    pytest benchmarks/test_sweep_startup.py --benchmark-only -s
"""

from __future__ import annotations

import time

from repro.experiments import runner
from repro.experiments.runner import (
    Task,
    run_tasks,
    shutdown_shared_pool,
)

#: Sweeps per "CLI invocation" and points per sweep: small on purpose --
#: startup overhead only matters when the work itself is short.
SWEEPS = 4
POINTS = 8


def _point(x: int) -> int:  # module-level: picklable
    return x * x


def _sweep_sequence(reuse: bool) -> list[object]:
    out: list[object] = []
    for s in range(SWEEPS):
        tasks = [Task(_point, (s * POINTS + i,)) for i in range(POINTS)]
        out.extend(run_tasks(tasks, jobs=2, reuse_pool=reuse))
    return out


def test_sweep_pool_reuse(benchmark, bench_record, emit):
    """Persistent pool vs fresh-pool-per-sweep on a figure-like workload."""
    # Cold-pool reference: measured directly (benchmark fixtures time one
    # callable; the comparison partner is timed by hand around it).
    shutdown_shared_pool()
    t0 = time.perf_counter()
    cold_results = _sweep_sequence(reuse=False)
    cold_s = time.perf_counter() - t0

    spawns_before = runner.pool_spawns
    shutdown_shared_pool()

    def warm() -> list[object]:
        return _sweep_sequence(reuse=True)

    warm_results = benchmark.pedantic(warm, rounds=3, iterations=1)
    assert warm_results == cold_results  # reuse changes nothing observable
    # The whole benchmark (3 rounds x SWEEPS sweeps) spawned exactly one
    # pool; the cold path spawns one per sweep by construction.
    assert runner.pool_spawns - spawns_before == 1
    shutdown_shared_pool()

    warm_s = benchmark.stats.stats.mean
    bench_record["sweep_pool_reuse"] = {
        "sweeps": SWEEPS,
        "points_per_sweep": POINTS,
        "cold_pool_s": round(cold_s, 6),
        "warm_pool_s": round(warm_s, 6),
        "startup_speedup": round(cold_s / warm_s, 2),
    }
    emit(
        "sweep_startup",
        f"sweep startup overhead ({SWEEPS} sweeps x {POINTS} points, jobs=2):\n"
        f"  fresh pool per sweep  {cold_s * 1e3:.1f} ms\n"
        f"  persistent pool       {warm_s * 1e3:.1f} ms\n"
        f"  speedup               {cold_s / warm_s:.2f}x",
    )
    assert warm_s < cold_s  # reuse must actually reduce startup overhead
