"""Scalability ES1: the instrumentation footprint is rank-count invariant.

Paper Sec. 2.4: monitoring is process-local, so per-rank cost must not
grow with the job.  Weak-scaled ring exchange from 2 to 32 ranks.
"""

from conftest import run_once

from repro.experiments.scaling import render_scaling, scaling_sweep

PROCS = (2, 4, 8, 16, 32)


def test_scaling_instrumentation(benchmark, emit):
    points = run_once(benchmark, lambda: scaling_sweep(proc_counts=PROCS))
    emit(
        "scaling_es1_instrumentation",
        render_scaling(points, "ES1: per-rank instrumentation footprint vs ranks"),
    )
    events = [p.events_per_rank for p in points]
    # Per-rank event count is flat (within a few % -- startup/finalize only).
    assert max(events) / min(events) < 1.1
    # Overhead never exceeds the paper's bound, at any scale.
    for p in points:
        assert p.overhead_pct < 0.9, p
    # The overlap characterization itself is also scale-stable.
    maxes = [p.max_pct for p in points]
    assert max(maxes) - min(maxes) < 10.0
