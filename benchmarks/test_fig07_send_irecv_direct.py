"""Figure 7: Send-Irecv, 1 MB, direct RDMA.

Claim: "there is zero overlap for direct RDMA whereas pipelined RDMA is
able to overlap the first fragment"; wait time high and flat.
"""

from conftest import run_once

from repro.analysis.tables import render_micro_series
from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import openmpi_like

COMPUTES = [0.0, 0.25e-3, 0.5e-3, 0.75e-3, 1.0e-3, 1.25e-3, 1.5e-3, 1.75e-3]
MB = 1024 * 1024


def test_fig07_send_irecv_direct(benchmark, emit):
    direct = run_once(
        benchmark,
        lambda: overlap_sweep(
            "send_irecv", MB, COMPUTES, openmpi_like(leave_pinned=True), iters=40
        ),
    )
    emit(
        "fig07_receiver",
        render_micro_series(
            direct, "receiver", "Fig 7 (receiver, Irecv): 1MB direct RDMA"
        ),
    )
    for p in direct:
        assert p.max_pct("receiver") < 5.0  # zero overlap
        assert p.min_pct("receiver") < 5.0
    waits = [p.wait_time("receiver") for p in direct]
    assert min(waits) > 1e-3
    assert max(waits) / min(waits) < 1.3

    # Cross-figure claim: pipelined overlaps the first fragment, direct none.
    pipelined = overlap_sweep(
        "send_irecv", MB, [1.0e-3], openmpi_like(leave_pinned=False), iters=40
    )
    assert pipelined[0].max_pct("receiver") > direct[4].max_pct("receiver")
