"""Load benchmark: the analysis service under a concurrent burst.

Drives a *real* loopback HTTP server (asyncio front end, thread worker
pool, sharded on-disk cache) the way a saturated multi-user deployment
would see it:

* **burst**: ≥1000 concurrent submissions from parallel keep-alive
  clients, ~98% of them duplicates of 20 distinct analyses -- asserting
  that single-flight dedupe plus the content-hash cache serve ≥90% of
  the burst without executing anything;
* **warm hits**: submit/answer round-trip latency for fully cached
  analyses (the p50 must stay under 10 ms);
* **saturation**: a quota-bounded service refuses over-budget
  submissions with 429 + ``Retry-After`` while within-budget jobs are
  accepted, deterministically.

Numbers land in ``BENCH_service.json`` for
``benchmarks/check_regression.py`` to gate (the ``service_load`` block).

Run with::

    pytest benchmarks/test_service_load.py -q -s
"""

from __future__ import annotations

import json
import pathlib
import statistics
import threading
import time

import pytest

from repro.experiments.runner import Task
from repro.service import (
    OverlapService,
    QuotaConfig,
    ServerThread,
    ServiceClient,
)
from repro.service.jobs import Submission

BENCH_SERVICE_PATH = (
    pathlib.Path(__file__).parent.parent / "BENCH_service.json")

#: Burst shape: THREADS clients x PER_CLIENT submissions over DISTINCT
#: distinct analyses.  1000 total, 98% duplicates.
THREADS = 20
PER_CLIENT = 50
DISTINCT = 20

#: Acceptance floors asserted hard (the regression guard adds trend
#: protection on top).
MIN_HOT_RATIO = 0.90
MAX_WARM_P50_MS = 10.0


def _spec(n: int) -> dict:
    """One of the DISTINCT distinct analyses: a tiny micro cell."""
    return {
        "tenant": f"tenant-{n % 5}",
        "kind": "micro",
        "pattern": "isend_irecv",
        "nbytes": 1024 * (1 + n),
        "computes": [0.0],
        "iters": 3,
        "warmup": 0,
    }


def _sleep_worker(seconds):  # module-level: crosses the process boundary
    import time as _time

    _time.sleep(seconds)
    return "slept"


def _percentile(samples: "list[float]", q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


@pytest.fixture(scope="module")
def service_numbers():
    """Collect the measured numbers; write BENCH_service.json at exit."""
    numbers: dict = {}
    yield numbers
    if not numbers:
        return
    payload = {
        "description": "analysis-service load benchmark "
        "(pytest benchmarks/test_service_load.py -q -s): a 1000-"
        "submission burst over 20 distinct analyses against a real "
        "loopback HTTP server, warm-hit latency, and quota saturation",
        "current": {},
    }
    if BENCH_SERVICE_PATH.exists():
        try:
            previous = json.loads(
                BENCH_SERVICE_PATH.read_text(encoding="utf-8"))
            payload["current"] = dict(previous.get("current", {}))
        except (json.JSONDecodeError, OSError):
            pass
    payload["current"].update(numbers)
    BENCH_SERVICE_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {BENCH_SERVICE_PATH}")


def test_burst_dedupe_and_warm_latency(tmp_path_factory, service_numbers):
    tmp = tmp_path_factory.mktemp("service-load")
    service = OverlapService(cache_root=tmp / "cache", workers=4,
                             quotas=QuotaConfig(max_queued_per_tenant=256,
                                                max_running_per_tenant=4,
                                                max_queued_total=2048))
    with ServerThread(service) as srv:
        url = srv.url
        total = THREADS * PER_CLIENT
        outcomes = {"cache_hit": 0, "deduped": 0, "executed": 0, "other": 0}
        tally_lock = threading.Lock()
        errors: "list[str]" = []
        start_barrier = threading.Barrier(THREADS + 1)

        def client_thread(tid: int) -> None:
            local = {"cache_hit": 0, "deduped": 0, "executed": 0, "other": 0}
            try:
                with ServiceClient(url, timeout=60.0) as client:
                    start_barrier.wait()
                    for j in range(PER_CLIENT):
                        spec = _spec((tid + j) % DISTINCT)
                        resp = client.submit(spec)
                        if resp.status == 200 and resp.body.get("cached"):
                            local["cache_hit"] += 1
                        elif resp.status == 202 and resp.body.get("deduped"):
                            local["deduped"] += 1
                        elif resp.status == 202:
                            local["executed"] += 1
                        else:
                            local["other"] += 1
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(f"client {tid}: {type(exc).__name__}: {exc}")
            with tally_lock:
                for key, count in local.items():
                    outcomes[key] += count

        threads = [threading.Thread(target=client_thread, args=(t,))
                   for t in range(THREADS)]
        for t in threads:
            t.start()
        start_barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join()
        burst_s = time.perf_counter() - t0
        assert not errors, errors

        # Every submission was admitted (the burst is within quota)...
        assert outcomes["other"] == 0, outcomes
        assert sum(outcomes.values()) == total
        # ...and the duplicate mass never reached a worker: at most one
        # execution per distinct analysis, ≥90% served hot.
        assert outcomes["executed"] <= DISTINCT
        hot = outcomes["cache_hit"] + outcomes["deduped"]
        hot_ratio = hot / total
        assert hot_ratio >= MIN_HOT_RATIO, outcomes

        # Drain: every job (waiters included) reaches a terminal state.
        deadline = time.monotonic() + 120.0
        while service.progress.done < total:
            assert time.monotonic() < deadline, service.progress.status()
            time.sleep(0.02)

        # Warm phase: everything is cached now; measure the full HTTP
        # submit->answer round trip on keep-alive connections.
        warm_ms: "list[float]" = []
        warm_lock = threading.Lock()

        def warm_thread(tid: int) -> None:
            local: "list[float]" = []
            with ServiceClient(url, timeout=60.0) as client:
                for j in range(50):
                    spec = _spec((tid + j) % DISTINCT)
                    w0 = time.perf_counter()
                    resp = client.submit(spec)
                    local.append((time.perf_counter() - w0) * 1e3)
                    assert resp.status == 200 and resp.body["cached"]
            with warm_lock:
                warm_ms.extend(local)

        warm_threads = [threading.Thread(target=warm_thread, args=(t,))
                        for t in range(4)]
        for t in warm_threads:
            t.start()
        for t in warm_threads:
            t.join()

        p50 = statistics.median(warm_ms)
        p99 = _percentile(warm_ms, 0.99)
        assert p50 < MAX_WARM_P50_MS, f"warm-hit p50 {p50:.2f} ms"

        metrics = service.metrics_text()
        assert 'repro_service_submissions_total{outcome="deduped"}' in metrics

    service_numbers["service_load"] = {
        "submissions": total,
        "distinct_analyses": DISTINCT,
        "executed": outcomes["executed"],
        "served_hot_ratio": round(hot_ratio, 4),
        "submissions_per_s": round(total / burst_s, 1),
        "burst_s": round(burst_s, 3),
        "warm_hit_p50_ms": round(p50, 3),
        "warm_hit_p99_ms": round(p99, 3),
        "warm_samples": len(warm_ms),
    }
    print(f"\nburst: {total} submissions in {burst_s:.2f}s "
          f"({total / burst_s:.0f}/s), {outcomes['executed']} executed, "
          f"hot ratio {hot_ratio:.1%}")
    print(f"warm hit: p50 {p50:.2f} ms, p99 {p99:.2f} ms "
          f"({len(warm_ms)} samples)")


def test_quota_enforcement_under_saturation(tmp_path_factory,
                                            service_numbers):
    tmp = tmp_path_factory.mktemp("service-sat")
    quotas = QuotaConfig(max_queued_per_tenant=2, max_running_per_tenant=1,
                         max_queued_total=8)
    service = OverlapService(cache_root=tmp / "cache", workers=1,
                             quotas=quotas)
    with ServerThread(service) as srv:
        # Park the only worker so queue state is deterministic.
        blocker = Submission(tenant="blocker", kind="nas", priority=0,
                             label="blocker", spec={})
        service.submit_tasks(blocker, [Task(_sleep_worker, (3.0,))])

        with ServiceClient(srv.url) as client:
            accepted = rejected = 0
            retry_afters: "list[float]" = []
            for n in range(24):
                spec = {**_spec(100 + n), "tenant": "flood"}
                resp = client.submit(spec)
                if resp.status == 202:
                    accepted += 1
                elif resp.status == 429:
                    rejected += 1
                    assert "Retry-After" in resp.headers
                    assert int(resp.headers["Retry-After"]) >= 1
                    retry_afters.append(float(resp.body["retry_after"]))
                else:
                    raise AssertionError(f"unexpected {resp.status}")
            # Exactly the tenant budget was admitted; the flood bounced.
            assert accepted == quotas.max_queued_per_tenant
            assert rejected == 24 - accepted
            health = client.healthz().body
            assert health["queue_depth"] <= quotas.max_queued_total

    service_numbers["service_saturation"] = {
        "flood_submissions": 24,
        "accepted": accepted,
        "rejected_429": rejected,
        "min_retry_after_s": min(retry_afters),
    }
    print(f"\nsaturation: {accepted} accepted (quota "
          f"{quotas.max_queued_per_tenant}), {rejected} rejected with 429")
