"""Crossover EC1: eager vs zero-copy rendezvous across message sizes.

Small messages: the eager copy is cheap and the handshake round trip
dominates -> eager wins on latency.  Large messages: the copy dominates
-> rendezvous wins.  And at every size, eager gives the sender its full
buffered-overlap guarantee while direct rendezvous needs the receiver's
cooperation -- the latency-optimal and overlap-optimal thresholds differ.
"""

from conftest import run_once

from repro.experiments.crossover import (
    crossover_sweep,
    find_crossover,
    render_crossover,
)

SIZES = [1024.0, 8192.0, 65536.0, 262144.0, 1048576.0, 4194304.0]


def test_crossover_eager_rendezvous(benchmark, emit):
    points = run_once(benchmark, lambda: crossover_sweep(SIZES))
    crossover = find_crossover(points)
    text = render_crossover(points, "EC1: eager vs rget across sizes")
    text += f"\n\nlatency crossover at {int(crossover) if crossover else '---'} bytes"
    emit("crossover_ec1", text)

    by = {(p.nbytes, p.protocol): p for p in points}
    # Small messages: eager has lower receiver latency.
    assert by[(1024.0, "eager")].latency < by[(1024.0, "rget")].latency
    # Large messages: zero-copy rendezvous wins.
    assert by[(4194304.0, "rget")].latency < by[(4194304.0, "eager")].latency
    # A crossover exists inside the swept range.
    assert crossover is not None
    assert 1024.0 < crossover <= 4194304.0
    # Overlap story: the eager sender keeps a high guaranteed overlap at
    # every size (buffered semantics).
    for size in SIZES:
        assert by[(size, "eager")].sender_min_pct > 60.0
