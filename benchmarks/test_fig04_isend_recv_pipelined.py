"""Figure 4: Isend-Recv, 1 MB, pipelined RDMA rendezvous.

Claim: "The pipelined RDMA scheme is only able to overlap the initial
fragment.  Therefore, the overlap curves remain flat even with increasing
computation" and the wait time stays high.
"""

from conftest import run_once

from repro.analysis.tables import render_micro_series
from repro.experiments.micro import overlap_sweep
from repro.mpisim.config import openmpi_like

COMPUTES = [0.0, 0.25e-3, 0.5e-3, 0.75e-3, 1.0e-3, 1.25e-3, 1.5e-3, 1.75e-3]
MB = 1024 * 1024


def test_fig04_isend_recv_pipelined(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: overlap_sweep(
            "isend_recv", MB, COMPUTES, openmpi_like(leave_pinned=False), iters=40
        ),
    )
    emit(
        "fig04_sender",
        render_micro_series(
            points, "sender", "Fig 4 (sender, Isend): 1MB pipelined RDMA"
        ),
    )
    maxes = [p.max_pct("sender") for p in points]
    # Only the first fragment (128 KiB of 1 MiB) can overlap: low and flat.
    assert all(m < 30.0 for m in maxes)
    assert abs(maxes[-1] - maxes[1]) < 5.0
    waits = [p.wait_time("sender") for p in points]
    assert min(waits) > 1e-4  # remaining fragments always paid in Wait
