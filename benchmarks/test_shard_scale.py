"""Shard scale curves: engine capacity vs shard count and rank count.

Runs the synthetic halo exchange (``repro.experiments.halo``) through the
sharded parallel-DES engine and records three guarded curves into
``BENCH_simulator.json`` for ``benchmarks/check_regression.py``:

* ``shard_scale`` -- capacity at shards=1,2,4,8 on a 32-rank workload
  (the original strong-scaling curve);
* ``shard_scale_hi`` -- capacity, coordinator-time share, and sync-round
  counts at 256/1024/4096 ranks with shards=8 (the high-rank curve this
  engine is sized for);
* ``shard_fence`` -- the incremental-vs-reference fence-computation
  speedup on a coordinator-stress partition (every halo edge cross-shard).

The guarded number is *capacity*, not wall clock: aggregate events
retired divided by the busiest worker's CPU time
(``max(sync_stats["busy_s"])``).  On a machine with >= shards free cores
capacity equals wall-clock throughput; on a throttled 1-core CI runner
the workers time-slice and wall clock cannot improve, but capacity still
measures what the partition achieved -- how much the critical-path
worker's load shrank.  See docs/performance.md ("Measuring the win on
shared CI runners").

Coordinator time is measured from the tracer's ``coord.*`` channels
(PR 8): ``coord.fence`` + ``coord.dispatch`` is the coordinator's own
bookkeeping, ``coord.wait`` is time blocked on shards; their sum spans
the whole coordination loop, so the share needs no host-clock baseline.

Run with::

    pytest benchmarks/test_shard_scale.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.halo import halo_app
from repro.mpisim.config import mvapich2_like
from repro.runtime import run_app
from repro.tracing.span import Tracer, payload_spans

RANKS = 32
STEPS = 120
NBYTES = 4096.0
COMPUTE_S = 20.0e-6
SHARDS = (1, 2, 4, 8)

#: High-rank curve: (ranks, steps) at a fixed shards=8.  Steps shrink as
#: ranks grow to hold each run to a few seconds on a 1-core runner.
HI_SHARDS = 8
HI_CONFIGS = ((256, 30), (1024, 10), (4096, 4))

#: Socket-backend capacity point: the same halo workload through real
#: ``repro.sim.remote`` worker subprocesses over loopback TCP -- one
#: shard per worker, so every cross-shard message rides the framed
#: socket transport (heartbeats included).
SOCKET_RANKS = 64
SOCKET_STEPS = 40
SOCKET_SHARDS = 2

#: Fence benchmark: a 1024-rank halo with a round-robin ("scattered")
#: partition, which makes *every* halo edge cross-shard.  That floods the
#: coordinator with routed messages and PLACE/ACK obligations -- exactly
#: the O(messages + shards x obligations) rescan term the incremental
#: fence computation removes -- without changing simulated results (the
#: partition affects scheduling only, never outcomes).
FENCE_RANKS = 1024
FENCE_SHARDS = 8
FENCE_STEPS = 10
FENCE_REPS = 3


def _coord_totals(tracer: Tracer) -> dict[str, float]:
    """Per-category wall-time totals of the coordinator's span channels."""
    totals = {"coord.fence": 0.0, "coord.dispatch": 0.0, "coord.wait": 0.0}
    for span in payload_spans(tracer.to_payload()):
        if span.category in totals:
            totals[span.category] += span.end - span.start
    return totals


def _run_curve() -> dict[int, dict]:
    curve: dict[int, dict] = {}
    for n in SHARDS:
        result = run_app(
            halo_app, RANKS, config=mvapich2_like(),
            app_args=(STEPS, NBYTES, COMPUTE_S),
            label=f"halo.{RANKS}.x{n}", shards=n,
        )
        st = result.sync_stats
        busy = max(st["busy_s"])
        curve[n] = {
            "events": st["events"],
            "busy_s": busy,
            "events_per_s": st["events"] / busy,
            "rounds": st["rounds"],
        }
    return curve


def _run_hi_curve() -> dict[int, dict]:
    curve: dict[int, dict] = {}
    for ranks, steps in HI_CONFIGS:
        tracer = Tracer("bench.shard_scale_hi")
        result = run_app(
            halo_app, ranks, config=mvapich2_like(),
            app_args=(steps, NBYTES, COMPUTE_S),
            label=f"halo.{ranks}.x{HI_SHARDS}", shards=HI_SHARDS,
            tracer=tracer,
        )
        st = result.sync_stats
        busy = max(st["busy_s"])
        totals = _coord_totals(tracer)
        active = totals["coord.fence"] + totals["coord.dispatch"]
        loop = active + totals["coord.wait"]
        curve[ranks] = {
            "steps": steps,
            "events": st["events"],
            "busy_s": busy,
            "events_per_s": st["events"] / busy,
            "rounds": st["rounds"],
            "coord_share": active / loop if loop else 0.0,
            "fence_us_per_round":
                totals["coord.fence"] / st["rounds"] * 1e6,
        }
    return curve


def _fence_run(impl: str, partition: list[list[int]]) -> tuple[float, int]:
    """One scattered-partition run; returns (fence seconds, rounds)."""
    tracer = Tracer("bench.shard_fence")
    result = run_app(
        halo_app, FENCE_RANKS, config=mvapich2_like(),
        app_args=(FENCE_STEPS, NBYTES, COMPUTE_S),
        label=f"halo.fence.{impl}", shards=FENCE_SHARDS,
        shard_partition=partition, shard_fence_impl=impl, tracer=tracer,
    )
    return (_coord_totals(tracer)["coord.fence"],
            result.sync_stats["rounds"])


def _run_fence_pairs() -> dict:
    partition = [
        [r for r in range(FENCE_RANKS) if r % FENCE_SHARDS == s]
        for s in range(FENCE_SHARDS)
    ]
    ratios: list[float] = []
    ref_rounds = inc_rounds = 0
    ref_s = inc_s = 0.0
    for _ in range(FENCE_REPS):
        ref_s, ref_rounds = _fence_run("reference", partition)
        inc_s, inc_rounds = _fence_run("incremental", partition)
        ratios.append(ref_s / inc_s)
    assert ref_rounds == inc_rounds, "fence impls must run identical rounds"
    ratios.sort()
    return {
        "rounds": inc_rounds,
        "reference_us_per_round": ref_s / ref_rounds * 1e6,
        "incremental_us_per_round": inc_s / inc_rounds * 1e6,
        "ratios": ratios,
        "speedup": ratios[len(ratios) // 2],
    }


def test_shard_scale_curve(benchmark, bench_record, emit):
    """Capacity at shards=1,2,4,8 on the halo-exchange workload."""
    curve = benchmark.pedantic(_run_curve, rounds=1, iterations=1)
    base = curve[SHARDS[0]]["events_per_s"]
    speedup = {n: curve[n]["events_per_s"] / base for n in SHARDS}
    bench_record["shard_scale"] = {
        "workload": (f"halo {RANKS} ranks x {STEPS} steps, "
                     f"{NBYTES:.0f} B, {COMPUTE_S * 1e6:.0f} us compute"),
        "metric": "aggregate events / max per-worker busy CPU seconds",
        "shards": list(SHARDS),
        "events_per_s": [round(curve[n]["events_per_s"]) for n in SHARDS],
        "events_per_s_x1": round(curve[1]["events_per_s"]),
        "speedup_x2": round(speedup[2], 2),
        "speedup_x4": round(speedup[4], 2),
        "speedup_x8": round(speedup[8], 2),
        "sync_rounds": [curve[n]["rounds"] for n in SHARDS],
    }
    emit(
        "shard_scale",
        f"shard scale curve (halo exchange, {RANKS} ranks):\n"
        + "\n".join(
            f"  shards={n}: {curve[n]['events_per_s'] / 1e3:8.0f}k ev/s "
            f"({speedup[n]:.2f}x, busiest worker {curve[n]['busy_s']:.2f}s "
            f"CPU, {curve[n]['rounds']} sync rounds)"
            for n in SHARDS
        ),
    )
    # The acceptance floors are 2.5x at shards=4 and 5.0x at shards=8
    # (guarded with tolerance by check_regression.py against the
    # committed curve); assert looser in-test bounds so a noisy runner
    # flags real collapse, not jitter.
    assert speedup[4] >= 2.0, (
        f"shard capacity collapsed: {speedup[4]:.2f}x at shards=4"
    )
    assert speedup[8] >= 3.5, (
        f"shard capacity collapsed: {speedup[8]:.2f}x at shards=8"
    )


def test_shard_scale_hi_rank(benchmark, bench_record, emit):
    """Capacity and coordinator share at 256/1024/4096 ranks, shards=8."""
    curve = benchmark.pedantic(_run_hi_curve, rounds=1, iterations=1)
    ranks_list = [ranks for ranks, _steps in HI_CONFIGS]
    bench_record["shard_scale_hi"] = {
        "workload": (f"halo x shards={HI_SHARDS}, {NBYTES:.0f} B, "
                     f"{COMPUTE_S * 1e6:.0f} us compute, steps per ranks: "
                     + ", ".join(f"{r}->{s}" for r, s in HI_CONFIGS)),
        "metric": "aggregate events / max per-worker busy CPU seconds",
        "ranks": ranks_list,
        "events_per_s": [round(curve[r]["events_per_s"]) for r in ranks_list],
        "events_per_s_1024": round(curve[1024]["events_per_s"]),
        "events_per_s_4096": round(curve[4096]["events_per_s"]),
        "coord_share": [round(curve[r]["coord_share"], 4)
                        for r in ranks_list],
        "fence_us_per_round": [round(curve[r]["fence_us_per_round"], 1)
                               for r in ranks_list],
        "sync_rounds": [curve[r]["rounds"] for r in ranks_list],
    }
    emit(
        "shard_scale_hi",
        f"high-rank scale curve (halo exchange, shards={HI_SHARDS}):\n"
        + "\n".join(
            f"  ranks={r}: {curve[r]['events_per_s'] / 1e3:8.0f}k ev/s, "
            f"coordinator share {curve[r]['coord_share'] * 100:.1f}%, "
            f"fence {curve[r]['fence_us_per_round']:.1f} us/round, "
            f"{curve[r]['rounds']} sync rounds"
            for r in ranks_list
        ),
    )
    # Capacity must not collapse with rank count: 4096 ranks must retain
    # at least half the 256-rank per-event throughput, and the
    # coordinator must stay a minority share of the coordination loop.
    assert curve[4096]["events_per_s"] >= 0.5 * curve[256]["events_per_s"], (
        "per-event capacity collapsed at 4096 ranks"
    )
    assert curve[4096]["coord_share"] < 0.5, (
        f"coordinator dominates the loop: "
        f"{curve[4096]['coord_share'] * 100:.0f}% share at 4096 ranks"
    )


def _run_socket_point() -> dict:
    from repro.netsim.transport import TransportOptions
    from repro.sim.remote import LocalWorkerPool

    with LocalWorkerPool(SOCKET_SHARDS) as pool:
        result = run_app(
            halo_app, SOCKET_RANKS, config=mvapich2_like(),
            app_args=(SOCKET_STEPS, NBYTES, COMPUTE_S),
            label=f"halo.{SOCKET_RANKS}.socket", shards=SOCKET_SHARDS,
            shard_backend="socket", shard_hosts=pool.addresses,
            shard_transport=TransportOptions(),
        )
    st = result.sync_stats
    tr = st["transport"]
    busy = max(st["busy_s"])
    wire = tr["bytes_out"] + tr["bytes_in"]
    return {
        "events": st["events"],
        "busy_s": busy,
        "events_per_s": st["events"] / busy,
        "rounds": st["rounds"],
        "heartbeats": tr["heartbeats"],
        "frames": tr["frames_out"] + tr["frames_in"],
        "wire_bytes": wire,
        "payload_bytes": tr["payload_bytes"],
        "overhead_bytes": wire - tr["payload_bytes"],
        "connect_attempts": sum(tr["connect_attempts"]),
    }


def test_socket_backend_point(benchmark, bench_record, emit):
    """Capacity through real TCP workers, plus transport overhead."""
    point = benchmark.pedantic(_run_socket_point, rounds=1, iterations=1)
    overhead = point["overhead_bytes"] / max(1, point["wire_bytes"])
    bench_record["shard_socket"] = {
        "workload": (f"halo {SOCKET_RANKS} ranks x {SOCKET_STEPS} steps, "
                     f"shards={SOCKET_SHARDS}, one repro.sim.remote "
                     "subprocess per shard over loopback TCP"),
        "metric": "aggregate events / max per-worker busy CPU seconds",
        "events_per_s": round(point["events_per_s"]),
        "sync_rounds": point["rounds"],
        "heartbeats": point["heartbeats"],
        "frames": point["frames"],
        "wire_bytes": point["wire_bytes"],
        "transport_overhead_bytes": point["overhead_bytes"],
        "transport_overhead_ratio": round(overhead, 4),
        "connect_attempts": point["connect_attempts"],
    }
    emit(
        "shard_socket",
        f"socket-backend capacity (halo {SOCKET_RANKS} ranks, "
        f"{SOCKET_SHARDS} TCP workers):\n"
        f"  {point['events_per_s'] / 1e3:8.0f}k ev/s "
        f"(busiest worker {point['busy_s']:.2f}s CPU, "
        f"{point['rounds']} sync rounds)\n"
        f"  wire: {point['wire_bytes'] / 1e3:.0f} kB total, "
        f"{point['overhead_bytes'] / 1e3:.0f} kB framing/pickle/heartbeat "
        f"overhead ({overhead * 100:.1f}%), "
        f"{point['heartbeats']} heartbeats, "
        f"{point['connect_attempts']} connect attempts",
    )
    # Loose sanity floors: capacity must be nonzero and the workers must
    # have been dialed exactly once each on a healthy localhost.
    assert point["events"] > 0 and point["busy_s"] > 0
    assert point["connect_attempts"] >= SOCKET_SHARDS


def test_fence_speedup(benchmark, bench_record, emit):
    """Incremental vs reference fence computation, coordinator-stress run."""
    stats = benchmark.pedantic(_run_fence_pairs, rounds=1, iterations=1)
    bench_record["shard_fence"] = {
        "workload": (f"halo {FENCE_RANKS} ranks x {FENCE_STEPS} steps, "
                     f"shards={FENCE_SHARDS}, round-robin partition "
                     "(every edge cross-shard)"),
        "metric": ("median over reps of reference/incremental coord.fence "
                   "span totals"),
        "rounds": stats["rounds"],
        "reference_us_per_round": round(stats["reference_us_per_round"], 1),
        "incremental_us_per_round":
            round(stats["incremental_us_per_round"], 1),
        "speedup_vs_reference": round(stats["speedup"], 2),
    }
    emit(
        "shard_fence",
        f"fence computation ({FENCE_RANKS} ranks, scattered partition, "
        f"{stats['rounds']} rounds):\n"
        f"  reference:   {stats['reference_us_per_round']:8.1f} us/round\n"
        f"  incremental: {stats['incremental_us_per_round']:8.1f} us/round\n"
        f"  speedup:     {stats['speedup']:.2f}x (reps: "
        + ", ".join(f"{r:.2f}x" for r in stats["ratios"]) + ")",
    )
    # The tentpole acceptance criterion: >= 5x reduction in coord.fence
    # span time on the 1024-rank coordinator-stress configuration.
    assert stats["speedup"] >= 5.0, (
        f"incremental fences only {stats['speedup']:.2f}x faster than the "
        "reference recomputation (acceptance floor is 5x)"
    )
