"""Shard scale curve: aggregate engine capacity vs shard count.

Runs the synthetic halo exchange (``repro.experiments.halo``) through the
sharded parallel-DES engine at shards=1,2,4,8 and records the scale curve
into ``BENCH_simulator.json`` for ``benchmarks/check_regression.py`` to
guard.

The guarded number is *capacity*, not wall clock: aggregate events
retired divided by the busiest worker's CPU time
(``max(sync_stats["busy_s"])``).  On a machine with >= shards free cores
capacity equals wall-clock throughput; on a throttled 1-core CI runner
the workers time-slice and wall clock cannot improve, but capacity still
measures what the partition achieved -- how much the critical-path
worker's load shrank.  See docs/performance.md ("Measuring the win on
shared CI runners").

Run with::

    pytest benchmarks/test_shard_scale.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.halo import halo_app
from repro.mpisim.config import mvapich2_like
from repro.runtime import run_app

RANKS = 32
STEPS = 120
NBYTES = 4096.0
COMPUTE_S = 20.0e-6
SHARDS = (1, 2, 4, 8)


def _run_curve() -> dict[int, dict]:
    curve: dict[int, dict] = {}
    for n in SHARDS:
        result = run_app(
            halo_app, RANKS, config=mvapich2_like(),
            app_args=(STEPS, NBYTES, COMPUTE_S),
            label=f"halo.{RANKS}.x{n}", shards=n,
        )
        st = result.sync_stats
        busy = max(st["busy_s"])
        curve[n] = {
            "events": st["events"],
            "busy_s": busy,
            "events_per_s": st["events"] / busy,
            "rounds": st["rounds"],
        }
    return curve


def test_shard_scale_curve(benchmark, bench_record, emit):
    """Capacity at shards=1,2,4,8 on the halo-exchange workload."""
    curve = benchmark.pedantic(_run_curve, rounds=1, iterations=1)
    base = curve[SHARDS[0]]["events_per_s"]
    speedup = {n: curve[n]["events_per_s"] / base for n in SHARDS}
    bench_record["shard_scale"] = {
        "workload": (f"halo {RANKS} ranks x {STEPS} steps, "
                     f"{NBYTES:.0f} B, {COMPUTE_S * 1e6:.0f} us compute"),
        "metric": "aggregate events / max per-worker busy CPU seconds",
        "shards": list(SHARDS),
        "events_per_s": [round(curve[n]["events_per_s"]) for n in SHARDS],
        "events_per_s_x1": round(curve[1]["events_per_s"]),
        "speedup_x2": round(speedup[2], 2),
        "speedup_x4": round(speedup[4], 2),
        "speedup_x8": round(speedup[8], 2),
        "sync_rounds": curve[SHARDS[-1]]["rounds"],
    }
    emit(
        "shard_scale",
        f"shard scale curve (halo exchange, {RANKS} ranks):\n"
        + "\n".join(
            f"  shards={n}: {curve[n]['events_per_s'] / 1e3:8.0f}k ev/s "
            f"({speedup[n]:.2f}x, busiest worker {curve[n]['busy_s']:.2f}s "
            f"CPU, {curve[n]['rounds']} sync rounds)"
            for n in SHARDS
        ),
    )
    # The acceptance floor is 2.5x at shards=4 (guarded with tolerance by
    # check_regression.py against the committed curve); assert a looser
    # in-test bound so a noisy runner flags real collapse, not jitter.
    assert speedup[4] >= 2.0, (
        f"shard capacity collapsed: {speedup[4]:.2f}x at shards=4"
    )
