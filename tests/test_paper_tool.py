"""Tests for the one-command paper reproduction tool."""

from repro.tools import paper as paper_cli


def test_quick_reproduction_writes_all_figures(tmp_path, capsys):
    out = tmp_path / "RESULTS.md"
    rc = paper_cli.main(["--quick", "--out", str(out)])
    assert rc == 0
    text = out.read_text()
    for key in ("fig03", "fig09", "fig12", "fig14_18", "fig19", "fig20"):
        assert f"## {key}" in text
    assert "min ovlp %" in text
    assert "regenerated in" in text


def test_only_filter(tmp_path):
    out = tmp_path / "one.md"
    rc = paper_cli.main(["--quick", "--only", "fig05", "--out", str(out)])
    assert rc == 0
    text = out.read_text()
    assert "## fig05" in text
    assert "## fig04" not in text


def test_unknown_figure_key_rejected(tmp_path, capsys):
    rc = paper_cli.main(["--quick", "--only", "fig99",
                         "--out", str(tmp_path / "x.md")])
    assert rc == 2
    assert "unknown figure keys" in capsys.readouterr().out
