"""Tests for the NIC / fabric substrate: timing model, verbs, CQ semantics."""

import pytest

from repro.netsim import CompletionKind, Fabric, NetworkParams, RegistrationCache
from repro.sim import Engine


@pytest.fixture
def params():
    # Round numbers for hand computation: 10 us latency, 100 MB/s.
    return NetworkParams(
        latency=10e-6,
        bandwidth=100e6,
        rdma_read_request_latency=5e-6,
        per_message_overhead=0.0,  # keep hand-computed times exact
    )


@pytest.fixture
def net(params):
    eng = Engine()
    fab = Fabric(eng, params, num_nodes=4)
    return eng, fab


class TestSendChannel:
    def test_arrival_time_is_latency_plus_serialization(self, net, params):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        a.post_send(b, 1_000_000, payload="hello")
        eng.run()
        # 1 MB at 100 MB/s = 10 ms; + 10 us latency.
        assert eng.now == pytest.approx(0.01 + 10e-6)
        assert len(b.inbound) == 1
        pkt = b.inbound[0]
        assert pkt.src_node == 0
        assert pkt.payload == "hello"
        assert pkt.nbytes == 1_000_000

    def test_local_completion_at_tx_end_before_arrival(self, net, params):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        a.post_send(b, 1_000_000, payload="p", context="ctx")
        # Run just past TX completion but before remote arrival.
        eng.run(until=0.01 + 1e-9)
        assert len(a.cq) == 1
        assert a.cq[0].kind is CompletionKind.SEND_DONE
        assert a.cq[0].context == "ctx"
        assert len(b.inbound) == 0

    def test_tx_port_serializes_back_to_back_sends(self, net, params):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        a.post_send(b, 1_000_000, payload=1)
        a.post_send(b, 1_000_000, payload=2)
        eng.run()
        # Two 10 ms serializations share one port: 20 ms + latency.
        assert eng.now == pytest.approx(0.02 + 10e-6)
        assert [p.payload for p in b.inbound] == [1, 2]

    def test_different_ports_transmit_in_parallel(self, params):
        eng = Engine()
        fab = Fabric(eng, params, num_nodes=2, nics_per_node=2)
        fab.nic(0, 0).post_send(fab.nic(1, 0), 1_000_000, payload=1)
        fab.nic(0, 1).post_send(fab.nic(1, 1), 1_000_000, payload=2)
        eng.run()
        assert eng.now == pytest.approx(0.01 + 10e-6)

    def test_incast_serializes_at_rx_port(self, net, params):
        eng, fab = net
        c = fab.nic(2)
        fab.nic(0).post_send(c, 1_000_000, payload=1)
        fab.nic(1).post_send(c, 1_000_000, payload=2)
        eng.run()
        # Both arrive head at ~10us; RX drains one at a time: ~20 ms total.
        assert eng.now == pytest.approx(0.02 + 10e-6)
        assert len(c.inbound) == 2

    def test_counters(self, net):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        a.post_send(b, 500, payload=None)
        eng.run()
        assert a.bytes_sent == 500
        assert a.messages_sent == 1
        assert b.bytes_received == 500
        assert b.messages_received == 1
        assert fab.total_bytes_on_wire() == 500

    def test_send_to_self_rejected(self, net):
        _, fab = net
        with pytest.raises(ValueError):
            fab.nic(0).post_send(fab.nic(0), 10, payload=None)

    def test_cross_engine_rejected(self, params):
        f1 = Fabric(Engine(), params, 2)
        f2 = Fabric(Engine(), params, 2)
        with pytest.raises(ValueError):
            f1.nic(0).post_send(f2.nic(1), 10, payload=None)


class TestRdmaWrite:
    def test_silent_write_no_inbound_packet(self, net, params):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        a.post_rdma_write(b, 1_000_000, context="w")
        eng.run()
        assert len(b.inbound) == 0
        assert len(a.cq) == 1
        assert a.cq[0].kind is CompletionKind.RDMA_WRITE_DONE
        assert eng.now == pytest.approx(0.01 + 10e-6)

    def test_write_with_notify_delivers_packet(self, net):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        a.post_rdma_write(b, 1000, context="w", notify_payload={"fin": True})
        eng.run()
        assert len(b.inbound) == 1
        assert b.inbound[0].payload == {"fin": True}

    def test_local_completion_waits_for_remote_placement(self, net, params):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        a.post_rdma_write(b, 1_000_000, context="w")
        eng.run(until=0.01)  # TX done, but not yet placed remotely
        assert len(a.cq) == 0


class TestRdmaRead:
    def test_read_timing_includes_request_latency(self, net, params):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        a.post_rdma_read(b, 1_000_000, context="r")
        eng.run()
        # 5 us request + 10 ms stream on target TX + 10 us latency.
        assert eng.now == pytest.approx(5e-6 + 0.01 + 10e-6)
        assert len(a.cq) == 1
        assert a.cq[0].kind is CompletionKind.RDMA_READ_DONE
        assert a.cq[0].context == "r"

    def test_read_does_not_touch_target_cpu_queues(self, net):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        a.post_rdma_read(b, 1000)
        eng.run()
        assert len(b.inbound) == 0
        assert len(b.cq) == 0

    def test_read_contends_with_target_tx(self, net, params):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        # Target is busy sending 1 MB elsewhere when the read request lands.
        b.post_send(fab.nic(2), 1_000_000, payload=None)
        a.post_rdma_read(b, 1_000_000)
        eng.run()
        # Read data streams only after b's TX frees at 10 ms.
        assert eng.now == pytest.approx(0.02 + 10e-6)

    def test_read_accounts_traffic_on_target(self, net):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        a.post_rdma_read(b, 2048)
        eng.run()
        assert b.bytes_sent == 2048
        assert a.bytes_received == 2048


class TestWaitActivity:
    def test_waiter_woken_on_arrival(self, net):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        wake_times = []

        def waiter():
            yield b.wait_activity()
            wake_times.append(eng.now)

        eng.process(waiter())
        a.post_send(b, 1000, payload=None)
        eng.run()
        assert wake_times == [pytest.approx(10e-6 + 1000 / 100e6)]

    def test_wait_fires_immediately_if_pending(self, net):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        a.post_send(b, 100, payload=None)
        eng.run()

        def late_waiter():
            yield b.wait_activity()
            return eng.now

        t_end = eng.now
        assert eng.run(until=eng.process(late_waiter())) == t_end

    def test_waiter_woken_on_local_cq(self, net):
        eng, fab = net
        a, b = fab.nic(0), fab.nic(1)
        woken = []

        def waiter():
            yield a.wait_activity()
            woken.append(eng.now)

        eng.process(waiter())
        a.post_send(b, 1_000_000, payload=None)
        eng.run()
        assert woken and woken[0] == pytest.approx(0.01)


class TestFabric:
    def test_shape_validation(self, params):
        with pytest.raises(ValueError):
            Fabric(Engine(), params, 0)
        with pytest.raises(ValueError):
            Fabric(Engine(), params, 2, nics_per_node=0)

    def test_nics_of_returns_all_rails(self, params):
        fab = Fabric(Engine(), params, 2, nics_per_node=3)
        assert len(fab.nics_of(1)) == 3
        assert fab.nic(1, 2) is fab.nics_of(1)[2]

    def test_repr(self, params, net):
        _, fab = net
        assert "4 nodes" in repr(fab)
        assert "Nic node=0" in repr(fab.nic(0))


class TestNetworkParams:
    def test_transfer_time_composition(self, params):
        assert params.transfer_time(1_000_000) == pytest.approx(10e-6 + 0.01)

    def test_copy_and_pin_times(self):
        p = NetworkParams()
        assert p.copy_time(0) == pytest.approx(p.host_copy_latency)
        assert p.pin_time(0) == pytest.approx(p.pin_base_cost)
        assert p.pin_time(1 << 20) > p.pin_base_cost

    def test_negative_param_rejected(self):
        with pytest.raises(ValueError):
            NetworkParams(latency=-1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetworkParams(bandwidth=0.0)


class TestRegistrationCache:
    def test_miss_pays_pin_cost_hit_is_free(self, params):
        cache = RegistrationCache(params)
        cost1 = cache.register("buf", 1 << 20)
        assert cost1 == pytest.approx(params.pin_time(1 << 20))
        assert cache.register("buf", 1 << 20) == 0.0
        assert cache.hits == 1 and cache.misses == 1

    def test_smaller_rereg_is_hit_larger_is_miss(self, params):
        cache = RegistrationCache(params)
        cache.register("buf", 1000)
        assert cache.register("buf", 500) == 0.0
        assert cache.register("buf", 2000) > 0.0
        assert cache.pinned_bytes == 2000

    def test_lru_eviction_order(self, params):
        cache = RegistrationCache(params, max_entries=2)
        cache.register("a", 10)
        cache.register("b", 10)
        cache.register("a", 10)  # refresh a
        cache.register("c", 10)  # evicts b
        assert cache.register("a", 10) == 0.0
        assert cache.register("b", 10) > 0.0
        assert cache.evictions >= 1

    def test_byte_limit_evicts(self, params):
        cache = RegistrationCache(params, max_entries=100, max_bytes=1500)
        cache.register("a", 1000)
        cache.register("b", 1000)  # over byte budget -> a evicted
        assert cache.pinned_bytes == 1000
        assert cache.register("b", 1000) == 0.0
        assert cache.register("a", 1000) > 0.0

    def test_disabled_cache_always_pays(self, params):
        cache = RegistrationCache(params, max_entries=0)
        assert cache.register("a", 10) > 0.0
        assert cache.register("a", 10) > 0.0
        assert len(cache) == 0

    def test_invalidate_and_clear(self, params):
        cache = RegistrationCache(params)
        cache.register("a", 10)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.register("b", 10)
        cache.clear()
        assert len(cache) == 0
        assert cache.pinned_bytes == 0.0

    def test_negative_size_rejected(self, params):
        with pytest.raises(ValueError):
            RegistrationCache(params).register("a", -1)

    def test_negative_limits_rejected(self, params):
        with pytest.raises(ValueError):
            RegistrationCache(params, max_entries=-1)
