"""Smoke tests: every example script runs cleanly as ``__main__``."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_enough_examples():
    assert len(EXAMPLES) >= 3, EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} printed nothing"


def test_quickstart_reports_full_overlap():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "overlap report: rank 0" in proc.stdout
    assert "hid at least 100%" in proc.stdout


def test_tune_sp_overlap_shows_improvement():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "tune_sp_overlap.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "diagnosis" in proc.stdout
    assert "% better" in proc.stdout
