"""Fault injection + resilience layer: deterministic unit/integration tests.

Covers the :mod:`repro.faults` stack end to end: plan parsing, seeded
injector determinism, the reliable send channel under packet faults, the
engine watchdog (deadlock / stall / sim-time cap), degraded-stream
collection (stamp loss + ring-mode overflow driving Case 3), and the
``faults=None`` bit-identity gate on both network paths.
"""

import dataclasses

import pytest

from repro.core.measures import CASE_ONE_EVENT
from repro.core.monitor import Monitor
from repro.core.xfer_table import XferTable
from repro.faults import (
    FaultInjector,
    FaultPlan,
    ResilienceParams,
    WatchdogConfig,
    check_run_invariants,
    parse_fault_spec,
)
from repro.mpisim.config import MpiConfig, mvapich2_like, openmpi_like
from repro.netsim.differential import compare_runs, run_both
from repro.netsim.params import NetworkParams
from repro.runtime.launcher import run_app
from repro.sim import Engine
from repro.sim.events import Timeout

LOSSY = ResilienceParams()


def _exchange(ctx, nbytes=10_000, iters=12, compute=20e-6):
    comm = ctx.comm
    for it in range(iters):
        if comm.rank == 0:
            req = yield from comm.isend(1, it, nbytes, bufkey="b")
            yield from ctx.compute(compute)
            yield from comm.wait(req)
        else:
            yield from comm.recv(0, it)
    return None


# ---------------------------------------------------------------------------
# Plan + injector
# ---------------------------------------------------------------------------
def test_parse_fault_spec_fields():
    plan = parse_fault_spec(
        "drop=0.1,dup=0.05,reorder=0.02,reorder_delay=1e-4,"
        "events=0.3,ring=256,degrade=1:0.0:0.5:2.0,stall=0:0.1:0.2,"
        "straggler=1:1.5",
        seed=9,
    )
    assert plan.seed == 9
    assert plan.drop_prob == 0.1 and plan.dup_prob == 0.05
    assert plan.reorder_prob == 0.02 and plan.reorder_delay == 1e-4
    assert plan.event_drop_prob == 0.3 and plan.ring_capacity == 256
    assert plan.degradations[0].node == 1
    assert plan.stalls[0].node == 0
    assert plan.stragglers == ((1, 1.5),)
    assert plan.has_packet_faults and plan.has_timing_faults
    assert plan.degrades_instrumentation


def test_parse_fault_spec_rejects_garbage():
    with pytest.raises(ValueError):
        parse_fault_spec("bogus=1", seed=0)
    with pytest.raises(ValueError):
        FaultPlan(drop_prob=1.5)


def test_injector_verdicts_deterministic_per_link():
    a = FaultInjector(FaultPlan(seed=4, drop_prob=0.2, dup_prob=0.1), 3)
    b = FaultInjector(FaultPlan(seed=4, drop_prob=0.2, dup_prob=0.1), 3)
    seq_a = [(a.roll(0, 1).drop, a.roll(0, 1).duplicate) for _ in range(40)]
    seq_b = [(b.roll(0, 1).drop, b.roll(0, 1).duplicate) for _ in range(40)]
    assert seq_a == seq_b  # same seed, same link -> same stream
    c = FaultInjector(FaultPlan(seed=4, drop_prob=0.2, dup_prob=0.1), 3)
    seq_c = [(c.roll(1, 0).drop, c.roll(1, 0).duplicate) for _ in range(40)]
    assert seq_a != seq_c  # directed links draw independent streams


def test_stamp_loss_streams_are_per_rank_and_seeded():
    inj = FaultInjector(FaultPlan(seed=2, event_drop_prob=0.5), 2)
    s0 = inj.stamp_loss(0)
    s0b = FaultInjector(FaultPlan(seed=2, event_drop_prob=0.5), 2).stamp_loss(0)
    seq = [s0.drop_begin() for _ in range(30)]
    assert seq == [s0b.drop_begin() for _ in range(30)]
    assert s0.begin_dropped == sum(seq) and s0.dropped == s0.begin_dropped
    # prob 0 -> no stream at all (nil fast path)
    assert FaultInjector(FaultPlan(seed=2), 2).stamp_loss(0) is None


# ---------------------------------------------------------------------------
# Bit-identity gates
# ---------------------------------------------------------------------------
def _assert_identical(fast, packet, fm, pm):
    deltas = compare_runs(fast, packet, fm, pm)
    bad = [d for d in deltas if not d.equal]
    assert not bad, "diverged on: " + "; ".join(
        f"{d.measure} fast={d.fast!r} packet={d.packet!r}" for d in bad[:5]
    )


def test_faults_none_bit_identical_on_both_network_paths():
    """The acceptance gate: ``faults=None`` must not perturb either path."""
    params = NetworkParams(faults=None)
    fast, packet, fm, pm = run_both(
        _exchange, 2, config=openmpi_like(), params=params, seed=3
    )
    _assert_identical(fast, packet, fm, pm)


def test_all_zero_fault_plan_is_bit_identical_to_no_plan():
    """An armed injector with nothing to inject changes no observable.

    This pins the no-fault expressions in the NIC fault branches to the
    exact float-op order of the fault-free code.
    """
    base = run_app(_exchange, 2, config=openmpi_like(), seed=3)
    nulled = run_app(
        _exchange, 2, config=openmpi_like(), seed=3,
        params=NetworkParams(faults=FaultPlan(seed=0)),
    )
    for rep_a, rep_b in zip(base.reports, nulled.reports):
        assert rep_a.to_dict() == rep_b.to_dict()
    assert base.rank_finish_times == nulled.rank_finish_times


# ---------------------------------------------------------------------------
# Protocol resilience
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", [
    openmpi_like(resilience=LOSSY),
    openmpi_like(leave_pinned=True, resilience=LOSSY),
    mvapich2_like(resilience=LOSSY),
    MpiConfig(name="rput", eager_limit=8192, rndv_mode="rput",
              resilience=LOSSY),
], ids=lambda c: c.name)
@pytest.mark.parametrize("nbytes", [10_000, 512 * 1024])
def test_lossy_fabric_completes_with_resilience(config, nbytes):
    plan = FaultPlan(seed=7, drop_prob=0.15, dup_prob=0.05, reorder_prob=0.05)
    result = run_app(
        _exchange, 2, config=config, params=NetworkParams(faults=plan),
        app_args=(nbytes,),
    )
    assert result.watchdog is None
    assert check_run_invariants(result) == []
    # retransmissions and duplicates are invisible to the application:
    # the receiver observes exactly what a clean fabric would deliver
    clean = run_app(_exchange, 2, config=config, app_args=(nbytes,))
    assert result.reports[1].total.transfer_count == \
        clean.reports[1].total.transfer_count


def test_resilience_counters_via_metrics():
    from repro.metrics import MetricsRegistry

    registry = MetricsRegistry()
    plan = FaultPlan(seed=5, drop_prob=0.3, dup_prob=0.2)
    result = run_app(
        _exchange, 2, config=openmpi_like(resilience=LOSSY),
        params=NetworkParams(faults=plan), metrics=registry,
    )
    assert result.fabric.injector.packets_dropped > 0
    snap = registry.snapshot()["metrics"]

    def total(name):
        return sum(s["value"] for s in snap[name]["samples"])

    assert total("repro_mpi_packets_retransmitted") > 0
    assert total("repro_mpi_acks_sent") > 0
    assert total("repro_faults_packets_dropped") == \
        result.fabric.injector.packets_dropped


def test_duplicate_envelopes_are_suppressed():
    from repro.metrics import MetricsRegistry

    registry = MetricsRegistry()
    plan = FaultPlan(seed=11, dup_prob=0.5)
    result = run_app(
        _exchange, 2, config=openmpi_like(resilience=LOSSY),
        params=NetworkParams(faults=plan), metrics=registry,
    )
    snap = registry.snapshot()["metrics"]
    suppressed = sum(
        s["value"] for s in snap["repro_mpi_duplicates_suppressed"]["samples"]
    )
    assert suppressed > 0
    # duplicates never surface as extra message deliveries
    clean = run_app(_exchange, 2, config=openmpi_like(resilience=LOSSY))
    assert result.reports[1].total.transfer_count == \
        clean.reports[1].total.transfer_count
    assert check_run_invariants(result) == []


# ---------------------------------------------------------------------------
# Engine watchdog
# ---------------------------------------------------------------------------
def test_run_guarded_returns_none_when_drained():
    eng = Engine()
    Timeout(eng, 1e-3)
    assert eng.run_guarded(stall_sim_time=1.0) is None


def test_run_guarded_flags_dead_clock():
    eng = Engine()

    def rearm(_ev):
        t = Timeout(eng, 1e-4)
        t.callbacks.append(rearm)

    rearm(None)
    # processed_count moves, the custom token does not -> stalled
    assert eng.run_guarded(stall_sim_time=5e-3, progress=lambda: 0) == "stalled"


def test_run_guarded_max_sim_time():
    eng = Engine()

    def rearm(_ev):
        t = Timeout(eng, 1e-4)
        t.callbacks.append(rearm)

    rearm(None)
    assert eng.run_guarded(max_sim_time=2e-3) == "max_sim_time"
    assert eng.now >= 2e-3


def test_run_guarded_needs_a_guard():
    with pytest.raises(Exception):
        Engine().run_guarded()


def test_watchdog_reports_deadlock_with_partial_report():
    def wedged(ctx):
        if ctx.comm.rank == 0:
            # the message that never comes
            yield from ctx.comm.recv(1, 0)
        return None

    result = run_app(
        wedged, 2, config=openmpi_like(),
        watchdog=WatchdogConfig(stall_sim_time=0.01),
    )
    assert result.watchdog is not None
    assert result.watchdog.reason == "deadlock"
    snap = {r.rank: r for r in result.watchdog.ranks}
    assert snap[0].alive and not snap[1].alive
    assert "deadlock" in result.watchdog.render_text()
    # partial reports still harvested, algebra intact
    assert result.reports[0] is not None
    assert check_run_invariants(result) == []


def test_watchdog_without_config_still_raises_on_deadlock():
    def wedged(ctx):
        if ctx.comm.rank == 0:
            yield from ctx.comm.recv(1, 0)
        return None

    with pytest.raises(RuntimeError, match="deadlock"):
        run_app(wedged, 2, config=openmpi_like())


def test_watchdog_stops_retransmission_storm():
    plan = FaultPlan(seed=3, drop_prob=1.0)  # nothing ever arrives
    result = run_app(
        _exchange, 2, config=openmpi_like(resilience=LOSSY),
        params=NetworkParams(faults=plan),
        watchdog=WatchdogConfig(stall_sim_time=0.01, max_sim_time=10.0),
    )
    assert result.watchdog is not None
    assert result.watchdog.reason in ("stalled", "max_sim_time")
    assert result.fabric.injector.packets_dropped > 0
    assert check_run_invariants(result) == []


# ---------------------------------------------------------------------------
# Degraded-stream collection (satellite: ring overflow -> Case 3)
# ---------------------------------------------------------------------------
def _table():
    return XferTable.from_model(1e-6, 1e9, [2.0 ** k for k in range(24)])


def test_ring_mode_overflow_reconciles_as_case3():
    clock_now = [0.0]
    full = Monitor(lambda: clock_now[0], _table())
    ring = Monitor(lambda: clock_now[0], _table(), queue_capacity=16,
                   ring_mode=True)

    def stamp(mon):
        clock_now[0] = 0.0
        for i in range(30):
            clock_now[0] += 1e-5
            mon.call_enter("MPI_Isend")
            xid = mon.xfer_begin(4096.0)
            clock_now[0] += 1e-6
            mon.call_exit("MPI_Isend")
            clock_now[0] += 5e-5  # computation between begin and end
            mon.call_enter("MPI_Wait")
            mon.xfer_end(xid, 4096.0)
            clock_now[0] += 1e-6
            mon.call_exit("MPI_Wait")

    stamp(full)
    stamp(ring)
    full_rep = full.finalize(rank=0)
    ring_rep = ring.finalize(rank=0)
    assert full.queue.dropped == 0
    assert ring.queue.dropped > 0  # the ring really overflowed
    # the drained queue saw everything: all split-call (Case 2)
    assert full_rep.total.transfer_count == 30
    assert full_rep.total.case_counts[CASE_ONE_EVENT] == 0
    # ring mode: survivors reconcile; orphaned ENDs resolve under Case 3
    assert ring_rep.total.case_counts[CASE_ONE_EVENT] > 0
    assert ring_rep.total.transfer_count <= 30
    t = ring_rep.total
    assert 0.0 <= t.min_overlap_time <= t.max_overlap_time
    assert t.max_overlap_time <= t.data_transfer_time + 1e-12


def test_ring_suffix_sanitizer_drops_orphan_closers():
    clock_now = [0.0]
    mon = Monitor(lambda: clock_now[0], _table(), queue_capacity=4,
                  ring_mode=True)
    mon.section_begin("solve")
    clock_now[0] = 1e-5
    mon.call_enter("MPI_Send")
    clock_now[0] = 2e-5
    mon.call_exit("MPI_Send")
    clock_now[0] = 3e-5
    mon.xfer_end_only(1024.0)
    clock_now[0] = 4e-5
    mon.section_end("solve")
    # capacity 4, 5 events pushed: SECTION_BEGIN was overwritten, leaving
    # an orphaned SECTION_END in the suffix -- finalize must not raise.
    rep = mon.finalize(rank=0)
    assert mon.queue.dropped == 1
    assert rep.total.transfer_count == 1
    assert rep.total.case_counts[CASE_ONE_EVENT] == 1


def test_stamp_loss_degrades_toward_case3_and_invariants_hold():
    plan = FaultPlan(seed=11, event_drop_prob=0.4)
    degraded = run_app(
        _exchange, 2, config=openmpi_like(),
        params=NetworkParams(faults=plan), app_args=(10_000, 40),
    )
    baseline = run_app(_exchange, 2, config=openmpi_like(),
                       app_args=(10_000, 40))
    assert check_run_invariants(degraded) == []
    b = baseline.reports[0].total
    d = degraded.reports[0].total
    assert d.case_counts[CASE_ONE_EVENT] > b.case_counts[CASE_ONE_EVENT]
    # a transfer that lost both stamps vanishes; one stamp -> still counted
    assert d.transfer_count <= b.transfer_count


def test_degraded_timing_faults_keep_invariants():
    plan = parse_fault_spec(
        "degrade=1:0.0:1.0:3.0,stall=0:0.0005:0.001,straggler=1:2.0", seed=1
    )
    assert not plan.has_packet_faults
    result = run_app(
        _exchange, 2, config=openmpi_like(),
        params=NetworkParams(faults=plan),
    )
    assert result.watchdog is None
    assert check_run_invariants(result) == []
    slowed = result.elapsed
    clean = run_app(_exchange, 2, config=openmpi_like()).elapsed
    assert slowed > clean  # the degradation actually cost time
