"""Tests for the PERUSE subscription hub, trace sink, and report diffing."""

import pytest

from repro.core import (
    EventKind,
    Monitor,
    TraceSink,
    XferTable,
    diff_reports,
    render_diff,
    replay_overlap,
)
from repro.core.peruse import PeruseHub
from repro.mpisim.config import mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.sp import sp_app
from repro.runtime import run_app


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def monitor():
    return Monitor(FakeClock(), XferTable.from_model(1e-6, 1e9))


class TestPeruseHub:
    def test_kind_filtered_subscription(self, monitor):
        begins = []
        monitor.peruse.subscribe(begins.append, kind=EventKind.XFER_BEGIN)
        with monitor.call("c"):
            xid = monitor.xfer_begin(100)
            monitor.xfer_end(xid, 100)
        assert len(begins) == 1
        assert begins[0].kind == EventKind.XFER_BEGIN
        assert begins[0].b == 100

    def test_all_events_subscription(self, monitor):
        seen = []
        monitor.peruse.subscribe(seen.append)
        with monitor.call("c"):
            pass
        assert [e.kind for e in seen] == [EventKind.CALL_ENTER, EventKind.CALL_EXIT]

    def test_cancel_stops_delivery(self, monitor):
        seen = []
        sub = monitor.peruse.subscribe(seen.append)
        monitor.call_enter("a")
        sub.cancel()
        sub.cancel()  # idempotent
        monitor.call_exit("a")
        assert len(seen) == 1

    def test_multiple_subscribers_in_order(self, monitor):
        order = []
        monitor.peruse.subscribe(lambda e: order.append("kind"),
                                 kind=EventKind.CALL_ENTER)
        monitor.peruse.subscribe(lambda e: order.append("all"))
        monitor.call_enter("a")
        assert order == ["kind", "all"]

    def test_dispatch_counter_and_no_subscribers(self):
        hub = PeruseHub()
        assert not hub.has_subscribers
        from repro.core.events import TimedEvent

        hub.dispatch(TimedEvent(EventKind.CALL_ENTER, 0.0, 0, 0))
        assert hub.dispatched == 0  # short-circuit without subscribers
        hub.subscribe(lambda e: None)
        hub.dispatch(TimedEvent(EventKind.CALL_ENTER, 0.0, 0, 0))
        assert hub.dispatched == 1


class TestTraceSink:
    def _record_stream(self, monitor):
        sink = TraceSink()
        monitor.peruse.subscribe(sink)
        clock = monitor._clock
        with monitor.call("MPI_Isend"):
            clock.advance(1e-6)
            xid = monitor.xfer_begin(50_000)
        clock.advance(100e-6)
        with monitor.call("MPI_Wait"):
            clock.advance(1e-6)
            monitor.xfer_end(xid, 50_000)
        return sink

    def test_records_all_events(self, monitor):
        sink = self._record_stream(monitor)
        assert len(sink) == 6
        assert sink.nbytes_estimate == 6 * 32

    def test_roundtrip_through_file(self, monitor, tmp_path):
        sink = self._record_stream(monitor)
        path = tmp_path / "trace.tsv"
        sink.save(path)
        events = TraceSink.load(path)
        assert events == sink.events

    def test_loads_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed"):
            TraceSink.loads("1\t2\n")

    def test_replay_matches_live_pipeline(self, monitor):
        """The paper's no-tracing design loses nothing vs a full trace."""
        sink = self._record_stream(monitor)
        live = monitor.finalize()
        replayed = replay_overlap(
            sink.events, XferTable.from_model(1e-6, 1e9),
            end_time=monitor._clock.now,
        )
        assert replayed.total.min_overlap_time == live.total.min_overlap_time
        assert replayed.total.max_overlap_time == live.total.max_overlap_time
        assert replayed.total.data_transfer_time == live.total.data_transfer_time
        assert replayed.total.computation_time == live.total.computation_time
        assert replayed.total.case_counts == live.total.case_counts


class TestTraceSinkProperty:
    """Round-trip property: dumps -> loads is the identity on event lists."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.core.events import TimedEvent

    timed_events = st.builds(
        TimedEvent,
        kind=st.sampled_from(list(EventKind)),
        time=st.floats(min_value=0.0, max_value=1e6,
                       allow_nan=False, allow_infinity=False),
        a=st.integers(min_value=0, max_value=2**31 - 1),
        b=st.integers(min_value=0, max_value=2**31 - 1),
    )

    @given(events=st.lists(timed_events, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_dumps_loads_roundtrip(self, events):
        sink = TraceSink()
        for ev in events:
            sink(ev)
        assert TraceSink.loads(sink.dumps()) == sink.events
        assert sink.nbytes_estimate == 32 * len(events)

    def test_section_events_roundtrip_explicitly(self, monitor):
        sink = TraceSink()
        monitor.peruse.subscribe(sink)
        with monitor.section("solver"):
            with monitor.call("MPI_Isend"):
                xid = monitor.xfer_begin(4096)
                monitor.xfer_end(xid, 4096)
        kinds = [e.kind for e in sink.events]
        assert EventKind.SECTION_BEGIN in kinds
        assert EventKind.SECTION_END in kinds
        assert TraceSink.loads(sink.dumps()) == sink.events


class TestDiff:
    @pytest.fixture(scope="class")
    def pair(self):
        runs = {}
        for modified in (False, True):
            result = run_app(
                sp_app, 4, config=mvapich2_like(),
                app_args=("S", 1, CpuModel(5e9), modified),
            )
            runs[modified] = result.report(0)
        return runs

    def test_diff_includes_total_and_sections(self, pair):
        deltas = diff_reports(pair[False], pair[True])
        scopes = [d.scope for d in deltas]
        assert scopes[0] == "<total>"
        assert "solve_overlap" in scopes

    def test_improvement_detected(self, pair):
        deltas = {d.scope: d for d in diff_reports(pair[False], pair[True])}
        section = deltas["solve_overlap"]
        assert section.max_pct_delta > 0
        assert section.improved
        assert section.call_time_delta_pct < 0  # less time in the library

    def test_render_diff_text(self, pair):
        text = render_diff(diff_reports(pair[False], pair[True]), title="SP")
        assert "SP" in text
        assert "<total>" in text
        assert "improved" in text

    def test_no_change_is_not_improvement(self, pair):
        deltas = diff_reports(pair[False], pair[False])
        assert all(not d.improved for d in deltas)
        assert all(d.call_time_delta_pct == pytest.approx(0.0) for d in deltas)
