"""End-to-end tests for the ``repro.tools.timeline`` CLI."""

import json

import pytest

from repro.tools.timeline import main, make_parser


def test_run_mode_writes_full_layout(tmp_path, capsys):
    out = tmp_path / "tl"
    rc = main([
        "--benchmark", "sp", "--klass", "S", "--np", "4", "--niter", "1",
        "--out", str(out), "--ground-truth",
    ])
    assert rc == 0
    ranks = sorted(out.glob("telemetry.rank*.json"))
    assert len(ranks) == 4
    trace = json.load(open(out / "trace.json", encoding="utf-8"))
    assert trace["traceEvents"]
    rollup = json.load(open(out / "rollup.json", encoding="utf-8"))
    assert rollup["nranks"] == 4
    text = capsys.readouterr().out
    assert "cluster rollup" in text
    assert "windowed bounds vs ground truth" in text
    assert "VIOLATED" not in text
    assert "wrote 6 files" in text


def test_rollup_mode_reads_back_rank_files(tmp_path, capsys):
    out = tmp_path / "tl"
    main(["--benchmark", "lu", "--klass", "S", "--np", "4", "--niter", "1",
          "--out", str(out), "--no-plot"])
    capsys.readouterr()
    paths = [str(p) for p in sorted(out.glob("telemetry.rank*.json"))]
    rc = main(["--rollup", *paths])
    assert rc == 0
    text = capsys.readouterr().out
    assert "cluster rollup: 4 ranks" in text


def test_width_and_max_windows_flags(tmp_path, capsys):
    out = tmp_path / "tl"
    rc = main([
        "--benchmark", "sp", "--klass", "S", "--np", "4", "--niter", "1",
        "--width", "5e-5", "--max-windows", "32",
        "--out", str(out), "--no-plot",
    ])
    assert rc == 0
    _, series = _load_rank0(out)
    assert len(series["windows"]) <= 32


def _load_rank0(out):
    doc = json.load(open(out / "telemetry.rank0.json", encoding="utf-8"))
    return doc["report"], doc["series"]


def test_metrics_flag_validation():
    parser = make_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--benchmark", "sp", "--metrics", "bogus"])
    args = parser.parse_args(
        ["--benchmark", "sp", "--metrics", "computation_time"]
    )
    assert args.metrics == ["computation_time"]


def test_modes_are_mutually_exclusive():
    with pytest.raises(SystemExit):
        make_parser().parse_args(["--benchmark", "sp", "--rollup", "x.json"])
    with pytest.raises(SystemExit):
        make_parser().parse_args([])
