"""Behavioural validation of the Sec. 3 microbenchmarks.

Each test asserts the *shape* the corresponding paper figure shows:
who overlaps, how the bounds respond to inserted computation, and what
happens to MPI_Wait time.
"""

import pytest

from repro.experiments.micro import build_xfer_table, measure_one_way_time, overlap_sweep
from repro.mpisim.config import MpiConfig, mvapich2_like, openmpi_like
from repro.netsim.params import NetworkParams

# 10 KB eager and 1 MB rendezvous, as in the paper's experiment.
SHORT = 10 * 1024
LONG = 1024 * 1024

SHORT_SWEEP = [0.0, 5e-6, 10e-6, 20e-6, 30e-6, 60e-6]
LONG_SWEEP = [0.0, 0.25e-3, 0.5e-3, 1.0e-3, 1.5e-3, 2.0e-3]

ITERS = 30


def sweep(pattern, nbytes, computes, config):
    return overlap_sweep(pattern, nbytes, computes, config, iters=ITERS)


@pytest.fixture(scope="module")
def pipelined_points():
    return {
        p: sweep(p, LONG, LONG_SWEEP, openmpi_like(leave_pinned=False))
        for p in ("isend_recv", "send_irecv", "isend_irecv")
    }


@pytest.fixture(scope="module")
def direct_points():
    return {
        p: sweep(p, LONG, LONG_SWEEP, openmpi_like(leave_pinned=True))
        for p in ("isend_recv", "send_irecv", "isend_irecv")
    }


class TestFig3Eager:
    """Isend-Irecv with the eager protocol: short messages fully overlap."""

    @pytest.fixture(scope="class")
    def points(self):
        return sweep("isend_irecv", SHORT, SHORT_SWEEP, openmpi_like())

    def test_sender_max_overlap_rises_to_full(self, points):
        maxes = [p.max_pct("sender") for p in points]
        assert maxes[0] < 35.0
        assert maxes[-1] > 95.0
        # Allow small wobble from case-mix changes at the boundary.
        assert all(b >= a - 3.0 for a, b in zip(maxes, maxes[1:]))

    def test_sender_min_overlap_rises(self, points):
        mins = [p.min_pct("sender") for p in points]
        assert mins[-1] > 60.0
        assert mins[-1] >= mins[0]

    def test_receiver_asserts_zero_min_full_max(self, points):
        # "we always assert minimum overlap as zero and maximum overlap as
        # the message transfer time for the receiver"
        for p in points:
            assert p.min_pct("receiver") == 0.0
            assert p.max_pct("receiver") == pytest.approx(100.0)

    def test_receiver_wait_time_drops_with_computation(self, points):
        waits = [p.wait_time("receiver") for p in points]
        assert waits[-1] < waits[0]

    def test_bounds_nest(self, points):
        for p in points:
            for side in ("sender", "receiver"):
                assert 0.0 <= p.min_pct(side) <= p.max_pct(side) + 1e-9 <= 100.0 + 1e-6


class TestFig4IsendRecvPipelined:
    """Only the initial fragment overlaps: flat curves."""

    def test_sender_max_overlap_flat_and_low(self, pipelined_points):
        points = pipelined_points["isend_recv"]
        maxes = [p.max_pct("sender") for p in points]
        # frag0 = 128 KiB of 1 MiB: ~1/8 of the transfer time.
        assert all(m < 30.0 for m in maxes)
        assert abs(maxes[-1] - maxes[1]) < 5.0  # flat once compute > 0

    def test_sender_wait_time_stays_high(self, pipelined_points):
        points = pipelined_points["isend_recv"]
        waits = [p.wait_time("sender") for p in points]
        # The 7 remaining fragments are written inside MPI_Wait regardless
        # of how much computation was inserted.
        assert waits[-1] > 0.5 * waits[0]
        assert waits[-1] > 1e-4


class TestFig5IsendRecvDirect:
    """Direct RDMA: receiver reads as soon as the RTS arrives."""

    def test_sender_overlap_rises_to_full(self, direct_points):
        points = direct_points["isend_recv"]
        maxes = [p.max_pct("sender") for p in points]
        mins = [p.min_pct("sender") for p in points]
        assert maxes[0] < 30.0
        assert maxes[-1] > 90.0
        assert mins[-1] > 80.0

    def test_sender_wait_time_drops_progressively(self, direct_points):
        points = direct_points["isend_recv"]
        waits = [p.wait_time("sender") for p in points]
        assert waits[-1] < 0.2 * waits[0]

    def test_direct_beats_pipelined_for_sender(self, direct_points, pipelined_points):
        d = direct_points["isend_recv"][-1]
        p = pipelined_points["isend_recv"][-1]
        assert d.max_pct("sender") > p.max_pct("sender") + 30.0


class TestFig6SendIrecvPipelined:
    """Polling progress blinds the receiver; only frag0 can overlap."""

    def test_receiver_overlap_minimal(self, pipelined_points):
        points = pipelined_points["send_irecv"]
        for p in points:
            assert p.max_pct("receiver") < 30.0
            assert p.min_pct("receiver") < 20.0

    def test_receiver_wait_high_and_flat(self, pipelined_points):
        points = pipelined_points["send_irecv"]
        waits = [p.wait_time("receiver") for p in points]
        assert min(waits) > 1e-4
        assert max(waits[1:]) / min(waits[1:]) < 1.5


class TestFig7SendIrecvDirect:
    """Zero overlap: the RTS is only detected on entering MPI_Wait."""

    def test_receiver_zero_overlap(self, direct_points):
        points = direct_points["send_irecv"]
        for p in points:
            assert p.max_pct("receiver") < 5.0
            assert p.min_pct("receiver") < 5.0

    def test_receiver_wait_unchanged_by_computation(self, direct_points):
        points = direct_points["send_irecv"]
        waits = [p.wait_time("receiver") for p in points]
        assert min(waits) > 1e-3  # ~full transfer time spent waiting
        assert max(waits) / min(waits) < 1.3

    def test_pipelined_overlaps_first_fragment_direct_does_not(
        self, direct_points, pipelined_points
    ):
        d = direct_points["send_irecv"][-1]
        p = pipelined_points["send_irecv"][-1]
        assert p.max_pct("receiver") > d.max_pct("receiver")


class TestFig8Fig9IsendIrecv:
    """Both sides non-blocking."""

    def test_pipelined_sender_still_limited_to_first_fragment(self, pipelined_points):
        points = pipelined_points["isend_irecv"]
        maxes = [p.max_pct("sender") for p in points]
        assert all(m < 30.0 for m in maxes)

    def test_direct_sender_can_fully_overlap(self, direct_points):
        # "the direct RDMA approach allows the possibility of complete
        # overlap for the sender" -- the MAX bound reaches ~100%.  The MIN
        # stays at zero because the receiver (also computing) only drains
        # the RTS in its Wait, so the sender's FIN arrives while the sender
        # itself sits in Wait.
        points = direct_points["isend_irecv"]
        assert points[-1].max_pct("sender") > 90.0
        assert points[-1].min_pct("sender") < 10.0

    def test_direct_receiver_detects_rts_only_in_wait(self, direct_points):
        # Irecv posted before the RTS arrives; compute blinds the receiver;
        # the read happens inside Wait -> no overlap (same as Fig 7).
        points = direct_points["isend_irecv"]
        for p in points[1:]:
            assert p.max_pct("receiver") < 15.0


class TestMvapich2Config:
    def test_rendezvous_matches_direct_rdma_behaviour(self):
        points = sweep("isend_recv", LONG, [0.0, 2.0e-3], mvapich2_like())
        assert points[-1].max_pct("sender") > 90.0

    def test_eager_threshold_lower_than_openmpi(self):
        # 10 KB is eager for both; 32 KB is eager only for Open MPI.
        om = sweep("isend_irecv", 32 * 1024, [1e-3], openmpi_like())
        mv = sweep("isend_irecv", 32 * 1024, [1e-3], mvapich2_like())
        # Open MPI eager receiver: case-3 only; MVAPICH2 rendezvous: not.
        assert om[0].receiver.total.case_counts[3] > 0
        assert mv[0].receiver.total.case_counts[3] == 0


class TestPerfMain:
    def test_one_way_time_matches_model(self):
        params = NetworkParams(latency=10e-6, bandwidth=100e6,
                               per_message_overhead=0.0)
        t = measure_one_way_time(params, 1_000_000)
        assert t == pytest.approx(10e-6 + 0.01, rel=1e-6)

    def test_one_way_time_includes_per_message_overhead(self):
        base = NetworkParams(latency=10e-6, bandwidth=100e6,
                             per_message_overhead=0.0)
        slow = NetworkParams(latency=10e-6, bandwidth=100e6,
                             per_message_overhead=2e-6)
        dt = measure_one_way_time(slow, 1000) - measure_one_way_time(base, 1000)
        assert dt == pytest.approx(2e-6, rel=1e-6)

    def test_build_table_roundtrip(self, tmp_path):
        params = NetworkParams(per_message_overhead=0.0)
        path = tmp_path / "xfer.tsv"
        table = build_xfer_table(params, sizes=[1024.0, 65536.0], path=str(path))
        from repro.core.xfer_table import XferTable

        loaded = XferTable.load(path)
        assert loaded == table
        assert table.time_for(1024) == pytest.approx(params.transfer_time(1024))

    def test_reps_validation(self):
        with pytest.raises(ValueError):
            measure_one_way_time(NetworkParams(), 100, reps=0)


class TestSweepValidation:
    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            overlap_sweep("recv_recv", 100, [0.0], MpiConfig())

    def test_bad_iters_rejected(self):
        with pytest.raises(ValueError):
            overlap_sweep("isend_irecv", 100, [0.0], MpiConfig(), iters=0)

    def test_point_side_accessor(self):
        points = overlap_sweep("isend_irecv", 100, [0.0], MpiConfig(), iters=2)
        with pytest.raises(ValueError):
            points[0].side("middle")
