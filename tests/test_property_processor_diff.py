"""Differential property test: optimized processor vs reference.

:class:`repro.core.DataProcessor` attributes intervals with O(1)
cumulative clocks (exact Shewchuk partial sums) and recovers each
transfer's interleaved computation / in-call windows by subtraction;
:class:`repro.core.ReferenceDataProcessor` does the straightforward
O(active) walk, accumulating a per-transfer interval list and summing it
with ``math.fsum``.  Both compute the *correctly rounded* value of the
same exact real sum, so their outputs must be **bit-identical** -- not
merely approximately equal.  Hypothesis drives randomly generated valid
event streams (nested calls, all three bounding cases, monitoring
sections, RESET gaps, awkward float durations) through both and compares
every derived number with ``==``.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import DataProcessor, ReferenceDataProcessor, XferTable
from repro.core.events import EventKind, TimedEvent

#: Durations chosen to stress float summation: many are not exactly
#: representable sums of each other, and the magnitudes span 12 orders.
_DT_POOL = (
    0.0,
    1e-18,
    1e-12,
    3.0000000000000004e-07,
    1e-6,
    2.5e-6,
    1.0000000000000002e-6,
    0.1,
    0.30000000000000004,
    7.7e-5,
)

_NBYTES_POOL = (1.0, 7.0, 512.0, 1024.0, 123456.0, 9.0e6)

_TABLE = XferTable(
    [1.0, 1024.0, 65536.0, 1048576.0],
    [2e-6, 1e-5, 1e-4, 1e-3],
)


@st.composite
def event_streams(draw) -> list[TimedEvent]:
    """A structurally valid, time-ordered instrumentation event stream."""
    n_ops = draw(st.integers(min_value=5, max_value=80))
    t = 0.0
    depth = 0
    sections: list[int] = []
    active: list[int] = []
    next_id = 0
    events: list[TimedEvent] = []

    for _ in range(n_ops):
        t += draw(st.sampled_from(_DT_POOL))
        choices = ["call_enter", "xfer_begin", "xfer_end_unmatched", "reset"]
        if depth > 0:
            choices.append("call_exit")
            choices.append("call_exit")  # bias towards balanced calls
        if active:
            choices.append("xfer_end")
            choices.append("xfer_end")
        if len(sections) < 3:
            choices.append("section_begin")
        if sections:
            choices.append("section_end")
        op = draw(st.sampled_from(choices))

        if op == "call_enter":
            name = draw(st.integers(min_value=0, max_value=4))
            events.append(TimedEvent(EventKind.CALL_ENTER, t, name, 0))
            depth += 1
        elif op == "call_exit":
            events.append(TimedEvent(EventKind.CALL_EXIT, t, 0, 0))
            depth -= 1
        elif op == "xfer_begin":
            nbytes = draw(st.sampled_from(_NBYTES_POOL))
            events.append(TimedEvent(EventKind.XFER_BEGIN, t, next_id, nbytes))
            active.append(next_id)
            next_id += 1
        elif op == "xfer_end":
            idx = draw(st.integers(min_value=0, max_value=len(active) - 1))
            ident = active.pop(idx)
            # Zero means "size unknown at end" (allowed by the processor).
            nbytes = draw(st.sampled_from((0.0, None)))
            end_b = events_nbytes(events, ident) if nbytes is None else 0.0
            events.append(TimedEvent(EventKind.XFER_END, t, ident, end_b))
        elif op == "xfer_end_unmatched":
            # Case 3: END without BEGIN (eager receiver).
            nbytes = draw(st.sampled_from(_NBYTES_POOL))
            events.append(TimedEvent(EventKind.XFER_END, t, next_id, nbytes))
            next_id += 1
        elif op == "section_begin":
            sec = draw(st.integers(min_value=0, max_value=2))
            if sec not in sections:
                events.append(TimedEvent(EventKind.SECTION_BEGIN, t, sec, 0))
                sections.append(sec)
        elif op == "section_end":
            events.append(TimedEvent(EventKind.SECTION_END, t, sections.pop(), 0))
        elif op == "reset":
            # Monitoring pause: the gap before the next event is dropped.
            events.append(TimedEvent(EventKind.RESET, t, 0, 0))
    return events


def events_nbytes(events: list[TimedEvent], ident: int) -> float:
    for ev in events:
        if ev.kind == EventKind.XFER_BEGIN and ev.a == ident:
            return ev.b
    raise AssertionError(f"no XFER_BEGIN for {ident}")


def _run(proc, events: list[TimedEvent], batch_len: int, end_time: float):
    for i in range(0, len(events), batch_len):
        proc.process(events[i : i + batch_len])
    proc.finalize(end_time)


def _snapshot(proc) -> dict:
    return {
        "total": proc.total.to_dict(),
        "sections": {k: m.to_dict() for k, m in sorted(proc.sections.items())},
        "calls": {
            k: (s.count, s.total_time) for k, s in sorted(proc.call_stats.items())
        },
    }


@settings(max_examples=60, deadline=None)
@given(
    events=event_streams(),
    batch_len=st.integers(min_value=1, max_value=17),
    tail=st.sampled_from(_DT_POOL),
)
def test_optimized_processor_bit_identical_to_reference(events, batch_len, tail):
    end_time = (events[-1].time if events else 0.0) + tail
    fast = DataProcessor(_TABLE)
    ref = ReferenceDataProcessor(_TABLE)
    _run(fast, events, batch_len, end_time)
    _run(ref, events, len(events) or 1, end_time)  # batching must not matter
    assert _snapshot(fast) == _snapshot(ref)


def test_known_stream_matches_reference_exactly():
    """A hand-built stream covering all three cases, deterministically."""
    E = EventKind
    events = [
        TimedEvent(E.SECTION_BEGIN, 0.0, 7, 0),
        TimedEvent(E.CALL_ENTER, 1e-6, 1, 0),
        TimedEvent(E.XFER_BEGIN, 2e-6, 0, 1024.0),  # split-call (case 2)
        TimedEvent(E.XFER_BEGIN, 2e-6, 1, 512.0),  # same-call (case 1)
        TimedEvent(E.XFER_END, 2.5e-6, 1, 512.0),
        TimedEvent(E.CALL_EXIT, 3e-6, 0, 0),
        TimedEvent(E.RESET, 5e-6, 0, 0),
        TimedEvent(E.CALL_ENTER, 6e-6, 2, 0),
        TimedEvent(E.XFER_END, 7.3e-6, 0, 1024.0),
        TimedEvent(E.XFER_END, 7.4e-6, 99, 9.0e6),  # one-event (case 3)
        TimedEvent(E.CALL_EXIT, 8e-6, 0, 0),
        TimedEvent(E.SECTION_END, 9e-6, 7, 0),
        TimedEvent(E.XFER_BEGIN, 9.5e-6, 5, 7.0),  # still active at finalize
    ]
    fast = DataProcessor(_TABLE)
    ref = ReferenceDataProcessor(_TABLE)
    _run(fast, events, 3, 1e-5)
    _run(ref, events, len(events), 1e-5)
    snap = _snapshot(fast)
    assert snap == _snapshot(ref)
    counts = snap["total"]["case_counts"]
    assert counts == {"1": 1, "2": 1, "3": 2}
