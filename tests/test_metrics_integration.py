"""End-to-end: a monitored simulation populates the metrics registry.

This is the ISSUE's acceptance scenario as a test: run a micro benchmark
with a registry attached and check that the self-observability numbers
are consistent with the overlap reports the run produces -- and that a
run *without* a registry still produces bit-identical reports (nil fast
path changes nothing).
"""

import pytest

from repro.experiments.micro import _micro_app
from repro.metrics import (
    MetricsAggregator,
    MetricsRegistry,
    parse_openmetrics,
    render_openmetrics,
)
from repro.mpisim.config import openmpi_like
from repro.runtime.launcher import run_app


def _run(metrics=None):
    return run_app(
        _micro_app, 2, config=openmpi_like(), label="metrics-it",
        app_args=("isend_irecv", 64 * 1024, 1e-4, 4, 1),
        metrics=metrics,
    )


@pytest.fixture(scope="module")
def monitored():
    reg = MetricsRegistry()
    result = _run(metrics=reg)
    return reg, result


def test_exposition_is_valid_and_nonempty(monitored):
    reg, _ = monitored
    parsed = parse_openmetrics(render_openmetrics(reg))
    assert len(parsed) >= 15  # equeue + monitor + processor + engine families


def _sample(reg, name, rank):
    (family,) = [f for f in reg.collect() if f.name == name]
    for labels, value in family.samples:
        if ("rank", str(rank)) in labels:
            return value
    raise AssertionError(f"no rank={rank} sample in {name}")


def test_equeue_saw_traffic_and_nothing_dropped(monitored):
    reg, _ = monitored
    for rank in (0, 1):
        assert _sample(reg, "repro_equeue_occupancy_hiwater", rank) > 0
        assert _sample(reg, "repro_equeue_events_pushed", rank) > 0
        assert _sample(reg, "repro_equeue_events_dropped", rank) == 0


def test_case_counts_sum_to_report_transfers(monitored):
    reg, result = monitored
    (family,) = [f for f in reg.collect()
                 if f.name == "repro_processor_cases"]
    for rank in (0, 1):
        report = result.reports[rank]
        total_cases = sum(
            value for labels, value in family.samples
            if ("rank", str(rank)) in labels
        )
        assert total_cases == report.total.transfer_count
        assert _sample(reg, "repro_processor_transfers", rank) == (
            report.total.transfer_count
        )


def test_monitor_event_counts_match_queue_pushes(monitored):
    reg, _ = monitored
    for rank in (0, 1):
        (family,) = [f for f in reg.collect()
                     if f.name == "repro_monitor_events"]
        by_kind = sum(
            value for labels, value in family.samples
            if ("rank", str(rank)) in labels
        )
        assert by_kind == _sample(reg, "repro_equeue_events_pushed", rank)


def test_engine_progressed(monitored):
    reg, _ = monitored
    (family,) = [f for f in reg.collect()
                 if f.name == "repro_engine_events_processed"]
    assert family.samples[0].value > 0
    (family,) = [f for f in reg.collect()
                 if f.name == "repro_engine_sim_time_seconds"]
    assert family.samples[0].value > 0


def test_nil_registry_run_is_bit_identical(monitored):
    _, with_metrics = monitored
    bare = _run(metrics=None)
    for a, b in zip(with_metrics.reports, bare.reports):
        assert a.to_dict() == b.to_dict()


def test_per_rank_snapshots_aggregate(monitored):
    reg, result = monitored
    agg = MetricsAggregator()
    agg.add_snapshot(reg.snapshot(), tag=0)
    out = agg.result()
    pushed = [c for c in out["counters"]
              if c["name"] == "repro_equeue_events_pushed"]
    assert len(pushed) == 1  # both ranks merged into one row
    total = (_sample(reg, "repro_equeue_events_pushed", 0)
             + _sample(reg, "repro_equeue_events_pushed", 1))
    assert pushed[0]["value"] == total
