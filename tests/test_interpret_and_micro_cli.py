"""Tests for the interpretation helper and the micro CLI."""

import pytest

from repro.analysis.interpret import interpret, render_interpretation
from repro.experiments.sp_tuning import sp_tuning
from repro.nas.base import CpuModel
from repro.nas.sp import OVERLAP_SECTION
from repro.tools import micro as micro_cli

FAST = CpuModel(flop_rate=5e9)


class TestInterpret:
    @pytest.fixture(scope="class")
    def pair(self):
        result = sp_tuning("A", 4, niter=1, cpu=FAST)
        return result.original, result.modified

    def test_original_flags_case1_signature(self, pair):
        original, _ = pair
        interp = interpret(original, section=OVERLAP_SECTION)
        assert interp.same_call_share >= 0.5
        assert any("case 1" in a for a in interp.advice)
        assert interp.min_nonoverlapped_time > 0

    def test_modified_is_healthier(self, pair):
        original, modified = pair
        before = interpret(modified := modified, section=OVERLAP_SECTION)
        after = interpret(original, section=OVERLAP_SECTION)
        assert before.min_nonoverlapped_time < after.min_nonoverlapped_time
        assert before.guaranteed_savings > after.guaranteed_savings
        assert before.same_call_share < after.same_call_share

    def test_total_scope_and_dominant_range(self, pair):
        original, _ = pair
        interp = interpret(original)
        assert interp.scope == "<total>"
        assert interp.dominant_loss_range is not None
        assert 0.0 <= interp.loss_fraction_of_wall <= 1.0

    def test_unknown_section_rejected(self, pair):
        with pytest.raises(ValueError, match="no section"):
            interpret(pair[0], section="nope")

    def test_render_includes_advice(self, pair):
        text = render_interpretation(interpret(pair[0], section=OVERLAP_SECTION))
        assert "interpretation" in text
        assert "->" in text
        assert "non-hidden" in text


class TestMicroCli:
    def test_default_run_prints_both_sides(self, capsys):
        rc = micro_cli.main([
            "--size", "10240", "--computes", "0,20e-6", "--iters", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(sender)" in out and "(receiver)" in out
        assert "max ovlp %" in out

    def test_single_side_with_plot(self, capsys):
        rc = micro_cli.main([
            "--pattern", "isend_recv", "--size", "1048576",
            "--computes", "0,1e-3,2e-3", "--iters", "5",
            "--library", "openmpi", "--leave-pinned",
            "--side", "sender", "--plot",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(sender)" in out and "(receiver)" not in out
        assert "max overlap (%) vs compute" in out

    def test_rput_library_choice(self, capsys):
        rc = micro_cli.main([
            "--pattern", "isend_recv", "--size", "200000",
            "--computes", "1e-3", "--iters", "5", "--library", "rput",
        ])
        assert rc == 0
        assert "rput" in capsys.readouterr().out

    def test_mvapich2_library_choice(self, capsys):
        rc = micro_cli.main([
            "--size", "10240", "--computes", "0", "--iters", "3",
            "--library", "mvapich2",
        ])
        assert rc == 0
        assert "mvapich2" in capsys.readouterr().out
