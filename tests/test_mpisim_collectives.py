"""Correctness tests for the collective operations (values and semantics)."""

import numpy as np
import pytest

from repro.mpisim import MpiConfig
from repro.runtime import run_app

CFG = MpiConfig(name="t-coll", eager_limit=1 << 16)
SIZES = [1, 2, 3, 4, 5, 8]


@pytest.mark.parametrize("nprocs", SIZES)
def test_barrier_synchronizes(nprocs):
    def app(ctx):
        # Rank r computes r ms, then the barrier; all must leave at >= the
        # slowest rank's arrival time.
        yield from ctx.compute(ctx.rank * 1e-3)
        yield from ctx.comm.barrier()
        assert ctx.now >= (ctx.size - 1) * 1e-3
        return ctx.now

    run_app(app, nprocs, config=CFG)


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_delivers_root_value(nprocs, root):
    root_rank = nprocs - 1 if root == "last" else 0

    def app(ctx):
        value = {"payload": 42} if ctx.rank == root_rank else None
        got = yield from ctx.comm.bcast(root_rank, 4096, value)
        assert got == {"payload": 42}

    run_app(app, nprocs, config=CFG)


@pytest.mark.parametrize("nprocs", SIZES)
def test_reduce_sums_scalars(nprocs):
    def app(ctx):
        got = yield from ctx.comm.reduce(0, ctx.rank + 1, 8)
        if ctx.rank == 0:
            assert got == nprocs * (nprocs + 1) // 2
        else:
            assert got is None

    run_app(app, nprocs, config=CFG)


def test_reduce_nonzero_root():
    def app(ctx):
        got = yield from ctx.comm.reduce(2, ctx.rank, 8)
        if ctx.rank == 2:
            assert got == sum(range(ctx.size))
        else:
            assert got is None

    run_app(app, 5, config=CFG)


def test_reduce_with_numpy_arrays():
    def app(ctx):
        contrib = np.full(16, float(ctx.rank))
        got = yield from ctx.comm.reduce(0, contrib, contrib.nbytes)
        if ctx.rank == 0:
            np.testing.assert_allclose(got, np.full(16, sum(range(ctx.size))))

    run_app(app, 4, config=CFG)


def test_reduce_custom_op_max():
    def app(ctx):
        got = yield from ctx.comm.reduce(0, ctx.rank * 7 % 5, 8, op=max)
        if ctx.rank == 0:
            assert got == max(r * 7 % 5 for r in range(ctx.size))

    run_app(app, 6, config=CFG)


@pytest.mark.parametrize("nprocs", SIZES)
def test_allreduce_everyone_gets_sum(nprocs):
    def app(ctx):
        got = yield from ctx.comm.allreduce(2 ** ctx.rank, 8)
        assert got == 2**nprocs - 1

    run_app(app, nprocs, config=CFG)


@pytest.mark.parametrize("nprocs", SIZES)
def test_alltoall_personalized_blocks(nprocs):
    def app(ctx):
        blocks = [f"{ctx.rank}->{dst}" for dst in range(ctx.size)]
        got = yield from ctx.comm.alltoall(1024, blocks)
        assert got == [f"{src}->{ctx.rank}" for src in range(ctx.size)]

    run_app(app, nprocs, config=CFG)


def test_alltoallv_variable_sizes():
    def app(ctx):
        sizes = [100 * (dst + 1) for dst in range(ctx.size)]
        blocks = [(ctx.rank, dst) for dst in range(ctx.size)]
        got = yield from ctx.comm.alltoallv(sizes, blocks)
        assert got == [(src, ctx.rank) for src in range(ctx.size)]

    run_app(app, 4, config=CFG)


def test_alltoallv_validates_lengths():
    def app(ctx):
        yield from ctx.comm.alltoallv([1], None)

    with pytest.raises(ValueError):
        run_app(app, 3, config=CFG)


@pytest.mark.parametrize("nprocs", SIZES)
def test_allgather_collects_everything_everywhere(nprocs):
    def app(ctx):
        got = yield from ctx.comm.allgather(512, ctx.rank * 11)
        assert got == [r * 11 for r in range(ctx.size)]

    run_app(app, nprocs, config=CFG)


@pytest.mark.parametrize("nprocs", SIZES)
def test_gather_at_root(nprocs):
    def app(ctx):
        got = yield from ctx.comm.gather(0, 256, chr(65 + ctx.rank))
        if ctx.rank == 0:
            assert got == [chr(65 + r) for r in range(ctx.size)]
        else:
            assert got is None

    run_app(app, nprocs, config=CFG)


@pytest.mark.parametrize("nprocs", SIZES)
def test_scatter_from_root(nprocs):
    def app(ctx):
        blocks = [r * r for r in range(ctx.size)] if ctx.rank == 1 % ctx.size else None
        got = yield from ctx.comm.scatter(1 % ctx.size, 256, blocks)
        assert got == ctx.rank * ctx.rank

    run_app(app, nprocs, config=CFG)


def test_scatter_validates_block_count():
    def app(ctx):
        blocks = [1] if ctx.rank == 0 else None
        yield from ctx.comm.scatter(0, 64, blocks)

    with pytest.raises(ValueError):
        run_app(app, 3, config=CFG)


def test_consecutive_collectives_do_not_cross_match():
    # Two bcasts back-to-back with different roots and values.
    def app(ctx):
        a = yield from ctx.comm.bcast(0, 128, "first" if ctx.rank == 0 else None)
        b = yield from ctx.comm.bcast(
            ctx.size - 1, 128, "second" if ctx.rank == ctx.size - 1 else None
        )
        assert (a, b) == ("first", "second")

    run_app(app, 6, config=CFG)


def test_collective_transfers_are_case1_zero_overlap():
    # Long-message alltoall: all data movement inside one call -> the
    # paper's FT behaviour (no overlap possible).
    config = MpiConfig(name="t-a2a", eager_limit=1024, rndv_mode="rget")

    def app(ctx):
        yield from ctx.comm.alltoall(200_000)

    result = run_app(app, 4, config=config)
    rep = result.report(0)
    assert rep.total.max_overlap_time == 0.0
    assert rep.total.case_counts[2] == 0


def test_collectives_mixed_with_p2p():
    def app(ctx):
        total = yield from ctx.comm.allreduce(1, 8)
        assert total == ctx.size
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 77, 2048, data="mix")
        elif ctx.rank == 1:
            _, data = yield from ctx.comm.recv(0, 77)
            assert data == "mix"
        yield from ctx.comm.barrier()

    run_app(app, 4, config=CFG)
