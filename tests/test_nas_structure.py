"""Structural fidelity of the NAS kernels: message counts must match the
hand-derived per-iteration formulas, and scale exactly linearly in the
iteration count.  (A rank's transfer_count includes both its sends and
its receives, as in the paper's per-process accounting.)"""

import pytest

from repro.mpisim.config import mvapich2_like, openmpi_like
from repro.nas.base import CpuModel
from repro.nas.bt import bt_app
from repro.nas.cg import cg_app
from repro.nas.ft import ft_app
from repro.nas.lu import lu_app
from repro.nas.sp import sp_app
from repro.runtime import run_app

FAST = CpuModel(flop_rate=100e9)


def _count(app, nprocs, config, args, rank=0):
    result = run_app(app, nprocs, config=config, app_args=args)
    return result.report(rank).total.transfer_count


class TestCgStructure:
    """CG rank 0 at P=4 (2x2 grid, l2npcols=1):

    per inner iteration: 1 row-sum sendrecv (2 transfers) + transpose
    (rank 0 is its own partner: 0) + 2 scalar-dot sendrecvs (4) = 6;
    per outer iteration: allreduce = binomial reduce (2 recvs at the
    root) + binomial bcast (2 sends) = 4.
    """

    @pytest.mark.parametrize("outer,inner", [(1, 2), (2, 3), (3, 1)])
    def test_rank0_transfer_count_formula(self, outer, inner):
        count = _count(cg_app, 4, openmpi_like(), ("S", outer, FAST, inner))
        assert count == outer * (inner * 6 + 4)

    def test_offdiagonal_rank_has_transpose_traffic(self):
        # Rank 1 (0,1) exchanges with its transpose partner rank 2 (1,0):
        # +2 transfers per inner iteration over rank 0.
        result = run_app(cg_app, 4, config=openmpi_like(),
                         app_args=("S", 1, FAST, 2))
        r0 = result.report(0).total.transfer_count
        r1 = result.report(1).total.transfer_count
        assert r1 - r0 >= 2 * 2 - 2  # transpose adds 2/inner; collective
        # shares differ by at most the tree-shape asymmetry.


class TestLuStructure:
    """LU rank 0 at P=4 (2x2), ``planes`` wavefront planes:

    forward sweep: 2 sends per plane (south + east);
    backward sweep: 2 recvs per plane;
    exchange_3: 2 partners x (send + recv) = 4;
    allreduce at the root: 2 + 2 = 4.
    """

    @pytest.mark.parametrize("planes", [2, 4, 8])
    def test_rank0_transfer_count_formula(self, planes):
        count = _count(lu_app, 4, mvapich2_like(), ("S", 1, FAST, planes))
        assert count == 4 * planes + 4 + 4

    def test_linear_in_iterations(self):
        one = _count(lu_app, 4, mvapich2_like(), ("S", 1, FAST, 4))
        three = _count(lu_app, 4, mvapich2_like(), ("S", 3, FAST, 4))
        assert three == 3 * one


class TestSpStructure:
    """SP rank 0 at P=4 (2x2 multipartition):

    copy_faces: 4 irecv + 4 isend = 8;
    solves: 3 directions x 2 phases x (1 recv + 1 send) = 12;
    allreduce at the root: 4.
    """

    @pytest.mark.parametrize("niter", [1, 2])
    def test_rank0_transfer_count_formula(self, niter):
        count = _count(sp_app, 4, mvapich2_like(), ("S", niter, FAST, False))
        assert count == niter * (8 + 12) + 4

    def test_iprobe_variant_moves_no_extra_data(self):
        # The modification adds progress calls, never messages.
        orig = _count(sp_app, 4, mvapich2_like(), ("S", 2, FAST, False))
        mod = _count(sp_app, 4, mvapich2_like(), ("S", 2, FAST, True))
        assert mod == orig


class TestBtFtStructure:
    def test_bt_linear_in_iterations(self):
        one = _count(bt_app, 4, openmpi_like(), ("S", 1, FAST))
        four = _count(bt_app, 4, openmpi_like(), ("S", 4, FAST))
        # One trailing allreduce regardless of iteration count.
        assert four - one == 3 * (one - _bt_fixed_part())

    def test_ft_alltoall_count(self):
        """FT at P=4: each alltoall contributes (P-1) sends + (P-1) recvs
        = 6 transfers per rank; one initial + one per iteration; plus the
        setup bcast and one allreduce checksum per iteration."""
        two = _count(ft_app, 4, mvapich2_like(), ("S", 2, FAST))
        three = _count(ft_app, 4, mvapich2_like(), ("S", 3, FAST))
        per_iter = three - two
        # Per iteration: alltoall (6) + root's allreduce share (4).
        assert per_iter == 10


def _bt_fixed_part():
    """BT's per-run fixed transfers at rank 0 (the final allreduce)."""
    return 4
