"""Unit tests for tag/source matching queues."""

from repro.mpisim.matching import MatchingEngine, UnexpectedMsg
from repro.mpisim.request import Request
from repro.mpisim.status import ANY_SOURCE, ANY_TAG


def _recv(source, tag):
    return Request("recv", source, 0, tag, 0.0)


def _msg(src, tag, seq=0, kind="eager", nbytes=8.0):
    return UnexpectedMsg(kind, seq, src, tag, nbytes, None, 0.0)


def test_post_recv_with_no_arrivals_queues():
    m = MatchingEngine()
    assert m.post_recv(_recv(1, 5)) is None
    assert m.posted_count == 1


def test_arrival_matches_posted_in_fifo_order():
    m = MatchingEngine()
    r1, r2 = _recv(1, 5), _recv(1, 5)
    m.post_recv(r1)
    m.post_recv(r2)
    assert m.match_arrival(1, 5) is r1
    assert m.match_arrival(1, 5) is r2
    assert m.match_arrival(1, 5) is None


def test_unexpected_consumed_in_fifo_order():
    m = MatchingEngine()
    m.add_unexpected(_msg(1, 5, seq=1))
    m.add_unexpected(_msg(1, 5, seq=2))
    assert m.post_recv(_recv(1, 5)).seq == 1
    assert m.post_recv(_recv(1, 5)).seq == 2
    assert m.unexpected_count == 2
    assert m.unexpected_pending == 0


def test_wildcard_source_matches_any():
    m = MatchingEngine()
    r = _recv(ANY_SOURCE, 5)
    m.post_recv(r)
    assert m.match_arrival(3, 5) is r


def test_wildcard_tag_matches_any():
    m = MatchingEngine()
    r = _recv(2, ANY_TAG)
    m.post_recv(r)
    assert m.match_arrival(2, 99) is r


def test_specific_recv_skips_wrong_source():
    m = MatchingEngine()
    m.post_recv(_recv(1, 5))
    assert m.match_arrival(2, 5) is None
    assert m.posted_count == 1


def test_specific_recv_skips_wrong_tag():
    m = MatchingEngine()
    m.add_unexpected(_msg(1, 7))
    assert m.post_recv(_recv(1, 5)) is None
    assert m.unexpected_pending == 1


def test_posted_scan_respects_order_with_wildcards():
    # Oldest matching posted recv wins, even if a later one is more specific.
    m = MatchingEngine()
    wild = _recv(ANY_SOURCE, ANY_TAG)
    spec = _recv(1, 5)
    m.post_recv(wild)
    m.post_recv(spec)
    assert m.match_arrival(1, 5) is wild


def test_peek_does_not_consume():
    m = MatchingEngine()
    m.add_unexpected(_msg(1, 5))
    assert m.peek(1, 5) is not None
    assert m.peek(ANY_SOURCE, ANY_TAG) is not None
    assert m.peek(2, 5) is None
    assert m.unexpected_pending == 1


def test_cancel_recv():
    m = MatchingEngine()
    r = _recv(1, 5)
    m.post_recv(r)
    assert m.cancel_recv(r) is True
    assert m.cancel_recv(r) is False
    assert m.match_arrival(1, 5) is None


def test_rts_and_eager_share_matching_order():
    m = MatchingEngine()
    m.add_unexpected(_msg(1, 5, seq=1, kind="rts"))
    m.add_unexpected(_msg(1, 5, seq=2, kind="eager"))
    first = m.post_recv(_recv(1, 5))
    assert first.kind == "rts" and first.seq == 1
