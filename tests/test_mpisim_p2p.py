"""End-to-end point-to-point tests through the launcher.

These exercise data integrity, MPI semantics (ordering, wildcards,
blocking behaviour), and protocol selection across eager and all three
rendezvous modes.
"""

import numpy as np
import pytest

from repro.mpisim import MpiConfig
from repro.mpisim.status import ANY_SOURCE, ANY_TAG, MpiError
from repro.runtime import run_app

EAGER = MpiConfig(name="t-eager", eager_limit=1 << 16)
PIPELINED = MpiConfig(name="t-pipe", eager_limit=1024, rndv_mode="pipelined",
                      frag_size=4096)
RGET = MpiConfig(name="t-rget", eager_limit=1024, rndv_mode="rget")
RPUT = MpiConfig(name="t-rput", eager_limit=1024, rndv_mode="rput")
ALL_CONFIGS = [EAGER, PIPELINED, RGET, RPUT]


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
def test_payload_roundtrip(config):
    payload = np.arange(4096, dtype=np.float64)

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 7, payload.nbytes, data=payload)
        else:
            status, data = yield from ctx.comm.recv(0, 7)
            assert status.source == 0
            assert status.tag == 7
            assert status.nbytes == payload.nbytes
            np.testing.assert_array_equal(data, payload)

    run_app(app, 2, config=config)


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
def test_isend_irecv_wait(config):
    def app(ctx):
        if ctx.rank == 0:
            req = yield from ctx.comm.isend(1, 3, 50_000, data=b"x")
            yield from ctx.comm.wait(req)
        else:
            req = yield from ctx.comm.irecv(0, 3)
            status = yield from ctx.comm.wait(req)
            assert status.nbytes == 50_000
            assert req.data == b"x"

    run_app(app, 2, config=config)


def test_send_buffer_snapshot_isolated_from_later_writes():
    # Eager sends buffer the payload: mutating after send must not corrupt.
    def app(ctx):
        if ctx.rank == 0:
            buf = np.zeros(128)
            buf[:] = 1.0
            req = yield from ctx.comm.isend(1, 1, buf.nbytes, data=buf)
            buf[:] = -99.0  # overwrite after isend returns
            yield from ctx.comm.wait(req)
        else:
            _, data = yield from ctx.comm.recv(0, 1)
            assert float(data[0]) == 1.0

    run_app(app, 2, config=EAGER)


def test_message_ordering_same_pair_same_tag():
    def app(ctx):
        n = 20
        if ctx.rank == 0:
            reqs = []
            for i in range(n):
                reqs.append((yield from ctx.comm.isend(1, 4, 256, data=i)))
            yield from ctx.comm.waitall(reqs)
        else:
            for i in range(n):
                _, data = yield from ctx.comm.recv(0, 4)
                assert data == i  # non-overtaking

    run_app(app, 2, config=EAGER)


def test_wildcard_source_and_tag():
    def app(ctx):
        if ctx.rank == 0:
            got = set()
            for _ in range(2):
                status, data = yield from ctx.comm.recv(ANY_SOURCE, ANY_TAG)
                got.add((status.source, status.tag, data))
            assert got == {(1, 11, "a"), (2, 22, "b")}
        elif ctx.rank == 1:
            yield from ctx.comm.send(0, 11, 64, data="a")
        else:
            yield from ctx.comm.send(0, 22, 64, data="b")

    run_app(app, 3, config=EAGER)


@pytest.mark.parametrize("config", [PIPELINED, RGET, RPUT], ids=lambda c: c.name)
def test_unexpected_rendezvous_late_recv(config):
    # Sender starts long before the receiver posts: RTS must queue.
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 9, 100_000, data="bulk")
        else:
            yield from ctx.compute(5e-3)  # receiver arrives late
            status, data = yield from ctx.comm.recv(0, 9)
            assert data == "bulk"
            assert status.nbytes == 100_000

    run_app(app, 2, config=config)


def test_unexpected_eager_late_recv():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 9, 512, data="tiny")
        else:
            yield from ctx.compute(1e-3)
            _, data = yield from ctx.comm.recv(0, 9)
            assert data == "tiny"

    run_app(app, 2, config=EAGER)


def test_self_send_and_recv():
    def app(ctx):
        req = yield from ctx.comm.isend(ctx.rank, 2, 1000, data="self")
        status, data = yield from ctx.comm.recv(ctx.rank, 2)
        assert data == "self"
        yield from ctx.comm.wait(req)

    run_app(app, 1)


def test_exchange_both_directions_simultaneously():
    def app(ctx):
        other = 1 - ctx.rank
        rreq = yield from ctx.comm.irecv(other, 5)
        sreq = yield from ctx.comm.isend(other, 5, 200_000, data=ctx.rank)
        yield from ctx.comm.waitall([sreq, rreq])
        assert rreq.data == other

    for config in ALL_CONFIGS:
        run_app(app, 2, config=config)


def test_sendrecv_ring_rotation():
    def app(ctx):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        status, data = yield from ctx.comm.sendrecv(
            right, 8, 1024, left, 8, data=ctx.rank
        )
        assert data == left
        assert status.source == left

    run_app(app, 5, config=EAGER)


def test_test_polls_to_completion():
    def app(ctx):
        if ctx.rank == 0:
            req = yield from ctx.comm.isend(1, 1, 128, data=None)
            yield from ctx.comm.wait(req)
        else:
            req = yield from ctx.comm.irecv(0, 1)
            spins = 0
            while True:
                done = yield from ctx.comm.test(req)
                if done:
                    break
                spins += 1
                yield from ctx.compute(1e-6)
                assert spins < 10_000
            assert req.done

    run_app(app, 2, config=EAGER)


def test_probe_blocks_until_message_available():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.compute(2e-3)
            yield from ctx.comm.send(1, 6, 4096, data="probed")
        else:
            status = yield from ctx.comm.probe(0, 6)
            assert status.nbytes == 4096
            assert ctx.now >= 2e-3
            _, data = yield from ctx.comm.recv(0, 6)
            assert data == "probed"

    run_app(app, 2, config=EAGER)


def test_iprobe_reports_pending_and_absent():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 6, 100, data=None)
        else:
            found = yield from ctx.comm.iprobe(0, 6)
            assert found is None  # nothing can have arrived yet at t=0
            yield from ctx.compute(1e-3)
            found = yield from ctx.comm.iprobe(0, 6)
            assert found is not None
            assert found.nbytes == 100
            yield from ctx.comm.recv(0, 6)

    run_app(app, 2, config=EAGER)


def test_protocol_selection_by_eager_limit():
    config = MpiConfig(name="sel", eager_limit=1000, rndv_mode="rget")

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 1, 1000, data="eager")  # == limit
            yield from ctx.comm.send(1, 2, 1001, data="rndv")  # over limit
        else:
            _, a = yield from ctx.comm.recv(0, 1)
            _, b = yield from ctx.comm.recv(0, 2)
            assert (a, b) == ("eager", "rndv")

    result = run_app(app, 2, config=config)
    # Receiver: eager is END-only (case 3), rget rendezvous is case 1 or 2.
    recv_cases = result.report(1).total.case_counts
    assert recv_cases[3] == 1
    assert recv_cases[1] + recv_cases[2] == 1


def test_bad_peer_rank_raises():
    def app(ctx):
        yield from ctx.comm.send(5, 1, 10)

    with pytest.raises(MpiError):
        run_app(app, 2)


def test_negative_tag_rejected():
    def app(ctx):
        yield from ctx.comm.send(0 if ctx.rank else 1, -3, 10)

    with pytest.raises(MpiError):
        run_app(app, 2)


def test_deadlock_detected():
    def app(ctx):
        # Everyone receives, nobody sends.
        yield from ctx.comm.recv(ANY_SOURCE, ANY_TAG)

    with pytest.raises(RuntimeError, match="deadlock"):
        run_app(app, 2)


def test_run_result_contents():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 1, 2048, data=None)
        else:
            yield from ctx.comm.recv(0, 1)
        return ctx.rank * 10

    result = run_app(app, 2, config=EAGER, label="smoke")
    assert result.returns == [0, 10]
    assert result.elapsed > 0
    assert result.elapsed == max(result.rank_finish_times)
    assert result.report(0).label == "smoke"
    assert result.report(1).rank == 1
    assert result.fabric.total_bytes_on_wire() > 2048


def test_uninstrumented_run_has_no_reports():
    config = MpiConfig(name="noinst", instrument=False)

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 1, 100, data=None)
        else:
            yield from ctx.comm.recv(0, 1)

    result = run_app(app, 2, config=config)
    assert result.reports == [None, None]
    with pytest.raises(ValueError):
        result.report(0)
