"""Differential gate: macro-event fast path vs per-packet simulation.

The burst-coalescing network fast path is only admissible if it is
*observationally identical* to per-packet simulation -- every overlap
report, telemetry window, and deterministic metric bit-for-bit equal.
These tests are that gate: each one runs a workload under both
``network_path`` settings via :mod:`repro.netsim.differential` and
asserts every compared measure matches exactly, across all messaging
protocols, the NAS kernels, and hypothesis-randomized flow
interleavings designed to force burst yields and reinserts.
"""

import dataclasses

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.mpisim import MpiConfig
from repro.mpisim.status import ANY_SOURCE, ANY_TAG
from repro.netsim.differential import compare_runs, run_both
from repro.netsim.params import NetworkParams

EAGER_SEND = MpiConfig(name="d-eager-send", eager_limit=1 << 16)
EAGER_RDMA = MpiConfig(name="d-eager-rdma", eager_limit=1 << 16,
                       eager_mode="rdma_write")
PIPELINED = MpiConfig(name="d-pipe", eager_limit=1024, rndv_mode="pipelined",
                      frag_size=4096)
RGET = MpiConfig(name="d-rget", eager_limit=1024, rndv_mode="rget")
RPUT = MpiConfig(name="d-rput", eager_limit=1024, rndv_mode="rput")
PROTOCOLS = [EAGER_SEND, EAGER_RDMA, PIPELINED, RGET, RPUT]


def assert_identical(fast, packet, fast_metrics, packet_metrics):
    deltas = compare_runs(fast, packet, fast_metrics, packet_metrics)
    bad = [d for d in deltas if not d.equal]
    assert not bad, "fast path diverged on: " + "; ".join(
        f"{d.measure} fast={d.fast!r} packet={d.packet!r}" for d in bad[:5]
    )


def _traffic_app(ctx):
    """Mixed-protocol traffic: sizes straddling every protocol boundary."""
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    reqs = []
    # Sizes chosen to hit eager, rendezvous, single- and multi-fragment
    # paths under every PROTOCOLS config above.
    for tag, size in enumerate((1, 512, 1024, 1025, 4096, 5000, 70_000)):
        reqs.append((yield from ctx.comm.isend(right, tag, size, data=tag)))
        reqs.append((yield from ctx.comm.irecv(left, tag)))
        if tag % 2:
            yield from ctx.compute(3e-6)  # stagger to interleave flows
    yield from ctx.comm.waitall(reqs)
    status, _ = yield from ctx.comm.sendrecv(
        right, 99, 2048, left, 99, data=ctx.rank
    )
    assert status.source == left


@pytest.mark.parametrize("config", PROTOCOLS, ids=lambda c: c.name)
def test_protocol_differential(config):
    fast, packet, mfast, mpacket = run_both(
        _traffic_app, 4, config=config, label="diff-proto"
    )
    assert_identical(fast, packet, mfast, mpacket)
    # Sanity: the fast run really exercised the macro path.
    assert fast.fabric.engine.bursts_opened > 0
    assert packet.fabric.engine.bursts_opened == 0


def test_nas_lu_differential():
    from repro.nas.lu import lu_app

    fast, packet, mfast, mpacket = run_both(
        lu_app, 4, app_args=("S", 1, None, None), label="diff-lu"
    )
    assert_identical(fast, packet, mfast, mpacket)


def test_nas_cg_differential():
    from repro.nas.cg import cg_app

    fast, packet, mfast, mpacket = run_both(
        cg_app, 4, app_args=("S", 1, None), label="diff-cg"
    )
    assert_identical(fast, packet, mfast, mpacket)


def test_nas_mg_differential():
    # MG runs on the ARMCI runtime, which has its own launcher; compare
    # reports, returns, and elapsed time by hand under both paths.
    from repro.armci.runtime import ArmciConfig, run_armci_app
    from repro.nas.mg import mg_app

    results = []
    for path in ("fast", "packet"):
        results.append(run_armci_app(
            mg_app, 4, config=ArmciConfig(),
            params=NetworkParams(network_path=path),
            app_args=("S", 1, None, True), label="diff-mg",
        ))
    fast, packet = results
    assert fast.elapsed == packet.elapsed
    assert fast.returns == packet.returns
    for rf, rp in zip(fast.reports, packet.reports):
        assert (rf is None) == (rp is None)
        if rf is not None:
            assert rf.to_dict() == rp.to_dict()


# -- randomized flow-interleaving stress --------------------------------------

#: Sizes spanning eager, rendezvous, and fragment-boundary regimes for
#: the PROTOCOLS configs (eager_limit 1024/64Ki, frag_size 4096/128Ki).
STRESS_SIZES = (1, 64, 1023, 1024, 1025, 4095, 4096, 4097, 8192, 70_000)

plan_entries = st.lists(
    st.tuples(
        st.integers(0, 3),            # sending rank
        st.integers(1, 3),            # destination offset (never self)
        st.sampled_from(STRESS_SIZES),
        st.integers(0, 7),            # tag
        st.integers(0, 20),           # pre-send compute, microseconds
    ),
    min_size=1, max_size=24,
)


def _stress_app(ctx, plan):
    sends = [(src, off, size, tag, delay)
             for (src, off, size, tag, delay) in plan if src == ctx.rank]
    n_recv = sum(1 for (src, off, *_rest) in plan
                 if (src + off) % 4 == ctx.rank)
    reqs = []
    for _src, off, size, tag, delay in sends:
        if delay:
            yield from ctx.compute(delay * 1e-6)
        dst = (ctx.rank + off) % ctx.size
        reqs.append((yield from ctx.comm.isend(dst, tag, size, data=size)))
    for _ in range(n_recv):
        reqs.append((yield from ctx.comm.irecv(ANY_SOURCE, ANY_TAG)))
    yield from ctx.comm.waitall(reqs)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=plan_entries, config=st.sampled_from(PROTOCOLS),
       jitter=st.sampled_from([0.0, 0.25]))
def test_flow_interleaving_stress(plan, config, jitter):
    """Randomized schedules, protocols, and latency jitter: still identical.

    Jittered latencies scramble arrival order across flows, which is
    exactly what forces bursts to close early, yield to competing events,
    and reinsert -- the fallback machinery under test.
    """
    params = NetworkParams(latency_jitter_frac=jitter)
    fast, packet, mfast, mpacket = run_both(
        _stress_app, 4, config=config, params=params,
        app_args=(plan,), label="diff-stress",
    )
    assert_identical(fast, packet, mfast, mpacket)


def test_interleaving_forces_burst_reinserts():
    """The yield/reinsert fallback actually fires on interleaved flows."""

    def app(ctx):
        reqs = []
        if ctx.rank == 0:
            for i in range(30):
                reqs.append((yield from ctx.comm.isend(1, i, 5000, data=i)))
                reqs.append((yield from ctx.comm.isend(2, i, 5000, data=i)))
        elif ctx.rank in (1, 2):
            for i in range(30):
                reqs.append((yield from ctx.comm.irecv(0, i)))
                if i % 3 == 0:
                    yield from ctx.compute(2e-6)
        yield from ctx.comm.waitall(reqs)

    fast, packet, mfast, mpacket = run_both(
        app, 3, config=PIPELINED, label="diff-reinsert"
    )
    assert_identical(fast, packet, mfast, mpacket)
    engine = fast.fabric.engine
    assert engine.bursts_opened > 0
    assert engine.burst_reinserts > 0


def test_packet_path_opt_out_flag():
    """network_path='packet' fully disables coalescing (documented opt-out)."""
    _fast, packet, _mf, _mp = run_both(
        _traffic_app, 4, config=EAGER_SEND, label="diff-optout"
    )
    assert packet.fabric.engine.bursts_opened == 0
    assert packet.fabric.engine.burst_reinserts == 0
    assert dataclasses.replace(
        NetworkParams(), network_path="packet"
    ).network_path == "packet"
