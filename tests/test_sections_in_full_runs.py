"""Sections, pause/resume, and per-call stats exercised through full
simulated applications (not just synthetic streams)."""

import pytest

from repro.armci import ArmciConfig, run_armci_app
from repro.mpisim.config import mvapich2_like, openmpi_like
from repro.runtime import run_app


class TestSectionsInApps:
    def test_sections_partition_call_time(self):
        def app(ctx):
            partner = 1 - ctx.rank
            with ctx.section("phase_a"):
                yield from ctx.comm.sendrecv(partner, 1, 8192, partner, 1)
            with ctx.section("phase_b"):
                yield from ctx.comm.sendrecv(partner, 2, 8192, partner, 2)
                yield from ctx.comm.barrier()

        result = run_app(app, 2, config=openmpi_like())
        rep = result.report(0)
        a = rep.sections["phase_a"]
        b = rep.sections["phase_b"]
        # Section call time never exceeds the global total.
        assert a.communication_call_time + b.communication_call_time <= (
            rep.total.communication_call_time + 1e-12
        )
        assert a.transfer_count == 2
        assert b.transfer_count >= 2  # sendrecv + barrier tokens

    def test_repeated_section_accumulates(self):
        def app(ctx):
            partner = 1 - ctx.rank
            for _ in range(5):
                with ctx.section("loop"):
                    yield from ctx.comm.sendrecv(partner, 1, 1024, partner, 1)

        result = run_app(app, 2, config=openmpi_like())
        assert result.report(0).sections["loop"].transfer_count == 10

    def test_pause_excludes_region_from_everything(self):
        def app(ctx):
            partner = 1 - ctx.rank
            yield from ctx.comm.sendrecv(partner, 1, 2048, partner, 1)
            ctx.monitor.pause()
            yield from ctx.compute(1.0)  # huge untimed setup
            yield from ctx.comm.sendrecv(partner, 2, 2048, partner, 2)
            ctx.monitor.resume()
            yield from ctx.comm.sendrecv(partner, 3, 2048, partner, 3)

        result = run_app(app, 2, config=openmpi_like())
        m = result.report(0).total
        assert m.computation_time < 0.5  # the paused second is absent
        # Paused exchange stamped nothing; two monitored exchanges remain
        # (4 transfers: sends + receives), plus any finalize-drained ends.
        assert m.transfer_count == 4

    def test_armci_sections(self):
        def app(ctx):
            ctx.malloc("win", 8)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                with ctx.section("update"):
                    h = yield from ctx.armci.nbput(1, "win", nbytes=100_000)
                    yield from ctx.compute(1e-3)
                    yield from ctx.armci.wait(h)
            yield from ctx.armci.barrier()

        result = run_armci_app(app, 2, config=ArmciConfig())
        sec = result.report(0).sections["update"]
        assert sec.transfer_count == 1
        assert sec.max_overlap_pct > 90.0


class TestCallStatsInApps:
    def test_per_call_name_stats_across_protocols(self):
        def app(ctx):
            partner = 1 - ctx.rank
            for size in (512, 200_000):
                rreq = yield from ctx.comm.irecv(partner, 1)
                sreq = yield from ctx.comm.isend(partner, 1, size)
                yield from ctx.comm.waitall([sreq, rreq])

        result = run_app(app, 2, config=mvapich2_like())
        rep = result.report(0)
        assert rep.call_stats["MPI_Isend"][0] == 2
        assert rep.call_stats["MPI_Irecv"][0] == 2
        assert rep.call_stats["MPI_Waitall"][0] == 2
        assert rep.call_stats["MPI_Init"][0] == 1
        assert rep.call_stats["MPI_Finalize"][0] == 1
        # In-library time decomposes over named calls exactly.
        total_named = sum(t for _n, t in rep.call_stats.values())
        assert total_named == pytest.approx(
            rep.total.communication_call_time, rel=1e-9
        )

    def test_mean_wait_reflects_protocol(self):
        def app(ctx):
            if ctx.rank == 0:
                for _ in range(10):
                    req = yield from ctx.comm.isend(1, 1, 1024 * 1024,
                                                    bufkey="b")
                    yield from ctx.comm.wait(req)
            else:
                for _ in range(10):
                    yield from ctx.comm.recv(0, 1)

        waits = {}
        for leave_pinned in (False, True):
            cfg = openmpi_like(leave_pinned=leave_pinned)
            result = run_app(app, 2, config=cfg)
            waits[leave_pinned] = result.report(0).mean_call_time("MPI_Wait")
        # Without inserted compute both pay the transfer; pipelined also
        # pays per-fragment registration inside Wait.
        assert waits[False] > waits[True]
