"""Tests for the analysis/rendering layer."""

import pytest

from repro.analysis import (
    ascii_plot,
    micro_series_rows,
    render_micro_series,
    render_nas_char,
    render_overhead,
    render_size_breakdown,
    render_sp_tuning,
)
from repro.experiments.micro import overlap_sweep
from repro.experiments.nas_char import characterize
from repro.experiments.overhead import OverheadPoint
from repro.experiments.sp_tuning import sp_tuning
from repro.mpisim.config import MpiConfig
from repro.nas.base import CpuModel

FAST = CpuModel(flop_rate=50e9)


@pytest.fixture(scope="module")
def micro_points():
    return overlap_sweep("isend_irecv", 8192, [0.0, 20e-6], MpiConfig(), iters=5)


def test_micro_series_rows_fields(micro_points):
    rows = micro_series_rows(micro_points, "sender")
    assert len(rows) == 2
    assert rows[0]["compute_us"] == 0.0
    assert rows[1]["compute_us"] == pytest.approx(20.0)
    assert set(rows[0]) == {"compute_us", "min_overlap_pct", "max_overlap_pct", "wait_us"}


def test_render_micro_series_formats(micro_points):
    text = render_micro_series(micro_points, "receiver", title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "compute(us)" in lines[1]
    assert len(lines) == 2 + len(micro_points)


def test_render_nas_char_and_sizes():
    point = characterize("cg", "S", 4, niter=1, cpu=FAST)
    text = render_nas_char([point], title="cg table")
    assert "cg table" in text
    assert " S " in text or "S" in text.split()
    sizes = render_size_breakdown(point.report, title="sizes")
    assert "size range" in sizes
    assert "KiB" in sizes or "B)" in sizes


def test_render_sp_tuning_both_scopes():
    result = sp_tuning("S", 4, niter=1, cpu=FAST)
    for scope in ("section", "full"):
        text = render_sp_tuning([result], scope=scope, title=scope)
        assert scope in text
        assert "gain %" in text


def test_render_overhead():
    p = OverheadPoint("cg", "A", 4, 1.01, 1.00, 1234)
    text = render_overhead([p], title="ov")
    assert "1.000" in text and "1234" in text
    assert f"{p.overhead_pct:.3f}" in text


def test_overhead_pct_zero_division_guard():
    p = OverheadPoint("cg", "A", 4, 1.0, 0.0, 1)
    assert p.overhead_pct == 0.0


class TestAsciiPlot:
    def test_basic_shape(self):
        text = ascii_plot(
            {"a": [0, 5, 10], "b": [10, 5, 0]},
            x=[0, 1, 2],
            width=20,
            height=5,
            title="demo",
            y_label="y",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "* a" in lines[1] and "+ b" in lines[1]
        assert any("*" in line for line in lines)
        assert any("+" in line for line in lines)
        assert text.count("|") == 5

    def test_flat_series_does_not_crash(self):
        text = ascii_plot({"flat": [3.0, 3.0]}, x=[0, 1])
        assert "flat" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot({}, x=[0, 1])
        with pytest.raises(ValueError):
            ascii_plot({"a": [1]}, x=[0, 1])
        with pytest.raises(ValueError):
            ascii_plot({"a": [1]}, x=[0])
        with pytest.raises(ValueError):
            ascii_plot({"a": [1, 2]}, x=[5, 5])
