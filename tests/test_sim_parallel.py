"""Sharded parallel-DES engine: partitioning, edge cases, bit-parity.

The sharded engine (:mod:`repro.sim.parallel`) is only admissible under
the same rule as the network fast path: a sharded run must be
*bit-identical* to a single-process channel-delivery run of the same
seed -- every overlap report, finish time, and compute log equal.  These
tests cover the partitioner's edge cases (one rank per shard, rank
counts not divisible by the shard count, zero cross-shard traffic), the
option surface, and a hypothesis differential across random small
configs and seeds.
"""

from __future__ import annotations

import dataclasses

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.experiments.halo import halo_app, halo_edges
from repro.mpisim.config import MpiConfig
from repro.netsim.differential import assert_sharded_identical
from repro.netsim.params import NetworkParams
from repro.runtime import run_app
from repro.sim.parallel import partition_ranks, run_app_sharded

_TAG = 61


def _pair_app(ctx, nbytes=2048.0, rounds=3):
    """Ranks talk only inside disjoint pairs (0,1), (2,3), ..."""
    if ctx.size % 2:
        raise AssertionError("pair app needs an even rank count")
    peer = ctx.rank ^ 1
    for _ in range(rounds):
        r = yield from ctx.comm.irecv(peer, _TAG)
        s = yield from ctx.comm.isend(peer, _TAG, nbytes)
        yield from ctx.compute(10.0e-6)
        yield from ctx.comm.waitall([r, s])
    return ctx.rank


# ---------------------------------------------------------------- partitioner

def test_partition_contiguous_divisible():
    assert partition_ranks(8, 4) == [[0, 1], [2, 3], [4, 5], [6, 7]]


def test_partition_non_divisible_sizes_differ_by_at_most_one():
    parts = partition_ranks(10, 4)
    assert [len(p) for p in parts] == [3, 3, 2, 2]
    assert sorted(r for p in parts for r in p) == list(range(10))


def test_partition_one_rank_per_shard():
    assert partition_ranks(3, 3) == [[0], [1], [2]]
    # More shards than ranks collapses to one rank per shard.
    assert partition_ranks(3, 7) == [[0], [1], [2]]


def test_partition_topology_ring_stays_contiguous():
    # On a ring the heaviest-neighbor traversal is rank order, so the
    # topology strategy reproduces the contiguous cut.
    parts = partition_ranks(8, 2, strategy="topology", edges=halo_edges(8))
    assert parts == [[0, 1, 2, 3], [4, 5, 6, 7]]


def test_partition_topology_groups_heavy_pairs():
    # Pairs (0,3) and (1,2) talk heavily; a contiguous cut of 4 ranks
    # into 2 shards would split both pairs, the topology cut splits none.
    edges = [(0, 3, 100.0), (1, 2, 100.0), (3, 1, 1.0)]
    parts = partition_ranks(4, 2, strategy="topology", edges=edges)
    for a, b, _w in edges[:2]:
        shard_of = {r: i for i, p in enumerate(parts) for r in p}
        assert shard_of[a] == shard_of[b], parts


def test_partition_validation():
    with pytest.raises(ValueError):
        partition_ranks(0, 1)
    with pytest.raises(ValueError):
        partition_ranks(4, 0)
    with pytest.raises(ValueError):
        partition_ranks(4, 2, strategy="hilbert")
    with pytest.raises(ValueError, match="bad edge"):
        partition_ranks(4, 2, strategy="topology", edges=[(0,)])


def test_explicit_partition_must_cover_every_rank():
    with pytest.raises(ValueError):
        run_app_sharded(_pair_app, 4, 2, backend="inline",
                        partition=[[0, 1], [2]])
    with pytest.raises(ValueError):
        run_app_sharded(_pair_app, 4, 2, backend="inline",
                        partition=[[0, 1], [1, 2, 3]])
    with pytest.raises(ValueError, match="empty shard"):
        run_app_sharded(_pair_app, 4, 2, backend="inline",
                        partition=[[0, 1, 2, 3], []])


# ------------------------------------------------------------- option surface

def test_unsupported_observers_raise():
    from repro.metrics import MetricsRegistry

    with pytest.raises(ValueError, match="metrics"):
        run_app(_pair_app, 4, shards=2, metrics=MetricsRegistry())
    with pytest.raises(ValueError, match="sync"):
        run_app_sharded(_pair_app, 4, 2, sync="optimistic")
    with pytest.raises(ValueError, match="backend"):
        run_app_sharded(_pair_app, 4, 2, backend="thread")


def test_zero_lookahead_rejected():
    params = NetworkParams(latency=0.0, per_message_overhead=0.0)
    with pytest.raises(ValueError, match="lookahead"):
        run_app_sharded(_pair_app, 4, 2, params=params, backend="inline")


# ----------------------------------------------------------------- edge cases

def test_one_rank_per_shard_matches_single():
    assert_sharded_identical(_pair_app, 4, 4, backend="inline")


def test_non_divisible_ranks_match_single():
    assert_sharded_identical(halo_app, 5, 2, backend="inline",
                             app_args=(4, 1024.0, 15.0e-6))


def test_zero_cross_shard_traffic():
    # The pair app's communicating pairs never straddle the contiguous
    # 2-shard cut of 4 ranks, so the coordinator must carry zero payload
    # messages -- and the run must still terminate and match exactly.
    deltas = assert_sharded_identical(_pair_app, 4, 2, backend="inline")
    assert deltas
    result = run_app_sharded(_pair_app, 4, 2, backend="inline")
    assert result.sync_stats["messages"] == 0
    assert all(s["msgs_across"] == 0 for s in result.shard_stats)


def test_cross_shard_traffic_counted():
    result = run_app_sharded(halo_app, 6, 2, backend="inline",
                             app_args=(3, 1024.0, 15.0e-6))
    assert result.sync_stats["messages"] > 0


def test_null_sync_matches_single():
    assert_sharded_identical(halo_app, 6, 3, backend="inline", sync="null",
                             app_args=(3, 2048.0, 15.0e-6))


def test_process_backend_matches_single():
    assert_sharded_identical(halo_app, 4, 2, backend="process",
                             app_args=(3, 1024.0, 15.0e-6))


def test_shards_one_matches_single():
    assert_sharded_identical(halo_app, 4, 1, backend="inline",
                             app_args=(3, 1024.0, 15.0e-6))


# ------------------------------------------------- hypothesis differential

_CONFIGS = (
    MpiConfig(name="s-eager", eager_limit=1 << 16),
    MpiConfig(name="s-rndv", eager_limit=512, rndv_mode="rget"),
    MpiConfig(name="s-pipe", eager_limit=512, rndv_mode="pipelined",
              frag_size=2048),
)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    nprocs=st.integers(min_value=2, max_value=6),
    shards=st.integers(min_value=2, max_value=3),
    config=st.sampled_from(_CONFIGS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    jitter=st.sampled_from((0.0, 0.25)),
    nbytes=st.sampled_from((64.0, 1024.0, 8192.0)),
    sync=st.sampled_from(("window", "null")),
)
def test_hypothesis_sharded_bit_identical(nprocs, shards, config, seed,
                                          jitter, nbytes, sync):
    """Random small configs: sharded reports must equal single-process."""
    params = NetworkParams(latency_jitter_frac=jitter)
    assert_sharded_identical(
        halo_app, nprocs, shards, config=config,
        params=dataclasses.replace(params),
        app_args=(3, nbytes, 12.0e-6), seed=seed, sync=sync,
        backend="inline", record_transfers=True,
    )
