"""Sharded parallel-DES engine: partitioning, edge cases, bit-parity.

The sharded engine (:mod:`repro.sim.parallel`) is only admissible under
the same rule as the network fast path: a sharded run must be
*bit-identical* to a single-process channel-delivery run of the same
seed -- every overlap report, finish time, and compute log equal.  These
tests cover the partitioner's edge cases (one rank per shard, rank
counts not divisible by the shard count, zero cross-shard traffic), the
option surface, and a hypothesis differential across random small
configs and seeds.
"""

from __future__ import annotations

import dataclasses
import struct

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.experiments.halo import halo_app, halo_edges
from repro.mpisim.config import MpiConfig, mvapich2_like
from repro.mpisim.packets import EagerPacket
from repro.netsim import channel as ch
from repro.netsim.differential import assert_sharded_identical, compare_runs
from repro.netsim.params import NetworkParams
from repro.netsim.wire import pack_frame, unpack_frame
from repro.runtime import run_app
from repro.sim.parallel import partition_ranks, run_app_sharded

_TAG = 61


def _pair_app(ctx, nbytes=2048.0, rounds=3):
    """Ranks talk only inside disjoint pairs (0,1), (2,3), ..."""
    if ctx.size % 2:
        raise AssertionError("pair app needs an even rank count")
    peer = ctx.rank ^ 1
    for _ in range(rounds):
        r = yield from ctx.comm.irecv(peer, _TAG)
        s = yield from ctx.comm.isend(peer, _TAG, nbytes)
        yield from ctx.compute(10.0e-6)
        yield from ctx.comm.waitall([r, s])
    return ctx.rank


# ---------------------------------------------------------------- partitioner

def test_partition_contiguous_divisible():
    assert partition_ranks(8, 4) == [[0, 1], [2, 3], [4, 5], [6, 7]]


def test_partition_non_divisible_sizes_differ_by_at_most_one():
    parts = partition_ranks(10, 4)
    assert [len(p) for p in parts] == [3, 3, 2, 2]
    assert sorted(r for p in parts for r in p) == list(range(10))


def test_partition_one_rank_per_shard():
    assert partition_ranks(3, 3) == [[0], [1], [2]]
    # More shards than ranks collapses to one rank per shard.
    assert partition_ranks(3, 7) == [[0], [1], [2]]


def test_partition_topology_ring_stays_contiguous():
    # On a ring the heaviest-neighbor traversal is rank order, so the
    # topology strategy reproduces the contiguous cut.
    parts = partition_ranks(8, 2, strategy="topology", edges=halo_edges(8))
    assert parts == [[0, 1, 2, 3], [4, 5, 6, 7]]


def test_partition_topology_groups_heavy_pairs():
    # Pairs (0,3) and (1,2) talk heavily; a contiguous cut of 4 ranks
    # into 2 shards would split both pairs, the topology cut splits none.
    edges = [(0, 3, 100.0), (1, 2, 100.0), (3, 1, 1.0)]
    parts = partition_ranks(4, 2, strategy="topology", edges=edges)
    for a, b, _w in edges[:2]:
        shard_of = {r: i for i, p in enumerate(parts) for r in p}
        assert shard_of[a] == shard_of[b], parts


def test_partition_validation():
    with pytest.raises(ValueError):
        partition_ranks(0, 1)
    with pytest.raises(ValueError):
        partition_ranks(4, 0)
    with pytest.raises(ValueError):
        partition_ranks(4, 2, strategy="hilbert")
    with pytest.raises(ValueError, match="bad edge"):
        partition_ranks(4, 2, strategy="topology", edges=[(0,)])


def test_explicit_partition_must_cover_every_rank():
    with pytest.raises(ValueError):
        run_app_sharded(_pair_app, 4, 2, backend="inline",
                        partition=[[0, 1], [2]])
    with pytest.raises(ValueError):
        run_app_sharded(_pair_app, 4, 2, backend="inline",
                        partition=[[0, 1], [1, 2, 3]])
    with pytest.raises(ValueError, match="empty shard"):
        run_app_sharded(_pair_app, 4, 2, backend="inline",
                        partition=[[0, 1, 2, 3], []])


# ------------------------------------------------------------- option surface

def test_unsupported_observers_raise():
    from repro.metrics import MetricsRegistry

    with pytest.raises(ValueError, match="metrics"):
        run_app(_pair_app, 4, shards=2, metrics=MetricsRegistry())
    with pytest.raises(ValueError, match="sync"):
        run_app_sharded(_pair_app, 4, 2, sync="optimistic")
    with pytest.raises(ValueError, match="backend"):
        run_app_sharded(_pair_app, 4, 2, backend="thread")


def test_zero_lookahead_rejected():
    params = NetworkParams(latency=0.0, per_message_overhead=0.0)
    with pytest.raises(ValueError, match="lookahead"):
        run_app_sharded(_pair_app, 4, 2, params=params, backend="inline")


# ----------------------------------------------------------------- edge cases

def test_one_rank_per_shard_matches_single():
    assert_sharded_identical(_pair_app, 4, 4, backend="inline")


def test_non_divisible_ranks_match_single():
    assert_sharded_identical(halo_app, 5, 2, backend="inline",
                             app_args=(4, 1024.0, 15.0e-6))


def test_zero_cross_shard_traffic():
    # The pair app's communicating pairs never straddle the contiguous
    # 2-shard cut of 4 ranks, so the coordinator must carry zero payload
    # messages -- and the run must still terminate and match exactly.
    deltas = assert_sharded_identical(_pair_app, 4, 2, backend="inline")
    assert deltas
    result = run_app_sharded(_pair_app, 4, 2, backend="inline")
    assert result.sync_stats["messages"] == 0
    assert all(s["msgs_across"] == 0 for s in result.shard_stats)


def test_cross_shard_traffic_counted():
    result = run_app_sharded(halo_app, 6, 2, backend="inline",
                             app_args=(3, 1024.0, 15.0e-6))
    assert result.sync_stats["messages"] > 0


def test_null_sync_matches_single():
    assert_sharded_identical(halo_app, 6, 3, backend="inline", sync="null",
                             app_args=(3, 2048.0, 15.0e-6))


def test_process_backend_matches_single():
    assert_sharded_identical(halo_app, 4, 2, backend="process",
                             app_args=(3, 1024.0, 15.0e-6))


def test_shards_one_matches_single():
    assert_sharded_identical(halo_app, 4, 1, backend="inline",
                             app_args=(3, 1024.0, 15.0e-6))


# ------------------------------------------------- hypothesis differential

_CONFIGS = (
    MpiConfig(name="s-eager", eager_limit=1 << 16),
    MpiConfig(name="s-rndv", eager_limit=512, rndv_mode="rget"),
    MpiConfig(name="s-pipe", eager_limit=512, rndv_mode="pipelined",
              frag_size=2048),
)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    nprocs=st.integers(min_value=2, max_value=6),
    shards=st.integers(min_value=2, max_value=3),
    config=st.sampled_from(_CONFIGS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    jitter=st.sampled_from((0.0, 0.25)),
    nbytes=st.sampled_from((64.0, 1024.0, 8192.0)),
    sync=st.sampled_from(("window", "null")),
)
def test_hypothesis_sharded_bit_identical(nprocs, shards, config, seed,
                                          jitter, nbytes, sync):
    """Random small configs: sharded reports must equal single-process."""
    params = NetworkParams(latency_jitter_frac=jitter)
    assert_sharded_identical(
        halo_app, nprocs, shards, config=config,
        params=dataclasses.replace(params),
        app_args=(3, nbytes, 12.0e-6), seed=seed, sync=sync,
        backend="inline", record_transfers=True,
    )


# ----------------------------------------------------- high-rank partitioning

def test_partition_4096_contiguous_blocks():
    parts = partition_ranks(4096, 8)
    assert [len(p) for p in parts] == [512] * 8
    # Contiguous ascending blocks covering every rank exactly once.
    assert [r for p in parts for r in p] == list(range(4096))


def test_partition_4096_non_divisible_balance():
    parts = partition_ranks(4096, 7)
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == 4096
    assert sorted(r for p in parts for r in p) == list(range(4096))


def test_partition_4096_topology_disconnected_graph():
    # A communication graph touching only a handful of the 4096 ranks:
    # the traversal must still emit every isolated vertex exactly once,
    # keep the +-1 balance, and co-locate the connected heavy pairs.
    edges = [(0, 4095, 10.0), (1, 2048, 5.0), (7, 9, 1.0)]
    parts = partition_ranks(4096, 8, strategy="topology", edges=edges)
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1
    assert sorted(r for p in parts for r in p) == list(range(4096))
    shard_of = {r: i for i, p in enumerate(parts) for r in p}
    for a, b, _w in edges:
        assert shard_of[a] == shard_of[b]
    # Shard lists stay ascending (rank creation order inside a shard).
    for p in parts:
        assert p == sorted(p)


# ------------------------------------------------------ wire codec round-trip

_FLOATS = st.floats(allow_nan=False)
_DATA = st.sampled_from((None, "bounce-0", "bounce-1", 17, (3, 4), b"x"))

_HOT_MSGS = st.builds(
    ch.ChannelMsg,
    when=_FLOATS, key=st.integers(-(2 ** 63), 2 ** 63 - 1),
    kind=st.just(ch.DELIVER),
    src_node=st.integers(0, 2 ** 31 - 1), src_port=st.integers(0, 65535),
    dst_node=st.integers(0, 2 ** 31 - 1), dst_port=st.integers(0, 65535),
    nbytes=_FLOATS,
    payload=st.builds(
        EagerPacket,
        seq=st.integers(-(2 ** 63), 2 ** 63 - 1),
        src=st.integers(-(2 ** 31), 2 ** 31 - 1),
        tag=st.integers(-(2 ** 31), 2 ** 31 - 1),
        nbytes=_FLOATS, data=_DATA,
        ctx=st.integers(-(2 ** 31), 2 ** 31 - 1),
    ),
    extra=st.tuples(_FLOATS, st.booleans(), st.booleans()),
)

#: Messages the columnar path must decline: control kinds, out-of-range
#: or wrongly-typed columns, unhashable payload data.
_REST_MSGS = st.one_of(
    st.builds(
        ch.ChannelMsg,
        when=_FLOATS, key=st.integers(0, 2 ** 40),
        kind=st.sampled_from((ch.PLACE, ch.ACK, ch.READ_REQ, ch.READ_DATA)),
        src_node=st.integers(0, 4095), src_port=st.just(0),
        dst_node=st.integers(0, 4095), dst_port=st.just(0),
        nbytes=_FLOATS,
        payload=st.just(None),
        extra=st.one_of(st.just(("token", 3)), st.integers(0, 9),
                        st.just(None)),
    ),
    # Hot-shaped but with unhashable payload data.
    _HOT_MSGS.map(lambda m: m._replace(
        payload=m.payload._replace(data=[1, 2]))),
    # Hot-shaped but a column out of its fixed-width range.
    _HOT_MSGS.map(lambda m: m._replace(src_node=2 ** 31)),
    # Hot-shaped but a float column carrying an int.
    _HOT_MSGS.map(lambda m: m._replace(nbytes=4096)),
)


def _assert_bit_exact(a, b) -> None:
    assert type(a) is type(b)
    if isinstance(a, float):
        assert struct.pack("<d", a) == struct.pack("<d", b)
    elif isinstance(a, EagerPacket):
        for va, vb in zip(a, b):
            _assert_bit_exact(va, vb)
    else:
        assert a == b


def test_wire_codec_empty_frame():
    frame = pack_frame([])
    assert frame.n == 0 and frame.rest == () and frame.order is None
    assert unpack_frame(frame) == []


@settings(max_examples=60, deadline=None)
@given(msgs=st.lists(st.one_of(_HOT_MSGS, _REST_MSGS), max_size=24))
def test_hypothesis_wire_codec_round_trip(msgs):
    """unpack(pack(msgs)) must reproduce every field bit-exactly."""
    out = unpack_frame(pack_frame(msgs))
    assert out == msgs
    for orig, back in zip(msgs, out):
        for va, vb in zip(orig, back):
            _assert_bit_exact(va, vb)


# ----------------------------------------------------- high-rank differential

@pytest.mark.parametrize("sync", ("window", "null"))
def test_high_rank_process_backend_matches_single(sync):
    # 256 ranks through forked workers exercises the batched wire frames
    # end to end (RDMA-write eager mode floods the coordinator with
    # PLACE/ACK obligations as well as hot eager deliveries).
    assert_sharded_identical(
        halo_app, 256, 4, backend="process", sync=sync,
        config=mvapich2_like(), app_args=(3, 2048.0, 15.0e-6),
    )


def test_unbatched_channels_match_single():
    # The batch=False escape hatch must stay exactly equivalent.
    assert_sharded_identical(
        halo_app, 16, 4, backend="process", batch=False,
        config=mvapich2_like(), app_args=(3, 2048.0, 15.0e-6),
    )


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    sync=st.sampled_from(("window", "null")),
    config=st.sampled_from((_CONFIGS[0], mvapich2_like())),
)
def test_hypothesis_high_rank_bit_identical(seed, sync, config):
    """256-rank sharded runs must equal single-process, any seed/sync."""
    assert_sharded_identical(
        halo_app, 256, 4, config=config, seed=seed, sync=sync,
        backend="inline", app_args=(2, 2048.0, 10.0e-6),
    )


# ------------------------------------------------- fence implementations

def test_reference_fence_impl_matches_single():
    assert_sharded_identical(
        halo_app, 12, 3, backend="inline", fence_impl="reference",
        config=mvapich2_like(), app_args=(4, 2048.0, 15.0e-6),
    )


def test_fence_impls_bit_identical():
    # The incremental fence computation must drive byte-for-byte the same
    # schedule as the quadratic reference: same fences, same rounds, same
    # reports.
    runs = {}
    for impl in ("incremental", "reference"):
        runs[impl] = run_app(
            halo_app, 24, shards=3, shard_backend="inline",
            shard_fence_impl=impl, config=mvapich2_like(),
            app_args=(4, 2048.0, 15.0e-6),
        )
    inc, ref = runs["incremental"], runs["reference"]
    assert all(d.equal for d in compare_runs(inc, ref))
    assert inc.sync_stats["rounds"] == ref.sync_stats["rounds"]
    assert inc.sync_stats["fence_impl"] == "incremental"
    assert inc.sync_stats["fence_recomputes"] > 0


def test_unknown_fence_impl_rejected():
    with pytest.raises(ValueError, match="fence_impl"):
        run_app_sharded(_pair_app, 4, 2, backend="inline",
                        fence_impl="oracle")


# ----------------------------------------------------------- halo smoke CLI

def test_halo_cli_check_json(capsys):
    from repro.experiments import halo

    rc = halo.main(["--ranks", "8", "--steps", "2", "--shards", "2",
                    "--backend", "inline", "--check", "--json"])
    assert rc == 0
    summary = __import__("json").loads(capsys.readouterr().out)
    assert summary["checked"] is True
    assert summary["ranks"] == 8 and summary["shards"] == 2
    assert summary["events"] > 0 and summary["rounds"] > 0


def test_halo_cli_worker_fault_needs_spawned_workers(capsys):
    # On externally started --hosts (or non-socket backends) the fault
    # spec cannot be armed; silently ignoring it would make a
    # fault-injection run look like a healthy pass.
    from repro.experiments import halo

    with pytest.raises(SystemExit) as excinfo:
        halo.main(["--backend", "socket", "--hosts", "127.0.0.1:1",
                   "--worker-fault", "drop-after=5"])
    assert excinfo.value.code == 2
    assert "--worker-fault" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        halo.main(["--backend", "process", "--worker-fault", "drop-after=5"])


def test_halo_cli_plain_run(capsys):
    from repro.experiments import halo

    rc = halo.main(["--ranks", "8", "--steps", "2", "--shards", "2",
                    "--backend", "inline", "--sync", "null", "--no-batch",
                    "--fence-impl", "reference"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "halo 8 ranks" in out and "sync=null" in out


# ------------------------------------------------- event-queue pressure

def test_calendar_queue_engages_in_sharded_run(monkeypatch):
    # Force the calendar threshold low enough for a small run, then
    # check the engine actually migrated -- and that doing so changed
    # nothing observable.
    from repro.sim import engine as engine_mod

    monkeypatch.setattr(engine_mod, "CALENDAR_ENGAGE", 4)
    monkeypatch.setattr(engine_mod, "CALENDAR_COLLAPSE", 2)
    assert_sharded_identical(
        halo_app, 12, 2, backend="inline",
        config=mvapich2_like(), app_args=(3, 1024.0, 15.0e-6),
    )
    result = run_app_sharded(
        halo_app, 12, 2, backend="inline",
        config=mvapich2_like(), app_args=(3, 1024.0, 15.0e-6),
    )
    assert any(s["calendar_engagements"] > 0 for s in result.shard_stats)
    assert all(s["heap_high_water"] > 0 for s in result.shard_stats)
