"""Tests for OverlapMeasures and the message-size-range breakdown."""

import pytest

from repro.core.measures import (
    CASE_ONE_EVENT,
    CASE_SAME_CALL,
    CASE_SPLIT_CALL,
    OverlapMeasures,
    SizeBins,
)


class TestSizeBins:
    def test_default_edges_give_four_ranges(self):
        bins = SizeBins()
        assert len(bins.bins) == 4

    def test_index_for_boundaries(self):
        bins = SizeBins(edges=(100.0, 1000.0))
        assert bins.index_for(0) == 0
        assert bins.index_for(99) == 0
        assert bins.index_for(100) == 1  # boundary goes to the upper bin
        assert bins.index_for(999) == 1
        assert bins.index_for(1000) == 2
        assert bins.index_for(10**9) == 2

    def test_add_accumulates_in_right_bin(self):
        bins = SizeBins(edges=(100.0,))
        bins.add(50, 1e-6, 0.0, 1e-6)
        bins.add(200, 2e-6, 1e-6, 2e-6)
        short, long_ = bins.bins
        assert short.count == 1 and short.bytes == 50
        assert long_.count == 1 and long_.xfer_time == pytest.approx(2e-6)
        assert long_.min_overlap == pytest.approx(1e-6)

    def test_labels_are_human_readable(self):
        bins = SizeBins(edges=(1024.0, 1048576.0))
        assert bins.label_for(0) == "[0B, 1KiB)"
        assert bins.label_for(1) == "[1KiB, 1MiB)"
        assert bins.label_for(2) == "[1MiB, inf)"

    def test_merge_requires_same_edges(self):
        with pytest.raises(ValueError):
            SizeBins(edges=(1.0,)).merge(SizeBins(edges=(2.0,)))

    def test_merge_sums_all_fields(self):
        a = SizeBins(edges=(100.0,))
        b = SizeBins(edges=(100.0,))
        a.add(50, 1.0, 0.2, 0.5)
        b.add(50, 2.0, 0.3, 1.0)
        a.merge(b)
        assert a.bins[0].count == 2
        assert a.bins[0].xfer_time == pytest.approx(3.0)
        assert a.bins[0].min_overlap == pytest.approx(0.5)
        assert a.bins[0].max_overlap == pytest.approx(1.5)

    def test_invalid_edges_rejected(self):
        with pytest.raises(ValueError):
            SizeBins(edges=(10.0, 5.0))
        with pytest.raises(ValueError):
            SizeBins(edges=(0.0,))

    def test_roundtrip_dict(self):
        bins = SizeBins(edges=(64.0,))
        bins.add(32, 1e-6, 0.0, 1e-6)
        clone = SizeBins.from_dict(bins.to_dict())
        assert clone.edges == bins.edges
        assert clone.bins[0].to_dict() == bins.bins[0].to_dict()


class TestOverlapMeasures:
    def test_add_transfer_accumulates_everything(self):
        m = OverlapMeasures()
        m.add_transfer(2048, 1e-5, 2e-6, 8e-6, CASE_SPLIT_CALL)
        m.add_transfer(4, 1e-7, 0.0, 0.0, CASE_SAME_CALL)
        assert m.data_transfer_time == pytest.approx(1e-5 + 1e-7)
        assert m.min_overlap_time == pytest.approx(2e-6)
        assert m.max_overlap_time == pytest.approx(8e-6)
        assert m.transfer_count == 2
        assert m.case_counts == {1: 1, 2: 1, 3: 0}

    def test_bounds_validation(self):
        m = OverlapMeasures()
        with pytest.raises(ValueError):
            m.add_transfer(8, 1e-6, 5e-7, 4e-7, CASE_SPLIT_CALL)  # min > max
        with pytest.raises(ValueError):
            m.add_transfer(8, 1e-6, 0.0, 2e-6, CASE_SPLIT_CALL)  # max > xfer

    def test_interval_attribution(self):
        m = OverlapMeasures()
        m.add_interval(2.0, in_call=False)
        m.add_interval(1.0, in_call=True)
        m.add_interval(0.5, in_call=False)
        assert m.computation_time == pytest.approx(2.5)
        assert m.communication_call_time == pytest.approx(1.0)

    def test_percent_properties(self):
        m = OverlapMeasures()
        m.add_transfer(100, 10.0, 2.0, 8.0, CASE_SPLIT_CALL)
        assert m.min_overlap_pct == pytest.approx(20.0)
        assert m.max_overlap_pct == pytest.approx(80.0)
        assert m.min_nonoverlapped_time == pytest.approx(2.0)
        assert m.guaranteed_overlap_time == pytest.approx(2.0)

    def test_percent_zero_when_no_transfers(self):
        m = OverlapMeasures()
        assert m.min_overlap_pct == 0.0
        assert m.max_overlap_pct == 0.0

    def test_merge_sums_fields_and_cases(self):
        a, b = OverlapMeasures(), OverlapMeasures()
        a.add_transfer(10, 1.0, 0.1, 0.5, CASE_SPLIT_CALL)
        a.add_interval(3.0, in_call=False)
        b.add_transfer(10, 2.0, 0.0, 2.0, CASE_ONE_EVENT)
        b.add_interval(1.0, in_call=True)
        a.merge(b)
        assert a.data_transfer_time == pytest.approx(3.0)
        assert a.case_counts == {1: 0, 2: 1, 3: 1}
        assert a.computation_time == pytest.approx(3.0)
        assert a.communication_call_time == pytest.approx(1.0)

    def test_roundtrip_dict(self):
        m = OverlapMeasures()
        m.add_transfer(2048, 1e-5, 2e-6, 8e-6, CASE_SPLIT_CALL)
        m.add_interval(0.25, in_call=True)
        clone = OverlapMeasures.from_dict(m.to_dict())
        assert clone.data_transfer_time == pytest.approx(m.data_transfer_time)
        assert clone.case_counts == m.case_counts
        assert clone.communication_call_time == pytest.approx(0.25)
        assert clone.bins.edges == m.bins.edges

    def test_repr_mentions_bounds(self):
        m = OverlapMeasures()
        m.add_transfer(100, 10.0, 2.0, 8.0, CASE_SPLIT_CALL)
        text = repr(m)
        assert "20.0%" in text and "80.0%" in text
