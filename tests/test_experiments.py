"""Tests for the figure-level experiment drivers."""

import pytest

from repro.experiments.nas_char import (
    CharPoint,
    characterize,
    characterize_matrix,
    characterize_mg,
)
from repro.experiments.overhead import measure_overhead, overhead_suite
from repro.experiments.sp_tuning import iprobe_placement_sweep, sp_tuning
from repro.nas.base import CpuModel

FAST = CpuModel(flop_rate=50e9)


class TestNasChar:
    def test_characterize_returns_point(self):
        p = characterize("cg", "S", 4, niter=1, cpu=FAST)
        assert isinstance(p, CharPoint)
        assert p.benchmark == "cg"
        assert 0.0 <= p.min_pct <= p.max_pct <= 100.0
        assert p.elapsed > 0
        assert p.report.rank == 0

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown MPI benchmark"):
            characterize("mg", "S", 4)

    def test_matrix_covers_grid(self):
        points = characterize_matrix(
            "ft", ["S", "W"], [2, 4], niter=1, cpu=FAST
        )
        assert [(p.klass, p.nprocs) for p in points] == [
            ("S", 2), ("S", 4), ("W", 2), ("W", 4)
        ]

    def test_mg_variants(self):
        b = characterize_mg("S", 4, blocking=True, cpu=FAST)
        nb = characterize_mg("S", 4, blocking=False, cpu=FAST)
        assert b.variant == "blocking"
        assert nb.variant == "nonblocking"
        assert nb.max_pct > b.max_pct

    def test_lu_planes_passthrough(self):
        p = characterize("lu", "S", 4, niter=1, cpu=FAST, lu_planes=4)
        assert p.report.total.transfer_count > 0


class TestSpTuning:
    @pytest.fixture(scope="class")
    def result(self):
        return sp_tuning("A", 4, niter=1)

    def test_section_overlap_improves(self, result):
        orig = result.section("original")
        mod = result.section("modified")
        assert mod.max_overlap_pct > orig.max_overlap_pct + 20.0
        assert mod.min_overlap_pct >= orig.min_overlap_pct

    def test_full_code_improves_but_less(self, result):
        # Gains over the complete code are limited by copy_faces (Sec. 4.3).
        orig, mod = result.full("original"), result.full("modified")
        assert mod.max_overlap_pct > orig.max_overlap_pct
        section_gain = (
            result.section("modified").max_overlap_pct
            - result.section("original").max_overlap_pct
        )
        full_gain = mod.max_overlap_pct - orig.max_overlap_pct
        assert full_gain < section_gain

    def test_mpi_time_drops(self, result):
        assert result.mpi_time_modified < result.mpi_time_original
        assert result.mpi_time_improvement_pct > 0

    def test_iprobe_sweep_zero_probes_matches_original(self):
        sweep = iprobe_placement_sweep("A", 4, counts=(0, 4), niter=1)
        zero, four = sweep
        # 0 probes: the "modified" run degenerates to the original.
        assert zero.section("modified").max_overlap_pct == pytest.approx(
            zero.section("original").max_overlap_pct, abs=2.0
        )
        assert four.section("modified").max_overlap_pct > 50.0


class TestOverhead:
    def test_overhead_small_and_positive(self):
        p = measure_overhead("cg", "S", 4, niter=2, cpu=None)
        assert p.time_instrumented >= p.time_uninstrumented
        assert 0.0 <= p.overhead_pct < 0.9  # the paper's bound
        assert p.events > 0

    def test_overhead_mg_armci(self):
        p = measure_overhead("mg", "S", 4, niter=1, cpu=None)
        assert p.benchmark == "mg"
        assert 0.0 <= p.overhead_pct < 0.9

    def test_suite_covers_all_benchmarks(self):
        points = overhead_suite(
            cells=(("cg", "S", 4), ("ft", "S", 4)), niter=1, cpu=None
        )
        assert [p.benchmark for p in points] == ["cg", "ft"]
