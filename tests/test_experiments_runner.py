"""Tests for the parallel, cached sweep runner."""

import os

import pytest

from repro.core.xfer_table import XferTable
from repro.experiments.runner import (
    CACHE_DIR_ENV,
    ResultCache,
    Task,
    content_key,
    overlap_sweep_parallel,
    run_tasks,
)
from repro.mpisim.config import MpiConfig, mvapich2_like


# Module-level so pool workers can pickle them.
def _square(x):
    return x * x


def _record_call(x, log_path):
    with open(log_path, "a", encoding="utf-8") as fh:
        fh.write(f"{x}\n")
    return x + 1


def _boom(x):
    raise AssertionError("worker must not run on a warm cache")


# ---------------------------------------------------------------------------
# content_key
# ---------------------------------------------------------------------------
def test_key_is_stable_across_equal_values():
    a = content_key(_square, (1, 2.5, "x", (3, 4)), {"cfg": MpiConfig()})
    b = content_key(_square, (1, 2.5, "x", (3, 4)), {"cfg": MpiConfig()})
    assert a == b


def test_key_distinguishes_args_kwargs_and_fn():
    base = content_key(_square, (1,), {})
    assert content_key(_square, (2,), {}) != base
    assert content_key(_square, (1,), {"k": 1}) != base
    assert content_key(_boom, (1,), {}) != base
    # Type structure matters: a tuple is not a scalar, a list is not a tuple.
    assert content_key(_square, ((1,),), {}) != base
    assert content_key(_square, ([1],), {}) != content_key(_square, ((1,),), {})


def test_key_covers_dataclass_field_content():
    a = content_key(_square, (mvapich2_like(),), {})
    b = content_key(_square, (mvapich2_like(),), {})
    c = content_key(_square, (MpiConfig(eager_limit=1),), {})
    assert a == b
    assert a != c


def test_key_covers_xfer_table_content():
    t1 = XferTable([1.0, 2.0], [1e-6, 2e-6])
    t2 = XferTable([1.0, 2.0], [1e-6, 2e-6])
    t3 = XferTable([1.0, 2.0], [1e-6, 3e-6])
    assert content_key(_square, (t1,), {}) == content_key(_square, (t2,), {})
    assert content_key(_square, (t1,), {}) != content_key(_square, (t3,), {})


def test_key_rejects_unhashable_content():
    with pytest.raises(TypeError):
        content_key(_square, (object(),), {})


# ---------------------------------------------------------------------------
# run_tasks
# ---------------------------------------------------------------------------
def test_serial_and_parallel_results_identical():
    tasks = [Task(_square, (i,)) for i in range(6)]
    assert run_tasks(tasks) == run_tasks(tasks, jobs=2) == [i * i for i in range(6)]


def test_results_keep_task_order():
    tasks = [Task(_square, (i,)) for i in (5, 1, 4, 2)]
    assert run_tasks(tasks, jobs=2) == [25, 1, 16, 4]


def test_cache_round_trip_and_counters(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    tasks = [Task(_square, (i,)) for i in range(4)]
    cold = run_tasks(tasks, cache=cache)
    assert (cache.hits, cache.misses) == (0, 4)
    warm_cache = ResultCache(tmp_path / "cache")
    warm = run_tasks(tasks, cache=warm_cache)
    assert warm == cold
    assert (warm_cache.hits, warm_cache.misses) == (4, 0)


def test_warm_cache_never_invokes_the_function(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    log = tmp_path / "calls.log"
    tasks = [Task(_record_call, (i, str(log))) for i in range(3)]
    cold = run_tasks(tasks, cache=cache)
    assert cold == [1, 2, 3]
    assert log.read_text().splitlines() == ["0", "1", "2"]
    # Same keys, poisoned function body would crash if executed -- but the
    # key only hashes *identity* of _record_call, so reuse the real tasks
    # and assert via the call log instead.
    warm = run_tasks(tasks, cache=ResultCache(tmp_path / "cache"))
    assert warm == cold
    assert log.read_text().splitlines() == ["0", "1", "2"]  # no new calls


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    run_tasks([Task(_square, (i,)) for i in range(3)], cache=cache)
    assert cache.clear() == 3
    again = ResultCache(tmp_path / "cache")
    run_tasks([Task(_square, (7,))], cache=again)
    assert again.misses == 1


def test_cache_root_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
    cache = ResultCache()
    assert cache.root == str(tmp_path / "envcache")
    cache.put("ab" + "0" * 62, {"v": 1})
    assert os.path.isdir(tmp_path / "envcache")


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = Task(_square, (3,)).key
    cache.put(key, 9)
    path = cache._path(key)
    with open(path, "wb") as fh:
        fh.write(b"not a pickle")
    fresh = ResultCache(tmp_path / "cache")
    found, _ = fresh.get(key)
    assert not found
    assert fresh.misses == 1


def test_truncated_cache_entry_is_a_miss_and_sweep_recovers(tmp_path):
    """A pickle cut off mid-stream (killed process, full disk) must read
    as a miss: the sweep re-runs that point instead of crashing."""
    cache = ResultCache(tmp_path / "cache")
    tasks = [Task(_square, (i,)) for i in range(4)]
    run_tasks(tasks, cache=cache)
    victim = cache._path(tasks[2].key)
    blob = open(victim, "rb").read()
    assert len(blob) > 4
    with open(victim, "wb") as fh:
        fh.write(blob[: len(blob) // 2])  # truncate mid-pickle

    fresh = ResultCache(tmp_path / "cache")
    results = run_tasks(tasks, cache=fresh)
    assert results == [0, 1, 4, 9]  # recomputed transparently
    assert (fresh.hits, fresh.misses) == (3, 1)


def test_zero_byte_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = Task(_square, (5,)).key
    cache.put(key, 25)
    open(cache._path(key), "wb").close()
    fresh = ResultCache(tmp_path / "cache")
    found, _ = fresh.get(key)
    assert not found
    assert fresh.misses == 1


# ---------------------------------------------------------------------------
# progress reporting
# ---------------------------------------------------------------------------
class _Recorder:
    """Minimal SweepProgress stand-in capturing runner callbacks."""

    def __init__(self):
        self.events = []

    def start(self, total, jobs=1):
        self.events.append(("start", total, jobs))

    def task_done(self, duration, cached=False, name=""):
        self.events.append(("done", cached, duration >= 0.0))

    def finish(self):
        self.events.append(("finish",))


@pytest.mark.parametrize("jobs", [1, 2])
def test_run_tasks_reports_progress(jobs):
    progress = _Recorder()
    tasks = [Task(_square, (i,)) for i in range(3)]
    assert run_tasks(tasks, jobs=jobs, progress=progress) == [0, 1, 4]
    assert progress.events[0] == ("start", 3, jobs)
    assert progress.events[-1] == ("finish",)
    assert progress.events[1:-1] == [("done", False, True)] * 3


def test_run_tasks_reports_cache_hits_as_cached(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    tasks = [Task(_square, (i,)) for i in range(3)]
    run_tasks(tasks, cache=cache)
    progress = _Recorder()
    run_tasks(tasks, cache=ResultCache(tmp_path / "cache"), progress=progress)
    assert progress.events[1:-1] == [("done", True, True)] * 3


def test_run_tasks_with_sweep_progress_end_to_end(tmp_path):
    from repro.metrics import SweepProgress, load_status

    progress = SweepProgress(tmp_path / "m", label="runner",
                             min_write_interval=0.0)
    run_tasks([Task(_square, (i,)) for i in range(4)], jobs=2,
              progress=progress)
    status = load_status(tmp_path / "m")
    assert status is not None
    assert status["total"] == 4 and status["done"] == 4
    assert status["finished"] is True


# ---------------------------------------------------------------------------
# overlap_sweep_parallel
# ---------------------------------------------------------------------------
def test_parallel_sweep_equals_serial_sweep(tmp_path):
    from repro.experiments.micro import overlap_sweep

    cfg = mvapich2_like()
    computes = [0.0, 5e-5]
    serial = overlap_sweep("isend_irecv", 4096.0, computes, cfg, iters=4, warmup=1)
    cache = ResultCache(tmp_path / "cache")
    par = overlap_sweep_parallel(
        "isend_irecv", 4096.0, computes, cfg, iters=4, warmup=1,
        jobs=2, cache=cache,
    )
    assert [p.compute_time for p in par] == computes
    for a, b in zip(serial, par):
        assert a.sender.to_dict() == b.sender.to_dict()
        assert a.receiver.to_dict() == b.receiver.to_dict()
    # Warm rerun: all hits, identical reports, no simulation.
    warm_cache = ResultCache(tmp_path / "cache")
    warm = overlap_sweep_parallel(
        "isend_irecv", 4096.0, computes, cfg, iters=4, warmup=1,
        cache=warm_cache,
    )
    assert (warm_cache.hits, warm_cache.misses) == (2, 0)
    for a, b in zip(par, warm):
        assert a.sender.to_dict() == b.sender.to_dict()


def test_parallel_sweep_rejects_bad_pattern():
    with pytest.raises(ValueError):
        overlap_sweep_parallel("sendrecv", 1.0, [0.0], MpiConfig())


# ---------------------------------------------------------------------------
# on_error="continue": crashed/raising workers become FailedTask cells
# ---------------------------------------------------------------------------
def _raise_for(x):
    if x == 2:
        raise ValueError(f"cell {x} is cursed")
    return x * 10


def _hard_exit(x):
    if x == 1:
        os._exit(42)  # simulates a segfaulted worker: no exception, no result
    return x * 10


def test_on_error_continue_serial_isolates_failures():
    from repro.experiments.runner import FailedTask

    out = run_tasks([Task(_raise_for, (i,)) for i in range(4)],
                    on_error="continue")
    assert out[0] == 0 and out[1] == 10 and out[3] == 30
    assert isinstance(out[2], FailedTask)
    assert not out[2]  # falsy, so `if value:` skips failed cells
    assert "cursed" in out[2].error
    assert "ValueError" in out[2].traceback


def test_on_error_continue_parallel_isolates_failures():
    from repro.experiments.runner import FailedTask

    out = run_tasks([Task(_raise_for, (i,)) for i in range(4)],
                    jobs=2, on_error="continue")
    assert [out[0], out[1], out[3]] == [0, 10, 30]
    assert isinstance(out[2], FailedTask) and "cursed" in out[2].error


def test_on_error_continue_survives_worker_death():
    from repro.experiments.runner import FailedTask

    out = run_tasks([Task(_hard_exit, (i,)) for i in range(3)],
                    jobs=2, on_error="continue")
    assert out[0] == 0 and out[2] == 20
    assert isinstance(out[1], FailedTask)
    assert out[1].exitcode == 42


def test_on_error_raise_is_still_the_default():
    with pytest.raises(ValueError, match="cursed"):
        run_tasks([Task(_raise_for, (i,)) for i in range(4)])
    with pytest.raises(ValueError, match="cursed"):
        run_tasks([Task(_raise_for, (i,)) for i in range(4)], jobs=2)
    with pytest.raises(ValueError, match="on_error"):
        run_tasks([Task(_square, (1,))], on_error="ignore")


def test_failed_cells_are_not_cached(tmp_path):
    from repro.experiments.runner import FailedTask

    cache = ResultCache(tmp_path / "cache")
    tasks = [Task(_raise_for, (i,)) for i in (1, 2)]
    first = run_tasks(tasks, cache=cache, on_error="continue")
    assert first[0] == 10 and isinstance(first[1], FailedTask)
    again = ResultCache(tmp_path / "cache")
    second = run_tasks(tasks, cache=again, on_error="continue")
    assert second[0] == 10 and isinstance(second[1], FailedTask)
    assert again.hits == 1  # only the good cell was cached; the bad re-ran


# ---------------------------------------------------------------------------
# Bounded ResultCache: LRU eviction, recency, counters
# ---------------------------------------------------------------------------
def _keys(n):
    return [content_key(_square, (i,), {}) for i in range(n)]


def test_cache_unbounded_by_default(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.bounded is False
    for i, key in enumerate(_keys(50)):
        cache.put(key, i)
    assert cache.evictions == 0
    for i, key in enumerate(_keys(50)):
        assert cache.get(key) == (True, i)


def test_cache_max_entries_evicts_least_recently_used(tmp_path):
    cache = ResultCache(tmp_path / "cache", max_entries=3)
    k = _keys(5)
    for i in range(4):
        cache.put(k[i], i)
    # k0 was the oldest write -> gone; k1..k3 remain.
    assert cache.get(k[0])[0] is False
    assert cache.get(k[1]) == (True, 1)
    assert cache.evictions == 1
    # The k1 hit refreshed its recency, so the next eviction takes k2.
    cache.put(k[4], 4)
    assert cache.get(k[2])[0] is False
    assert cache.get(k[1]) == (True, 1)
    assert cache.get(k[4]) == (True, 4)
    assert cache.evictions == 2


def test_cache_max_bytes_evicts_until_under_budget(tmp_path):
    k = _keys(3)
    probe = ResultCache(tmp_path / "cache")
    probe.put(k[0], 0)
    size = os.stat(probe._path(k[0])).st_size  # all three values pickle equal-sized

    cache = ResultCache(tmp_path / "cache", max_bytes=2 * size)
    cache.put(k[1], 1)
    assert cache.evictions == 0  # two entries fit exactly
    cache.put(k[2], 2)           # third pushes over budget -> k0 evicted
    assert cache.evictions == 1
    assert cache.get(k[0])[0] is False
    assert cache.get(k[1]) == (True, 1)
    assert cache.get(k[2]) == (True, 2)


def test_cache_max_bytes_strictly_bounds_even_a_lone_entry(tmp_path):
    """An entry larger than the whole byte budget is not retained: the
    bound is a hard ceiling, equivalent to 'too big to cache'."""
    cache = ResultCache(tmp_path / "cache", max_bytes=1)
    key = _keys(1)[0]
    cache.put(key, 0)
    assert cache.get(key)[0] is False
    assert cache.evictions == 1


def test_cache_bound_applies_to_preexisting_entries(tmp_path):
    """A bounded cache opened over an existing store evicts the entries
    a previous (unbounded) writer left, oldest mtime first."""
    import time as _time

    old = ResultCache(tmp_path / "cache")
    k = _keys(4)
    for i in range(3):
        old.put(k[i], i)
        _time.sleep(0.01)  # distinct mtimes seed the recency order

    bounded = ResultCache(tmp_path / "cache", max_entries=2)
    bounded.put(k[3], 3)  # 4 entries on disk, bound is 2 -> evict k0, k1
    assert bounded.evictions == 2
    assert bounded.get(k[0])[0] is False and bounded.get(k[1])[0] is False
    assert bounded.get(k[2]) == (True, 2)
    assert bounded.get(k[3]) == (True, 3)


def test_cache_metrics_counters(tmp_path):
    from repro.metrics import MetricsRegistry, render_openmetrics

    registry = MetricsRegistry()
    cache = ResultCache(tmp_path / "cache", max_entries=1, metrics=registry)
    k = _keys(2)
    cache.get(k[0])          # miss
    cache.put(k[0], 0)
    cache.get(k[0])          # hit
    cache.put(k[1], 1)       # evicts k0
    text = render_openmetrics(registry)
    assert 'repro_cache_lookups_total{outcome="hit"} 1' in text
    assert 'repro_cache_lookups_total{outcome="miss"} 1' in text
    assert "repro_cache_evictions_total 1" in text
    assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 1)


def test_bounded_cache_with_run_tasks_keeps_results_exact(tmp_path):
    cache = ResultCache(tmp_path / "cache", max_entries=2)
    tasks = [Task(_square, (i,)) for i in range(6)]
    assert run_tasks(tasks, cache=cache) == [i * i for i in range(6)]
    # Evictions happened, but a rerun still computes correct values.
    assert cache.evictions == 4
    rerun = ResultCache(tmp_path / "cache", max_entries=2)
    assert run_tasks(tasks, cache=rerun) == [i * i for i in range(6)]


# ---------------------------------------------------------------------------
# Cooperative cancellation
# ---------------------------------------------------------------------------
class _CancelAfter:
    """Duck-typed cancel token: fires after N is_set() polls."""

    def __init__(self, after):
        self.after = after
        self.polls = 0

    def is_set(self):
        self.polls += 1
        return self.polls > self.after


def _sleep_then_square(x):
    import time as _time

    _time.sleep(x)
    return x * x


def test_cancel_serial_raise_raises_sweep_cancelled():
    from repro.experiments.runner import SweepCancelled

    with pytest.raises(SweepCancelled, match="cancelled after 1 of 3"):
        run_tasks([Task(_square, (i,)) for i in range(3)],
                  cancel=_CancelAfter(1))


def test_cancel_serial_continue_marks_remaining_cells():
    from repro.experiments.runner import FailedTask

    out = run_tasks([Task(_square, (i,)) for i in range(4)],
                    on_error="continue", cancel=_CancelAfter(2))
    assert out[0] == 0 and out[1] == 1
    for value in out[2:]:
        assert isinstance(value, FailedTask)
        assert value.cancelled is True and value.error == "cancelled"


def test_cancel_pool_path_raises_sweep_cancelled():
    import threading

    from repro.experiments.runner import SweepCancelled

    event = threading.Event()
    event.set()
    with pytest.raises(SweepCancelled):
        run_tasks([Task(_square, (i,)) for i in range(4)], jobs=2,
                  cancel=event)


def test_cancel_isolated_terminates_inflight_workers():
    import threading
    import time as _time

    from repro.experiments.runner import FailedTask

    event = threading.Event()
    timer = threading.Timer(0.3, event.set)
    timer.start()
    t0 = _time.monotonic()
    out = run_tasks([Task(_sleep_then_square, (30.0,)) for _ in range(3)],
                    jobs=2, on_error="continue", isolate=True, cancel=event)
    elapsed = _time.monotonic() - t0
    timer.cancel()
    # Far less than the 30 s a task sleeps: in-flight workers were
    # terminated, queued tasks never started.
    assert elapsed < 10.0
    assert all(isinstance(v, FailedTask) and v.cancelled for v in out)


def test_cancelled_cells_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    run_tasks([Task(_square, (i,)) for i in range(4)],
              on_error="continue", cache=cache, cancel=_CancelAfter(2))
    rerun = ResultCache(tmp_path / "cache")
    out = run_tasks([Task(_square, (i,)) for i in range(4)], cache=rerun)
    assert out == [0, 1, 4, 9]
    assert rerun.hits == 2  # only the two completed cells were cached


def test_isolate_requires_on_error_continue():
    with pytest.raises(ValueError, match="isolate"):
        run_tasks([Task(_square, (1,))], isolate=True)


def test_isolate_runs_single_task_out_of_process():
    from repro.experiments.runner import FailedTask

    # A single hard-exiting task with isolate=True must not take the
    # caller down -- even without a pool (jobs=1).
    out = run_tasks([Task(_hard_exit, (1,))], jobs=1, on_error="continue",
                    isolate=True)
    assert isinstance(out[0], FailedTask) and out[0].exitcode == 42
