"""Property tests for communicator splitting: partition laws and ordering."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.runtime import run_app


@given(
    st.integers(min_value=2, max_value=8),
    st.lists(st.integers(min_value=0, max_value=3), min_size=8, max_size=8),
    st.lists(st.integers(min_value=-5, max_value=5), min_size=8, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_split_partitions_and_orders(nprocs, colors, keys):
    observed = {}

    def app(ctx):
        color = colors[ctx.rank]
        key = keys[ctx.rank]
        sub = yield from ctx.comm.split(color, key)
        assert sub is not None
        # Everyone in my group shares my color, in (key, world-rank) order.
        members = yield from sub.allgather(8, (ctx.rank, color, key))
        observed[ctx.rank] = (sub.rank, sub.size, members)
        # My group rank is my position in the sorted member list.
        ordering = sorted((k, w) for w, _c, k in members)
        assert ordering[sub.rank][1] == ctx.rank
        assert all(c == color for _w, c, _k in members)
        # A sub-collective agrees with a direct computation.
        total = yield from sub.allreduce(ctx.rank, 8)
        assert total == sum(w for w, _c, _k in members)

    run_app(app, nprocs)
    # The groups partition the world exactly.
    all_members = set()
    for _rank, (_r, _s, members) in observed.items():
        all_members.update(w for w, _c, _k in members)
    assert all_members == set(range(nprocs))
    # Sizes are consistent within each color.
    by_color = {}
    for rank, (r, s, members) in observed.items():
        by_color.setdefault(colors[rank], set()).add(s)
    for color, sizes in by_color.items():
        assert len(sizes) == 1
