"""Edge-case robustness across layers: zero-byte and huge messages,
empty compute, request misuse, finalize discipline."""

import pytest

from repro.mpisim import MpiConfig
from repro.mpisim.config import mvapich2_like, openmpi_like
from repro.mpisim.request import Request
from repro.runtime import run_app


class TestDegenerateSizes:
    @pytest.mark.parametrize("config", [openmpi_like(), mvapich2_like()],
                             ids=lambda c: c.name)
    def test_zero_byte_message(self, config):
        def app(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, 1, 0, data="empty")
            else:
                status, data = yield from ctx.comm.recv(0, 1)
                assert status.nbytes == 0
                assert data == "empty"

        result = run_app(app, 2, config=config)
        # Zero-byte transfers contribute zero transfer time but do count.
        assert result.report(1).total.transfer_count == 1
        assert result.report(1).total.data_transfer_time == 0.0

    def test_huge_message_256mb(self):
        def app(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, 1, 256 * 1024 * 1024)
            else:
                yield from ctx.comm.recv(0, 1)

        result = run_app(app, 2, config=mvapich2_like())
        # ~0.37 s at 700 MB/s; sane timing, no overflow.
        assert 0.3 < result.elapsed < 1.0

    def test_eager_limit_zero_forces_rendezvous_for_everything(self):
        config = MpiConfig(name="all-rndv", eager_limit=0, rndv_mode="rget")

        def app(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, 1, 8, data="x")
            else:
                _, data = yield from ctx.comm.recv(0, 1)
                assert data == "x"

        result = run_app(app, 2, config=config)
        # Receiver initiated a read -> case 1/2, never the eager case 3.
        assert result.report(1).total.case_counts[3] == 0


class TestComputeAndControl:
    def test_zero_compute_is_allowed_and_free(self):
        def app(ctx):
            t0 = ctx.now
            yield from ctx.compute(0.0)
            assert ctx.now == t0
            yield from ctx.comm.barrier()

        run_app(app, 2)

    def test_negative_compute_rejected(self):
        def app(ctx):
            yield from ctx.compute(-1.0)

        with pytest.raises(ValueError):
            run_app(app, 1)

    def test_single_rank_world(self):
        def app(ctx):
            assert ctx.size == 1
            yield from ctx.comm.barrier()
            value = yield from ctx.comm.allreduce(7, 8)
            assert value == 7
            got = yield from ctx.comm.alltoall(8, ["self"])
            assert got == ["self"]
            req = yield from ctx.comm.isend(0, 1, 100, data="me")
            _, data = yield from ctx.comm.recv(0, 1)
            assert data == "me"
            yield from ctx.comm.wait(req)

        result = run_app(app, 1)
        assert result.report(0).total.transfer_count == 0  # all local


class TestRequestDiscipline:
    def test_request_double_complete_rejected(self):
        req = Request("send", 0, 1, 0, 10)
        req.complete()
        with pytest.raises(RuntimeError):
            req.complete()

    def test_bad_request_kind_rejected(self):
        with pytest.raises(ValueError):
            Request("push", 0, 1, 0, 10)

    def test_wait_on_already_done_request_is_cheap(self):
        def app(ctx):
            if ctx.rank == 0:
                req = yield from ctx.comm.isend(1, 1, 64)
                yield from ctx.comm.wait(req)
                t0 = ctx.now
                yield from ctx.comm.wait(req)  # second wait: no hang
                assert ctx.now - t0 < 1e-5
            else:
                yield from ctx.comm.recv(0, 1)

        run_app(app, 2)

    def test_waitall_with_mixed_done_and_pending(self):
        def app(ctx):
            if ctx.rank == 0:
                done = yield from ctx.comm.isend(1, 1, 64)  # eager: done
                pending = yield from ctx.comm.irecv(1, 2)
                yield from ctx.comm.waitall([done, pending])
                assert pending.data == "late"
            else:
                yield from ctx.comm.recv(0, 1)
                yield from ctx.compute(1e-3)
                yield from ctx.comm.send(0, 2, 64, data="late")

        run_app(app, 2)


class TestReportEdges:
    def test_report_with_no_communication(self):
        def app(ctx):
            yield from ctx.compute(1e-3)

        result = run_app(app, 2)
        m = result.report(0).total
        assert m.transfer_count == 0
        assert m.min_overlap_pct == 0.0
        assert m.max_overlap_pct == 0.0
        assert m.computation_time == pytest.approx(1e-3)

    def test_render_text_with_no_transfers(self):
        def app(ctx):
            yield from ctx.compute(1e-6)

        result = run_app(app, 1)
        text = result.report(0).render_text()
        assert "transfers                  0" in text
