"""Socket transport layer: framing, faults, handshake, stream behavior.

The socket shard backend's bit-identity guarantee rests on two layers:
the wire codec (hypothesis-tested in ``tests/test_sim_parallel.py``) and
the length-prefixed framing underneath it.  TCP is a byte stream -- a
frame can arrive split at *any* boundary, including mid-length-prefix --
so the central property here is that chunked incremental decoding is
field-bit-exact with whole-buffer decoding for arbitrary split points.
The rest covers the fault injector's determinism, the versioned
handshake's rejection path, and the retry/timeout/loss behavior of
:class:`repro.netsim.transport.FrameStream`.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.faults.transport import (
    TransportFaultInjected,
    TransportFaultPlan,
    parse_transport_fault_spec,
)
from repro.mpisim.packets import EagerPacket
from repro.netsim import channel as ch
from repro.netsim.transport import (
    PROTOCOL_VERSION,
    ConnectionLost,
    FrameDecoder,
    FrameStream,
    HandshakeError,
    TransportError,
    TransportOptions,
    TransportTimeout,
    client_handshake,
    connect_with_retry,
    enable_keepalive,
    encode_message,
    parse_hostport,
    server_handshake,
)
from repro.netsim.wire import pack_frame, unpack_frame

# ------------------------------------------------- chunked framing property

_FLOATS = st.floats(allow_nan=False)
_DATA = st.sampled_from((None, "bounce-0", "bounce-1", 17, (3, 4), b"x"))

#: Hot-class eager deliveries (the columnar path) -- same shape as the
#: wire-codec strategy in tests/test_sim_parallel.py.
_HOT_MSGS = st.builds(
    ch.ChannelMsg,
    when=_FLOATS, key=st.integers(-(2 ** 63), 2 ** 63 - 1),
    kind=st.just(ch.DELIVER),
    src_node=st.integers(0, 2 ** 31 - 1), src_port=st.integers(0, 65535),
    dst_node=st.integers(0, 2 ** 31 - 1), dst_port=st.integers(0, 65535),
    nbytes=_FLOATS,
    payload=st.builds(
        EagerPacket,
        seq=st.integers(-(2 ** 63), 2 ** 63 - 1),
        src=st.integers(-(2 ** 31), 2 ** 31 - 1),
        tag=st.integers(-(2 ** 31), 2 ** 31 - 1),
        nbytes=_FLOATS, data=_DATA,
        ctx=st.integers(-(2 ** 31), 2 ** 31 - 1),
    ),
    extra=st.tuples(_FLOATS, st.booleans(), st.booleans()),
)

#: Control traffic the columnar path declines (rides Frame.rest).
_REST_MSGS = st.builds(
    ch.ChannelMsg,
    when=_FLOATS, key=st.integers(0, 2 ** 40),
    kind=st.sampled_from((ch.PLACE, ch.ACK, ch.READ_REQ, ch.READ_DATA)),
    src_node=st.integers(0, 4095), src_port=st.just(0),
    dst_node=st.integers(0, 4095), dst_port=st.just(0),
    nbytes=_FLOATS,
    payload=st.just(None),
    extra=st.one_of(st.just(("token", 3)), st.integers(0, 9), st.just(None)),
)


def _assert_bit_exact(a, b) -> None:
    assert type(a) is type(b)
    if isinstance(a, float):
        assert struct.pack("<d", a) == struct.pack("<d", b)
    elif isinstance(a, EagerPacket):
        for va, vb in zip(a, b):
            _assert_bit_exact(va, vb)
    else:
        assert a == b


def _decode_all(decoder: FrameDecoder) -> list:
    out = []
    while True:
        ok, msg = decoder.pop()
        if not ok:
            return out
        out.append(msg)


@settings(max_examples=50, deadline=None)
@given(
    rounds=st.lists(
        st.lists(st.one_of(_HOT_MSGS, _REST_MSGS), max_size=12),
        min_size=1, max_size=4),
    data=st.data(),
)
def test_hypothesis_chunked_decode_bit_exact(rounds, data):
    """Frames split at arbitrary stream boundaries decode bit-exactly.

    Encode several rounds of packed channel messages as one contiguous
    byte stream, cut it at hypothesis-chosen positions (including
    mid-length-prefix and mid-payload), and feed the chunks to an
    incremental :class:`FrameDecoder`.  Every recovered message list
    must equal whole-buffer decoding field-bit-exactly.
    """
    frames = [pack_frame(msgs) for msgs in rounds]
    stream = b"".join(encode_message(("reply", f)) for f in frames)

    # Whole-buffer ground truth.
    whole = FrameDecoder()
    whole.feed(stream)
    expect = _decode_all(whole)
    assert whole.pending_bytes() == 0
    assert len(expect) == len(rounds)

    # Arbitrary split points (sorted, possibly duplicated -> empty chunks).
    cuts = sorted(data.draw(st.lists(
        st.integers(0, len(stream)), max_size=16)))
    chunked = FrameDecoder()
    got = []
    prev = 0
    for cut in cuts + [len(stream)]:
        chunked.feed(stream[prev:cut])
        got.extend(_decode_all(chunked))
        prev = cut
    assert chunked.pending_bytes() == 0
    assert len(got) == len(expect)
    for (tag_a, frame_a), (tag_b, frame_b), msgs in zip(got, expect, rounds):
        assert tag_a == tag_b == "reply"
        out_a = unpack_frame(frame_a)
        out_b = unpack_frame(frame_b)
        assert out_a == msgs and out_b == msgs
        for orig, back in zip(msgs, out_a):
            for va, vb in zip(orig, back):
                _assert_bit_exact(va, vb)


def test_decoder_byte_at_a_time():
    blob = encode_message(("hello", PROTOCOL_VERSION, {"x": 1.5}))
    decoder = FrameDecoder()
    out = []
    for i in range(len(blob)):
        decoder.feed(blob[i:i + 1])
        out.extend(_decode_all(decoder))
        # The message must not surface before its last byte arrived.
        assert bool(out) == (i == len(blob) - 1)
    assert out == [("hello", PROTOCOL_VERSION, {"x": 1.5})]


def test_decoder_rejects_oversized_header():
    decoder = FrameDecoder()
    with pytest.raises(TransportError):
        decoder.feed(struct.pack("!I", (1 << 31)))
        decoder.pop()


def test_parse_hostport():
    assert parse_hostport("example.com:81") == ("example.com", 81)
    assert parse_hostport(":81") == ("127.0.0.1", 81)
    assert parse_hostport("9000") == ("127.0.0.1", 9000)
    with pytest.raises(ValueError):
        parse_hostport("host:notaport")


def test_transport_options_validation():
    with pytest.raises(ValueError):
        TransportOptions(heartbeat_interval=0.0)
    with pytest.raises(ValueError):
        TransportOptions(heartbeat_interval=2.0, host_timeout=1.0)


# --------------------------------------------------------------- FrameStream

def _stream_pair() -> "tuple[FrameStream, FrameStream]":
    a, b = socket.socketpair()
    return FrameStream(a), FrameStream(b)


def test_stream_round_trip_and_counters():
    a, b = _stream_pair()
    try:
        a.send(("task", {"shard": 0}))
        assert b.recv(timeout=5.0) == ("task", {"shard": 0})
        assert a.frames_out == 1 and b.frames_in == 1
        assert a.bytes_out == b.bytes_in > 0
    finally:
        a.close()
        b.close()


def test_stream_recv_timeout():
    a, b = _stream_pair()
    try:
        t0 = time.monotonic()
        with pytest.raises(TransportTimeout):
            b.recv(timeout=0.05)
        assert time.monotonic() - t0 < 5.0
    finally:
        a.close()
        b.close()


def test_stream_peer_close_is_connection_lost():
    a, b = _stream_pair()
    try:
        a.close()
        with pytest.raises(ConnectionLost):
            b.recv(timeout=5.0)
    finally:
        b.close()


def test_stream_send_stays_blocking_after_try_recv():
    """Regression: ``try_recv`` leaves the socket non-blocking, and the
    null-sync coordinator always sends ``advance`` right after such a
    drain.  A frame larger than the free kernel send buffer must block
    until the peer drains it -- not surface a spurious ConnectionLost
    (and abort a healthy run) via BlockingIOError/socket.timeout."""
    a, b = _stream_pair()
    try:
        assert a.try_recv() == (False, None)  # socket now non-blocking
        big = ("reply", b"x" * (4 << 20))
        got = []
        reader = threading.Thread(
            # Start draining only after the kernel buffer is full, so a
            # non-blocking sendall would deterministically fail first.
            target=lambda: (time.sleep(0.2), got.append(b.recv(timeout=30.0))))
        reader.start()
        a.send(big)
        reader.join(timeout=30.0)
        assert got == [big]
    finally:
        a.close()
        b.close()


def test_enable_keepalive_on_accepted_tcp_socket():
    srv = socket.socket()
    srv.bind(("127.0.0.1", 0))
    srv.listen(1)
    cli = socket.create_connection(srv.getsockname()[:2])
    conn, _addr = srv.accept()
    try:
        assert enable_keepalive(conn) is True
        assert conn.getsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE) == 1
    finally:
        conn.close()
        cli.close()
        srv.close()


def test_stream_try_recv_nonblocking():
    a, b = _stream_pair()
    try:
        assert b.try_recv() == (False, None)
        a.send(("hb",))
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            ok, msg = b.try_recv()
            if ok:
                assert msg == ("hb",)
                break
            time.sleep(0.005)
        else:  # pragma: no cover
            pytest.fail("message never arrived")
    finally:
        a.close()
        b.close()


# --------------------------------------------------------- connect + handshake

def test_connect_with_retry_reaches_late_listener():
    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    srv.bind(("127.0.0.1", 0))
    host, port = srv.getsockname()[:2]
    # Listen only after a delay: the first attempts must be refused and
    # retried with backoff instead of failing the coordinator.
    timer = threading.Timer(0.3, srv.listen, args=(1,))
    timer.start()
    options = TransportOptions(connect_attempts=20, connect_base_delay=0.05)
    try:
        sock, attempts = connect_with_retry(host, port, options)
        sock.close()
        assert attempts >= 1
    finally:
        timer.cancel()
        srv.close()


def test_connect_with_retry_gives_up():
    # A bound-but-never-listening port refuses every dial.
    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    srv.bind(("127.0.0.1", 0))
    host, port = srv.getsockname()[:2]
    options = TransportOptions(connect_attempts=2, connect_base_delay=0.01)
    try:
        with pytest.raises(TransportError):
            connect_with_retry(host, port, options)
    finally:
        srv.close()


def test_handshake_version_mismatch_rejected():
    a, b = _stream_pair()
    errors = []

    def serve():
        try:
            server_handshake(b, {"pid": 1}, timeout=5.0)
        except HandshakeError as exc:
            errors.append(exc)

    thread = threading.Thread(target=serve)
    thread.start()
    try:
        with pytest.raises(HandshakeError) as info:
            client_handshake(a, {"shard": 0}, timeout=5.0,
                             version=PROTOCOL_VERSION + 1)
        thread.join(timeout=5.0)
        # Both sides name the version clash; the client got the server's
        # explicit ("reject", ...) frame, not a dropped connection.
        assert "version" in str(info.value)
        assert len(errors) == 1
    finally:
        a.close()
        b.close()


def test_handshake_success_exchanges_meta():
    a, b = _stream_pair()
    server_meta = {}

    def serve():
        server_meta.update(server_handshake(b, {"pid": 42}, timeout=5.0))

    thread = threading.Thread(target=serve)
    thread.start()
    try:
        worker = client_handshake(a, {"shard": 3}, timeout=5.0)
        thread.join(timeout=5.0)
        assert worker["pid"] == 42
        assert server_meta["shard"] == 3
    finally:
        a.close()
        b.close()


# ------------------------------------------------------- deterministic faults

def test_parse_transport_fault_spec():
    plan = parse_transport_fault_spec("drop-after=12,slow=0.01")
    assert plan.drop_after_frames == 12
    assert plan.slow_send_s == pytest.approx(0.01)
    plan = parse_transport_fault_spec("stall-after=30,stall=2.5")
    assert plan.stall_after_frames == 30
    assert plan.stall_s == pytest.approx(2.5)
    with pytest.raises(ValueError):
        parse_transport_fault_spec("explode-after=1")


def test_injector_drops_at_exact_frame():
    plan = TransportFaultPlan(drop_after_frames=3)
    a_raw, b_raw = socket.socketpair()
    a = FrameStream(a_raw, injector=plan.injector())
    b = FrameStream(b_raw)
    try:
        for i in range(3):
            a.send(("hb",))
        with pytest.raises(TransportFaultInjected):
            a.send(("hb",))
        # The injected drop hard-closes the socket: the peer reads the
        # three pre-fault frames, then EOF.
        for _ in range(3):
            assert b.recv(timeout=5.0) == ("hb",)
        with pytest.raises(ConnectionLost):
            b.recv(timeout=5.0)
    finally:
        a.close()
        b.close()
