"""Tests for the a-priori transfer-time table."""

import pytest

from repro.core.xfer_table import XferTable


@pytest.fixture
def table():
    # 1 KiB -> 10 us, 1 MiB -> 1 ms style measurements.
    return XferTable([1024.0, 65536.0, 1048576.0], [10e-6, 80e-6, 1.1e-3])


def test_exact_points_returned_verbatim(table):
    assert table.time_for(1024) == pytest.approx(10e-6)
    assert table.time_for(65536) == pytest.approx(80e-6)
    assert table.time_for(1048576) == pytest.approx(1.1e-3)


def test_interpolation_between_points(table):
    mid = (1024 + 65536) / 2
    expect = (10e-6 + 80e-6) / 2
    assert table.time_for(mid) == pytest.approx(expect)


def test_zero_and_negative_sizes_cost_nothing(table):
    assert table.time_for(0) == 0.0
    assert table.time_for(-5) == 0.0


def test_below_range_scales_by_smallest_rate(table):
    assert table.time_for(512) == pytest.approx(10e-6 * 512 / 1024)


def test_above_range_extrapolates_with_boundary_bandwidth(table):
    slope = (1.1e-3 - 80e-6) / (1048576 - 65536)
    expect = 1.1e-3 + slope * (2 * 1048576 - 1048576)
    assert table.time_for(2 * 1048576) == pytest.approx(expect)


def test_monotone_in_size(table):
    sizes = [2**k for k in range(0, 24)]
    times = [table.time_for(s) for s in sizes]
    assert all(b >= a for a, b in zip(times, times[1:]))


def test_times_for_vectorized_matches_scalar(table):
    sizes = [100.0, 1024.0, 50000.0, 4e6]
    vec = table.times_for(sizes)
    assert list(vec) == pytest.approx([table.time_for(s) for s in sizes])


def test_bandwidth_for(table):
    assert table.bandwidth_for(1048576) == pytest.approx(1048576 / 1.1e-3)


def test_single_point_table_scales_proportionally():
    t = XferTable([1000.0], [1e-4])
    assert t.time_for(2000.0) == pytest.approx(2e-4)
    assert t.time_for(500.0) == pytest.approx(5e-5)


def test_roundtrip_through_disk(tmp_path, table):
    path = tmp_path / "xfer.tsv"
    table.save(path)
    loaded = XferTable.load(path)
    assert loaded == table


def test_loads_skips_comments_and_blank_lines():
    text = "# header\n\n1024\t1e-5\n2048\t2e-5\n"
    t = XferTable.loads(text)
    assert t.time_for(1024) == pytest.approx(1e-5)


def test_loads_rejects_malformed_lines():
    with pytest.raises(ValueError, match="malformed"):
        XferTable.loads("1024 1e-5 junk\n")


def test_from_model_matches_latency_bandwidth():
    t = XferTable.from_model(latency=5e-6, bandwidth=1e9)
    assert t.time_for(1e6) == pytest.approx(5e-6 + 1e-3, rel=1e-6)


@pytest.mark.parametrize(
    "sizes,times",
    [
        ([], []),
        ([0.0], [1e-6]),
        ([-1.0], [1e-6]),
        ([2.0, 1.0], [1e-6, 2e-6]),
        ([1.0, 1.0], [1e-6, 2e-6]),
        ([1.0], [0.0]),
        ([1.0], [-1e-9]),
        ([1.0, 2.0], [1e-6]),
    ],
)
def test_invalid_construction_rejected(sizes, times):
    with pytest.raises(ValueError):
        XferTable(sizes, times)


def test_equality_and_repr(table):
    same = XferTable(table.sizes, table.times)
    assert table == same
    assert table != XferTable([1.0], [1e-6])
    assert table.__eq__(42) is NotImplemented
    assert "points" in repr(table)
