"""Socket shard backend: bit-identity, loss detection, diagnostics.

Drives :mod:`repro.sim.remote` worker servers in-process (no
subprocesses: the accept loop runs on a background thread, sessions on
their own threads) and checks the coordinator-side contract of
``run_app_sharded(backend="socket")``:

* results are **bit-identical** to the single-process ground truth under
  both synchronization protocols -- the same differential referee the
  fork backend passes;
* a worker that dies mid-run (deterministic ``drop-after`` fault) fails
  the run with :class:`ShardHostLost` *immediately* -- reason
  ``connection-lost`` -- never a hang;
* a worker that goes **silent** (deterministic ``stall-after`` fault,
  which holds the send lock so heartbeats stop too) is declared lost
  within ``host_timeout`` -- reason ``heartbeat-timeout``;
* either loss carries a diagnostic snapshot and a partial report, and
  the exception advertises ``retryable = True`` for the service layer;
* a worker that speaks the wrong protocol version is rejected in the
  handshake, and an address nobody listens on fails with a clear
  :class:`ShardError` after bounded connect retries.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.halo import halo_app
from repro.faults.transport import TransportFaultPlan
from repro.mpisim.config import mvapich2_like
from repro.netsim.differential import assert_sharded_identical
from repro.netsim.transport import (
    PROTOCOL_VERSION,
    FrameStream,
    HandshakeError,
    TransportOptions,
    client_handshake,
    connect_with_retry,
)
from repro.runtime.launcher import run_app
from repro.sim.remote import WorkerServer
from repro.sim.parallel import ShardError, ShardHostLost

_APP_ARGS = (3, 2048.0, 15.0e-6)

#: Fast loss detection for tests: frequent heartbeats, short silence
#: budget, few connect attempts.
_FAST = TransportOptions(
    connect_attempts=3, connect_base_delay=0.02,
    heartbeat_interval=0.1, host_timeout=2.0,
)


def _run_socket(hosts, sync="window", transport=_FAST, ranks=8, shards=2):
    return run_app(
        halo_app, ranks, config=mvapich2_like(), app_args=_APP_ARGS,
        shards=shards, shard_sync=sync, shard_backend="socket",
        shard_hosts=hosts, shard_transport=transport,
    )


# ---------------------------------------------------------------- bit identity

@pytest.mark.parametrize("sync", ("window", "null"))
def test_socket_backend_bit_identical(sync):
    with WorkerServer() as w0, WorkerServer() as w1:
        assert_sharded_identical(
            halo_app, 8, 2, backend="socket", sync=sync,
            config=mvapich2_like(), app_args=_APP_ARGS,
            hosts=[w0.address, w1.address], transport=_FAST,
        )


def test_socket_transport_stats_surface():
    with WorkerServer() as worker:
        result = _run_socket([worker.address])
    stats = result.sync_stats["transport"]
    assert stats["hosts"] == [worker.address] * 2
    assert stats["frames_out"] > 0 and stats["frames_in"] > 0
    assert stats["bytes_out"] > 0 and stats["bytes_in"] > 0
    # Framing + pickle + heartbeats cost something over raw payload.
    assert stats["bytes_out"] + stats["bytes_in"] > stats["payload_bytes"]
    for shard in result.shard_stats:
        assert shard["host"] == worker.address
        assert shard["frames_out"] > 0


# ------------------------------------------------------------------ host loss

def test_dropped_worker_is_lost_immediately():
    plan = TransportFaultPlan(drop_after_frames=5)
    with WorkerServer(fault_plan=plan) as bad, WorkerServer() as good:
        t0 = time.monotonic()
        with pytest.raises(ShardHostLost) as info:
            _run_socket([bad.address, good.address])
        elapsed = time.monotonic() - t0
    exc = info.value
    # EOF beats the heartbeat deadline: detection is immediate, well
    # under the host_timeout silence budget.
    assert elapsed < _FAST.host_timeout
    assert exc.reason == "connection-lost"
    assert exc.retryable is True
    assert exc.shard == 0 and exc.host == bad.address


def test_stalled_worker_is_lost_within_host_timeout():
    # The stall holds the worker's send lock, so heartbeats stop too:
    # pure silence, detectable only via the host_timeout deadline.
    plan = TransportFaultPlan(stall_after_frames=5, stall_s=4.0)
    with WorkerServer(fault_plan=plan) as bad, WorkerServer() as good:
        t0 = time.monotonic()
        with pytest.raises(ShardHostLost) as info:
            _run_socket([bad.address, good.address], sync="null")
        elapsed = time.monotonic() - t0
    exc = info.value
    assert exc.reason == "heartbeat-timeout"
    # Lost no earlier than the silence budget, not much later either.
    assert _FAST.host_timeout * 0.5 <= elapsed <= _FAST.host_timeout + 3.0


def test_host_loss_carries_diagnostic_and_partial():
    plan = TransportFaultPlan(drop_after_frames=5)
    with WorkerServer(fault_plan=plan) as bad, WorkerServer() as good:
        with pytest.raises(ShardHostLost) as info:
            _run_socket([bad.address, good.address])
    exc = info.value
    diag = exc.diagnostic
    assert diag is not None
    assert diag.reason == "connection-lost"
    assert len(diag.shards) == 2
    assert [s["lost"] for s in diag.shards] == [True, False]
    text = diag.render_text()
    assert "shard-loss" in text and "[LOST]" in text
    partial = exc.partial
    assert partial is not None
    assert partial["reason"] == "connection-lost"
    assert partial["lost_shard"] == 0
    assert len(partial["shards"]) == 2


# ------------------------------------------------------- handshake + dialing

def test_worker_rejects_version_mismatch():
    with WorkerServer() as worker:
        sock, _ = connect_with_retry(worker.host, worker.port, _FAST)
        stream = FrameStream(sock)
        try:
            with pytest.raises(HandshakeError) as info:
                client_handshake(stream, {"shard": 0}, timeout=5.0,
                                 version=PROTOCOL_VERSION + 7)
            assert "version" in str(info.value)
        finally:
            stream.close()
        # The server survives a rejected peer: a correct dial still works.
        sock, _ = connect_with_retry(worker.host, worker.port, _FAST)
        stream = FrameStream(sock)
        try:
            meta = client_handshake(stream, {"shard": 0}, timeout=5.0)
            assert meta["protocol"] == PROTOCOL_VERSION
        finally:
            stream.close()


def test_unreachable_host_is_shard_error():
    # Bound but never listening: every dial is refused, retries run out.
    import socket as _socket

    srv = _socket.socket(_socket.AF_INET, _socket.SOCK_STREAM)
    srv.bind(("127.0.0.1", 0))
    host, port = srv.getsockname()[:2]
    try:
        with pytest.raises(ShardError) as info:
            _run_socket([f"{host}:{port}"])
        assert "shard 0" in str(info.value)
    finally:
        srv.close()


def test_socket_backend_requires_hosts():
    with pytest.raises(ValueError) as info:
        run_app(
            halo_app, 8, config=mvapich2_like(), app_args=_APP_ARGS,
            shards=2, shard_backend="socket",
        )
    assert "hosts" in str(info.value)
