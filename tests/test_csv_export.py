"""Tests for CSV export of experiment records."""

import csv
import io

from repro.analysis.export import micro_csv, nas_char_csv, overhead_csv, sp_tuning_csv
from repro.experiments.micro import overlap_sweep
from repro.experiments.nas_char import characterize
from repro.experiments.overhead import OverheadPoint
from repro.experiments.sp_tuning import sp_tuning
from repro.mpisim.config import MpiConfig
from repro.nas.base import CpuModel

FAST = CpuModel(flop_rate=100e9)


def _parse(text):
    return list(csv.DictReader(io.StringIO(text)))


def test_micro_csv_rows_and_fields(tmp_path):
    points = overlap_sweep("isend_irecv", 8192, [0.0, 1e-5], MpiConfig(), iters=3)
    path = tmp_path / "micro.csv"
    text = micro_csv(points, path)
    rows = _parse(text)
    assert len(rows) == 4  # 2 points x 2 sides
    assert rows[0]["side"] == "sender"
    assert float(rows[2]["compute_s"]) == 1e-5
    assert path.read_text() == text


def test_nas_char_csv():
    point = characterize("cg", "S", 4, niter=1, cpu=FAST)
    rows = _parse(nas_char_csv([point]))
    assert len(rows) == 1
    assert rows[0]["benchmark"] == "cg"
    assert int(rows[0]["transfers"]) > 0
    assert 0.0 <= float(rows[0]["max_overlap_pct"]) <= 100.0 + 1e-6


def test_sp_tuning_csv():
    result = sp_tuning("S", 4, niter=1, cpu=FAST)
    rows = _parse(sp_tuning_csv([result]))
    assert len(rows) == 4  # 2 variants x 2 scopes
    keys = {(r["variant"], r["scope"]) for r in rows}
    assert keys == {("original", "section"), ("original", "full"),
                    ("modified", "section"), ("modified", "full")}


def test_overhead_csv():
    p = OverheadPoint("lu", "A", 4, 1.002, 1.0, 500)
    rows = _parse(overhead_csv([p]))
    assert len(rows) == 1
    assert float(rows[0]["overhead_pct"]) > 0


def test_empty_inputs_yield_header_only():
    for fn in (micro_csv, nas_char_csv, sp_tuning_csv, overhead_csv):
        text = fn([])
        assert text.count("\n") == 1  # just the header line
