"""Tests for strided ARMCI transfers (PutS/GetS): data placement,
strategy selection, timing trade-offs, and instrumentation accounting."""

import numpy as np
import pytest

from repro.armci import ArmciConfig, StridedSpec, run_armci_app
from repro.armci.strided import AUTO, DIRECT, PACKED, PACK_THRESHOLD, choose_strategy

CFG = ArmciConfig(name="t-strided")


def spec_for(dtype_size=8, seg_elems=4, stride_elems=16, count=3, start_elems=0):
    return StridedSpec(
        offset=start_elems * dtype_size,
        seg_nbytes=seg_elems * dtype_size,
        stride=stride_elems * dtype_size,
        count=count,
    )


class TestStrategySelection:
    def test_auto_packs_small_segments(self):
        small = StridedSpec(0, PACK_THRESHOLD - 1, 1 << 20, 8)
        large = StridedSpec(0, PACK_THRESHOLD, 1 << 20, 8)
        assert choose_strategy(small, AUTO) == PACKED
        assert choose_strategy(large, AUTO) == DIRECT

    def test_explicit_strategies_pass_through(self):
        spec = StridedSpec(0, 100, 1000, 2)
        assert choose_strategy(spec, PACKED) == PACKED
        assert choose_strategy(spec, DIRECT) == DIRECT

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            choose_strategy(StridedSpec(0, 1, 1, 1), "zigzag")

    def test_total_nbytes(self):
        assert StridedSpec(0, 96.0, 512, 5).total_nbytes == 480.0


class TestStridedDataPath:
    @pytest.mark.parametrize("strategy", [PACKED, DIRECT])
    def test_put_places_segments_at_strides(self, strategy):
        spec = spec_for(seg_elems=4, stride_elems=10, count=3, start_elems=2)

        def app(ctx):
            ctx.malloc("win", 64)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                data = np.arange(12, dtype=np.float64)  # 3 segments of 4
                yield from ctx.armci.put_strided(1, "win", spec, data,
                                                 strategy=strategy)
            yield from ctx.armci.barrier()
            if ctx.rank == 1:
                win = ctx.armci.region_of(1, "win").array
                for seg in range(3):
                    lo = 2 + seg * 10
                    np.testing.assert_array_equal(
                        win[lo : lo + 4], np.arange(seg * 4, seg * 4 + 4)
                    )
                # Gaps untouched.
                assert win[0] == 0.0 and win[6] == 0.0

        run_armci_app(app, 2, config=CFG)

    @pytest.mark.parametrize("strategy", [PACKED, DIRECT])
    def test_get_gathers_segments(self, strategy):
        spec = spec_for(seg_elems=2, stride_elems=8, count=4)

        def app(ctx):
            region = ctx.malloc("win", 32)
            region.array[:] = np.arange(32) + 100 * ctx.rank
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                data = yield from ctx.armci.get_strided(
                    1, "win", spec, want_data=True, strategy=strategy
                )
                expect = np.concatenate(
                    [100 + np.arange(seg * 8, seg * 8 + 2) for seg in range(4)]
                )
                np.testing.assert_array_equal(data, expect)
            yield from ctx.armci.barrier()

        run_armci_app(app, 2, config=CFG)

    def test_nonblocking_strided_put_completes_on_wait(self):
        spec = spec_for(count=2)

        def app(ctx):
            ctx.malloc("win", 64)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                h = yield from ctx.armci.nbput_strided(
                    1, "win", spec, np.ones(8)
                )
                assert not h.done
                yield from ctx.armci.wait(h)
                assert h.done
            yield from ctx.armci.barrier()

        run_armci_app(app, 2, config=CFG)

    def test_size_only_strided(self):
        spec = StridedSpec(0, 4096.0, 8192, 16)

        def app(ctx):
            ctx.malloc("win", 4)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                h = yield from ctx.armci.nbput_strided(1, "win", spec)
                yield from ctx.armci.wait(h)
                g = yield from ctx.armci.get_strided(1, "win", spec)
                assert g is None
            yield from ctx.armci.barrier()

        run_armci_app(app, 2, config=CFG)


class TestStridedTiming:
    def _elapsed(self, strategy, seg_nbytes, count):
        spec = StridedSpec(0, seg_nbytes, int(seg_nbytes * 2), count)

        def app(ctx):
            ctx.malloc("win", 4)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                yield from ctx.armci.put_strided(1, "win", spec,
                                                 strategy=strategy)
            yield from ctx.armci.barrier()

        return run_armci_app(app, 2, config=CFG).elapsed

    def test_packing_wins_for_many_small_segments(self):
        # 64 segments of 256 B: 64 latencies vs one copy + one latency.
        packed = self._elapsed(PACKED, 256.0, 64)
        direct = self._elapsed(DIRECT, 256.0, 64)
        assert packed < direct

    def test_direct_wins_for_few_large_segments(self):
        # 2 segments of 1 MiB: the pack memcpy dominates.
        packed = self._elapsed(PACKED, float(1 << 20), 2)
        direct = self._elapsed(DIRECT, float(1 << 20), 2)
        assert direct < packed


class TestStridedInstrumentation:
    def test_counts_one_logical_transfer_of_total_size(self):
        spec = StridedSpec(0, 1024.0, 2048, 8)

        def app(ctx):
            ctx.malloc("win", 4)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                h = yield from ctx.armci.nbput_strided(
                    1, "win", spec, strategy=DIRECT
                )
                yield from ctx.compute(1e-3)
                yield from ctx.armci.wait(h)
            yield from ctx.armci.barrier()

        result = run_armci_app(app, 2, config=CFG)
        m = result.report(0).total
        assert m.transfer_count == 1
        # The transfer is binned at the total payload size (8 KiB).
        assert m.bins.bins[m.bins.index_for(8192)].count == 1

    def test_nonblocking_strided_overlaps(self):
        spec = StridedSpec(0, 65536.0, 131072, 8)  # 512 KiB total

        def app(ctx):
            ctx.malloc("win", 4)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                h = yield from ctx.armci.nbput_strided(1, "win", spec)
                yield from ctx.compute(2e-3)
                yield from ctx.armci.wait(h)
            yield from ctx.armci.barrier()

        result = run_armci_app(app, 2, config=CFG)
        assert result.report(0).total.max_overlap_pct > 90.0
