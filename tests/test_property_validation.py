"""Property test: for randomized workloads, the derived bounds always
bracket the simulator's ground-truth overlap."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.experiments.validation import validate_bounds
from repro.mpisim import MpiConfig
from repro.runtime import run_app

_STEP = st.tuples(
    st.integers(min_value=64, max_value=1 << 20),  # message size
    st.floats(min_value=0.0, max_value=2e-3, allow_nan=False),  # compute
    st.booleans(),  # sender non-blocking?
)


@given(
    st.lists(_STEP, min_size=1, max_size=10),
    st.sampled_from(["pipelined", "rget", "rput"]),
    st.integers(min_value=1024, max_value=65536),
)
@settings(max_examples=50, deadline=None)
def test_bounds_always_bracket_ground_truth(steps, rndv, eager_limit):
    config = MpiConfig(name="prop-val", eager_limit=eager_limit,
                       rndv_mode=rndv, frag_size=32 * 1024,
                       leave_pinned=True)

    def app(ctx):
        for nbytes, compute, nonblocking in steps:
            if ctx.rank == 0:
                if nonblocking:
                    req = yield from ctx.comm.isend(1, 0, nbytes)
                    yield from ctx.compute(compute)
                    yield from ctx.comm.wait(req)
                else:
                    yield from ctx.comm.send(1, 0, nbytes)
                    yield from ctx.compute(compute)
            else:
                req = yield from ctx.comm.irecv(0, 0)
                yield from ctx.compute(compute / 2)
                yield from ctx.comm.wait(req)

    result = run_app(app, 2, config=config, record_transfers=True)
    for check in validate_bounds(result):
        assert check.min_holds, check
        assert check.max_holds, check
