"""Streaming cluster rollup: totals, percentiles, imbalance, persistence."""

import json

import pytest

from repro.core.report import aggregate_reports
from repro.mpisim.config import MpiConfig
from repro.runtime import run_app
from repro.telemetry import (
    ClusterRollup,
    StreamStats,
    TelemetryConfig,
    load_rank_telemetry,
    rollup_files,
    save_rank_telemetry,
    write_run_telemetry,
)
from repro.telemetry.windows import WINDOW_METRICS

NRANKS = 4


def _ring_app(ctx):
    peer = (ctx.rank + 1) % ctx.size
    src = (ctx.rank - 1) % ctx.size
    for _ in range(5):
        sreq = yield from ctx.comm.isend(peer, 9, 48 * 1024)
        rreq = yield from ctx.comm.irecv(src, 9)
        # Deliberate imbalance: rank 0 computes twice as long.
        yield from ctx.compute(2e-4 if ctx.rank == 0 else 1e-4)
        yield from ctx.comm.wait(sreq)
        yield from ctx.comm.wait(rreq)


@pytest.fixture(scope="module")
def run():
    return run_app(
        _ring_app, NRANKS,
        config=MpiConfig(name="rollup-test", eager_limit=1024),
        telemetry=TelemetryConfig(window_width=1e-4),
        label="ring",
    )


def _build(run):
    rollup = ClusterRollup(width=run.telemetry.series(0).width)
    for rt in run.telemetry.per_rank:
        rollup.add_rank(run.report(rt.rank), rt.series)
    return rollup


def test_rollup_totals_match_aggregate_reports(run):
    rollup = _build(run)
    merged = aggregate_reports([run.report(r) for r in range(NRANKS)])
    totals = rollup.result()["totals"]["total"]
    for metric in WINDOW_METRICS:
        assert totals[metric] == pytest.approx(
            getattr(merged, metric), rel=1e-12
        )
    assert rollup.result()["nranks"] == NRANKS


def test_rollup_does_not_mutate_inputs(run):
    before = run.report(0).total.data_transfer_time
    _build(run)
    assert run.report(0).total.data_transfer_time == before


def test_window_percentiles_within_min_max(run):
    for row in _build(run).result()["windows"]:
        for metric in WINDOW_METRICS:
            cell = row["metrics"][metric]
            assert cell["min"] <= cell["p50"] <= cell["max"]
            assert cell["min"] <= cell["p25"] <= cell["p75"] <= cell["max"]
            assert cell["p75"] <= cell["p95"] <= cell["max"]
            assert cell["min"] <= cell["mean"] <= cell["max"] + 1e-18


def test_imbalance_flags_the_slow_rank(run):
    imb = _build(run).result()["imbalance"]
    comp = imb["computation_time"]
    assert comp["max_rank"] == 0  # the rank given 2x compute
    assert comp["max_over_mean"] > 1.0


def test_render_text_mentions_ranks_and_imbalance(run):
    text = _build(run).render_text()
    assert f"{NRANKS} ranks" in text
    assert "rank imbalance" in text
    assert "overlap bounds" in text


def test_rank_file_roundtrip(run, tmp_path):
    path = tmp_path / "telemetry.rank2.json"
    save_rank_telemetry(path, run.report(2), run.telemetry.series(2))
    report, series = load_rank_telemetry(path)
    assert report.rank == 2
    assert series.windows == run.telemetry.series(2).windows
    assert report.total.max_overlap_time == run.report(2).total.max_overlap_time


def test_rollup_files_streams_and_matches_in_memory(run, tmp_path):
    paths = []
    for r in range(NRANKS):
        p = tmp_path / f"telemetry.rank{r}.json"
        save_rank_telemetry(p, run.report(r), run.telemetry.series(r))
        paths.append(p)
    streamed = rollup_files(paths).result()
    in_memory = _build(run).result()
    assert streamed["totals"] == in_memory["totals"]
    assert streamed["nranks"] == in_memory["nranks"]
    assert len(streamed["windows"]) == len(in_memory["windows"])


def test_rollup_mixed_widths_resamples_fine_onto_coarse(run):
    rollup = ClusterRollup(width=run.telemetry.series(0).width * 2)
    for rt in run.telemetry.per_rank:
        rollup.add_rank(run.report(rt.rank), rt.series)
    res = rollup.result()
    merged = aggregate_reports([run.report(r) for r in range(NRANKS)])
    assert res["totals"]["total"]["computation_time"] == pytest.approx(
        merged.computation_time, rel=1e-12
    )


def test_rollup_rejects_series_coarser_than_grid(run):
    rollup = ClusterRollup(width=run.telemetry.series(0).width / 2)
    with pytest.raises(ValueError):
        rollup.add_rank(run.report(0), run.telemetry.series(0))


def test_rollup_files_empty_raises():
    with pytest.raises(ValueError):
        rollup_files([])


def test_load_rank_telemetry_rejects_bad_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format_version": 999}))
    with pytest.raises(ValueError):
        load_rank_telemetry(path)


def test_write_run_telemetry_layout(run, tmp_path):
    out = tmp_path / "out"
    written = write_run_telemetry(run, out)
    assert len(written["ranks"]) == NRANKS
    assert len(written["trace"]) == 1
    assert len(written["rollup"]) == 1
    for path in written["ranks"] + written["trace"] + written["rollup"]:
        with open(path, encoding="utf-8") as fh:
            json.load(fh)  # all artifacts are valid JSON
    rolled = json.load(open(written["rollup"][0], encoding="utf-8"))
    assert rolled["nranks"] == NRANKS


def test_stream_stats_quantiles_and_padding():
    st = StreamStats()
    for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
        st.add(v, tag=int(v))
    assert st.count == 5
    assert st.min == 1.0 and st.max == 5.0
    assert st.argmax == 5
    assert st.quantile(0.5) == 3.0
    # Padding with zeros for ranks that had no window here.
    assert st.quantile(0.5, pad_zeros_to=10) == 0.0


def test_stream_stats_reservoir_is_bounded_and_deterministic():
    a, b = StreamStats(sample_cap=16), StreamStats(sample_cap=16)
    for i in range(1000):
        a.add(float(i))
        b.add(float(i))
    assert len(a.samples) == 16
    assert a.samples == b.samples  # LCG makes the reservoir reproducible
    assert a.count == 1000
