"""Tests for the Bruck alltoall schedule and persistent requests."""

import pytest

from repro.mpisim import MpiConfig
from repro.mpisim.collectives.alltoall import bruck_round_count
from repro.mpisim.status import MpiError
from repro.runtime import run_app

PAIRWISE = MpiConfig(name="a2a-pw", alltoall_algorithm="pairwise")
BRUCK = MpiConfig(name="a2a-bruck", alltoall_algorithm="bruck")


class TestBruck:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 5, 7, 8])
    def test_data_placement_matches_pairwise_semantics(self, nprocs):
        def app(ctx):
            blocks = [f"{ctx.rank}->{dst}" for dst in range(ctx.size)]
            got = yield from ctx.comm.alltoall(512, blocks)
            assert got == [f"{src}->{ctx.rank}" for src in range(ctx.size)]

        run_app(app, nprocs, config=BRUCK)

    def test_round_count(self):
        assert bruck_round_count(1) == 0
        assert bruck_round_count(2) == 1
        assert bruck_round_count(5) == 3
        assert bruck_round_count(8) == 3

    def test_fewer_messages_than_pairwise_at_scale(self):
        def app(ctx):
            yield from ctx.comm.alltoall(256)

        counts = {}
        for config in (PAIRWISE, BRUCK):
            result = run_app(app, 16, config=config)
            counts[config.name] = result.report(0).total.transfer_count
        # Pairwise: 15 sends + 15 recvs; Bruck: 4 rounds x 2.
        assert counts["a2a-pw"] == 30
        assert counts["a2a-bruck"] == 2 * bruck_round_count(16)

    def test_bruck_faster_for_small_messages_many_ranks(self):
        # The log-round advantage overtakes pairwise's pipelining once the
        # rank count is large enough (~32 in this cost model -- the same
        # regime real MPIs switch algorithms in).
        def app(ctx):
            for _ in range(5):
                yield from ctx.comm.alltoall(64)

        times = {}
        for config in (PAIRWISE, BRUCK):
            times[config.name] = run_app(app, 32, config=config).elapsed
        assert times["a2a-bruck"] < times["a2a-pw"]

    def test_pairwise_faster_for_large_messages(self):
        # Bruck moves every byte ~log2(P)/2 times: loses on bandwidth.
        def app(ctx):
            yield from ctx.comm.alltoall(1 << 20)

        times = {}
        for config in (PAIRWISE, BRUCK):
            times[config.name] = run_app(app, 8, config=config).elapsed
        assert times["a2a-pw"] < times["a2a-bruck"]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            MpiConfig(alltoall_algorithm="magic")


class TestPersistentRequests:
    def test_start_wait_cycle_reuses_recipe(self):
        def app(ctx):
            if ctx.rank == 0:
                psend = ctx.comm.send_init(1, 5, 1024, data="payload")
                for _ in range(4):
                    yield from ctx.comm.start(psend)
                    yield from ctx.comm.wait_persistent(psend)
                    assert not psend.is_active
            else:
                precv = ctx.comm.recv_init(0, 5)
                for _ in range(4):
                    yield from ctx.comm.start(precv)
                    status, data = yield from ctx.comm.wait_persistent(precv)
                    assert status.source == 0
                    assert data == "payload"

        run_app(app, 2)

    def test_startall_exchange(self):
        def app(ctx):
            other = 1 - ctx.rank
            reqs = [
                ctx.comm.send_init(other, 1, 4096, data=ctx.rank),
                ctx.comm.recv_init(other, 1),
            ]
            for _ in range(3):
                yield from ctx.comm.startall(reqs)
                _, _ = yield from ctx.comm.wait_persistent(reqs[0])
                _, data = yield from ctx.comm.wait_persistent(reqs[1])
                assert data == other

        run_app(app, 2)

    def test_double_start_rejected(self):
        def app(ctx):
            if ctx.rank == 0:
                preq = ctx.comm.recv_init(1, 1)
                yield from ctx.comm.start(preq)
                yield from ctx.comm.start(preq)  # still active
            else:
                yield from ctx.compute(1e-3)
                yield from ctx.comm.send(0, 1, 64)

        with pytest.raises(MpiError, match="already active"):
            run_app(app, 2)

    def test_wait_before_start_rejected(self):
        def app(ctx):
            preq = ctx.comm.recv_init(0, 1)
            yield from ctx.comm.wait_persistent(preq)

        with pytest.raises(MpiError, match="not been started"):
            run_app(app, 1)

    def test_init_validates_peer(self):
        def app(ctx):
            with pytest.raises(MpiError):
                ctx.comm.send_init(99, 1, 10)
            yield from ctx.comm.barrier()

        run_app(app, 2)

    def test_bad_kind_rejected(self):
        from repro.mpisim.request import PersistentRequest

        with pytest.raises(ValueError):
            PersistentRequest("probe", 0, 0, 0)
