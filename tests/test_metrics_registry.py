"""Tests for the repro.metrics registry primitives."""

import math

import pytest

from repro.metrics import MetricsError, MetricsRegistry
from repro.metrics.registry import Counter, Gauge, Histogram


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------
def test_counter_accumulates_and_rejects_negative():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(MetricsError):
        c.inc(-1)


def test_gauge_tracks_high_water():
    g = Gauge()
    g.set(3.0)
    g.set(1.0)
    assert g.value == 1.0
    assert g.high_water == 3.0
    g.inc(9.0)
    assert g.value == 10.0
    assert g.high_water == 10.0
    g.dec(4.0)
    assert g.value == 6.0
    assert g.high_water == 10.0


def test_histogram_log2_bucketing_is_exact():
    h = Histogram(lo_exp=0, hi_exp=3)  # bounds 1, 2, 4, 8, +Inf
    assert h.bounds == [1.0, 2.0, 4.0, 8.0]
    h.observe(0.5)   # below range -> first bucket
    h.observe(1.0)   # exactly on bound 1
    h.observe(1.5)   # (1, 2]
    h.observe(8.0)   # exactly on bound 8
    h.observe(100.0)  # above range -> +Inf
    h.observe(0.0)   # nonpositive -> first bucket
    assert h.counts == [3, 1, 0, 1, 1]
    assert h.count == 6
    assert h.sum == pytest.approx(111.0)


def test_histogram_power_of_two_lands_on_its_own_bound():
    h = Histogram(lo_exp=-4, hi_exp=4)
    for k in range(-4, 5):
        h.observe(math.ldexp(1.0, k))
    # Every power of two must land exactly on its bound, not the next one.
    assert h.counts[: 9] == [1] * 9
    assert h.counts[9:] == [0] * (len(h.counts) - 9)


def test_histogram_bad_range_rejected():
    with pytest.raises(MetricsError):
        Histogram(lo_exp=2, hi_exp=1)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_registry_get_or_create_shares_stored_metrics():
    reg = MetricsRegistry()
    a = reg.counter("repro_x", "help")
    b = reg.counter("repro_x")
    assert a is b
    a.inc()
    assert b.value == 1.0


def test_registry_distinguishes_label_sets():
    reg = MetricsRegistry()
    a = reg.counter("repro_x", labels={"rank": "0"})
    b = reg.counter("repro_x", labels={"rank": "1"})
    assert a is not b
    a.inc(2)
    snap = reg.snapshot()
    samples = snap["metrics"]["repro_x"]["samples"]
    by_rank = {s["labels"]["rank"]: s["value"] for s in samples}
    assert by_rank == {"0": 2.0, "1": 0.0}


def test_registry_rejects_kind_conflicts_and_bad_names():
    reg = MetricsRegistry()
    reg.counter("repro_x")
    with pytest.raises(MetricsError):
        reg.gauge("repro_x")
    with pytest.raises(MetricsError):
        reg.counter("0bad")
    with pytest.raises(MetricsError):
        reg.counter("repro_y", labels={"0bad": "v"})


def test_sampled_metrics_read_live_state():
    reg = MetricsRegistry()
    state = {"n": 0}
    reg.sampled_counter("repro_live", lambda: state["n"])
    state["n"] = 7
    (family,) = [f for f in reg.collect() if f.name == "repro_live"]
    assert family.samples[0].value == 7.0


def test_sampled_registration_is_last_writer_wins():
    reg = MetricsRegistry()
    reg.sampled_gauge("repro_g", lambda: 1.0)
    reg.sampled_gauge("repro_g", lambda: 2.0)
    (family,) = reg.collect()
    assert family.samples[0].value == 2.0


def test_snapshot_carries_gauge_high_water_and_buckets():
    reg = MetricsRegistry()
    g = reg.gauge("repro_g")
    g.set(5.0)
    g.set(2.0)
    h = reg.histogram("repro_h", lo_exp=0, hi_exp=1)
    h.observe(1.5)
    snap = reg.snapshot()
    gs = snap["metrics"]["repro_g"]["samples"][0]
    assert gs["value"] == 2.0 and gs["high_water"] == 5.0
    hs = snap["metrics"]["repro_h"]["samples"][0]
    assert hs["buckets"] == [0, 1, 0]
    assert hs["bounds"] == [1.0, 2.0]
    assert hs["count"] == 1
