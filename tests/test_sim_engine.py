"""Unit tests for the discrete-event engine (clock, heap, run loop)."""

import pytest

from repro.sim import Engine, Event, SimulationError
from repro.sim.engine import EmptySchedule


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_clock():
    eng = Engine()
    eng.timeout(2.5)
    eng.run()
    assert eng.now == 2.5


def test_run_until_time_stops_early():
    eng = Engine()
    eng.timeout(10.0)
    eng.run(until=4.0)
    assert eng.now == 4.0


def test_run_until_time_processes_events_at_or_before_deadline():
    eng = Engine()
    hits = []
    t = eng.timeout(3.0)
    t.callbacks.append(lambda ev: hits.append(eng.now))
    eng.run(until=3.0)
    assert hits == [3.0]


def test_run_with_no_events_and_deadline_sets_clock():
    eng = Engine()
    eng.run(until=7.0)
    assert eng.now == 7.0


def test_run_until_past_time_raises():
    eng = Engine()
    eng.timeout(5.0)
    eng.run()
    with pytest.raises(SimulationError):
        eng.run(until=1.0)


def test_step_on_empty_schedule_raises():
    with pytest.raises(EmptySchedule):
        Engine().step()


def test_fifo_tie_break_for_equal_times():
    eng = Engine()
    order = []
    for label in "abc":
        t = eng.timeout(1.0)
        t.callbacks.append(lambda ev, label=label: order.append(label))
    eng.run()
    assert order == ["a", "b", "c"]


def test_events_process_in_time_order():
    eng = Engine()
    order = []
    for delay in (3.0, 1.0, 2.0):
        t = eng.timeout(delay)
        t.callbacks.append(lambda ev, d=delay: order.append(d))
    eng.run()
    assert order == [1.0, 2.0, 3.0]


def test_run_until_event_returns_its_value():
    eng = Engine()
    ev = eng.event()
    t = eng.timeout(1.0)
    t.callbacks.append(lambda _: ev.succeed("payload"))
    assert eng.run(until=ev) == "payload"
    assert eng.now == 1.0


def test_run_until_event_that_never_fires_reports_deadlock():
    eng = Engine()
    ev = eng.event()
    eng.timeout(1.0)
    with pytest.raises(SimulationError, match="deadlock"):
        eng.run(until=ev)


def test_unhandled_failed_event_propagates_from_run():
    eng = Engine()
    ev = eng.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        eng.run()


def test_processed_count_increments():
    eng = Engine()
    eng.timeout(1.0)
    eng.timeout(2.0)
    eng.run()
    assert eng.processed_count == 2


def test_peek_reports_next_event_time():
    eng = Engine()
    assert Engine().peek == float("inf")
    eng.timeout(4.0)
    eng.timeout(2.0)
    assert eng.peek == 2.0


def test_nested_scheduling_from_callback():
    eng = Engine()
    times = []
    outer = eng.timeout(1.0)

    def chain(_):
        times.append(eng.now)
        inner = eng.timeout(1.0)
        inner.callbacks.append(lambda ev: times.append(eng.now))

    outer.callbacks.append(chain)
    eng.run()
    assert times == [1.0, 2.0]


def test_event_cannot_be_triggered_twice():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(ValueError())


def test_event_value_unavailable_until_triggered():
    ev = Engine().event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Engine().timeout(-1.0)


def test_event_repr_shows_state():
    eng = Engine()
    ev = eng.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "ok" in repr(ev)
    ev2 = Event(eng)
    ev2._defused = True
    ev2.fail(RuntimeError())
    assert "failed" in repr(ev2)
