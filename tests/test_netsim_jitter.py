"""Tests for latency jitter: determinism, bounds, and invariant stability."""

import pytest

from repro.mpisim import MpiConfig
from repro.netsim import Fabric, NetworkParams
from repro.runtime import run_app
from repro.sim import Engine


def _one_way(params, seed=0, nbytes=10_000):
    eng = Engine()
    fab = Fabric(eng, params, 2, seed=seed)
    fab.nic(0).post_send(fab.nic(1), nbytes, payload=None)
    eng.run()
    return eng.now


class TestJitterMechanics:
    def test_zero_jitter_is_exact(self):
        params = NetworkParams(latency=10e-6, bandwidth=100e6,
                               per_message_overhead=0.0)
        assert _one_way(params) == pytest.approx(10e-6 + 1e-4)

    def test_jitter_stays_within_band(self):
        params = NetworkParams(latency=10e-6, bandwidth=100e6,
                               latency_jitter_frac=0.3,
                               per_message_overhead=0.0)
        for seed in range(20):
            t = _one_way(params, seed=seed)
            serialization = 1e-4
            lat = t - serialization
            assert 10e-6 * 0.7 - 1e-12 <= lat <= 10e-6 * 1.3 + 1e-12

    def test_same_seed_replays_identically(self):
        params = NetworkParams(latency_jitter_frac=0.2)
        assert _one_way(params, seed=7) == _one_way(params, seed=7)

    def test_different_seeds_differ(self):
        params = NetworkParams(latency_jitter_frac=0.2)
        times = {_one_way(params, seed=s) for s in range(8)}
        assert len(times) > 1

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            NetworkParams(latency_jitter_frac=1.0)
        with pytest.raises(ValueError):
            NetworkParams(latency_jitter_frac=-0.1)


class TestInvariantsUnderJitter:
    """The bounding algorithm must stay sound on an irregular network."""

    @pytest.mark.parametrize("jitter", [0.1, 0.4, 0.9])
    def test_bounds_nest_for_full_app_run(self, jitter):
        params = NetworkParams(latency_jitter_frac=jitter)
        config = MpiConfig(name=f"jit{jitter}", eager_limit=4096,
                           rndv_mode="rget", leave_pinned=True)

        def app(ctx):
            other = 1 - ctx.rank
            for i in range(20):
                rreq = yield from ctx.comm.irecv(other, 1)
                sreq = yield from ctx.comm.isend(other, 1, 50_000 if i % 2 else 512)
                yield from ctx.compute(2e-4)
                yield from ctx.comm.waitall([sreq, rreq])

        result = run_app(app, 2, config=config, params=params)
        for rank in range(2):
            m = result.report(rank).total
            assert 0.0 <= m.min_overlap_time <= m.max_overlap_time + 1e-12
            assert m.max_overlap_time <= m.data_transfer_time + 1e-9
            assert m.transfer_count == sum(m.case_counts.values())

    def test_jittered_run_is_reproducible(self):
        params = NetworkParams(latency_jitter_frac=0.25)
        config = MpiConfig(name="jit-repro")

        def app(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, 1, 10_000)
            else:
                yield from ctx.comm.recv(0, 1)

        a = run_app(app, 2, config=config, params=params)
        b = run_app(app, 2, config=config, params=params)
        assert a.elapsed == b.elapsed
        assert (
            a.report(0).total.communication_call_time
            == b.report(0).total.communication_call_time
        )
