"""Tests for the Monitor facade (stamping API, sections, pause, finalize)."""

import pytest

from repro.core.monitor import Monitor, NullMonitor
from repro.core.processor import InstrumentationError
from repro.core.xfer_table import XferTable


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def table():
    return XferTable.from_model(latency=1e-6, bandwidth=1e9)


@pytest.fixture
def monitor(clock, table):
    return Monitor(clock, table, queue_capacity=8)


def test_basic_isend_wait_scenario(monitor, clock, table):
    # Isend: 1us in library, xfer begins inside.
    monitor.call_enter("MPI_Isend")
    clock.advance(0.5e-6)
    xid = monitor.xfer_begin(10000)
    clock.advance(0.5e-6)
    monitor.call_exit("MPI_Isend")
    clock.advance(100e-6)  # computation
    monitor.call_enter("MPI_Wait")
    clock.advance(1e-6)
    monitor.xfer_end(xid, 10000)
    clock.advance(0.5e-6)
    monitor.call_exit("MPI_Wait")
    report = monitor.finalize(rank=0, label="unit")
    xfer = table.time_for(10000)
    assert report.total.max_overlap_time == pytest.approx(xfer)
    assert report.total.min_overlap_time == pytest.approx(xfer - 1.5e-6)
    assert report.total.computation_time == pytest.approx(100e-6)
    assert report.mean_call_time("MPI_Wait") == pytest.approx(1.5e-6)


def test_queue_drains_transparently(clock, table):
    # Capacity 2 forces a drain every second event; results must be identical.
    mon = Monitor(clock, table, queue_capacity=2)
    mon.call_enter("call")
    clock.advance(1e-6)
    xid = mon.xfer_begin(1000)
    mon.call_exit("call")
    clock.advance(50e-6)
    mon.call_enter("call")
    mon.xfer_end(xid, 1000)
    clock.advance(1e-6)
    mon.call_exit("call")
    report = mon.finalize()
    assert mon.queue.drains >= 2
    assert report.total.case_counts[2] == 1
    assert report.total.max_overlap_time == pytest.approx(table.time_for(1000))


def test_xfer_end_only_is_case3(monitor, clock, table):
    monitor.call_enter("MPI_Recv")
    clock.advance(5e-6)
    monitor.xfer_end_only(2000)
    monitor.call_exit("MPI_Recv")
    report = monitor.finalize()
    assert report.total.case_counts[3] == 1
    assert report.total.max_overlap_time == pytest.approx(table.time_for(2000))
    assert report.total.min_overlap_time == 0.0


def test_call_context_manager(monitor, clock):
    with monitor.call("MPI_Barrier"):
        clock.advance(2e-6)
    report = monitor.finalize()
    assert report.total_call_time("MPI_Barrier") == pytest.approx(2e-6)


def test_section_context_manager(monitor, clock, table):
    with monitor.section("x_solve"):
        with monitor.call("MPI_Isend"):
            xid = monitor.xfer_begin(500)
        clock.advance(30e-6)
        with monitor.call("MPI_Wait"):
            monitor.xfer_end(xid, 500)
    report = monitor.finalize()
    assert "x_solve" in report.sections
    sec = report.sections["x_solve"]
    assert sec.transfer_count == 1
    assert sec.computation_time == pytest.approx(30e-6)


def test_pause_drops_events_and_gap(monitor, clock, table):
    with monitor.call("a"):
        clock.advance(1e-6)
    monitor.pause()
    clock.advance(1000.0)  # huge gap, must not count
    # These stamps must be dropped entirely.
    monitor.call_enter("hidden")
    monitor.xfer_begin(10**6)
    monitor.call_exit("hidden")
    monitor.resume()
    clock.advance(2e-6)
    with monitor.call("b"):
        clock.advance(1e-6)
    report = monitor.finalize()
    assert report.total.computation_time == pytest.approx(2e-6)
    assert report.total.communication_call_time == pytest.approx(2e-6)
    assert report.total.transfer_count == 0
    assert "hidden" not in report.call_stats


def test_resume_when_not_paused_is_noop(monitor):
    monitor.resume()
    assert monitor.event_count == 0


def test_event_count_tracks_stamps(monitor, clock):
    with monitor.call("x"):
        xid = monitor.xfer_begin(10)
        monitor.xfer_end(xid, 10)
    assert monitor.event_count == 4


def test_finalize_twice_raises(monitor):
    monitor.finalize()
    with pytest.raises(InstrumentationError):
        monitor.finalize()


def test_stamp_after_finalize_raises(monitor):
    monitor.finalize()
    with pytest.raises(InstrumentationError):
        monitor.call_enter("late")


def test_xfer_ids_are_unique(monitor):
    ids = {monitor.new_xfer_id() for _ in range(100)}
    assert len(ids) == 100


def test_report_wall_time(clock, table):
    clock.advance(5.0)
    mon = Monitor(clock, table)
    clock.advance(2.5)
    report = mon.finalize()
    assert report.wall_time == pytest.approx(2.5)


def test_null_monitor_interface(table):
    null = NullMonitor()
    null.call_enter("x")
    null.call_exit("x")
    with null.call("y"):
        pass
    with null.section("s"):
        pass
    assert null.xfer_begin(100) == -1
    null.xfer_end(-1, 100)
    null.xfer_end_only(10)
    null.pause()
    null.resume()
    assert null.finalize() is None
    assert null.event_count == 0
