"""More structural formulas: non-trivial grids (SP at 9 ranks, LU at 8),
where wrap-around and asymmetric decompositions kick in."""

import pytest

from repro.mpisim.config import mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.lu import lu_app
from repro.nas.sp import sp_app
from repro.runtime import run_app

FAST = CpuModel(flop_rate=100e9)


def _counts(app, nprocs, args):
    result = run_app(app, nprocs, config=mvapich2_like(), app_args=args)
    return [result.report(r).total.transfer_count for r in range(nprocs)]


class TestSpNineRanks:
    """SP at P=9 (3x3 grid), rank 0:

    copy_faces: 4 distinct periodic neighbours x (irecv + isend) = 8;
    solves: 3 directions x 2 phases x (2 recvs + 2 sends per 3-stage
    pipeline) = 24;
    allreduce at root (P=9): binomial reduce receives from peers 1, 2, 4,
    8 (4 recvs) + broadcast sends (4) = 8.
    """

    def test_rank0_formula(self):
        counts = _counts(sp_app, 9, ("S", 1, FAST, False))
        assert counts[0] == (8 + 24) + 8

    def test_all_ranks_same_p2p_load(self):
        # Multipartition symmetry: every rank moves the same p2p traffic;
        # only the collective tree position differs (by at most 8).
        counts = _counts(sp_app, 9, ("S", 1, FAST, False))
        assert max(counts) - min(counts) <= 8

    def test_linear_in_iterations(self):
        one = _counts(sp_app, 9, ("S", 1, FAST, False))[0]
        three = _counts(sp_app, 9, ("S", 3, FAST, False))[0]
        assert three - one == 2 * (8 + 24)


class TestLuEightRanks:
    """LU at P=8 (2x4 grid), rank 0 (row 0, col 0), ``planes`` planes:

    forward sweep: 2 sends per plane (south + east);
    backward sweep: 2 recvs per plane;
    exchange_3: 2 partners x 2 = 4;
    allreduce at root (P=8): 3 recvs + 3 sends = 6.
    """

    @pytest.mark.parametrize("planes", [2, 5])
    def test_rank0_formula(self, planes):
        counts = _counts(lu_app, 8, ("S", 1, FAST, planes))
        assert counts[0] == 4 * planes + 4 + 6

    def test_interior_rank_has_more_neighbours(self):
        # Rank 1 (row 0, col 1) has west+east+south: 3 exchange_3 partners
        # and 3 pencils per wavefront direction pair.
        planes = 3
        counts = _counts(lu_app, 8, ("S", 1, FAST, planes))
        # fwd: sends south+east+...: row0,col1: recv west (fwd), sends
        # south+east; bwd: recvs south+east, send west.
        # fwd per plane: 1 recv + 2 send; bwd: 2 recv + 1 send = 6/plane.
        # exchange_3: 3 partners x 2 = 6; allreduce non-root member:
        # position 1 sends once in reduce, receives once in bcast = 2.
        assert counts[1] == 6 * planes + 6 + 2
