"""Tests for the fixed-size circular event queue and name registry."""

import pytest

from repro.core.equeue import CircularEventQueue
from repro.core.events import EventKind, NameRegistry, TimedEvent


def _ev(t, ident=0):
    return TimedEvent(EventKind.XFER_BEGIN, t, ident, 8)


def test_push_buffers_until_full():
    drained = []
    q = CircularEventQueue(3, drained.extend)
    q.push(_ev(1.0))
    q.push(_ev(2.0))
    assert drained == []
    assert len(q) == 2


def test_drain_fires_when_capacity_exceeded():
    drained = []
    q = CircularEventQueue(2, lambda batch: drained.append(list(batch)))
    q.push(_ev(1.0))
    q.push(_ev(2.0))
    q.push(_ev(3.0))  # forces a drain of the first two
    assert drained == [[_ev(1.0), _ev(2.0)]]
    assert len(q) == 1


def test_flush_drains_partial_queue():
    drained = []
    q = CircularEventQueue(10, lambda batch: drained.append(list(batch)))
    q.push(_ev(1.0))
    q.flush()
    assert drained == [[_ev(1.0)]]
    assert len(q) == 0


def test_flush_on_empty_queue_is_noop():
    drained = []
    q = CircularEventQueue(4, lambda batch: drained.append(list(batch)))
    q.flush()
    assert drained == []
    assert q.drains == 0


def test_events_delivered_in_order_across_drains():
    seen = []
    q = CircularEventQueue(2, seen.extend)
    for i in range(7):
        q.push(_ev(float(i), ident=i))
    q.flush()
    assert [e.a for e in seen] == list(range(7))


def test_statistics_counters():
    q = CircularEventQueue(2, lambda batch: None)
    for i in range(5):
        q.push(_ev(float(i)))
    assert q.pushed == 5
    assert q.drains == 2  # drained at pushes 3 and 5


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        CircularEventQueue(0, lambda batch: None)


def test_head_resets_after_drain_slots_reused():
    q = CircularEventQueue(1, lambda batch: None)
    q.push(_ev(1.0))
    q.push(_ev(2.0))
    q.push(_ev(3.0))
    assert len(q) == 1
    assert q.pushed == 3


def test_reentrant_push_during_drain_is_kept():
    """A drain callback pushing events back must not lose them.

    The head is reset before the callback runs, so reentrant pushes land
    in the freed slots instead of being wiped by a post-drain reset.
    """
    drained = []
    q = CircularEventQueue(2, lambda batch: drain(batch))

    def drain(batch):
        drained.append([e.a for e in batch])
        if len(drained) == 1:  # emit one derived event while draining
            q.push(_ev(99.0, ident=99))

    for i in range(3):
        q.push(_ev(float(i), ident=i))
    # Drain fired once with [0, 1]; the reentrant 99 must still be queued
    # ahead of 2, not erased.
    assert drained == [[0, 1]]
    assert len(q) == 2
    q.flush()
    assert drained == [[0, 1], [99, 2]]
    assert len(q) == 0


def test_reentrant_flush_during_drain_does_not_redeliver():
    """A callback calling flush() again sees an empty queue, not the batch."""
    calls = []
    q = CircularEventQueue(4, lambda batch: drain(batch))

    def drain(batch):
        calls.append(list(batch))
        q.flush()  # reentrant: the batch is already detached

    q.push(_ev(1.0))
    q.flush()
    assert len(calls) == 1
    assert q.drains == 1


def test_ring_mode_drop_counter_matches_hand_computed_overflow():
    """drain=None keeps the newest ``capacity`` events and counts drops.

    Hand-computed: capacity 4, 10 pushes -> the first 6 events are
    overwritten (dropped == 6) and the ring holds exactly events 6..9,
    oldest first.
    """
    q = CircularEventQueue(4, None)
    for i in range(10):
        q.push(_ev(float(i), ident=i))
    assert q.dropped == 6
    assert q.pushed == 10
    assert len(q) == 4
    assert [e.a for e in q.events()] == [6, 7, 8, 9]
    assert q.occupancy_high_water == 4


def test_ring_mode_below_capacity_drops_nothing():
    q = CircularEventQueue(4, None)
    for i in range(4):
        q.push(_ev(float(i), ident=i))
    assert q.dropped == 0
    assert [e.a for e in q.events()] == [0, 1, 2, 3]


def test_ring_mode_flush_is_rejected():
    q = CircularEventQueue(2, None)
    q.push(_ev(1.0))
    with pytest.raises(ValueError, match="without a drain"):
        q.flush()


def test_drained_queue_never_drops():
    """The normal monitor wiring loses nothing, whatever the volume."""
    seen = []
    q = CircularEventQueue(2, seen.extend)
    for i in range(100):
        q.push(_ev(float(i), ident=i))
    q.flush()
    assert q.dropped == 0
    assert [e.a for e in seen] == list(range(100))


def test_reentrant_flush_counter():
    q = CircularEventQueue(4, lambda batch: drain(batch))

    def drain(batch):
        if not q.reentrant_flushes:  # push + flush from inside the drain
            q.push(_ev(99.0, ident=99))
            q.flush()

    q.push(_ev(1.0))
    q.flush()
    assert q.reentrant_flushes == 1
    assert q.drains == 2


def test_queue_metrics_sample_live_counters():
    from repro.metrics import MetricsRegistry

    reg = MetricsRegistry()
    q = CircularEventQueue(2, lambda batch: None,
                           metrics=reg, labels={"rank": "0"})
    for i in range(5):
        q.push(_ev(float(i)))
    by_name = {f.name: f.samples[0] for f in reg.collect()}
    assert by_name["repro_equeue_events_pushed"].value == 5.0
    assert by_name["repro_equeue_flushes"].value == 2.0
    assert by_name["repro_equeue_occupancy"].value == 1.0
    assert by_name["repro_equeue_occupancy_hiwater"].value == 2.0
    assert by_name["repro_equeue_events_dropped"].value == 0.0
    assert by_name["repro_equeue_occupancy"].labels == (("rank", "0"),)
    # The drain ran with the flush-latency histogram attached.
    hist = by_name["repro_equeue_flush_seconds"].value
    assert hist.count == 2


def test_name_registry_interns_stably():
    reg = NameRegistry()
    a = reg.intern("MPI_Isend")
    b = reg.intern("MPI_Wait")
    assert a != b
    assert reg.intern("MPI_Isend") == a
    assert reg.name_of(a) == "MPI_Isend"
    assert reg.name_of(b) == "MPI_Wait"
    assert len(reg) == 2
    assert "MPI_Isend" in reg
    assert "MPI_Recv" not in reg
