"""Ground-truth validation: the derived bounds must bracket the true
overlap the simulator can observe directly."""

import pytest

from repro.experiments.validation import (
    intersection_length,
    merge_intervals,
    true_overlap_for_rank,
    validate_bounds,
)
from repro.mpisim.config import MpiConfig, mvapich2_like, openmpi_like
from repro.nas.base import CpuModel
from repro.nas.sp import sp_app
from repro.runtime import run_app


class TestIntervalHelpers:
    def test_merge_overlapping(self):
        assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_touching(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(1, 1), (2, 1)]) == []

    def test_merge_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1)]) == [(0, 1), (5, 6)]

    def test_intersection_basic(self):
        ivs = [(0.0, 2.0), (4.0, 6.0)]
        assert intersection_length((1.0, 5.0), ivs) == pytest.approx(2.0)
        assert intersection_length((2.0, 4.0), ivs) == 0.0
        assert intersection_length((-1.0, 7.0), ivs) == pytest.approx(4.0)


def _exchange_app(nbytes, compute):
    def app(ctx):
        for _ in range(20):
            if ctx.rank == 0:
                req = yield from ctx.comm.isend(1, 0, nbytes, bufkey="b")
                yield from ctx.compute(compute)
                yield from ctx.comm.wait(req)
            else:
                status, _ = yield from ctx.comm.recv(0, 0)
                assert status.nbytes == nbytes

    return app


CONFIGS = [
    openmpi_like(),
    openmpi_like(leave_pinned=True),
    mvapich2_like(),
    MpiConfig(name="rput", eager_limit=8192, rndv_mode="rput"),
]


class TestBoundsBracketTruth:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
    @pytest.mark.parametrize("nbytes,compute", [
        (10 * 1024, 30e-6),
        (10 * 1024, 0.0),
        (1024 * 1024, 1.5e-3),
        (1024 * 1024, 0.2e-3),
    ])
    def test_microbenchmark_bounds_hold(self, config, nbytes, compute):
        result = run_app(
            _exchange_app(nbytes, compute), 2, config=config,
            record_transfers=True,
        )
        for check in validate_bounds(result):
            assert check.min_holds, check
            assert check.max_holds, check

    def test_direct_rdma_bounds_are_tight(self):
        # With ample compute and direct RDMA the min bound approaches the
        # truth closely -- the measurement is not just valid but useful.
        result = run_app(
            _exchange_app(1024 * 1024, 2e-3), 2,
            config=openmpi_like(leave_pinned=True), record_transfers=True,
        )
        check = validate_bounds(result)[0]  # the sender
        assert check.true_overlap > 0
        assert check.min_bound > 0.7 * check.true_overlap

    def test_sp_application_bounds_hold(self):
        result = run_app(
            sp_app, 4, config=mvapich2_like(), record_transfers=True,
            app_args=("S", 2, CpuModel(2e9), True),
        )
        for check in validate_bounds(result):
            assert check.holds, check

    def test_requires_recording(self):
        result = run_app(_exchange_app(1024, 0.0), 2)
        with pytest.raises(ValueError, match="record_transfers"):
            true_overlap_for_rank(result, 0, result.fabric.params)

    def test_case1_truth_is_near_zero(self):
        # Blocking both sides: transfers complete inside calls; the true
        # overlap with computation must be (near) zero, matching the
        # framework's case-1 verdict.
        def app(ctx):
            for _ in range(10):
                if ctx.rank == 0:
                    yield from ctx.comm.send(1, 0, 500_000)
                    yield from ctx.compute(1e-3)
                else:
                    yield from ctx.comm.recv(0, 0)
                    yield from ctx.compute(1e-3)

        result = run_app(
            app, 2, config=openmpi_like(leave_pinned=True),
            record_transfers=True,
        )
        checks = validate_bounds(result)
        # Receiver-side reads happen inside Recv: truth ~ 0 there; the
        # sender's eager... there is no eager here (500KB rendezvous), and
        # the sender blocks in Send until the FIN: truth ~ 0 too, modulo
        # the FIN-latency tail that can spill into the next compute.
        for check in checks:
            assert check.true_overlap <= check.slack + 1e-5, check


class TestTransferLog:
    def test_log_contents(self):
        result = run_app(
            _exchange_app(10 * 1024, 0.0), 2, config=openmpi_like(),
            record_transfers=True,
        )
        log = result.fabric.transfer_log
        payload = [r for r in log
                   if r.nbytes > result.fabric.params.control_packet_size]
        assert len(payload) == 20
        for rec in payload:
            assert rec.src == 0 and rec.dst == 1
            assert rec.end > rec.start
            assert rec.kind == "send"

    def test_rdma_read_logged_with_initiator_as_dst(self):
        result = run_app(
            _exchange_app(1024 * 1024, 0.0), 2,
            config=mvapich2_like(), record_transfers=True,
        )
        reads = [r for r in result.fabric.transfer_log if r.kind == "rdma_read"]
        assert reads
        for rec in reads:
            assert rec.src == 0  # data flows from the sender's memory
            assert rec.dst == 1  # into the receiver

    def test_recording_off_by_default(self):
        result = run_app(_exchange_app(1024, 0.0), 2)
        assert result.fabric.transfer_log is None
