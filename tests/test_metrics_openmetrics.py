"""OpenMetrics exposition, parser, and constant-memory aggregation."""

import json

import pytest

from repro.metrics import (
    MetricsAggregator,
    MetricsRegistry,
    aggregate_files,
    parse_openmetrics,
    render_openmetrics,
    write_json_snapshot,
    write_openmetrics,
)


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_jobs", "Jobs run", labels={"kind": "lu"}).inc(3)
    reg.gauge("repro_depth", "Queue depth").set(7)
    h = reg.histogram("repro_lat_seconds", lo_exp=-2, hi_exp=0)
    h.observe(0.2)
    h.observe(0.9)
    return reg


def test_render_has_metadata_eof_and_counter_suffix():
    text = render_openmetrics(_registry())
    assert "# TYPE repro_jobs counter" in text
    assert "# HELP repro_jobs Jobs run" in text
    assert 'repro_jobs_total{kind="lu"} 3' in text
    assert "repro_depth 7" in text
    assert text.endswith("# EOF\n")


def test_render_histogram_buckets_are_cumulative_with_inf():
    text = render_openmetrics(_registry())
    buckets = [line for line in text.splitlines()
               if line.startswith("repro_lat_seconds_bucket")]
    # bounds: 0.25, 0.5, 1.0, +Inf; observations 0.2 and 0.9
    assert buckets == [
        'repro_lat_seconds_bucket{le="0.25"} 1',
        'repro_lat_seconds_bucket{le="0.5"} 1',
        'repro_lat_seconds_bucket{le="1"} 2',
        'repro_lat_seconds_bucket{le="+Inf"} 2',
    ]
    assert "repro_lat_seconds_count 2" in text
    assert "repro_lat_seconds_sum 1.1" in text


def test_parse_round_trips_values_and_labels():
    reg = _registry()
    parsed = parse_openmetrics(render_openmetrics(reg))
    jobs = parsed["repro_jobs"]
    assert jobs["kind"] == "counter"
    assert jobs["help"] == "Jobs run"
    assert jobs["samples"][("_total", (("kind", "lu"),))] == 3.0
    assert parsed["repro_depth"]["samples"][("", ())] == 7.0
    lat = parsed["repro_lat_seconds"]["samples"]
    assert lat[("_count", ())] == 2.0
    assert lat[("_bucket", (("le", "0.5"),))] == 1.0


def test_parse_rejects_missing_eof_and_undeclared_family():
    with pytest.raises(ValueError, match="EOF"):
        parse_openmetrics("# TYPE x counter\nx_total 1\n")
    with pytest.raises(ValueError, match="no declared family"):
        parse_openmetrics("mystery 1\n# EOF\n")


def test_label_values_escape_round_trip():
    reg = MetricsRegistry()
    tricky = 'a"b\\c\nd'
    reg.counter("repro_x", labels={"k": tricky}).inc()
    parsed = parse_openmetrics(render_openmetrics(reg))
    assert parsed["repro_x"]["samples"][("_total", (("k", tricky),))] == 1.0


def test_write_helpers(tmp_path):
    reg = _registry()
    om = tmp_path / "m.om"
    js = tmp_path / "m.json"
    write_openmetrics(reg, om)
    write_json_snapshot(reg, js)
    assert parse_openmetrics(om.read_text())["repro_jobs"]["kind"] == "counter"
    snap = json.loads(js.read_text())
    assert snap["format_version"] == 1


def _rank_snapshot(rank: int, depth: float) -> dict:
    reg = MetricsRegistry()
    labels = {"rank": str(rank)}
    reg.counter("repro_events", labels=labels).inc(10 * (rank + 1))
    g = reg.gauge("repro_depth", labels=labels)
    g.set(depth + 2)  # push high water above the final value
    g.set(depth)
    h = reg.histogram("repro_lat_seconds", labels=labels, lo_exp=-2, hi_exp=0)
    h.observe(0.2)
    return reg.snapshot()


def test_aggregator_merges_ranks_in_one_row():
    agg = MetricsAggregator()
    agg.add_snapshot(_rank_snapshot(0, 1.0), tag=0)
    agg.add_snapshot(_rank_snapshot(1, 5.0), tag=1)
    out = agg.result()
    assert out["nfiles"] == 2
    (counter,) = out["counters"]
    assert counter["name"] == "repro_events"
    assert counter["labels"] == {}  # rank label dropped
    assert counter["value"] == 30.0
    (gauge,) = out["gauges"]
    assert gauge["min"] == 1.0 and gauge["max"] == 5.0
    assert gauge["high_water"] == 7.0
    assert gauge["contributors"] == 2
    (hist,) = out["histograms"]
    assert hist["count"] == 2
    assert sum(hist["buckets"]) == 2


def test_aggregator_rejects_kind_and_bounds_conflicts():
    agg = MetricsAggregator()
    agg.add_snapshot(_rank_snapshot(0, 1.0))
    reg = MetricsRegistry()
    reg.gauge("repro_events", labels={"rank": "9"}).set(1)
    with pytest.raises(ValueError, match="counter in one file"):
        agg.add_snapshot(reg.snapshot())

    agg2 = MetricsAggregator()
    agg2.add_snapshot(_rank_snapshot(0, 1.0))
    reg2 = MetricsRegistry()
    reg2.histogram("repro_lat_seconds", labels={"rank": "9"},
                   lo_exp=-4, hi_exp=0).observe(0.2)
    with pytest.raises(ValueError, match="bounds differ"):
        agg2.add_snapshot(reg2.snapshot())


def test_aggregator_empty_and_bad_version():
    with pytest.raises(ValueError, match="no snapshots"):
        MetricsAggregator().result()
    with pytest.raises(ValueError, match="version"):
        MetricsAggregator().add_snapshot({"format_version": 99, "metrics": {}})


def test_aggregate_files(tmp_path):
    paths = []
    for rank in range(3):
        p = tmp_path / f"rank{rank}.json"
        p.write_text(json.dumps(_rank_snapshot(rank, float(rank))))
        paths.append(p)
    agg = aggregate_files(paths)
    out = agg.result()
    assert out["nfiles"] == 3
    assert out["counters"][0]["value"] == 60.0
    dest = tmp_path / "merged.json"
    agg.save(dest)
    assert json.loads(dest.read_text())["nfiles"] == 3
