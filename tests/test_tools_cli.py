"""Tests for the command-line tools (invoked in-process via main(argv))."""

import pytest

from repro.core.xfer_table import XferTable
from repro.tools import nas as nas_cli
from repro.tools import perfmain as perfmain_cli
from repro.tools import report as report_cli


class TestPerfmainCli:
    def test_writes_loadable_table(self, tmp_path, capsys):
        out = tmp_path / "xfer.tsv"
        rc = perfmain_cli.main(["--out", str(out), "--max-size", "1048576"])
        assert rc == 0
        table = XferTable.load(out)
        assert table.sizes[0] == 1.0
        assert table.sizes[-1] == 1048576.0
        text = capsys.readouterr().out
        assert "wrote" in text and "MB/s" in text

    def test_custom_fabric_parameters(self, tmp_path):
        out = tmp_path / "fast.tsv"
        rc = perfmain_cli.main([
            "--out", str(out), "--latency-us", "2", "--bandwidth-mbs", "1000",
            "--min-size", "64", "--max-size", "65536",
        ])
        assert rc == 0
        table = XferTable.load(out)
        from repro.netsim import NetworkParams
        overhead = NetworkParams().per_message_overhead
        assert table.time_for(64) == pytest.approx(2e-6 + overhead + 64 / 1e9)

    def test_invalid_sizes_rejected(self, tmp_path):
        rc = perfmain_cli.main([
            "--out", str(tmp_path / "x.tsv"), "--min-size", "100",
            "--max-size", "10",
        ])
        assert rc == 2


class TestNasCli:
    def test_runs_and_writes_reports(self, tmp_path, capsys):
        rc = nas_cli.main([
            "--benchmark", "cg", "--klass", "S", "--np", "4", "--niter", "1",
            "--report-dir", str(tmp_path), "--sizes",
        ])
        assert rc == 0
        files = sorted(tmp_path.glob("cg.S.4.rank*.json"))
        assert len(files) == 4
        text = capsys.readouterr().out
        assert "overlap report: rank 0" in text
        assert "by message size" in text
        assert "job wall time" in text

    def test_sp_modified_flag(self, capsys):
        rc = nas_cli.main([
            "--benchmark", "sp", "--klass", "S", "--np", "4", "--niter", "1",
            "--modified",
        ])
        assert rc == 0
        assert "solve_overlap" in capsys.readouterr().out

    def test_mg_nonblocking(self, capsys):
        rc = nas_cli.main([
            "--benchmark", "mg", "--klass", "S", "--np", "4", "--niter", "1",
            "--nonblocking",
        ])
        assert rc == 0
        assert "overlap report" in capsys.readouterr().out

    def test_library_override(self, capsys):
        rc = nas_cli.main([
            "--benchmark", "ft", "--klass", "S", "--np", "2", "--niter", "1",
            "--library", "openmpi",
        ])
        assert rc == 0


class TestReportCli:
    @pytest.fixture
    def report_files(self, tmp_path):
        nas_cli.main([
            "--benchmark", "cg", "--klass", "S", "--np", "2", "--niter", "1",
            "--report-dir", str(tmp_path),
        ])
        return sorted(str(p) for p in tmp_path.glob("*.json"))

    def test_render_single(self, report_files, capsys):
        capsys.readouterr()
        rc = report_cli.main([report_files[0], "--sizes"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "overlap report: rank 0" in text
        assert "size range" in text

    def test_aggregate(self, report_files, capsys):
        capsys.readouterr()
        rc = report_cli.main(report_files + ["--aggregate"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "aggregate over all ranks" in text

    def test_diff_mode(self, report_files, capsys):
        capsys.readouterr()
        rc = report_cli.main(["--diff", report_files[0], report_files[1]])
        assert rc == 0
        assert "<total>" in capsys.readouterr().out

    def test_no_files_prints_usage(self, capsys):
        rc = report_cli.main([])
        assert rc == 2
