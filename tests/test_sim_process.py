"""Unit tests for generator-coroutine processes and condition events."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Interrupt, SimulationError


def test_process_runs_and_returns_value():
    eng = Engine()

    def worker():
        yield eng.timeout(1.0)
        yield eng.timeout(2.0)
        return 42

    proc = eng.process(worker())
    assert eng.run(until=proc) == 42
    assert eng.now == 3.0


def test_process_is_alive_until_done():
    eng = Engine()

    def worker():
        yield eng.timeout(1.0)

    proc = eng.process(worker())
    assert proc.is_alive
    eng.run()
    assert not proc.is_alive


def test_two_processes_interleave_deterministically():
    eng = Engine()
    trace = []

    def worker(name, delay):
        for _ in range(3):
            yield eng.timeout(delay)
            trace.append((name, eng.now))

    eng.process(worker("a", 1.0))
    eng.process(worker("b", 1.5))
    eng.run()
    # At t=3.0 both wake; b's timeout was scheduled earlier (t=1.5) so it
    # drains first under FIFO tie-breaking.
    assert trace == [
        ("a", 1.0),
        ("b", 1.5),
        ("a", 2.0),
        ("b", 3.0),
        ("a", 3.0),
        ("b", 4.5),
    ]


def test_process_waits_on_plain_event():
    eng = Engine()
    gate = eng.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((eng.now, value))

    eng.process(waiter())

    def opener():
        yield eng.timeout(5.0)
        gate.succeed("open")

    eng.process(opener())
    eng.run()
    assert seen == [(5.0, "open")]


def test_process_waits_on_another_process():
    eng = Engine()

    def child():
        yield eng.timeout(2.0)
        return "child-result"

    def parent():
        result = yield eng.process(child())
        return result

    assert eng.run(until=eng.process(parent())) == "child-result"


def test_yield_on_already_processed_event_continues_immediately():
    eng = Engine()
    done = eng.event()
    done.succeed("early")
    eng.run()  # process the event

    def worker():
        value = yield done
        return (eng.now, value)

    assert eng.run(until=eng.process(worker())) == (0.0, "early")


def test_failed_event_raises_inside_process():
    eng = Engine()
    bad = eng.event()

    def worker():
        try:
            yield bad
        except ValueError as exc:
            return f"caught {exc}"

    proc = eng.process(worker())
    bad.fail(ValueError("nope"))
    assert eng.run(until=proc) == "caught nope"


def test_uncaught_process_exception_propagates():
    eng = Engine()

    def worker():
        yield eng.timeout(1.0)
        raise KeyError("dead")

    eng.process(worker())
    with pytest.raises(KeyError):
        eng.run()


def test_yielding_non_event_raises_in_process():
    eng = Engine()

    def worker():
        try:
            yield 123
        except SimulationError:
            return "rejected"

    assert eng.run(until=eng.process(worker())) == "rejected"


def test_passing_function_instead_of_generator_is_an_error():
    eng = Engine()

    def worker():
        yield eng.timeout(1.0)

    with pytest.raises(TypeError):
        eng.process(worker)  # note: no call


def test_interrupt_wakes_process_early():
    eng = Engine()
    log = []

    def sleeper():
        try:
            yield eng.timeout(100.0)
            log.append("overslept")
        except Interrupt as intr:
            log.append(("interrupted", eng.now, intr.cause))

    proc = eng.process(sleeper())

    def alarm():
        yield eng.timeout(3.0)
        proc.interrupt(cause="wake up")

    eng.process(alarm())
    eng.run()
    assert log == [("interrupted", 3.0, "wake up")]


def test_interrupt_finished_process_is_error():
    eng = Engine()

    def quick():
        yield eng.timeout(1.0)

    proc = eng.process(quick())
    eng.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_anyof_fires_on_first_event():
    eng = Engine()
    t1 = eng.timeout(1.0, value="fast")
    t2 = eng.timeout(5.0, value="slow")

    def worker():
        result = yield AnyOf(eng, [t1, t2])
        return (eng.now, dict(result))

    when, result = eng.run(until=eng.process(worker()))
    assert when == 1.0
    assert result == {t1: "fast"}


def test_allof_waits_for_every_event():
    eng = Engine()
    t1 = eng.timeout(1.0, value="a")
    t2 = eng.timeout(5.0, value="b")

    def worker():
        result = yield AllOf(eng, [t1, t2])
        return (eng.now, dict(result))

    when, result = eng.run(until=eng.process(worker()))
    assert when == 5.0
    assert result == {t1: "a", t2: "b"}


def test_empty_allof_fires_immediately():
    eng = Engine()

    def worker():
        yield AllOf(eng, [])
        return eng.now

    assert eng.run(until=eng.process(worker())) == 0.0


def test_condition_with_already_triggered_event():
    eng = Engine()
    t1 = eng.timeout(0.0, value="x")
    eng.run()

    def worker():
        result = yield AnyOf(eng, [t1])
        return dict(result)

    assert eng.run(until=eng.process(worker())) == {t1: "x"}


def test_condition_failure_propagates():
    eng = Engine()
    good = eng.timeout(10.0)
    bad = eng.event()

    def worker():
        try:
            yield AllOf(eng, [good, bad])
        except RuntimeError:
            return "failed"

    proc = eng.process(worker())
    bad.fail(RuntimeError("x"))
    assert eng.run(until=proc) == "failed"


def test_condition_rejects_cross_engine_events():
    eng1, eng2 = Engine(), Engine()
    with pytest.raises(SimulationError):
        AnyOf(eng1, [eng2.timeout(1.0)])


def test_cross_engine_yield_fails_process():
    eng1, eng2 = Engine(), Engine()

    def worker():
        yield eng2.timeout(1.0)

    eng1.process(worker())
    with pytest.raises(SimulationError):
        eng1.run()


def test_determinism_full_replay():
    def build_and_run():
        eng = Engine()
        trace = []

        def worker(name, delays):
            for d in delays:
                yield eng.timeout(d)
                trace.append((name, eng.now))

        eng.process(worker("x", [0.5, 0.5, 1.0]))
        eng.process(worker("y", [1.0, 0.25]))
        eng.process(worker("z", [2.0]))
        eng.run()
        return trace

    assert build_and_run() == build_and_run()
