"""Tests for the simulated ARMCI one-sided library."""

import numpy as np
import pytest

from repro.armci import ArmciConfig, run_armci_app
from repro.armci.api import ArmciError

CFG = ArmciConfig(name="t-armci")


class TestPutGet:
    def test_blocking_put_places_data(self):
        def app(ctx):
            ctx.malloc("win", 64)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                data = np.arange(8, dtype=np.float64)
                yield from ctx.armci.put(1, "win", data, offset=4)
            yield from ctx.armci.barrier()
            if ctx.rank == 1:
                win = ctx.armci.region_of(1, "win").array
                np.testing.assert_array_equal(win[4:12], np.arange(8))
                assert win[0] == 0.0

        run_armci_app(app, 2, config=CFG)

    def test_blocking_get_returns_remote_data(self):
        def app(ctx):
            region = ctx.malloc("win", 16)
            region.array[:] = ctx.rank * 100 + np.arange(16)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                data = yield from ctx.armci.get(1, "win", offset=2, count=4)
                np.testing.assert_array_equal(data, 100 + np.arange(2, 6))
            yield from ctx.armci.barrier()

        run_armci_app(app, 2, config=CFG)

    def test_accumulate_adds_elementwise(self):
        def app(ctx):
            region = ctx.malloc("win", 8)
            region.array[:] = 1.0
            yield from ctx.armci.barrier()
            if ctx.rank != 0:
                contrib = np.full(8, float(ctx.rank))
                yield from ctx.armci.acc(0, "win", contrib)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                expect = 1.0 + sum(range(1, ctx.size))
                np.testing.assert_allclose(region.array, expect)

        run_armci_app(app, 4, config=CFG)

    def test_nbput_completes_on_wait(self):
        def app(ctx):
            ctx.malloc("win", 32)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                h = yield from ctx.armci.nbput(1, "win", np.full(32, 7.0))
                assert not h.done
                yield from ctx.compute(1e-3)
                yield from ctx.armci.wait(h)
                assert h.done
            yield from ctx.armci.barrier()
            if ctx.rank == 1:
                np.testing.assert_allclose(
                    ctx.armci.region_of(1, "win").array, 7.0
                )

        run_armci_app(app, 2, config=CFG)

    def test_nbget_data_available_after_wait(self):
        def app(ctx):
            region = ctx.malloc("win", 8)
            region.array[:] = ctx.rank
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                h = yield from ctx.armci.nbget(1, "win", count=8)
                data = yield from ctx.armci.wait(h)
                np.testing.assert_allclose(data, 1.0)
                assert h.data is data
            yield from ctx.armci.barrier()

        run_armci_app(app, 2, config=CFG)

    def test_size_only_transfers(self):
        def app(ctx):
            ctx.malloc("win", 4)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                h1 = yield from ctx.armci.nbput(1, "win", nbytes=100_000)
                h2 = yield from ctx.armci.nbget(1, "win", nbytes=50_000)
                yield from ctx.armci.wait_all([h1, h2])
                assert h2.data is None
            yield from ctx.armci.barrier()

        run_armci_app(app, 2, config=CFG)

    def test_fence_completes_outstanding_ops(self):
        def app(ctx):
            ctx.malloc("win", 16)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                handles = []
                for i in range(4):
                    h = yield from ctx.armci.nbput(
                        1, "win", np.full(4, float(i)), offset=4 * i
                    )
                    handles.append(h)
                yield from ctx.armci.fence(1)
                assert all(h.done for h in handles)
                assert ctx.armci.outstanding == []
            yield from ctx.armci.barrier()

        run_armci_app(app, 2, config=CFG)


class TestErrors:
    def test_rma_to_self_rejected(self):
        def app(ctx):
            ctx.malloc("win", 4)
            yield from ctx.armci.put(ctx.rank, "win", np.zeros(4))

        with pytest.raises(ArmciError):
            run_armci_app(app, 2, config=CFG)

    def test_unknown_region_rejected(self):
        def app(ctx):
            yield from ctx.armci.get(1 - ctx.rank, "nope", count=1)

        with pytest.raises(ArmciError):
            run_armci_app(app, 2, config=CFG)

    def test_duplicate_region_rejected(self):
        def app(ctx):
            ctx.malloc("win", 4)
            ctx.malloc("win", 4)
            yield from ctx.armci.barrier()

        with pytest.raises(ArmciError):
            run_armci_app(app, 2, config=CFG)

    def test_put_needs_data_or_size(self):
        def app(ctx):
            ctx.malloc("win", 4)
            yield from ctx.armci.put(1 - ctx.rank, "win")

        with pytest.raises(ArmciError):
            run_armci_app(app, 2, config=CFG)


class TestMessageLayer:
    @pytest.mark.parametrize("nprocs", [2, 3, 4, 5, 8])
    def test_barrier_synchronizes(self, nprocs):
        def app(ctx):
            yield from ctx.compute(ctx.rank * 1e-3)
            yield from ctx.armci.barrier()
            assert ctx.now >= (ctx.size - 1) * 1e-3

        run_armci_app(app, nprocs, config=CFG)

    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 5, 7, 8])
    def test_msg_allreduce_sum(self, nprocs):
        def app(ctx):
            total = yield from ctx.armci.msg_allreduce(2 ** ctx.rank)
            assert total == 2**nprocs - 1
            yield from ctx.armci.barrier()

        run_armci_app(app, nprocs, config=CFG)

    def test_msg_allreduce_max(self):
        def app(ctx):
            got = yield from ctx.armci.msg_allreduce(ctx.rank * 3 % 7, op=max)
            assert got == max(r * 3 % 7 for r in range(ctx.size))
            yield from ctx.armci.barrier()

        run_armci_app(app, 6, config=CFG)


class TestOverlapSemantics:
    """The Fig.-19 mechanism: non-blocking ARMCI overlaps, blocking doesn't."""

    def test_blocking_put_is_case1_zero_overlap(self):
        def app(ctx):
            ctx.malloc("win", 1)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                for _ in range(10):
                    yield from ctx.armci.put(1, "win", nbytes=500_000)
                    yield from ctx.compute(1e-3)
            yield from ctx.armci.barrier()

        result = run_armci_app(app, 2, config=CFG)
        rep = result.report(0)
        assert rep.total.case_counts[1] == 10
        assert rep.total.max_overlap_pct == 0.0

    def test_nonblocking_put_overlaps_nearly_fully(self):
        def app(ctx):
            ctx.malloc("win", 1)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                for _ in range(10):
                    h = yield from ctx.armci.nbput(1, "win", nbytes=500_000)
                    yield from ctx.compute(1e-3)  # > transfer time
                    yield from ctx.armci.wait(h)
            yield from ctx.armci.barrier()

        result = run_armci_app(app, 2, config=CFG)
        rep = result.report(0)
        assert rep.total.max_overlap_pct > 95.0
        assert rep.total.min_overlap_pct > 90.0

    def test_uninstrumented_run(self):
        def app(ctx):
            yield from ctx.armci.barrier()

        result = run_armci_app(
            app, 2, config=ArmciConfig(name="ni", instrument=False)
        )
        assert result.reports == [None, None]
        with pytest.raises(ValueError):
            result.report(0)

    def test_run_result_and_deadlock(self):
        def good(ctx):
            yield from ctx.armci.barrier()
            return ctx.rank

        result = run_armci_app(good, 3, config=CFG, label="ok")
        assert result.returns == [0, 1, 2]
        assert result.report(2).label == "ok"

        def bad(ctx):
            if ctx.rank == 0:
                yield from ctx.armci.barrier()

        with pytest.raises(RuntimeError, match="deadlock"):
            run_armci_app(bad, 2, config=CFG)
