"""Tests for the two eager wire mechanisms (send channel vs RDMA write)."""

import pytest

from repro.mpisim import MpiConfig
from repro.runtime import run_app


def _cfg(mode):
    return MpiConfig(name=f"eager-{mode}", eager_limit=1 << 16, eager_mode=mode)


@pytest.mark.parametrize("mode", ["send", "rdma_write"])
def test_payload_roundtrip_both_modes(mode):
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 3, 4096, data="payload")
        else:
            status, data = yield from ctx.comm.recv(0, 3)
            assert data == "payload"
            assert status.nbytes == 4096

    run_app(app, 2, config=_cfg(mode))


@pytest.mark.parametrize("mode", ["send", "rdma_write"])
def test_receiver_is_always_case3(mode):
    # The receiver cannot observe eager initiation under either mechanism.
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 3, 4096)
        else:
            yield from ctx.comm.recv(0, 3)

    result = run_app(app, 2, config=_cfg(mode))
    assert result.report(1).total.case_counts[3] == 1


def test_rdma_write_mode_completion_is_later():
    # Send-channel completion fires at TX drain; RDMA-write completion
    # only at remote placement (one extra latency) -- observable as a
    # longer min-bound window for the sender at zero computation.
    def app(ctx):
        if ctx.rank == 0:
            req = yield from ctx.comm.isend(1, 3, 32 * 1024)
            yield from ctx.comm.wait(req)
            # Drain the local completion explicitly.
            yield from ctx.comm.iprobe(1, 0)
            yield from ctx.compute(1e-3)
        else:
            yield from ctx.comm.recv(0, 3)

    times = {}
    for mode in ("send", "rdma_write"):
        result = run_app(app, 2, config=_cfg(mode), record_transfers=True)
        rep = result.report(0)
        times[mode] = rep.total.communication_call_time
    # The rdma_write sender spends longer in-library reaping completion.
    assert times["rdma_write"] >= times["send"]


def test_mvapich2_preset_uses_rdma_write_eager():
    from repro.mpisim.config import mvapich2_like

    assert mvapich2_like().eager_mode == "rdma_write"


def test_invalid_eager_mode_rejected():
    with pytest.raises(ValueError, match="eager_mode"):
        MpiConfig(eager_mode="pigeon")


def test_unexpected_flood_rdma_write_mode():
    def app(ctx):
        if ctx.rank == 0:
            for i in range(50):
                yield from ctx.comm.send(1, 1, 512, data=i)
            yield from ctx.comm.barrier()
        else:
            yield from ctx.comm.barrier()
            for i in range(50):
                _, data = yield from ctx.comm.recv(0, 1)
                assert data == i

    run_app(app, 2, config=_cfg("rdma_write"))
