"""Tests for sub-communicators (MPI_Comm_split / MPI_Comm_dup) and
context isolation."""

import pytest

from repro.mpisim import MpiConfig
from repro.mpisim.status import ANY_SOURCE, ANY_TAG, MpiError
from repro.runtime import run_app

CFG = MpiConfig(name="t-split")


class TestSplitBasics:
    def test_even_odd_split_ranks_and_sizes(self):
        def app(ctx):
            sub = yield from ctx.comm.split(color=ctx.rank % 2)
            assert sub.size == ctx.size // 2 + (ctx.size % 2) * (1 - ctx.rank % 2)
            # Group ranks are ordered by world rank within each color.
            expected_rank = ctx.rank // 2
            assert sub.rank == expected_rank

        run_app(app, 6, config=CFG)

    def test_key_reorders_new_ranks(self):
        def app(ctx):
            # Reverse ordering via key.
            sub = yield from ctx.comm.split(color=0, key=-ctx.rank)
            assert sub.rank == ctx.size - 1 - ctx.rank

        run_app(app, 4, config=CFG)

    def test_undefined_color_returns_none(self):
        def app(ctx):
            color = 0 if ctx.rank == 0 else None
            sub = yield from ctx.comm.split(color)
            if ctx.rank == 0:
                assert sub is not None and sub.size == 1
            else:
                assert sub is None

        run_app(app, 3, config=CFG)

    def test_world_rank_out_of_range_in_subcomm(self):
        def app(ctx):
            sub = yield from ctx.comm.split(color=ctx.rank % 2)
            with pytest.raises(MpiError):
                yield from sub.isend(sub.size, 1, 8)

        run_app(app, 4, config=CFG)


class TestSubcommCommunication:
    def test_p2p_uses_group_ranks(self):
        def app(ctx):
            # Colors {0,2} and {1,3}; inside each, rank 0 sends to rank 1.
            sub = yield from ctx.comm.split(color=ctx.rank % 2)
            if sub.rank == 0:
                yield from sub.send(1, 5, 64, data=("hello", ctx.rank))
            else:
                status, data = yield from sub.recv(0, 5)
                assert status.source == 0  # group numbering
                assert data[0] == "hello"
                assert data[1] == ctx.rank - 2  # world sender

        run_app(app, 4, config=CFG)

    def test_collectives_scoped_to_group(self):
        def app(ctx):
            sub = yield from ctx.comm.split(color=ctx.rank % 2)
            total = yield from sub.allreduce(ctx.rank, 8)
            same_color = [r for r in range(ctx.size) if r % 2 == ctx.rank % 2]
            assert total == sum(same_color)
            # Concurrent collectives in disjoint groups do not interfere.
            got = yield from sub.allgather(8, ctx.rank)
            assert got == same_color

        run_app(app, 8, config=CFG)

    def test_context_isolation_same_tag(self):
        """The same (source, tag) in parent and child must not cross-match."""

        def app(ctx):
            sub = yield from ctx.comm.split(color=0)  # same group, new ctx
            if ctx.rank == 0:
                yield from ctx.comm.send(1, 7, 64, data="world")
                yield from sub.send(1, 7, 64, data="sub")
            elif ctx.rank == 1:
                # Receive from the sub-communicator FIRST: it must get the
                # sub message even though the world message arrived first.
                _, sub_data = yield from sub.recv(0, 7)
                assert sub_data == "sub"
                _, world_data = yield from ctx.comm.recv(0, 7)
                assert world_data == "world"
            yield from ctx.comm.barrier()

        run_app(app, 2, config=CFG)

    def test_wildcard_recv_confined_to_communicator(self):
        def app(ctx):
            sub = yield from ctx.comm.split(color=0)
            if ctx.rank == 0:
                yield from ctx.comm.send(1, 1, 64, data="world-msg")
                yield from ctx.comm.barrier()
            elif ctx.rank == 1:
                yield from ctx.comm.barrier()  # world msg queued unexpected
                found = yield from sub.iprobe(ANY_SOURCE, ANY_TAG)
                assert found is None  # invisible in the sub context
                yield from ctx.comm.recv(0, 1)
            else:
                yield from ctx.comm.barrier()

        run_app(app, 3, config=CFG)

    def test_nested_split(self):
        def app(ctx):
            half = yield from ctx.comm.split(color=ctx.rank // 4)
            quarter = yield from half.split(color=half.rank // 2)
            assert quarter.size == 2
            total = yield from quarter.allreduce(1, 8)
            assert total == 2

        run_app(app, 8, config=CFG)


class TestDup:
    def test_dup_preserves_shape_changes_context(self):
        def app(ctx):
            clone = yield from ctx.comm.dup()
            assert clone.size == ctx.size
            assert clone.rank == ctx.rank
            assert clone.comm_id != ctx.comm.comm_id
            total = yield from clone.allreduce(2, 8)
            assert total == 2 * ctx.size

        run_app(app, 4, config=CFG)

    def test_sibling_splits_have_distinct_contexts(self):
        def app(ctx):
            a = yield from ctx.comm.split(color=0)
            b = yield from ctx.comm.split(color=0)
            assert a.comm_id != b.comm_id

        run_app(app, 2, config=CFG)


class TestGroupValidation:
    def test_constructing_comm_without_membership_rejected(self):
        def app(ctx):
            from repro.mpisim.communicator import Comm

            if ctx.rank == 0:
                with pytest.raises(MpiError):
                    Comm(ctx.endpoint, group=(1,), comm_id=5)
            yield from ctx.comm.barrier()

        run_app(app, 2, config=CFG)
