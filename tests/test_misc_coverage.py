"""Remaining coverage: report aggregation by section across real runs,
trace replay of begin-only streams, nas CLI rank option, ascii plot in
the micro tool, and engine misc."""

from repro.core import EventKind, TraceSink, XferTable, replay_overlap
from repro.core.report import aggregate_sections
from repro.mpisim.config import mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.sp import OVERLAP_SECTION, sp_app
from repro.runtime import run_app
from repro.sim import Engine
from repro.tools import nas as nas_cli

FAST = CpuModel(flop_rate=100e9)


def test_aggregate_sections_across_ranks():
    result = run_app(sp_app, 4, config=mvapich2_like(),
                     app_args=("S", 1, FAST, False))
    merged = aggregate_sections(result.reports, OVERLAP_SECTION)
    per_rank = [r.sections[OVERLAP_SECTION].transfer_count
                for r in result.reports]
    assert merged.transfer_count == sum(per_rank)
    assert merged.data_transfer_time > 0


def test_trace_replay_with_begin_only_tail():
    from repro.core.events import TimedEvent

    table = XferTable.from_model(1e-6, 1e9)
    events = [
        TimedEvent(EventKind.CALL_ENTER, 0.0, 0, 0),
        TimedEvent(EventKind.XFER_BEGIN, 1e-6, 7, 5000),
        TimedEvent(EventKind.CALL_EXIT, 2e-6, 0, 0),
        # no END: resolved at finalize as case 3
    ]
    proc = replay_overlap(events, table, end_time=1e-3)
    assert proc.total.case_counts[3] == 1
    assert proc.total.max_overlap_time == table.time_for(5000)


def test_trace_sink_len_and_estimate_empty():
    sink = TraceSink()
    assert len(sink) == 0
    assert sink.nbytes_estimate == 0
    assert TraceSink.loads(sink.dumps()) == []


def test_nas_cli_rank_option(capsys):
    rc = nas_cli.main([
        "--benchmark", "cg", "--klass", "S", "--np", "4", "--niter", "1",
        "--rank", "2",
    ])
    assert rc == 0
    assert "overlap report: rank 2" in capsys.readouterr().out


def test_nas_cli_mvapich2_override(capsys):
    rc = nas_cli.main([
        "--benchmark", "bt", "--klass", "S", "--np", "4", "--niter", "1",
        "--library", "mvapich2",
    ])
    assert rc == 0


def test_engine_event_factory():
    eng = Engine()
    ev = eng.event()
    assert not ev.triggered
    ev.succeed("x")
    eng.run()
    assert ev.value == "x"


def test_run_until_already_processed_event():
    eng = Engine()
    ev = eng.event()
    ev.succeed(5)
    eng.run()
    assert eng.run(until=ev) == 5  # returns immediately


def test_ep_app_is_in_char_table():
    from repro.experiments.nas_char import characterize

    point = characterize("is", "S", 4, niter=1, cpu=FAST)
    assert point.benchmark == "is"
    point = characterize("ep", "S", 4, cpu=FAST)
    assert point.report.total.transfer_count > 0
