"""Tests for the NAS kernels: they run, verify, and communicate as
described (message mix, partners, per-benchmark overlap character)."""

import pytest

from repro.armci import ArmciConfig, run_armci_app
from repro.mpisim.config import mvapich2_like, openmpi_like
from repro.nas.base import CpuModel, cg_proc_grid, square_grid_side, two_d_grid
from repro.nas.bt import bt_app
from repro.nas.cg import cg_app, transpose_partner
from repro.nas.classes import CLASSES, problem
from repro.nas.ep import ep_app
from repro.nas.ft import ft_app
from repro.nas.is_ import is_app
from repro.nas.lu import lu_app
from repro.nas.mg import mg_app, mg_proc_grid
from repro.nas.sp import OVERLAP_SECTION, sp_app
from repro.runtime import run_app

FAST_CPU = CpuModel(flop_rate=50e9)  # shrink compute so tests run quickly


class TestClassesTable:
    def test_all_benchmarks_have_four_classes(self):
        for bench, table in CLASSES.items():
            assert set(table) == {"S", "W", "A", "B"}, bench

    def test_problem_lookup_and_errors(self):
        pc = problem("cg", "a")
        assert pc.dims[0] == 14000
        with pytest.raises(ValueError, match="unknown benchmark"):
            problem("xx", "A")
        with pytest.raises(ValueError, match="unknown class"):
            problem("cg", "Z")

    def test_grid_points(self):
        assert problem("ft", "S").grid_points == 64**3
        assert problem("cg", "S").grid_points == 1400 * 7


class TestGridHelpers:
    def test_square_grid(self):
        assert square_grid_side(9) == 3
        with pytest.raises(ValueError):
            square_grid_side(8)

    def test_two_d_grid(self):
        assert two_d_grid(4) == (2, 2)
        assert two_d_grid(8) == (2, 4)
        assert two_d_grid(6) == (2, 3)

    def test_cg_proc_grid(self):
        assert cg_proc_grid(4) == (2, 2)
        assert cg_proc_grid(8) == (2, 4)
        assert cg_proc_grid(16) == (4, 4)
        with pytest.raises(ValueError):
            cg_proc_grid(6)

    def test_cg_transpose_partner_is_involution(self):
        for rows, cols in [(2, 2), (2, 4), (4, 4), (4, 8)]:
            size = rows * cols
            partners = [transpose_partner(r, rows, cols) for r in range(size)]
            assert sorted(partners) == list(range(size))
            for r in range(size):
                assert transpose_partner(partners[r], rows, cols) == r

    def test_mg_proc_grid(self):
        assert mg_proc_grid(8) == (2, 2, 2)
        assert mg_proc_grid(4) == (2, 2, 1)
        assert mg_proc_grid(16) == (4, 2, 2)
        with pytest.raises(ValueError):
            mg_proc_grid(6)

    def test_cpu_model(self):
        cpu = CpuModel(flop_rate=1e9)
        assert cpu.time_for(1e6) == pytest.approx(1e-3)
        with pytest.raises(ValueError):
            cpu.time_for(-1)
        with pytest.raises(ValueError):
            CpuModel(flop_rate=0)


class TestCg:
    @pytest.mark.parametrize("nprocs", [2, 4, 8])
    def test_runs_and_verifies(self, nprocs):
        result = run_app(
            cg_app, nprocs, config=openmpi_like(),
            app_args=("S", 2, FAST_CPU, 3),
        )
        assert len(set(result.returns)) == 1  # all ranks agree

    def test_short_messages_dominate_count(self):
        result = run_app(
            cg_app, 4, config=openmpi_like(), app_args=("S", 2, FAST_CPU, 5)
        )
        bins = result.report(0).total.bins.bins
        short = sum(b.count for b in bins[:2])
        long_ = sum(b.count for b in bins[2:])
        assert short > long_

    def test_larger_class_longer_messages(self):
        small = run_app(cg_app, 4, config=openmpi_like(), app_args=("S", 1, FAST_CPU, 3))
        big = run_app(cg_app, 4, config=openmpi_like(), app_args=("B", 1, FAST_CPU, 3))
        max_bytes_small = max(
            b.bytes / b.count for b in small.report(0).total.bins.bins if b.count
        )
        max_bytes_big = max(
            b.bytes / b.count for b in big.report(0).total.bins.bins if b.count
        )
        assert max_bytes_big > max_bytes_small


class TestBt:
    @pytest.mark.parametrize("nprocs", [4, 9])
    def test_runs_and_verifies(self, nprocs):
        result = run_app(
            bt_app, nprocs, config=openmpi_like(), app_args=("S", 2, FAST_CPU)
        )
        assert result.returns[0] == nprocs * (nprocs + 1) / 2

    def test_requires_square_rank_count(self):
        with pytest.raises(ValueError, match="square"):
            run_app(bt_app, 8, config=openmpi_like(), app_args=("S", 1, FAST_CPU))

    def test_long_messages_dominate_bytes(self):
        result = run_app(
            bt_app, 4, config=openmpi_like(), app_args=("A", 2, FAST_CPU)
        )
        bins = result.report(0).total.bins.bins
        short_bytes = sum(b.bytes for b in bins[:2])
        long_bytes = sum(b.bytes for b in bins[2:])
        assert long_bytes > short_bytes


class TestLu:
    def test_runs_and_verifies(self):
        result = run_app(
            lu_app, 4, config=mvapich2_like(), app_args=("S", 2, FAST_CPU, 6)
        )
        assert len(set(result.returns)) == 1

    def test_mixed_message_sizes(self):
        result = run_app(
            lu_app, 4, config=mvapich2_like(), app_args=("A", 1, FAST_CPU, 16)
        )
        bins = result.report(0).total.bins.bins
        assert sum(b.count for b in bins[:2]) > 0  # wavefront pencils
        assert sum(b.count for b in bins[2:]) > 0  # exchange_3 faces

    def test_high_overlap_character(self):
        # Short messages dominate -> max overlap above 70% (paper Fig. 12).
        result = run_app(
            lu_app, 4, config=mvapich2_like(), app_args=("S", 2, None, 12)
        )
        assert result.report(0).total.max_overlap_pct > 70.0


class TestFt:
    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_runs_and_verifies(self, nprocs):
        result = run_app(
            ft_app, nprocs, config=mvapich2_like(), app_args=("S", 2, FAST_CPU)
        )
        assert result.returns[0] == sum(range(1, nprocs + 1)) * 2

    def test_low_overlap_character(self):
        # Alltoall long transfers get no overlap; only the small collective
        # messages contribute (paper Fig. 13).
        result = run_app(
            ft_app, 4, config=mvapich2_like(), app_args=("A", 2, None)
        )
        rep = result.report(0)
        assert rep.total.max_overlap_pct < 30.0
        assert rep.total.min_overlap_pct < 5.0

    def test_alltoall_dominates_bytes(self):
        result = run_app(
            ft_app, 4, config=mvapich2_like(), app_args=("S", 2, FAST_CPU)
        )
        bins = result.report(0).total.bins.bins
        long_bytes = sum(b.bytes for b in bins[2:])
        assert long_bytes > 0.9 * sum(b.bytes for b in bins)


class TestSp:
    def test_runs_and_verifies_original_and_modified(self):
        for modified in (False, True):
            result = run_app(
                sp_app, 4, config=mvapich2_like(),
                app_args=("S", 2, FAST_CPU, modified),
            )
            assert result.returns[0] == 10.0

    def test_overlap_section_reported(self):
        result = run_app(
            sp_app, 4, config=mvapich2_like(), app_args=("S", 1, FAST_CPU)
        )
        rep = result.report(0)
        assert OVERLAP_SECTION in rep.sections
        assert rep.sections[OVERLAP_SECTION].transfer_count > 0

    def test_iprobe_modification_improves_section_overlap(self):
        # The paper's Sec. 4.3 result, at test scale.
        orig = run_app(
            sp_app, 4, config=mvapich2_like(), app_args=("A", 2, None, False)
        )
        mod = run_app(
            sp_app, 4, config=mvapich2_like(), app_args=("A", 2, None, True)
        )
        sec_o = orig.report(0).sections[OVERLAP_SECTION]
        sec_m = mod.report(0).sections[OVERLAP_SECTION]
        assert sec_m.max_overlap_pct > sec_o.max_overlap_pct + 20.0

    def test_iprobe_modification_reduces_mpi_time(self):
        orig = run_app(
            sp_app, 4, config=mvapich2_like(), app_args=("A", 2, None, False)
        )
        mod = run_app(
            sp_app, 4, config=mvapich2_like(), app_args=("A", 2, None, True)
        )
        assert mod.report(0).mpi_time < orig.report(0).mpi_time


class TestMgArmci:
    @pytest.mark.parametrize("nprocs", [4, 8])
    def test_runs_and_verifies_both_variants(self, nprocs):
        for blocking in (True, False):
            result = run_armci_app(
                mg_app, nprocs, config=ArmciConfig(),
                app_args=("S", 1, FAST_CPU, blocking),
            )
            assert result.returns[0] == nprocs * (nprocs + 1) / 2

    def test_nonblocking_overlaps_blocking_does_not(self):
        blocking = run_armci_app(
            mg_app, 8, config=ArmciConfig(), app_args=("A", 1, None, True)
        )
        nonblocking = run_armci_app(
            mg_app, 8, config=ArmciConfig(), app_args=("A", 1, None, False)
        )
        b = blocking.report(0).total
        nb = nonblocking.report(0).total
        assert b.max_overlap_pct == 0.0
        assert nb.max_overlap_pct > 90.0

    def test_power_of_two_required(self):
        with pytest.raises(ValueError, match="power of two"):
            run_armci_app(mg_app, 6, app_args=("S", 1, FAST_CPU))


class TestEpIs:
    def test_ep_minimal_communication(self):
        result = run_app(
            ep_app, 4, config=openmpi_like(), app_args=("S", None, 1e-2)
        )
        rep = result.report(0)
        # 3 allreduces worth of tiny transfers, nothing else.
        assert rep.total.bins.bins[0].count == rep.total.transfer_count
        assert rep.total.computation_time > 10 * rep.total.communication_call_time

    def test_ep_sample_fraction_validation(self):
        with pytest.raises(ValueError):
            run_app(ep_app, 2, app_args=("S", FAST_CPU, 0.0))

    def test_is_runs_and_verifies(self):
        result = run_app(
            is_app, 4, config=mvapich2_like(), app_args=("S", 2, FAST_CPU)
        )
        assert len(set(result.returns)) == 1

    def test_is_behaves_like_ft(self):
        # Low overlap: alltoallv dominated (paper omits IS for this reason).
        result = run_app(
            is_app, 4, config=mvapich2_like(), app_args=("A", 2, None)
        )
        assert result.report(0).total.max_overlap_pct < 30.0
