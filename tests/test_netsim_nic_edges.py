"""NIC edge cases around the burst-coalescing fast path.

Boundary conditions where macro-event coalescing could plausibly diverge
from per-packet simulation: zero-byte messages, single-packet transfers,
transfers landing exactly on protocol/fragment boundaries, and
simultaneous identical-timestamp arrivals (whose tie-break order must be
deterministic and path-independent).
"""

import pytest

from repro.mpisim import MpiConfig
from repro.mpisim.status import ANY_SOURCE, ANY_TAG
from repro.netsim.differential import compare_runs, run_both

EAGER_LIMIT = 1024
FRAG = 4096
CONFIG = MpiConfig(name="edge", eager_limit=EAGER_LIMIT,
                   rndv_mode="pipelined", frag_size=FRAG)


def _assert_identical(fast, packet, mf, mp):
    bad = [d for d in compare_runs(fast, packet, mf, mp) if not d.equal]
    assert not bad, "diverged on: " + "; ".join(d.measure for d in bad)


def _pair_app_factory(size):
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 5, size, data=b"payload")
        else:
            status, _ = yield from ctx.comm.recv(0, 5)
            assert status.nbytes == size
    return app


def test_zero_byte_message():
    fast, packet, mf, mp = run_both(
        _pair_app_factory(0), 2, config=CONFIG, label="edge-zero"
    )
    _assert_identical(fast, packet, mf, mp)


def test_single_packet_transfer():
    # Rendezvous payload smaller than one fragment: exactly one data packet.
    fast, packet, mf, mp = run_both(
        _pair_app_factory(EAGER_LIMIT + 1), 2, config=CONFIG,
        label="edge-single"
    )
    _assert_identical(fast, packet, mf, mp)


@pytest.mark.parametrize("size", [
    EAGER_LIMIT - 1,   # last eager size
    EAGER_LIMIT,       # eager/rendezvous boundary
    EAGER_LIMIT + 1,   # first rendezvous size
    FRAG - 1,          # just below one fragment
    FRAG,              # exactly one fragment
    FRAG + 1,          # fragment split begins
    2 * FRAG,          # exactly two fragments
    2 * FRAG + 1,      # two fragments plus a remainder packet
])
def test_exactly_at_boundary_burst_splits(size):
    """Transfers landing exactly on protocol/fragment boundaries.

    These are the sizes where the burst builder sees packet trains of
    length 1, N, and N+1 -- each must split/coalesce without perturbing a
    single completion timestamp.
    """
    fast, packet, mf, mp = run_both(
        _pair_app_factory(size), 2, config=CONFIG,
        label=f"edge-boundary-{size}"
    )
    _assert_identical(fast, packet, mf, mp)


def _arrival_trace(path):
    """(time, src) of each packet delivered to NIC 0, in delivery order."""
    from repro.netsim import Fabric, NetworkParams
    from repro.sim import Engine

    eng = Engine()
    params = NetworkParams(latency=10e-6, bandwidth=100e6,
                           per_message_overhead=0.0, network_path=path)
    fab = Fabric(eng, params, num_nodes=3)
    c, a, b = fab.nic(0), fab.nic(1), fab.nic(2)
    # Zero-byte control packets posted at t=0 over a symmetric fabric
    # occupy no RX-port time, so both arrive at node 0 at the exact same
    # instant (nonzero payloads would be serialized by the RX port).
    a.post_send(c, 0, payload="from1")
    b.post_send(c, 0, payload="from2")
    seen = 0
    trace = []
    while eng.pending_count:
        eng.step()
        while len(c.inbound) > seen:
            trace.append((eng.now, c.inbound[seen].src_node))
            seen += 1
    return trace


def test_simultaneous_identical_timestamp_arrivals():
    """Equal-timestamp arrivals tie-break deterministically on both paths."""
    fast = _arrival_trace("fast")
    packet = _arrival_trace("packet")
    (t_a, src_a), (t_b, src_b) = fast
    # Both packets arrive at the same simulated instant...
    assert t_a == t_b
    # ...and tie-break in posting order (NIC 1 posted before NIC 2),
    # identically under both paths and on every rerun.
    assert [src_a, src_b] == [1, 2]
    assert packet == fast
    assert _arrival_trace("fast") == fast


def _simultaneous_app(ctx):
    # Same scenario end to end: wildcard recvs must see the senders in
    # the NIC's deterministic delivery order.
    if ctx.rank == 0:
        sources = []
        for _ in range(2):
            status, _ = yield from ctx.comm.recv(ANY_SOURCE, ANY_TAG)
            sources.append(status.source)
        return sources
    yield from ctx.comm.send(0, 1, 256, data=ctx.rank)


def test_simultaneous_arrival_recv_order_end_to_end():
    fast, packet, mf, mp = run_both(
        _simultaneous_app, 3, config=CONFIG, label="edge-tie"
    )
    _assert_identical(fast, packet, mf, mp)
    assert fast.returns[0] == packet.returns[0] == [1, 2]


# -- control-packet classification --------------------------------------------

def test_control_packet_classification():
    from repro.mpisim.packets import (
        CtsPacket, EagerPacket, FinPacket, RtsPacket, is_control_packet,
    )

    assert is_control_packet(CtsPacket(1, 0))
    assert is_control_packet(FinPacket(1, 0, True, b"ref"))
    # rget-style RTS: a buffer reference travels for zero-copy, but no
    # user bytes ride the wire -> control.
    assert is_control_packet(RtsPacket(1, 0, 5, 70_000.0, 0.0, b"ref"))
    # Pipelined RTS with the first fragment aboard moves user bytes.
    assert not is_control_packet(RtsPacket(1, 0, 5, 70_000.0, 4096.0, b"x"))
    assert not is_control_packet(EagerPacket(1, 0, 5, 128.0, b"x"))
    assert not is_control_packet(object())


def test_send_control_rejects_data_packets():
    from repro.mpisim.endpoint import MpiError
    from repro.mpisim.packets import EagerPacket
    from repro.runtime.launcher import run_app

    def app(ctx):
        if ctx.rank == 0:
            with pytest.raises(MpiError, match="non-control payload"):
                yield from ctx.endpoint.send_control(
                    1, EagerPacket(1, 0, 5, 128.0, b"x")
                )
        if False:
            yield  # pragma: no cover

    run_app(app, 2, config=CONFIG, label="edge-ctl-guard")
