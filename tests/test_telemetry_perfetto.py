"""Strict validation of the Chrome trace_event / Perfetto export."""

import json

import pytest

from repro.mpisim.config import MpiConfig
from repro.runtime import run_app
from repro.telemetry import TelemetryConfig
from repro.telemetry.perfetto import TIME_SCALE, ChromeTraceExporter
from repro.telemetry.windows import WINDOW_METRICS

NRANKS = 3


def _overlap_app(ctx):
    peer = (ctx.rank + 1) % ctx.size
    src = (ctx.rank - 1) % ctx.size
    for _ in range(4):
        sreq = yield from ctx.comm.isend(peer, 5, 32 * 1024)
        rreq = yield from ctx.comm.irecv(src, 5)
        with ctx.monitor.section("stencil"):
            yield from ctx.compute(2e-4)
        yield from ctx.comm.wait(sreq)
        yield from ctx.comm.wait(rreq)


@pytest.fixture(scope="module")
def run():
    return run_app(
        _overlap_app, NRANKS,
        config=MpiConfig(name="perfetto-test", eager_limit=1024),
        record_transfers=True,
        telemetry=TelemetryConfig(window_width=1e-4),
        label="ring",
    )


@pytest.fixture(scope="module")
def trace(run):
    return run.telemetry.build_trace(run).to_dict()


def test_trace_is_valid_json_with_required_keys(run, tmp_path):
    exporter = run.telemetry.build_trace(run)
    path = tmp_path / "trace.json"
    exporter.save(path)
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert isinstance(doc["traceEvents"], list)
    assert doc["traceEvents"]
    assert doc["displayTimeUnit"] in ("ms", "ns")
    for ev in doc["traceEvents"]:
        assert isinstance(ev, dict)
        assert "ph" in ev and "pid" in ev


def test_timestamps_and_durations_are_sane(run, trace):
    # Counter samples may sit on the window grid, whose last boundary is
    # the first multiple of the width at or past the run end.
    grid_end = max(
        rt.series.end(len(rt.series) - 1)
        for rt in run.telemetry.per_rank if len(rt.series)
    )
    horizon_us = max(run.elapsed, grid_end) * TIME_SCALE
    for ev in trace["traceEvents"]:
        if ev["ph"] == "M":
            continue
        assert ev["ts"] >= 0.0
        assert ev["ts"] <= horizon_us + 1e-6
        if ev["ph"] == "X":
            assert ev["dur"] >= 0.0
            assert ev["ts"] + ev["dur"] <= horizon_us + 1e-6


def test_one_process_per_rank_with_metadata(trace):
    events = trace["traceEvents"]
    assert {e["pid"] for e in events} == set(range(NRANKS))
    for rank in range(NRANKS):
        meta = [e for e in events
                if e["ph"] == "M" and e["pid"] == rank
                and e["name"] == "process_name"]
        assert len(meta) == 1
        assert f"rank {rank}" in meta[0]["args"]["name"]


def test_counter_track_per_metric_per_rank(trace):
    events = trace["traceEvents"]
    for rank in range(NRANKS):
        names = {e["name"] for e in events
                 if e["ph"] == "C" and e["pid"] == rank}
        for metric in WINDOW_METRICS:
            assert f"win.{metric}" in names, (rank, metric)


def test_call_slices_present_and_stacked(trace):
    events = trace["traceEvents"]
    calls = [e for e in events if e["ph"] == "X" and e["cat"] == "call"]
    assert calls
    names = {e["name"] for e in calls}
    assert "MPI_Isend" in names
    assert "MPI_Wait" in names
    assert "MPI_Init" in names  # the anchor call survives export


def test_section_slices_present(trace):
    sections = [e for e in trace["traceEvents"]
                if e["ph"] == "X" and e["cat"] == "section"]
    assert sections
    assert {e["name"] for e in sections} == {"stencil"}


def test_transfer_spans_are_balanced_async_pairs(trace):
    events = trace["traceEvents"]
    begins = [e for e in events if e["ph"] == "b"]
    ends = [e for e in events if e["ph"] == "e"]
    assert begins and len(begins) == len(ends)
    open_ids = {(e["pid"], e["cat"], e["id"]): e["ts"] for e in begins}
    for e in ends:
        key = (e["pid"], e["cat"], e["id"])
        assert key in open_ids
        assert e["ts"] >= open_ids[key]


def test_ground_truth_wire_tracks_present(trace):
    wire = [e for e in trace["traceEvents"] if e.get("cat") == "wire"]
    assert wire  # record_transfers=True adds physical spans


def test_counter_values_match_window_deltas(run, trace):
    series = run.telemetry.series(0)
    rows = series.deltas()
    counter = [e for e in trace["traceEvents"]
               if e["ph"] == "C" and e["pid"] == 0
               and e["name"] == "win.max_overlap_time"]
    # one sample per window plus the closing zero
    assert len(counter) == len(rows) + 1
    for ev, row in zip(counter, rows):
        assert ev["ts"] == pytest.approx(row["start"] * TIME_SCALE)
        (value,) = ev["args"].values()
        assert value == pytest.approx(row["max_overlap_time"])
    assert list(counter[-1]["args"].values()) == [0.0]


def test_add_window_counters_rejects_unknown_metric(run):
    exporter = ChromeTraceExporter()
    with pytest.raises(ValueError):
        exporter.add_window_counters(
            0, run.telemetry.series(0), metrics=["not_a_metric"]
        )


def test_apriori_spans_used_without_ground_truth():
    result = run_app(
        _overlap_app, NRANKS,
        config=MpiConfig(name="perfetto-apriori", eager_limit=1024),
        telemetry=TelemetryConfig(window_width=1e-4),
    )
    doc = result.telemetry.build_trace(result).to_dict()
    cats = {e.get("cat") for e in doc["traceEvents"]}
    assert "wire" not in cats  # no physical log to draw
    assert "transfer" in cats or "transfer.apriori" in cats
