"""Tests for the ground-truth validation CLI."""

from repro.tools import validate as validate_cli


def test_micro_workload_passes(capsys):
    rc = validate_cli.main([
        "--workload", "micro", "--size", "1048576", "--compute", "1.5e-3",
        "--iters", "10", "--library", "openmpi", "--leave-pinned",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "verdict" in out
    assert "all bounds bracket the ground truth" in out
    assert "VIOLATED" not in out


def test_rput_library(capsys):
    rc = validate_cli.main([
        "--workload", "micro", "--size", "300000", "--compute", "1e-3",
        "--iters", "5", "--library", "rput",
    ])
    assert rc == 0


def test_sp_workload(capsys):
    rc = validate_cli.main([
        "--workload", "sp", "--klass", "S", "--np", "4", "--modified",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "SP class S" in out
    assert "modified" in out
