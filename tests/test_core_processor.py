"""Tests for the three-case overlap bounding algorithm (paper Sec. 2.2).

Every scenario here is a hand-built event stream with hand-computed
expected bounds, mirroring the timelines of the paper's Fig. 1.
"""

import pytest

from repro.core.events import EventKind, TimedEvent
from repro.core.processor import DataProcessor, InstrumentationError
from repro.core.xfer_table import XferTable

K = EventKind


def enter(t, name=0):
    return TimedEvent(K.CALL_ENTER, t, name, 0)


def leave(t, name=0):
    return TimedEvent(K.CALL_EXIT, t, name, 0)


def begin(t, ident, nbytes):
    return TimedEvent(K.XFER_BEGIN, t, ident, nbytes)


def end(t, ident, nbytes):
    return TimedEvent(K.XFER_END, t, ident, nbytes)


@pytest.fixture
def table():
    # Flat analytic table: time(n) = 1us + n * 1ns  (1 GB/s, 1 us latency).
    return XferTable.from_model(latency=1e-6, bandwidth=1e9)


def make(table, events, finalize_at=None):
    proc = DataProcessor(table)
    proc.process(events)
    proc.finalize(finalize_at)
    return proc


class TestCase1SameCall:
    """Begin and end inside one call: both bounds zero."""

    def test_bounds_are_zero(self, table):
        events = [
            enter(0.0),
            begin(1e-6, 7, 1000),
            end(5e-6, 7, 1000),
            leave(6e-6),
        ]
        proc = make(table, events)
        m = proc.total
        assert m.case_counts == {1: 1, 2: 0, 3: 0}
        assert m.min_overlap_time == 0.0
        assert m.max_overlap_time == 0.0
        assert m.data_transfer_time == pytest.approx(table.time_for(1000))

    def test_same_call_requires_same_instance_not_same_name(self, table):
        # begin in call #1, end in call #2 (same name): case 2, not case 1.
        events = [
            enter(0.0),
            begin(1e-6, 7, 1000),
            leave(2e-6),
            enter(10e-6),
            end(12e-6, 7, 1000),
            leave(13e-6),
        ]
        proc = make(table, events)
        assert proc.total.case_counts[2] == 1


class TestCase2SplitCalls:
    """Begin and end in different calls: bounded by interleaved time."""

    def test_ample_computation_gives_full_max_overlap(self, table):
        xfer = table.time_for(10000)  # 11 us
        events = [
            enter(0.0),  # Isend
            begin(1e-6, 1, 10000),
            leave(2e-6),
            # 100 us of computation >> xfer time
            enter(102e-6),  # Wait
            end(103e-6, 1, 10000),
            leave(104e-6),
        ]
        m = make(table, events).total
        assert m.case_counts[2] == 1
        assert m.max_overlap_time == pytest.approx(xfer)
        # noncomp between begin and end: 1us (in Isend) + 1us (in Wait) = 2us
        assert m.min_overlap_time == pytest.approx(xfer - 2e-6)

    def test_insufficient_computation_caps_max_overlap(self, table):
        xfer = table.time_for(100000)  # 101 us
        events = [
            enter(0.0),
            begin(1e-6, 1, 100000),
            leave(2e-6),
            enter(12e-6),  # only 10 us of compute
            end(120e-6, 1, 100000),
            leave(121e-6),
        ]
        m = make(table, events).total
        assert m.max_overlap_time == pytest.approx(10e-6)

    def test_large_library_time_zeroes_min_bound(self, table):
        xfer = table.time_for(1000)  # 2 us
        events = [
            enter(0.0),
            begin(1e-6, 1, 1000),
            leave(2e-6),
            enter(3e-6),
            # wait dominated: 50 us inside the library before completion
            end(53e-6, 1, 1000),
            leave(54e-6),
        ]
        m = make(table, events).total
        assert m.min_overlap_time == 0.0  # noncomp (51us) >= xfer (2us)
        assert m.max_overlap_time == pytest.approx(1e-6)  # only 1 us compute

    def test_min_bound_formula_exact(self, table):
        # xfer = 1us + 50000ns = 51 us; noncomp = 3us + 2us = 5us
        events = [
            enter(0.0),
            begin(2e-6, 9, 50000),
            leave(5e-6),  # 3 us in-library after begin
            enter(65e-6),  # 60 us compute
            end(67e-6, 9, 50000),  # 2 us in-library before end
            leave(68e-6),
        ]
        m = make(table, events).total
        xfer = table.time_for(50000)
        assert m.min_overlap_time == pytest.approx(xfer - 5e-6)
        assert m.max_overlap_time == pytest.approx(xfer)  # 60us comp > xfer

    def test_interleaved_multi_call_sequence_accumulates(self, table):
        # begin; [exit 10us compute; enter 5us library] x2; end.
        events = [
            enter(0.0),
            begin(0.0, 1, 30000),
            leave(0.0),
            enter(10e-6),
            leave(15e-6),
            enter(25e-6),
            end(30e-6, 1, 30000),
            leave(30e-6),
        ]
        m = make(table, events).total
        # xfer = 31 us but begin->end elapsed is only 30 us: the raw min
        # bound (xfer - noncomp = 21 us) would exceed the max bound
        # (comp = 20 us), so the processor clamps min to max.
        assert m.max_overlap_time == pytest.approx(20e-6)  # comp capped
        assert m.min_overlap_time == pytest.approx(20e-6)  # clamped to max

    def test_begin_outside_any_call_still_case2(self, table):
        # ARMCI-style: the stamping happens outside (tolerated).
        events = [
            begin(0.0, 1, 1000),
            enter(50e-6),
            end(51e-6, 1, 1000),
            leave(52e-6),
        ]
        m = make(table, events).total
        assert m.case_counts[2] == 1
        assert m.max_overlap_time == pytest.approx(table.time_for(1000))


class TestCase3OneEvent:
    def test_end_without_begin(self, table):
        events = [
            enter(0.0),
            end(5e-6, 42, 2000),
            leave(6e-6),
        ]
        m = make(table, events).total
        assert m.case_counts[3] == 1
        assert m.min_overlap_time == 0.0
        assert m.max_overlap_time == pytest.approx(table.time_for(2000))

    def test_begin_without_end_resolved_at_finalize(self, table):
        events = [
            enter(0.0),
            begin(1e-6, 5, 4000),
            leave(2e-6),
        ]
        m = make(table, events, finalize_at=100e-6).total
        assert m.case_counts[3] == 1
        assert m.max_overlap_time == pytest.approx(table.time_for(4000))
        assert m.min_overlap_time == 0.0

    def test_data_transfer_time_counts_case3(self, table):
        events = [enter(0.0), end(1e-6, 1, 1000), leave(2e-6)]
        m = make(table, events).total
        assert m.data_transfer_time == pytest.approx(table.time_for(1000))


class TestIntervalAttribution:
    def test_computation_and_call_time_split(self, table):
        events = [
            enter(0.0),
            leave(3e-6),  # 3us call
            enter(10e-6),  # 7us compute
            leave(12e-6),  # 2us call
        ]
        m = make(table, events).total
        assert m.communication_call_time == pytest.approx(5e-6)
        assert m.computation_time == pytest.approx(7e-6)

    def test_time_before_first_event_not_attributed(self, table):
        events = [enter(10.0), leave(11.0)]
        m = make(table, events).total
        assert m.computation_time == 0.0
        assert m.communication_call_time == pytest.approx(1.0)

    def test_finalize_attributes_tail_interval(self, table):
        events = [enter(0.0), leave(1.0)]
        proc = DataProcessor(table)
        proc.process(events)
        proc.finalize(4.0)  # 3s of trailing computation
        assert proc.total.computation_time == pytest.approx(3.0)

    def test_nested_calls_count_as_in_library(self, table):
        events = [
            enter(0.0, name=0),
            enter(1e-6, name=1),  # nested helper
            leave(2e-6, name=1),
            leave(3e-6, name=0),
        ]
        m = make(table, events).total
        assert m.communication_call_time == pytest.approx(3e-6)
        assert m.computation_time == 0.0

    def test_reset_event_skips_gap(self, table):
        events = [
            enter(0.0),
            leave(1.0),
            TimedEvent(K.RESET, 100.0, 0, 0),  # paused from 1.0 to 100.0
            enter(101.0),
            leave(102.0),
        ]
        m = make(table, events).total
        assert m.computation_time == pytest.approx(1.0)  # 100->101 only
        assert m.communication_call_time == pytest.approx(2.0)


class TestCallStats:
    def test_per_call_name_totals(self, table):
        events = [
            enter(0.0, name=3),
            leave(2e-6, name=3),
            enter(5e-6, name=3),
            leave(6e-6, name=3),
            enter(7e-6, name=4),
            leave(10e-6, name=4),
        ]
        proc = make(table, events)
        assert proc.call_stats[3].count == 2
        assert proc.call_stats[3].total_time == pytest.approx(3e-6)
        assert proc.call_stats[3].mean_time == pytest.approx(1.5e-6)
        assert proc.call_stats[4].total_time == pytest.approx(3e-6)

    def test_nested_calls_attributed_to_outermost(self, table):
        events = [
            enter(0.0, name=0),
            enter(1.0, name=1),
            leave(2.0, name=1),
            leave(3.0, name=0),
        ]
        proc = make(table, events)
        assert proc.call_stats[0].total_time == pytest.approx(3.0)
        assert 1 not in proc.call_stats


class TestSections:
    def test_section_scopes_transfers_and_intervals(self, table):
        events = [
            TimedEvent(K.SECTION_BEGIN, 0.0, 11, 0),
            enter(0.0),
            begin(0.0, 1, 10000),
            leave(1e-6),
            enter(100e-6),
            end(101e-6, 1, 10000),
            leave(102e-6),
            TimedEvent(K.SECTION_END, 102e-6, 11, 0),
            # outside the section: another call
            enter(110e-6),
            leave(111e-6),
        ]
        proc = make(table, events)
        sec = proc.sections[11]
        assert sec.transfer_count == 1
        assert sec.max_overlap_time == pytest.approx(table.time_for(10000))
        assert sec.communication_call_time == pytest.approx(3e-6)
        assert sec.computation_time == pytest.approx(99e-6)
        # global sees everything
        assert proc.total.communication_call_time == pytest.approx(4e-6)

    def test_transfer_attributed_to_section_at_begin(self, table):
        # xfer begins inside section, ends after it closed -> still counted.
        events = [
            TimedEvent(K.SECTION_BEGIN, 0.0, 5, 0),
            enter(0.0),
            begin(0.0, 1, 1000),
            leave(1e-6),
            TimedEvent(K.SECTION_END, 2e-6, 5, 0),
            enter(50e-6),
            end(51e-6, 1, 1000),
            leave(52e-6),
        ]
        proc = make(table, events)
        assert proc.sections[5].transfer_count == 1

    def test_mismatched_section_end_raises(self, table):
        proc = DataProcessor(table)
        with pytest.raises(InstrumentationError):
            proc.process(
                [
                    TimedEvent(K.SECTION_BEGIN, 0.0, 1, 0),
                    TimedEvent(K.SECTION_END, 1.0, 2, 0),
                ]
            )


class TestStreamValidation:
    def test_backwards_time_rejected(self, table):
        proc = DataProcessor(table)
        with pytest.raises(InstrumentationError):
            proc.process([enter(5.0), leave(1.0)])

    def test_exit_without_enter_rejected(self, table):
        proc = DataProcessor(table)
        with pytest.raises(InstrumentationError):
            proc.process([leave(0.0)])

    def test_duplicate_begin_rejected(self, table):
        proc = DataProcessor(table)
        with pytest.raises(InstrumentationError):
            proc.process([enter(0.0), begin(0.0, 1, 10), begin(1.0, 1, 10)])

    def test_size_mismatch_rejected(self, table):
        proc = DataProcessor(table)
        with pytest.raises(InstrumentationError):
            proc.process([enter(0.0), begin(0.0, 1, 10), end(1.0, 1, 20)])

    def test_process_after_finalize_rejected(self, table):
        proc = DataProcessor(table)
        proc.finalize()
        with pytest.raises(InstrumentationError):
            proc.process([enter(0.0)])

    def test_double_finalize_is_idempotent(self, table):
        proc = DataProcessor(table)
        proc.process([enter(0.0), begin(0.0, 1, 10), leave(1.0)])
        proc.finalize(2.0)
        proc.finalize(5.0)  # no-op
        assert proc.total.case_counts[3] == 1


class TestBatchContinuity:
    """State must survive circular-queue drains (active events persist)."""

    def test_transfer_spanning_batches(self, table):
        proc = DataProcessor(table)
        proc.process([enter(0.0), begin(1e-6, 1, 10000), leave(2e-6)])
        proc.process([enter(100e-6), end(101e-6, 1, 10000), leave(102e-6)])
        proc.finalize()
        xfer = table.time_for(10000)
        assert proc.total.max_overlap_time == pytest.approx(xfer)
        assert proc.total.min_overlap_time == pytest.approx(xfer - 2e-6)

    def test_interval_attribution_spans_batches(self, table):
        proc = DataProcessor(table)
        proc.process([enter(0.0), leave(1.0)])
        proc.process([enter(3.0), leave(4.0)])
        proc.finalize()
        assert proc.total.computation_time == pytest.approx(2.0)
        assert proc.total.communication_call_time == pytest.approx(2.0)

    def test_active_transfer_count_visible(self, table):
        proc = DataProcessor(table)
        proc.process([enter(0.0), begin(0.0, 1, 10), begin(0.0, 2, 10)])
        assert proc.active_transfer_count == 2
        assert proc.in_call
        proc.process([end(1.0, 1, 10)])
        assert proc.active_transfer_count == 1
