"""Tests for FT's 1-D vs 2-D decompositions (the latter exercises
MPI_Comm_split inside a NAS kernel, as the NPB source does)."""

import pytest

from repro.mpisim.config import mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.ft import ft_app
from repro.runtime import run_app

FAST = CpuModel(flop_rate=100e9)


@pytest.mark.parametrize("layout", ["1d", "2d"])
@pytest.mark.parametrize("nprocs", [2, 4, 8])
def test_both_layouts_verify(layout, nprocs):
    result = run_app(
        ft_app, nprocs, config=mvapich2_like(),
        app_args=("S", 2, FAST, layout),
    )
    assert result.returns[0] == sum(range(1, nprocs + 1)) * 2


def test_2d_layout_message_counts():
    # P=4 => 2x2 grid: each transpose is two alltoalls within size-2
    # sub-communicators: (2-1)x2 transfers each = 4/iteration, plus the
    # root's allreduce share (4).
    def count(niter):
        result = run_app(
            ft_app, 4, config=mvapich2_like(),
            app_args=("S", niter, FAST, "2d"),
        )
        return result.report(0).total.transfer_count

    per_iter = count(3) - count(2)
    assert per_iter == 4 + 4


def test_2d_layout_fewer_partners_bigger_blocks():
    runs = {}
    for layout in ("1d", "2d"):
        result = run_app(
            ft_app, 8, config=mvapich2_like(),
            app_args=("S", 2, FAST, layout),
        )
        runs[layout] = result.report(0).total
    # 2-D alltoalls run within sub-communicators: fewer partners, so the
    # same volume moves in larger blocks (local/p1 and local/p2 vs local/P).
    def biggest(m):
        return max(b.bytes / b.count for b in m.bins.bins if b.count)

    assert biggest(runs["2d"]) > biggest(runs["1d"])
    # The volume crossing the wire doubles (two transposes move all data).
    vol_1d = sum(b.bytes for b in runs["1d"].bins.bins)
    vol_2d = sum(b.bytes for b in runs["2d"].bins.bins)
    assert vol_2d > 1.3 * vol_1d
    # But the overlap verdict is the same: collectives can't overlap.
    assert runs["2d"].max_overlap_pct < 35.0
    assert runs["1d"].max_overlap_pct < 35.0


def test_unknown_layout_rejected():
    with pytest.raises(ValueError, match="layout"):
        run_app(ft_app, 2, app_args=("S", 1, FAST, "3d"))
