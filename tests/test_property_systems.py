"""Property-based tests for the substrate and library layers.

Model-based checking of the matching engine against a naive reference,
registration-cache resource bounds, simulation determinism, and
MPI/collective correctness over randomized shapes.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.mpisim import MpiConfig
from repro.mpisim.matching import MatchingEngine, UnexpectedMsg
from repro.mpisim.request import Request
from repro.mpisim.status import ANY_SOURCE, ANY_TAG
from repro.netsim import NetworkParams, RegistrationCache
from repro.runtime import run_app
from repro.sim import Engine


# ---------------------------------------------------------------------------
# Matching engine vs a naive reference model
# ---------------------------------------------------------------------------
class _NaiveMatcher:
    """Obviously correct O(n^2) reference for MPI matching semantics."""

    def __init__(self):
        self.posted = []
        self.unexpected = []

    @staticmethod
    def _ok(want_src, want_tag, src, tag):
        return want_src in (ANY_SOURCE, src) and want_tag in (ANY_TAG, tag)

    def post_recv(self, want_src, want_tag, ident):
        for i, (src, tag, mid) in enumerate(self.unexpected):
            if self._ok(want_src, want_tag, src, tag):
                del self.unexpected[i]
                return ("matched-arrival", mid)
        self.posted.append((want_src, want_tag, ident))
        return ("queued", ident)

    def arrive(self, src, tag, mid):
        for i, (want_src, want_tag, ident) in enumerate(self.posted):
            if self._ok(want_src, want_tag, src, tag):
                del self.posted[i]
                return ("matched-recv", ident)
        self.unexpected.append((src, tag, mid))
        return ("queued", mid)


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["post", "arrive"]),
        st.integers(min_value=-1, max_value=3),  # source (-1 = wildcard)
        st.integers(min_value=-1, max_value=3),  # tag (-1 = wildcard)
    ),
    max_size=60,
)


@given(_OPS)
@settings(max_examples=200, deadline=None)
def test_matching_engine_agrees_with_reference(ops):
    engine = MatchingEngine()
    naive = _NaiveMatcher()
    ident = 0
    for op, src, tag in ops:
        ident += 1
        if op == "post":
            want_src = src  # may be ANY_SOURCE (-1)
            want_tag = tag
            req = Request("recv", want_src, 0, want_tag, 0.0)
            req_outcome = engine.post_recv(req)
            ref = naive.post_recv(want_src, want_tag, ident)
            if ref[0] == "matched-arrival":
                assert req_outcome is not None
                assert req_outcome.seq == ref[1]
            else:
                assert req_outcome is None
        else:
            a_src = max(src, 0)  # arrivals have concrete source/tag
            a_tag = max(tag, 0)
            matched = engine.match_arrival(a_src, a_tag)
            ref = naive.arrive(a_src, a_tag, ident)
            if ref[0] == "matched-recv":
                assert matched is not None
            else:
                assert matched is None
                engine.add_unexpected(
                    UnexpectedMsg("eager", ident, a_src, a_tag, 8.0, None, 0.0)
                )
    assert engine.posted_count == len(naive.posted)
    assert engine.unexpected_pending == len(naive.unexpected)


# ---------------------------------------------------------------------------
# Registration cache resource bounds
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=9),
                  st.floats(min_value=1, max_value=1e6, allow_nan=False)),
        max_size=80,
    ),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=150, deadline=None)
def test_regcache_never_exceeds_limits(ops, max_entries):
    cache = RegistrationCache(NetworkParams(), max_entries=max_entries,
                              max_bytes=2e6)
    for key, size in ops:
        cost = cache.register(key, size)
        assert cost >= 0.0
        assert len(cache) <= max_entries
        # Immediately re-registering the same region is always a hit.
        assert cache.register(key, size) == 0.0
    assert cache.pinned_bytes >= 0.0


# ---------------------------------------------------------------------------
# Simulation determinism
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=4),
                  st.floats(min_value=1e-6, max_value=1e-2, allow_nan=False)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=75, deadline=None)
def test_engine_replay_is_identical(schedule):
    def run():
        eng = Engine()
        trace = []

        def worker(name, delays):
            for d in delays:
                yield eng.timeout(d)
                trace.append((name, eng.now))

        by_worker = {}
        for worker_id, delay in schedule:
            by_worker.setdefault(worker_id, []).append(delay)
        for worker_id, delays in by_worker.items():
            eng.process(worker(worker_id, delays))
        eng.run()
        return trace

    assert run() == run()


# ---------------------------------------------------------------------------
# MPI layer properties over randomized shapes
# ---------------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=1 << 20),
    st.sampled_from(["pipelined", "rget", "rput"]),
)
@settings(max_examples=40, deadline=None)
def test_p2p_roundtrip_any_size_any_protocol(nprocs, nbytes, rndv):
    config = MpiConfig(name="prop", eager_limit=4096, rndv_mode=rndv,
                       frag_size=8192)

    def app(ctx):
        if ctx.size == 1:
            return 0
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 3, nbytes, data=("blob", nbytes))
        elif ctx.rank == 1:
            status, data = yield from ctx.comm.recv(0, 3)
            assert status.nbytes == nbytes
            assert data == ("blob", nbytes)
        return 0

    result = run_app(app, nprocs, config=config)
    if nprocs > 1:
        for rank in (0, 1):
            m = result.report(rank).total
            assert 0.0 <= m.min_overlap_time <= m.max_overlap_time + 1e-12
            assert m.max_overlap_time <= m.data_transfer_time + 1e-9


@given(
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=1, max_value=100_000),
)
@settings(max_examples=40, deadline=None)
def test_collectives_correct_over_random_shapes(nprocs, root_seed, nbytes):
    root = root_seed % nprocs

    def app(ctx):
        value = yield from ctx.comm.bcast(root, nbytes,
                                          "v" if ctx.rank == root else None)
        assert value == "v"
        total = yield from ctx.comm.allreduce(ctx.rank + 1, nbytes)
        assert total == nprocs * (nprocs + 1) // 2
        blocks = yield from ctx.comm.allgather(nbytes, ctx.rank)
        assert blocks == list(range(nprocs))
        return total

    result = run_app(app, nprocs)
    assert len(set(result.returns)) == 1


@given(st.integers(min_value=2, max_value=5),
       st.lists(st.integers(min_value=0, max_value=1 << 18),
                min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_ordering_holds_for_mixed_protocol_bursts(nprocs, sizes):
    """Non-overtaking must hold even when eager and rendezvous interleave."""
    config = MpiConfig(name="mix", eager_limit=4096, rndv_mode="rget")

    def app(ctx):
        if ctx.rank == 0:
            reqs = []
            for i, size in enumerate(sizes):
                reqs.append(
                    (yield from ctx.comm.isend(1, 9, size, data=i))
                )
            yield from ctx.comm.waitall(reqs)
        elif ctx.rank == 1:
            for i, size in enumerate(sizes):
                status, data = yield from ctx.comm.recv(0, 9)
                assert data == i
                assert status.nbytes == size

    run_app(app, nprocs, config=config)
