"""SweepProgress publication and the watch dashboard CLI."""

import json

import pytest

from repro.metrics import MetricsRegistry, SweepProgress, load_status, parse_openmetrics
from repro.metrics.progress import OPENMETRICS_FILENAME, STATUS_FILENAME
from repro.tools import watch


def _drive(progress: SweepProgress) -> None:
    progress.start(total=4, jobs=2)
    progress.task_done(0.5, name="fig03")
    progress.task_done(0.0, cached=True, name="fig04")
    progress.task_done(0.3, name="fig05")
    progress.task_done(0.2, name="fig06")
    progress.finish()


def test_progress_publishes_status_and_openmetrics(tmp_path):
    progress = SweepProgress(tmp_path, label="unit", min_write_interval=0.0)
    _drive(progress)

    payload = load_status(tmp_path)
    assert payload is not None
    assert payload["label"] == "unit"
    assert payload["total"] == 4
    assert payload["done"] == 4
    assert payload["cached"] == 1
    assert payload["queued"] == 0
    assert payload["finished"] is True
    assert payload["cache_ratio"] == 0.25
    assert payload["busy_s"] == 1.0
    assert 0.0 < payload["utilization"] <= 1.0
    assert payload["last_task"] == "fig06"

    om = (tmp_path / OPENMETRICS_FILENAME).read_text()
    parsed = parse_openmetrics(om)
    samples = parsed["repro_sweep_tasks"]["samples"]
    assert samples[("_total", (("outcome", "run"),))] == 3.0
    assert samples[("_total", (("outcome", "cached"),))] == 1.0
    assert parsed["repro_sweep_task_seconds"]["samples"][("_count", ())] == 3.0
    assert parsed["repro_sweep_tasks_queued"]["samples"][("", ())] == 0.0


def test_progress_eta_uses_avg_task_and_jobs(tmp_path):
    progress = SweepProgress(None, label="eta")
    progress.start(total=10, jobs=2)
    progress.task_done(4.0)
    status = progress.status()
    # avg 4.0s, 9 remaining, 2 workers -> 18s
    assert status["avg_task_s"] == 4.0
    assert status["eta_s"] == 18.0


def test_progress_without_dir_only_calls_hook(tmp_path, monkeypatch):
    seen = []
    progress = SweepProgress(None, on_update=seen.append)
    progress.start(total=1)
    progress.task_done(0.1)
    progress.finish()
    assert len(seen) == 3
    assert seen[-1]["finished"] is True


def test_progress_throttles_intermediate_writes(tmp_path):
    progress = SweepProgress(tmp_path, min_write_interval=3600.0)
    progress.start(total=3, jobs=1)  # forced first write
    first = (tmp_path / STATUS_FILENAME).read_text()
    progress.task_done(0.1)
    progress.task_done(0.1)
    assert (tmp_path / STATUS_FILENAME).read_text() == first  # throttled
    progress.finish()  # forced last write
    final = json.loads((tmp_path / STATUS_FILENAME).read_text())
    assert final["done"] == 2 and final["finished"] is True


def test_progress_accepts_external_registry(tmp_path):
    reg = MetricsRegistry()
    progress = SweepProgress(tmp_path, registry=reg, min_write_interval=0.0)
    _drive(progress)
    assert "repro_sweep_tasks" in reg


def test_load_status_missing_or_corrupt(tmp_path):
    assert load_status(tmp_path) is None
    (tmp_path / STATUS_FILENAME).write_text("{not json")
    assert load_status(tmp_path) is None


# ---------------------------------------------------------------------------
# watch CLI
# ---------------------------------------------------------------------------
def test_render_status_placeholder_without_payload():
    text = watch.render_status(None)
    assert "no sweep status" in text


def test_render_status_formats_dashboard():
    payload = {
        "label": "paper", "total": 8, "done": 4, "cached": 2, "queued": 4,
        "jobs": 2, "elapsed_s": 10.0, "avg_task_s": 2.5, "utilization": 0.8,
        "cache_ratio": 0.5, "eta_s": 5.0, "last_task": "fig12",
        "finished": False,
    }
    text = watch.render_status(payload)
    assert "sweep paper [running]" in text
    assert "4/8 tasks (50%)" in text
    assert "cached 2 (50% hit)" in text
    assert "worker util 80%" in text
    assert "ETA 5s" in text
    assert "last: fig12" in text
    payload["finished"] = True
    assert "[done]" in watch.render_status(payload)


def test_render_status_surfaces_coordinator_stages():
    payload = {
        "label": "sharded", "total": 1, "done": 1, "finished": True,
        "stages": {
            "coord.fence": {"count": 800, "avg_ms": 0.02, "total_s": 0.016},
            "coord.dispatch": {"count": 800, "avg_ms": 0.05,
                               "total_s": 0.04},
            "coord.wait": {"count": 800, "avg_ms": 0.18, "total_s": 0.144},
            "shard.advance": {"count": 6400, "avg_ms": 0.4, "total_s": 2.56},
        },
    }
    text = watch.render_status(payload)
    # 800 rounds over a 0.2 s coordination loop; fence+dispatch is 28%.
    assert "coordinator 800 fence rounds @ 4,000/s" in text
    assert "28% coordinator share" in text
    # No coord.fence stage -> no coordinator line.
    del payload["stages"]["coord.fence"]
    assert "coordinator" not in watch.render_status(payload)


def test_fmt_eta_ranges():
    assert watch._fmt_eta(0.0) == "--"
    assert watch._fmt_eta(42.0) == "42s"
    assert watch._fmt_eta(120.0) == "2.0m"
    assert watch._fmt_eta(7200.0) == "2.0h"


def test_watch_once_exits_nonzero_without_status(tmp_path, capsys):
    rc = watch.main(["--once", "--metrics-dir", str(tmp_path)])
    assert rc == 1
    assert "no sweep status" in capsys.readouterr().out


def test_watch_once_renders_published_sweep(tmp_path, capsys):
    progress = SweepProgress(tmp_path, label="smoke", min_write_interval=0.0)
    _drive(progress)
    rc = watch.main(["--once", "--metrics-dir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sweep smoke [done]" in out
    assert "4/4 tasks (100%)" in out


def test_watch_live_exits_when_finished(tmp_path, capsys):
    progress = SweepProgress(tmp_path, label="live", min_write_interval=0.0)
    _drive(progress)
    rc = watch.main(["--metrics-dir", str(tmp_path), "--interval", "0.01"])
    assert rc == 0
    assert "sweep live [done]" in capsys.readouterr().err


def test_live_renderer_repaints_in_place():
    import io

    stream = io.StringIO()
    renderer = watch.LiveRenderer(stream)
    renderer.update(None)
    renderer.update(None)
    text = stream.getvalue()
    assert "\x1b[1A\x1b[J" in text  # second frame clears the first (1 line)
