"""CalendarQueue, lazy timeout cancellation, and Burst unit tests.

The calendar queue must be a drop-in replacement for ``heapq``: exact
``(when, seq)`` pop order under any push/pop interleaving.  Lazy
cancellation must keep the pending store bounded under cancel-heavy
workloads.  Bursts must tail-extend, refuse out-of-order times, and
yield/reinsert when a competing event holds a smaller key.
"""

import heapq

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.sim import Engine
from repro.sim.calendar import CalendarQueue
from repro.sim.engine import CALENDAR_COLLAPSE, CALENDAR_ENGAGE


# -- CalendarQueue vs heapq reference -----------------------------------------

#: Push times with many duplicates (tie-break stress) and wide spans
#: (bucket-width / sparse-region stress).
times = st.one_of(
    st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
    st.sampled_from([0.0, 1e-9, 1.0, 1.0, 1e3]),
)
ops = st.lists(
    st.one_of(st.tuples(st.just("push"), times), st.just(("pop", None))),
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(ops=ops)
def test_pop_order_matches_heapq_reference(ops):
    cal = CalendarQueue()
    ref: list = []
    seq = 0
    for op, when in ops:
        if op == "push":
            cal.push(when, seq, f"item{seq}")
            heapq.heappush(ref, (when, seq, f"item{seq}"))
            seq += 1
        elif ref:
            assert cal.min_key() == (ref[0][0], ref[0][1])
            assert cal.pop() == heapq.heappop(ref)
        else:
            assert cal.min_key() is None
            with pytest.raises(IndexError):
                cal.pop()
        assert len(cal) == len(ref)
    while ref:
        assert cal.pop() == heapq.heappop(ref)
    assert len(cal) == 0


def test_seeded_construction_drains_sorted():
    entries = [(float(i % 97) * 1e-6, i, i) for i in range(3000)]
    cal = CalendarQueue(entries)
    assert len(cal) == 3000
    popped = [cal.pop() for _ in range(3000)]
    assert popped == sorted(entries)


def test_drain_returns_everything_unsorted():
    cal = CalendarQueue()
    for i in range(100):
        cal.push(i * 1e-6, i, i)
    drained = cal.drain()
    assert len(cal) == 0
    assert sorted(drained) == [(i * 1e-6, i, i) for i in range(100)]


def test_compact_drops_only_dead_entries():
    cal = CalendarQueue()
    for i in range(500):
        cal.push(i * 1e-6, i, i)
    removed = cal.compact(lambda item: item % 3 == 0)
    assert removed == len([i for i in range(500) if i % 3 == 0])
    survivors = [cal.pop()[2] for _ in range(len(cal))]
    assert survivors == [i for i in range(500) if i % 3 != 0]


def test_push_behind_cursor_is_not_lost():
    # Pop far ahead, then push an earlier entry: the cursor must rewind.
    cal = CalendarQueue()
    cal.push(1.0, 0, "late")
    assert cal.pop()[2] == "late"
    cal.push(1e-6, 1, "early")
    cal.push(2.0, 2, "later")
    assert cal.pop()[2] == "early"
    assert cal.pop()[2] == "later"


# -- engine-level calendar engagement -----------------------------------------

def test_engine_engages_and_collapses_calendar():
    eng = Engine()
    n = CALENDAR_ENGAGE + 512
    fired: list[float] = []
    for i in range(n):
        t = eng.timeout((n - i) * 1e-7)  # reverse order: heap gets exercised
        t.callbacks.append(lambda ev, when=(n - i) * 1e-7: fired.append(when))
    assert eng._cal is not None  # engaged above the threshold
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == n
    # Draining below CALENDAR_COLLAPSE pending flips back to the heap.
    assert eng._cal is None
    assert eng.pending_count == 0
    assert eng.heap_high_water >= CALENDAR_ENGAGE


def test_calendar_preserves_fifo_ties():
    eng = Engine()
    order: list[int] = []
    for i in range(CALENDAR_ENGAGE + 100):
        t = eng.timeout(5e-6)  # every event at the same instant
        t.callbacks.append(lambda ev, i=i: order.append(i))
    eng.run()
    assert order == list(range(CALENDAR_ENGAGE + 100))


# -- lazy cancellation / compaction -------------------------------------------

def test_cancelled_timeouts_keep_heap_bounded():
    """Cancel-heavy workload: the store must not grow with total cancels.

    This is the guard-timeout pattern: every operation arms a long guard
    and cancels it on completion.  With eager deletion the heap would hold
    one dead entry per cancel until its distant deadline; lazy deletion
    plus compaction keeps the high-water mark near the live population.
    """
    eng = Engine()
    n = 20_000

    def driver():
        for _ in range(n):
            guard = eng.timeout(1e3)  # distant guard, always cancelled
            yield eng.timeout(1e-7)   # the real (short) operation
            assert guard.cancel()

    eng.process(driver())
    eng.run()
    assert eng.cancelled_count == n
    # Live population is ~2 per iteration; compaction must keep the store
    # within a small constant factor of that, not O(n).
    assert eng.heap_high_water < 256
    assert eng.pending_count == 0


def test_cancel_is_idempotent_and_fired_timeouts_refuse():
    eng = Engine()
    t = eng.timeout(1.0)
    assert t.cancel()
    assert not t.cancel()  # second cancel: already dead
    fired = eng.timeout(1e-9)
    fired.callbacks.append(lambda ev: None)
    eng.run()
    assert not fired.cancel()  # already fired
    assert eng.cancelled_count == 1


# -- inline time advance (Engine.elapse) --------------------------------------

def test_elapse_matches_timeout_schedule_bit_for_bit():
    """elapse() and timeout() produce the identical event schedule.

    Two workers with co-prime periods generate interleavings and exact
    ``when`` ties; the elapse-based run must resolve every one the same
    way (same timestamps, same FIFO order) as the pure-timeout run.
    """

    def program(eng, tick):
        trace = []

        def a():
            for _ in range(50):
                t = tick(eng, 3e-7)
                if t is not None:
                    yield t
                trace.append(("a", eng.now))

        def b():
            for _ in range(30):
                yield eng.timeout(5e-7)
                trace.append(("b", eng.now))

        eng.process(a())
        eng.process(b())
        eng.run()
        return trace

    with_timeout = program(Engine(), lambda eng, dt: eng.timeout(dt))
    with_elapse = program(Engine(), lambda eng, dt: eng.elapse(dt))
    assert with_elapse == with_timeout


def test_elapse_inline_only_when_provably_next():
    eng = Engine()
    # Empty store: inline advance, no Timeout allocated.
    assert eng.elapse(1e-6) is None
    assert eng.now == 1e-6
    # A pending event before the target: must fall back to a real Timeout.
    eng.timeout(1.5e-6).callbacks.append(lambda _e: None)
    t = eng.elapse(2e-6)
    assert t is not None
    eng.run()
    assert eng.now == 1e-6 + 2e-6


def test_elapse_respects_run_deadline():
    eng = Engine()
    log = []

    def p():
        while True:
            t = eng.elapse(1e-6)
            if t is not None:
                yield t
            log.append(eng.now)

    eng.process(p())
    eng.run(until=5.5e-6)
    assert eng.now == 5.5e-6
    assert log == [pytest.approx(i * 1e-6) for i in range(1, 6)]


# -- Burst unit behaviour ------------------------------------------------------

def test_burst_tail_extends_and_refuses_out_of_order():
    eng = Engine()
    burst = eng.new_burst()
    a = burst.try_at(2e-6)
    b = burst.try_at(2e-6)  # equal time: allowed (FIFO tie-break)
    c = burst.try_at(3e-6)
    assert a is not None and b is not None and c is not None
    assert burst.try_at(1e-6) is None  # precedes the tail: refused
    assert burst.pending == 3
    burst.close()
    assert burst.try_at(5e-6) is None  # closed: refused
    order: list[str] = []
    for name, ev in (("a", a), ("b", b), ("c", c)):
        ev.callbacks.append(lambda _e, name=name: order.append(name))
    eng.run()
    assert order == ["a", "b", "c"]
    assert burst.pending == 0
    assert eng.now == 3e-6


def test_burst_yields_to_competing_smaller_key():
    # A plain event lands between two burst sub-events: the burst must
    # yield, let it run at the right instant, and reinsert its remainder.
    eng = Engine()
    burst = eng.new_burst()
    first = burst.try_at(1e-6)
    second = burst.try_at(5e-6)
    order: list[str] = []
    first.callbacks.append(lambda _e: order.append("sub1"))
    second.callbacks.append(lambda _e: order.append("sub2"))
    mid = eng.timeout(3e-6)
    mid.callbacks.append(lambda _e: order.append("mid"))
    eng.run()
    assert order == ["sub1", "mid", "sub2"]
    assert eng.burst_reinserts >= 1


def test_burst_interleaved_with_step():
    eng = Engine()
    burst = eng.new_burst()
    evs = [burst.try_at(i * 1e-6) for i in range(1, 6)]
    seen: list[float] = []
    for ev in evs:
        ev.callbacks.append(lambda _e: seen.append(eng.now))
    while eng.pending_count:
        eng.step()
    assert seen == [i * 1e-6 for i in range(1, 6)]
