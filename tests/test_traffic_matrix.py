"""Tests for per-pair traffic diagnostics."""

import numpy as np
import pytest

from repro.analysis.traffic import message_counts, render_traffic_matrix, traffic_matrix
from repro.mpisim.config import openmpi_like
from repro.runtime import run_app


def _ring_app(ctx):
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    for _ in range(3):
        rreq = yield from ctx.comm.irecv(left, 1)
        sreq = yield from ctx.comm.isend(right, 1, 10_000)
        yield from ctx.comm.waitall([sreq, rreq])


def test_matrix_matches_ring_topology():
    result = run_app(_ring_app, 4, config=openmpi_like(), record_transfers=True)
    matrix = traffic_matrix(result.fabric)
    for src in range(4):
        for dst in range(4):
            if dst == (src + 1) % 4:
                assert matrix[src, dst] > 3 * 10_000  # payload + headers
            else:
                assert matrix[src, dst] == 0.0


def test_message_counts_ring():
    result = run_app(_ring_app, 4, config=openmpi_like(), record_transfers=True)
    counts = message_counts(result.fabric)
    assert counts.sum() == 12  # 4 ranks x 3 messages
    np.testing.assert_array_equal(np.diag(counts), 0)


def test_control_packets_excluded_by_default():
    def app(ctx):
        # Rendezvous: RTS/FIN control packets fly alongside the payload.
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 1, 500_000)
        else:
            yield from ctx.comm.recv(0, 1)

    from repro.mpisim.config import mvapich2_like

    result = run_app(app, 2, config=mvapich2_like(), record_transfers=True)
    payload_only = traffic_matrix(result.fabric)
    with_control = traffic_matrix(result.fabric, include_control=True)
    assert with_control.sum() > payload_only.sum()
    assert payload_only[0, 1] == pytest.approx(500_000)  # the rget read
    assert payload_only[1, 0] == 0.0


def test_requires_recording():
    result = run_app(_ring_app, 2, config=openmpi_like())
    with pytest.raises(ValueError, match="record_transfers"):
        traffic_matrix(result.fabric)
    with pytest.raises(ValueError, match="record_transfers"):
        message_counts(result.fabric)


def test_render_matrix():
    result = run_app(_ring_app, 3, config=openmpi_like(), record_transfers=True)
    text = render_traffic_matrix(traffic_matrix(result.fabric), title="ring")
    assert "ring" in text
    assert "src\\dst" in text
    assert "total" in text
    assert "-" in text  # empty cells rendered as dashes
