"""Property tests for the service's scheduling and dedupe semantics.

:class:`~repro.service.queue.TenantQueue` is deliberately a plain data
structure (no threads, no sockets), so hypothesis can drive it through
arbitrary interleavings of submissions and dispatches and check the
scheduling contract directly:

* per-tenant FIFO within a priority class, under any interleaving;
* strict priority order among eligible jobs;
* queued and running quotas are never exceeded;
* admission control (`check`) exactly predicts whether a push would
  break a quota.

The second half drives :class:`~repro.service.core.OverlapService` with
synthetic tasks (module-level workers, as the runner requires) to pin
the single-flight and crash-isolation guarantees end to end.
"""

from __future__ import annotations

import dataclasses
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import OverlapService, QuotaConfig, TenantQueue
from repro.service.jobs import Submission, job_content_key

TENANTS = ("alice", "bob", "carol")


@dataclasses.dataclass
class FakeJob:
    id: str
    tenant: str
    priority: int
    seq: int = 0


# One scripted step: either a submission or a dispatch attempt.
submissions = st.tuples(st.sampled_from(TENANTS), st.integers(0, 3))
steps = st.lists(
    st.one_of(
        st.tuples(st.just("push"), submissions),
        st.tuples(st.just("pop"), st.just(None)),
        st.tuples(st.just("finish"), st.just(None)),
    ),
    max_size=120,
)
quota_configs = st.builds(
    QuotaConfig,
    max_queued_per_tenant=st.integers(0, 6),
    max_running_per_tenant=st.integers(1, 3),
    max_queued_total=st.integers(1, 12),
)


@settings(max_examples=200, deadline=None)
@given(steps=steps, quotas=quota_configs)
def test_queue_invariants_under_arbitrary_interleaving(steps, quotas):
    queue = TenantQueue(quotas)
    running: "dict[str, int]" = {}
    running_jobs: "list[FakeJob]" = []
    started: "list[FakeJob]" = []
    n = 0

    for op, arg in steps:
        if op == "push":
            tenant, priority = arg
            admission = queue.check(tenant)
            # `check` must exactly predict quota state.
            assert admission.ok == (
                len(queue) < quotas.max_queued_total
                and queue.queued_for(tenant) < quotas.max_queued_per_tenant
            )
            if not admission.ok:
                assert admission.reason
                assert admission.retry_after > 0
                continue
            n += 1
            queue.push(FakeJob(id=f"j{n}", tenant=tenant, priority=priority))
        elif op == "pop":
            job = queue.pop_next(running)
            if job is None:
                # Correct refusal: everything queued is quota-blocked.
                assert all(
                    running.get(j.tenant, 0) >= quotas.max_running_per_tenant
                    for j in queue._waiting
                )
                continue
            # Quota respected at the moment of dispatch.
            assert running.get(job.tenant, 0) < quotas.max_running_per_tenant
            # No eligible job with strictly higher priority was skipped.
            for other in queue._waiting:
                if running.get(other.tenant, 0) \
                        < quotas.max_running_per_tenant:
                    assert other.priority <= job.priority
            running[job.tenant] = running.get(job.tenant, 0) + 1
            running_jobs.append(job)
            started.append(job)
        else:  # finish the oldest running job
            if running_jobs:
                job = running_jobs.pop(0)
                running[job.tenant] -= 1

        # Global invariants after every step.
        assert len(queue) <= quotas.max_queued_total
        for tenant in TENANTS:
            assert queue.queued_for(tenant) <= quotas.max_queued_per_tenant
            assert running.get(tenant, 0) <= quotas.max_running_per_tenant
        # Bookkeeping agrees with the ground truth.
        assert len(queue) == sum(
            queue.queued_for(t) for t in TENANTS)

    # Per-tenant FIFO within each priority class: for any one tenant and
    # priority, jobs started in submission (seq) order.
    for tenant in TENANTS:
        for priority in range(4):
            seqs = [j.seq for j in started
                    if j.tenant == tenant and j.priority == priority]
            assert seqs == sorted(seqs)


@settings(max_examples=100, deadline=None)
@given(steps=steps)
def test_queue_drains_completely_in_priority_order(steps):
    """With no running jobs, draining the whole queue yields strict
    (priority desc, seq asc) order regardless of submission pattern."""
    queue = TenantQueue(QuotaConfig(max_queued_per_tenant=1000,
                                    max_queued_total=1000))
    n = 0
    for op, arg in steps:
        if op != "push":
            continue
        tenant, priority = arg
        n += 1
        queue.push(FakeJob(id=f"j{n}", tenant=tenant, priority=priority))
    drained = []
    while True:
        job = queue.pop_next({})
        if job is None:
            break
        drained.append(job)
    assert len(drained) == n and len(queue) == 0
    keys = [(-j.priority, j.seq) for j in drained]
    assert keys == sorted(keys)


def test_remove_keeps_tenant_accounting():
    queue = TenantQueue()
    a = FakeJob(id="a", tenant="t", priority=0)
    b = FakeJob(id="b", tenant="t", priority=0)
    queue.push(a)
    queue.push(b)
    assert queue.remove("a") is a
    assert queue.remove("a") is None
    assert queue.queued_for("t") == 1 and len(queue) == 1
    assert queue.pop_next({}) is b
    assert queue.tenants() == []


# ---------------------------------------------------------------------------
# Service-level properties, driven with synthetic tasks
# ---------------------------------------------------------------------------
def _value_worker(tag, duration):
    import time as _time

    if duration:
        _time.sleep(duration)
    return {"tag": tag}


def _crasher(tag):  # pragma: no cover - runs in a child process
    import os

    os._exit(41)


def _sub(tenant: str, label: str) -> Submission:
    return Submission(tenant=tenant, kind="nas", priority=0,
                      label=label, spec={})


def _wait_all(service: OverlapService, job_ids, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        states = {service.jobs[j].state for j in job_ids}
        if states <= {"done", "failed", "cancelled"}:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"jobs did not settle: "
        f"{ {j: service.jobs[j].state for j in job_ids} }")


def test_single_flight_returns_the_same_rows_object_to_all_waiters(tmp_path):
    """N concurrent identical submissions -> one execution, and every
    waiter reads literally the same result rows list."""
    from repro.experiments.runner import Task

    service = OverlapService(cache_root=tmp_path / "c", workers=1)
    # Hold the only worker so the identical submissions below pile up
    # behind one queued execution deterministically.
    blocker = service.submit_tasks(
        _sub("blk", "blocker"), [Task(_value_worker, ("blocker", 0.5))])
    service.start()

    tasks = lambda: [Task(_value_worker, ("shared", 0.0))]  # noqa: E731
    ids = []
    for n in range(6):
        status, body = service.submit_tasks(
            _sub(f"tenant-{n % 3}", "shared"), tasks())
        assert status == 202
        assert body["deduped"] is (n > 0)
        ids.append(body["job_id"])
    # All six share one execution.
    executions = {id(service.jobs[j].execution) for j in ids}
    assert len(executions) == 1

    _wait_all(service, ids + [blocker[1]["job_id"]])
    rows = [service.jobs[j].rows() for j in ids]
    assert all(r is rows[0] for r in rows)
    assert rows[0] == [{"tag": "shared"}]
    # The dashboard saw 7 finished jobs (blocker + 6 waiters) but only
    # two real executions: the 5 dedupe followers count as cached.
    assert service.progress.done == 7
    assert service.progress.cached == 5
    service.shutdown()


def test_dedupe_window_closes_after_completion(tmp_path):
    """After the execution finishes, an identical submission is a cache
    hit (200), not a dedupe waiter -- the single-flight window is exactly
    the execution's lifetime."""
    from repro.experiments.runner import Task

    service = OverlapService(cache_root=tmp_path / "c", workers=1)
    service.start()
    status, body = service.submit_tasks(
        _sub("a", "x"), [Task(_value_worker, ("x", 0.0))])
    assert status == 202
    _wait_all(service, [body["job_id"]])
    status2, body2 = service.submit_tasks(
        _sub("b", "x"), [Task(_value_worker, ("x", 0.0))])
    assert status2 == 200
    assert body2["cached"] is True
    assert service.jobs[body2["job_id"]].rows() == [{"tag": "x"}]
    service.shutdown()


def test_crash_fails_only_the_crashing_job(tmp_path):
    """Property: among a batch of jobs where some workers die, exactly
    the crashing jobs fail; every other job completes with its value."""
    from repro.experiments.runner import Task

    service = OverlapService(cache_root=tmp_path / "c", workers=3)
    service.start()
    expect: "dict[str, str]" = {}
    for n in range(8):
        crash = n % 3 == 0
        if crash:
            tasks = [Task(_crasher, (f"c{n}",))]
        else:
            tasks = [Task(_value_worker, (f"v{n}", 0.0))]
        status, body = service.submit_tasks(
            _sub(f"t{n % 2}", f"job{n}"), tasks)
        assert status == 202
        expect[body["job_id"]] = "failed" if crash else "done"
    _wait_all(service, list(expect))
    for job_id, want in expect.items():
        assert service.jobs[job_id].state == want, job_id
        rows = service.jobs[job_id].rows()
        if want == "failed":
            assert rows[0]["failed"] is True and rows[0]["exitcode"] == 41
        else:
            assert rows == [{"tag": rows[0]["tag"]}]
    # The service survived: a fresh job still runs to completion.
    status, body = service.submit_tasks(
        _sub("after", "after"), [Task(_value_worker, ("after", 0.0))])
    _wait_all(service, [body["job_id"]])
    assert service.jobs[body["job_id"]].state == "done"
    service.shutdown()


def test_job_content_key_is_order_and_content_sensitive():
    from repro.experiments.runner import Task

    t1 = [Task(_value_worker, ("a", 0.0)), Task(_value_worker, ("b", 0.0))]
    t2 = [Task(_value_worker, ("b", 0.0)), Task(_value_worker, ("a", 0.0))]
    t3 = [Task(_value_worker, ("a", 0.0)), Task(_value_worker, ("b", 0.1))]
    k1 = job_content_key("nas", t1)
    assert k1 == job_content_key("nas", list(t1))
    assert k1 != job_content_key("micro", t1)
    assert k1 != job_content_key("nas", t2)
    assert k1 != job_content_key("nas", t3)
