"""End-to-end tests for the overlap-analysis job service.

Everything here talks to a *real* asyncio HTTP server on a loopback
port (no mocked transport): submissions, polling, paged and streamed
results, cancellation, quotas, metrics, and the differential guarantee
that a job submitted over HTTP returns reports byte-identical to the
same configuration run through the CLI worker.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.service import (
    OverlapService,
    QuotaConfig,
    ServiceClient,
    ServerThread,
)
from repro.tools import watch

#: The tiny LU cell used throughout: one simulation, two ranks.
LU_SPEC = {"tenant": "t1", "kind": "nas", "benchmark": "lu",
           "klass": "S", "np": 2, "niter": 1}


@pytest.fixture()
def server(tmp_path):
    service = OverlapService(cache_root=tmp_path / "cache", workers=2,
                             metrics_dir=tmp_path / "metrics")
    with ServerThread(service) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServiceClient(server.url) as c:
        yield c


def _canon(obj) -> str:
    return json.dumps(obj, sort_keys=True)


# ---------------------------------------------------------------------------
# Basic lifecycle over HTTP
# ---------------------------------------------------------------------------
def test_healthz_and_unknown_routes(client):
    health = client.healthz()
    assert health.status == 200
    assert health.body["ok"] is True
    assert health.body["workers"] == 2
    assert client.request("GET", "/nope").status == 404
    assert client.request("PUT", "/v1/jobs").status == 405
    assert client.request("GET", "/v1/jobs/job-99999999").status == 404


def test_submit_poll_result_and_warm_resubmit(client):
    sub = client.submit(LU_SPEC)
    assert sub.status == 202
    assert sub.body["state"] in ("queued", "running")
    job_id = sub.body["job_id"]

    final = client.wait(job_id, timeout=120.0)
    assert final.body["state"] == "done"
    assert final.body["cached"] is False

    result = client.result(job_id)
    assert result.status == 200
    assert result.body["total_rows"] == 1
    rows = result.body["rows"]
    assert rows[0]["label"] == "lu.S.2"
    assert len(rows[0]["reports"]) == 2  # one per rank

    # Identical resubmission: answered from cache in the same round trip.
    warm = client.submit(LU_SPEC)
    assert warm.status == 200
    assert warm.body["state"] == "done"
    assert warm.body["cached"] is True
    warm_rows = client.result(warm.body["job_id"]).body["rows"]
    assert _canon(warm_rows) == _canon(rows)

    # Another tenant asking the same question also hits the cache.
    other = client.submit({**LU_SPEC, "tenant": "someone-else"})
    assert other.status == 200 and other.body["cached"] is True


def test_result_paging_and_streaming(client):
    spec = {**LU_SPEC, "np": [2, 4]}
    sub, final = client.submit_and_wait(spec, timeout=120.0)
    assert final.body["state"] == "done"
    job_id = final.body["job_id"]

    full = client.result(job_id)
    assert full.body["total_rows"] == 2
    page0 = client.result(job_id, offset=0, limit=1)
    page1 = client.result(job_id, offset=1, limit=1)
    assert page0.body["rows"][0] == full.body["rows"][0]
    assert page1.body["rows"][0] == full.body["rows"][1]
    assert page1.body["offset"] == 1

    streamed = client.stream_result(job_id)
    assert streamed[0]["total_rows"] == 2
    assert _canon(streamed[1:]) == _canon(full.body["rows"])


def test_result_before_completion_is_409(tmp_path):
    # No workers started: the job stays queued forever.
    service = OverlapService(cache_root=tmp_path / "c", workers=1)
    status, body = service.submit(LU_SPEC)
    assert status == 202
    code, payload = service.job_result(body["job_id"])
    assert code == 409
    assert payload["state"] == "queued"


def test_invalid_submissions_are_400(client):
    for bad in (
        {"kind": "nope"},
        {"kind": "nas", "benchmark": "nope"},
        {"kind": "nas", "benchmark": "lu", "np": 0},
        {"kind": "nas", "benchmark": "lu", "faults": "garbage=42"},
        {"kind": "nas", "benchmark": "mg", "shards": 2},
        {"kind": "nas", "benchmark": "lu", "faults": "drop=0.1", "shards": 2},
        {"kind": "micro", "pattern": "sendrecv"},
        [1, 2, 3],
    ):
        resp = client.submit(bad)
        assert resp.status == 400, bad
        assert "error" in resp.body


def test_quota_exhaustion_returns_429_with_retry_after(tmp_path):
    service = OverlapService(
        cache_root=tmp_path / "c", workers=1,
        quotas=QuotaConfig(max_queued_per_tenant=0))
    with ServerThread(service) as srv, ServiceClient(srv.url) as c:
        resp = c.submit(LU_SPEC)
        assert resp.status == 429
        assert "retry_after" in resp.body
        retry_after = resp.headers.get("Retry-After")
        assert retry_after is not None and int(retry_after) >= 1


def test_cancel_queued_job(tmp_path):
    # Single worker; keep it busy so the second job is reliably queued.
    service = OverlapService(cache_root=tmp_path / "c", workers=1)
    with ServerThread(service) as srv, ServiceClient(srv.url) as c:
        first = c.submit(LU_SPEC)
        assert first.status == 202
        second = c.submit({**LU_SPEC, "np": 4})  # distinct -> own execution
        assert second.status == 202
        cancelled = c.cancel(second.body["job_id"])
        assert cancelled.status == 200
        assert cancelled.body["state"] == "cancelled"
        # Result of a cancelled job is whatever was recorded: not ready.
        code = c.result(second.body["job_id"]).status
        assert code in (200, 409)
        # The first job is unaffected.
        assert c.wait(first.body["job_id"], timeout=120.0).body["state"] == "done"
        # Cancelling a finished job is a conflict.
        assert c.cancel(first.body["job_id"]).status == 409


def test_single_flight_dedupe_over_http(tmp_path):
    from repro.experiments.runner import Task
    from repro.service.jobs import Submission

    service = OverlapService(cache_root=tmp_path / "c", workers=1)
    with ServerThread(service) as srv, ServiceClient(srv.url) as c:
        # Park the only worker on a synthetic blocker so the two HTTP
        # submissions below deterministically meet in the queue.
        blocker = Submission(tenant="blk", kind="nas", priority=0,
                             label="blocker", spec={})
        service.submit_tasks(blocker, [Task(_sleep_worker, (0.8,))])

        spec = {**LU_SPEC, "klass": "S", "np": 4, "niter": 2}
        first = c.submit(spec)
        assert first.status == 202
        twin = c.submit({**spec, "tenant": "tenant-b"})
        assert twin.status == 202
        assert twin.body["deduped"] is True
        assert twin.body["primary_job_id"] == first.body["job_id"]

        a = c.wait(first.body["job_id"], timeout=120.0)
        b = c.wait(twin.body["job_id"], timeout=120.0)
        assert a.body["state"] == b.body["state"] == "done"
        rows_a = c.result(first.body["job_id"]).body["rows"]
        rows_b = c.result(twin.body["job_id"]).body["rows"]
        assert _canon(rows_a) == _canon(rows_b)
        # One execution, two answers: the service-side row objects are
        # literally shared.
        job_a = service.jobs[first.body["job_id"]]
        job_b = service.jobs[twin.body["job_id"]]
        assert job_a.rows() is job_b.rows()


def test_progress_endpoints_and_watch_url(server, client):
    sub, final = client.submit_and_wait(LU_SPEC, timeout=120.0)
    job_id = final.body["job_id"]

    service_progress = client.progress()
    assert service_progress.status == 200
    assert service_progress.body["done"] >= 1

    job_progress = client.progress(job_id)
    assert job_progress.status == 200
    assert job_progress.body["state"] == "done"

    # The dashboard is just another client of those endpoints.
    assert watch.main(["--once", "--url", server.url]) == 0
    assert watch.main(
        ["--once", "--url", f"{server.url}/v1/jobs/{job_id}/progress"]) == 0
    # And the on-disk artifacts double as a watchable metrics dir.
    assert watch.main(
        ["--once", "--metrics-dir",
         f"{server.service.metrics_dir}/{job_id}"]) == 0


def test_metrics_endpoint_exposes_service_counters(client):
    client.submit_and_wait(LU_SPEC, timeout=120.0)
    client.submit(LU_SPEC)  # warm hit
    text = client.metrics_text()
    assert 'repro_service_submissions_total{outcome="queued"} 1' in text
    assert 'repro_service_submissions_total{outcome="cache_hit"} 1' in text
    assert "repro_cache_lookups" in text
    assert "repro_service_job_seconds" in text


def test_job_listing_filters_by_tenant(client):
    client.submit_and_wait(LU_SPEC, timeout=120.0)
    client.submit({**LU_SPEC, "tenant": "zz-other"})
    all_jobs = client.request("GET", "/v1/jobs")
    assert all_jobs.body["count"] == 2
    mine = client.request("GET", "/v1/jobs?tenant=zz-other")
    assert mine.body["count"] == 1
    assert mine.body["jobs"][0]["tenant"] == "zz-other"


# ---------------------------------------------------------------------------
# The differential guarantee: HTTP result == CLI result, byte for byte
# ---------------------------------------------------------------------------
def _direct_cell(**overrides):
    """Run the CLI worker in-process with the CLI's exact defaults."""
    from repro.tools.nas import _run_cell

    args = dict(benchmark="lu", klass="S", nprocs=2, niter=1,
                library="paper", modified=False, nonblocking=False,
                emit_metrics=False, faults=None, fault_seed=0,
                shards=None, shard_sync="window")
    args.update(overrides)
    return _run_cell(*args.values())


@pytest.mark.parametrize("spec,overrides", [
    # Plain cell.
    ({"kind": "nas", "benchmark": "lu", "klass": "S", "np": 2, "niter": 1},
     {}),
    # With a fault plan (seeded: deterministic).
    ({"kind": "nas", "benchmark": "lu", "klass": "S", "np": 2, "niter": 1,
      "faults": "drop=0.05,dup=0.02", "fault_seed": 5, "library": "openmpi"},
     {"faults": "drop=0.05,dup=0.02", "fault_seed": 5, "library": "openmpi"}),
    # On the sharded parallel-DES engine.
    ({"kind": "nas", "benchmark": "lu", "klass": "S", "np": 4, "niter": 1,
      "shards": 2},
     {"nprocs": 4, "shards": 2}),
])
def test_http_result_byte_identical_to_cli(client, spec, overrides):
    expected = _direct_cell(**overrides)
    sub, final = client.submit_and_wait({"tenant": "diff", **spec},
                                        timeout=300.0)
    assert final.body["state"] == "done"
    rows = client.result(final.body["job_id"]).body["rows"]
    assert len(rows) == 1
    # Both sides through the same canonical JSON: byte-identical reports,
    # including every float (json round-trips Python floats exactly).
    assert _canon(rows[0]) == _canon(expected)


def test_micro_job_matches_direct_sweep(client):
    from repro.experiments.runner import _sweep_point
    from repro.mpisim.config import mvapich2_like

    spec = {"kind": "micro", "pattern": "isend_irecv", "nbytes": 4096,
            "computes": [0.0, 5e-5], "iters": 4, "warmup": 1}
    sub, final = client.submit_and_wait(spec, timeout=120.0)
    assert final.body["state"] == "done"
    rows = client.result(final.body["job_id"]).body["rows"]
    assert len(rows) == 2
    direct = [
        _sweep_point("isend_irecv", 4096.0, c, mvapich2_like(), None, None,
                     4, 1)
        for c in (0.0, 5e-5)
    ]
    # Tuples become JSON arrays; compare through the same canonical form.
    assert _canon(rows) == _canon(direct)


# ---------------------------------------------------------------------------
# Crash isolation at the service boundary
# ---------------------------------------------------------------------------
def test_failed_cell_fails_only_its_own_job(tmp_path):
    """A job whose worker dies reports failure; the service and every
    other job keep going (the crash-isolated runner path)."""
    from repro.experiments.runner import Task
    from repro.service.jobs import Submission

    service = OverlapService(cache_root=tmp_path / "c", workers=2)
    service.start()
    try:
        bad = Submission(tenant="t", kind="nas", priority=0,
                         label="bad", spec={})
        good = Submission(tenant="t", kind="nas", priority=0,
                          label="good", spec={})
        s1, b1 = service.submit_tasks(bad, [Task(_crash_worker, (0,))])
        s2, b2 = service.submit_tasks(good, [Task(_ok_worker, (21,))])
        assert s1 == s2 == 202
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            states = {service.jobs[b1["job_id"]].state,
                      service.jobs[b2["job_id"]].state}
            if states <= {"done", "failed"}:
                break
            time.sleep(0.02)
        assert service.jobs[b1["job_id"]].state == "failed"
        assert service.jobs[b2["job_id"]].state == "done"
        code, result = service.job_result(b1["job_id"])
        assert code == 200
        assert result["rows"][0]["failed"] is True
        assert result["rows"][0]["exitcode"] == 33
        code, result = service.job_result(b2["job_id"])
        assert result["rows"] == [42]
        # Failed cells are never cached: resubmitting retries.
        s3, b3 = service.submit_tasks(bad, [Task(_crash_worker, (0,))])
        assert s3 == 202 and b3["cached"] is False
    finally:
        service.shutdown()


def _crash_worker(x):  # pragma: no cover - runs in a child process
    import os

    os._exit(33)


def _ok_worker(x):
    return x * 2


def _sleep_worker(seconds):
    import time as _time

    _time.sleep(seconds)
    return "slept"


def _flaky_host_worker(flag_path):
    """Fail retryably (simulated lost worker host) on the first run only."""
    import os as _os

    if not _os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8") as fh:
            fh.write("seen")
        exc = RuntimeError("shard 0 worker lost (simulated)")
        exc.retryable = True  # what ShardHostLost advertises
        raise exc
    return "recovered"


def _always_lost_worker(x):
    exc = RuntimeError("shard 0 worker lost (simulated)")
    exc.retryable = True
    raise exc


def _wait_finished(service, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.jobs[job_id].state in ("done", "failed", "cancelled"):
            return service.jobs[job_id].state
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


# ---------------------------------------------------------------------------
# Retryable (host-loss) failures re-queue once
# ---------------------------------------------------------------------------
def test_retryable_failure_requeues_once_and_succeeds(tmp_path):
    """A cell failing with ``retryable = True`` (a lost shard-worker
    host) re-queues its job once; the re-run succeeds and the job ends
    ``done`` with ``retried`` visible in its description."""
    from repro.experiments.runner import Task
    from repro.service.jobs import Submission

    service = OverlapService(cache_root=tmp_path / "c", workers=1)
    service.start()
    try:
        sub = Submission(tenant="t", kind="nas", priority=0,
                         label="flaky", spec={})
        flag = str(tmp_path / "host-came-back.flag")
        status, body = service.submit_tasks(
            sub, [Task(_flaky_host_worker, (flag,))])
        assert status == 202
        assert _wait_finished(service, body["job_id"]) == "done"
        job = service.jobs[body["job_id"]]
        assert job.describe()["retried"] is True
        code, result = service.job_result(body["job_id"])
        assert code == 200
        assert result["rows"] == ["recovered"]
        assert ("repro_service_retries_total 1"
                in service.metrics_text())
    finally:
        service.shutdown()


def test_retry_budget_is_one(tmp_path):
    """A job that loses its host on the retry too fails for real, with
    the retryable flag surfaced in the failed row."""
    from repro.experiments.runner import Task
    from repro.service.jobs import Submission

    service = OverlapService(cache_root=tmp_path / "c", workers=1)
    service.start()
    try:
        sub = Submission(tenant="t", kind="nas", priority=0,
                         label="doomed", spec={})
        status, body = service.submit_tasks(
            sub, [Task(_always_lost_worker, (0,))])
        assert status == 202
        assert _wait_finished(service, body["job_id"]) == "failed"
        job = service.jobs[body["job_id"]]
        assert job.describe()["retried"] is True
        code, result = service.job_result(body["job_id"])
        assert result["rows"][0]["failed"] is True
        assert result["rows"][0]["retryable"] is True
    finally:
        service.shutdown()


# ---------------------------------------------------------------------------
# Client keep-alive resilience + watch fetch-failure limit
# ---------------------------------------------------------------------------
def test_client_reconnects_after_server_drops_keepalive():
    """A server that silently drops the keep-alive between requests must
    not poison the client: the next request re-dials once and succeeds."""
    import socket
    import threading

    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    srv.bind(("127.0.0.1", 0))
    srv.listen(4)
    port = srv.getsockname()[1]

    def serve():
        # Two connections: each answers one request claiming keep-alive,
        # then drops the socket without advertising Connection: close.
        for _ in range(2):
            conn, _addr = srv.accept()
            conn.recv(65536)
            conn.sendall(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Length: 2\r\n\r\nok")
            conn.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        with ServiceClient(f"http://127.0.0.1:{port}") as c:
            assert c.text("/a") == (200, "ok")
            # The first socket is dead now; this must reconnect, not fail.
            assert c.text("/b") == (200, "ok")
        thread.join(timeout=5.0)
    finally:
        srv.close()


def test_watch_url_gives_up_after_consecutive_failures():
    """Live --url mode against a dead service exits 2 after the
    configured number of consecutive fetch failures -- it must not
    render an empty dashboard forever."""
    t0 = time.monotonic()
    rc = watch.main(["--url", "http://127.0.0.1:1/", "--interval", "0.01",
                     "--max-fetch-failures", "3"])
    assert rc == 2
    assert time.monotonic() - t0 < 60.0
