"""Tests for the variable-size gather/scatter collectives."""

import pytest

from repro.mpisim import MpiConfig
from repro.runtime import run_app

CFG = MpiConfig(name="t-v")


@pytest.mark.parametrize("nprocs", [1, 2, 4, 5])
def test_gatherv_collects_variable_blocks(nprocs):
    def app(ctx):
        nbytes = 100 * (ctx.rank + 1)
        got = yield from ctx.comm.gatherv(0, nbytes, ("blk", ctx.rank))
        if ctx.rank == 0:
            assert got == [("blk", r) for r in range(ctx.size)]
        else:
            assert got is None

    run_app(app, nprocs, config=CFG)


@pytest.mark.parametrize("nprocs", [1, 2, 4, 5])
def test_scatterv_distributes_variable_blocks(nprocs):
    def app(ctx):
        root = ctx.size - 1
        if ctx.rank == root:
            sizes = [64 * (r + 1) for r in range(ctx.size)]
            blocks = [r * 10 for r in range(ctx.size)]
        else:
            sizes = blocks = None
        got = yield from ctx.comm.scatterv(root, sizes, blocks)
        assert got == ctx.rank * 10

    run_app(app, nprocs, config=CFG)


def test_scatterv_validates_root_arguments():
    def app(ctx):
        sizes = [1] if ctx.rank == 0 else None
        yield from ctx.comm.scatterv(0, sizes, None)

    with pytest.raises(ValueError, match="sizes"):
        run_app(app, 3, config=CFG)


def test_gatherv_sizes_drive_wire_time():
    # A rank contributing 1 MiB takes visibly longer than one with 1 KiB.
    def app(ctx):
        nbytes = 1 << 20 if ctx.rank == 1 else 1024
        yield from ctx.comm.gatherv(0, nbytes)

    result = run_app(app, 3, config=MpiConfig(name="gv", eager_limit=1 << 22))
    big = result.fabric.nic(1).bytes_sent
    small = result.fabric.nic(2).bytes_sent
    assert big > 100 * small


def test_gatherv_in_subcommunicator():
    def app(ctx):
        sub = yield from ctx.comm.split(color=ctx.rank % 2)
        got = yield from sub.gatherv(0, 128, ctx.rank)
        if sub.rank == 0:
            assert got == [r for r in range(ctx.size) if r % 2 == ctx.rank % 2]

    run_app(app, 6, config=CFG)
