"""Property tests: OpenMetrics round-trip and histogram invariants."""

import math
import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import MetricsRegistry, parse_openmetrics, render_openmetrics

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

names = st.from_regex(_NAME_RE, fullmatch=True).map(lambda s: "repro_" + s[:24])
# \n round-trips through the \n escape; other line separators are not
# legal in OpenMetrics label values, so keep them out of the strategy.
label_values = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc", "Zl", "Zp"),
        blacklist_characters="\x85",
    ),
    max_size=12,
)
label_sets = st.dictionaries(
    st.from_regex(re.compile(r"^[a-z][a-z0-9_]{0,7}$"), fullmatch=True)
    .filter(lambda k: k != "le"),
    label_values,
    max_size=3,
)
finite_floats = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)


@st.composite
def registries(draw):
    reg = MetricsRegistry()
    kinds = draw(st.lists(
        st.sampled_from(["counter", "gauge", "histogram"]),
        min_size=1, max_size=5,
    ))
    for i, kind in enumerate(kinds):
        name = draw(names) + f"_{i}"
        labels = draw(label_sets)
        if kind == "counter":
            reg.counter(name, labels=labels).inc(draw(finite_floats))
        elif kind == "gauge":
            reg.gauge(name, labels=labels).set(
                draw(st.floats(min_value=-1e12, max_value=1e12,
                               allow_nan=False, allow_infinity=False))
            )
        else:
            h = reg.histogram(name, labels=labels, lo_exp=-6, hi_exp=4)
            for value in draw(st.lists(
                st.floats(min_value=1e-9, max_value=1e3,
                          allow_nan=False, allow_infinity=False),
                max_size=8,
            )):
                h.observe(value)
    return reg


@settings(max_examples=60, deadline=None)
@given(registries())
def test_exposition_round_trips_through_parser(reg):
    parsed = parse_openmetrics(render_openmetrics(reg))
    for family in reg.collect():
        assert parsed[family.name]["kind"] == family.kind
        samples = parsed[family.name]["samples"]
        for labels, value in family.samples:
            key_labels = tuple(sorted(labels))
            if family.kind == "histogram":
                assert samples[("_count", key_labels)] == value.count
                assert math.isclose(
                    samples[("_sum", key_labels)], value.sum,
                    rel_tol=1e-12, abs_tol=1e-12,
                )
            else:
                suffix = "_total" if family.kind == "counter" else ""
                assert samples[(suffix, key_labels)] == float(value)


@settings(max_examples=60, deadline=None)
@given(registries())
def test_histogram_buckets_monotone_cumulative(reg):
    parsed = parse_openmetrics(render_openmetrics(reg))
    for name, family in parsed.items():
        if family["kind"] != "histogram":
            continue
        # Group bucket samples by their non-le labels.
        series: dict = {}
        for (suffix, labels), value in family["samples"].items():
            if suffix != "_bucket":
                continue
            le = dict(labels)["le"]
            rest = tuple(kv for kv in labels if kv[0] != "le")
            series.setdefault(rest, []).append((float(le), value))
        for rest, buckets in series.items():
            buckets.sort(key=lambda kv: kv[0])
            counts = [count for _, count in buckets]
            assert counts == sorted(counts), f"{name}{rest}: not monotone"
            assert buckets[-1][0] == float("inf")
            # +Inf bucket equals the total observation count
            total = family["samples"][("_count", rest)]
            assert buckets[-1][1] == total
