"""Tests for the message-size-range presets (Sec. 2.3's breakdown options)."""

import pytest

from repro.core.measures import (
    DEFAULT_BIN_EDGES,
    DETAILED_EDGES,
    SHORT_LONG_EDGES,
    SizeBins,
)
from repro.mpisim.config import mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.lu import lu_app
from repro.runtime import run_app


def test_short_long_is_two_bins():
    bins = SizeBins(SHORT_LONG_EDGES)
    assert len(bins.bins) == 2
    assert bins.index_for(16383) == 0
    assert bins.index_for(16384) == 1


def test_detailed_edges_are_power_of_four():
    assert all(b / a == 4.0 for a, b in zip(DETAILED_EDGES, DETAILED_EDGES[1:]))
    assert DETAILED_EDGES[0] == 256.0
    bins = SizeBins(DETAILED_EDGES)
    assert len(bins.bins) == len(DETAILED_EDGES) + 1


@pytest.mark.parametrize("edges", [SHORT_LONG_EDGES, DEFAULT_BIN_EDGES, DETAILED_EDGES])
def test_presets_usable_in_full_run_and_totals_agree(edges):
    cfg = mvapich2_like(bin_edges=edges)
    result = run_app(
        lu_app, 4, config=cfg, app_args=("S", 1, CpuModel(100e9), 4)
    )
    m = result.report(0).total
    assert m.bins.edges == tuple(edges)
    # Bin partition always reconstructs the totals, whatever the edges.
    assert sum(b.count for b in m.bins.bins) == m.transfer_count
    assert sum(b.xfer_time for b in m.bins.bins) == pytest.approx(
        m.data_transfer_time
    )


def test_different_presets_same_totals():
    totals = []
    for edges in (SHORT_LONG_EDGES, DETAILED_EDGES):
        cfg = mvapich2_like(bin_edges=edges)
        result = run_app(
            lu_app, 4, config=cfg, app_args=("S", 1, CpuModel(100e9), 4)
        )
        totals.append(result.report(0).total)
    a, b = totals
    assert a.data_transfer_time == b.data_transfer_time
    assert a.min_overlap_time == b.min_overlap_time
    assert a.max_overlap_time == b.max_overlap_time
