"""Property tests for algorithm equivalence: Bruck vs pairwise alltoall,
and strided-placement correctness under random specs."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.armci import ArmciConfig, StridedSpec, run_armci_app
from repro.mpisim import MpiConfig
from repro.runtime import run_app


@given(
    st.integers(min_value=1, max_value=9),
    st.integers(min_value=1, max_value=100_000),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_bruck_equals_pairwise(nprocs, nbytes, salt):
    """Both schedules deliver identical personalized data."""
    results = {}

    def app(ctx):
        blocks = [(ctx.rank, dst, salt) for dst in range(ctx.size)]
        got = yield from ctx.comm.alltoall(nbytes, blocks)
        return got

    for alg in ("pairwise", "bruck"):
        cfg = MpiConfig(name=alg, alltoall_algorithm=alg)
        results[alg] = run_app(app, nprocs, config=cfg).returns
    assert results["pairwise"] == results["bruck"]
    # And both deliver the correct personalized content.
    for rank, got in enumerate(results["bruck"]):
        assert got == [(src, rank, salt) for src in range(nprocs)]


_SPEC = st.tuples(
    st.integers(min_value=0, max_value=8),    # start element
    st.integers(min_value=1, max_value=6),    # segment elements
    st.integers(min_value=6, max_value=16),   # stride elements (>= segment)
    st.integers(min_value=1, max_value=5),    # segment count
)


@given(_SPEC, st.sampled_from(["packed", "direct"]))
@settings(max_examples=40, deadline=None)
def test_strided_put_places_exactly_the_spec(spec_parts, strategy):
    start, seg, stride, count = spec_parts
    stride = max(stride, seg)  # segments must not self-overlap
    region_len = start + stride * count + seg
    spec = StridedSpec(offset=start * 8, seg_nbytes=seg * 8,
                       stride=stride * 8, count=count)

    def app(ctx):
        ctx.malloc("win", region_len)
        yield from ctx.armci.barrier()
        if ctx.rank == 0:
            data = np.arange(1, seg * count + 1, dtype=np.float64)
            yield from ctx.armci.put_strided(1, "win", spec, data,
                                             strategy=strategy)
        yield from ctx.armci.barrier()
        if ctx.rank == 1:
            win = ctx.armci.region_of(1, "win").array
            touched = np.zeros(region_len, dtype=bool)
            for s in range(count):
                lo = start + s * stride
                touched[lo : lo + seg] = True
                np.testing.assert_array_equal(
                    win[lo : lo + seg],
                    np.arange(s * seg + 1, s * seg + seg + 1),
                )
            # Nothing outside the spec was written.
            assert np.all(win[~touched] == 0.0)

    run_armci_app(app, 2, config=ArmciConfig())


@given(_SPEC)
@settings(max_examples=30, deadline=None)
def test_strided_get_roundtrips_put(spec_parts):
    start, seg, stride, count = spec_parts
    stride = max(stride, seg)
    region_len = start + stride * count + seg
    spec = StridedSpec(offset=start * 8, seg_nbytes=seg * 8,
                       stride=stride * 8, count=count)

    def app(ctx):
        region = ctx.malloc("win", region_len)
        if ctx.rank == 1:
            region.array[:] = np.arange(region_len) * 3.0
        yield from ctx.armci.barrier()
        if ctx.rank == 0:
            got = yield from ctx.armci.get_strided(1, "win", spec,
                                                   want_data=True)
            expect = np.concatenate([
                np.arange(start + s * stride, start + s * stride + seg) * 3.0
                for s in range(count)
            ])
            np.testing.assert_array_equal(got, expect)
        yield from ctx.armci.barrier()

    run_armci_app(app, 2, config=ArmciConfig())
