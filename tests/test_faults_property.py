"""Property-based robustness tests: randomized fault schedules.

Hypothesis drives the fault plan space (packet faults, timing faults,
instrumentation degradation) and asserts the framework's contract under
every schedule: runs terminate (watchdog-guarded), the report algebra's
internal invariants hold on whatever stream survived, and fault streams
are deterministic in (seed, plan).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.faults import (
    FaultInjector,
    FaultPlan,
    ResilienceParams,
    WatchdogConfig,
    check_run_invariants,
)
from repro.mpisim.config import openmpi_like
from repro.netsim.params import NetworkParams
from repro.runtime.launcher import run_app

WATCHDOG = WatchdogConfig(stall_sim_time=0.05, max_sim_time=30.0)


def _pingpong(ctx, nbytes=8_000, iters=8):
    comm = ctx.comm
    for it in range(iters):
        if comm.rank == 0:
            req = yield from comm.isend(1, it, nbytes, bufkey="b")
            yield from ctx.compute(30e-6)
            yield from comm.wait(req)
            yield from comm.recv(1, it)
        else:
            yield from comm.recv(0, it)
            req = yield from comm.isend(0, it, nbytes, bufkey="b")
            yield from comm.wait(req)
    return None


plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**16),
    drop_prob=st.floats(0.0, 0.4),
    dup_prob=st.floats(0.0, 0.3),
    reorder_prob=st.floats(0.0, 0.3),
    reorder_delay=st.floats(1e-6, 2e-4),
    event_drop_prob=st.floats(0.0, 0.5),
    ring_capacity=st.sampled_from([0, 32, 128]),
)


@given(plan=plans)
@settings(max_examples=25, deadline=None)
def test_randomized_fault_schedules_keep_report_invariants(plan):
    config = openmpi_like()
    if plan.has_packet_faults:
        config = openmpi_like(resilience=ResilienceParams())
    result = run_app(
        _pingpong, 2, config=config,
        params=NetworkParams(faults=plan), watchdog=WATCHDOG,
    )
    # terminated (normally or via watchdog), never hung
    assert result.watchdog is None or result.watchdog.reason in (
        "stalled", "max_sim_time", "deadlock")
    assert check_run_invariants(result) == []
    for report in result.reports:
        t = report.total
        assert 0.0 <= t.min_overlap_time <= t.max_overlap_time + 1e-12
        assert t.max_overlap_time <= t.data_transfer_time + 1e-9


@given(plan=plans, nnodes=st.integers(2, 5))
@settings(max_examples=50, deadline=None)
def test_fault_streams_deterministic_in_seed_and_plan(plan, nnodes):
    a = FaultInjector(plan, nnodes)
    b = FaultInjector(plan, nnodes)
    for src in range(nnodes):
        for dst in range(nnodes):
            if src == dst:
                continue
            for _ in range(10):
                assert a.roll(src, dst) == b.roll(src, dst)
    sa, sb = a.stamp_loss(0), b.stamp_loss(0)
    if plan.event_drop_prob > 0:
        assert [sa.drop_begin() for _ in range(20)] == \
            [sb.drop_begin() for _ in range(20)]
    else:
        assert sa is None and sb is None


@given(seed=st.integers(0, 2**16), drop=st.floats(0.05, 0.5))
@settings(max_examples=10, deadline=None)
def test_lossy_runs_are_reproducible(seed, drop):
    plan = FaultPlan(seed=seed, drop_prob=drop, dup_prob=drop / 2)
    config = openmpi_like(resilience=ResilienceParams())

    def once():
        return run_app(_pingpong, 2, config=config,
                       params=NetworkParams(faults=plan), watchdog=WATCHDOG)

    x, y = once(), once()
    assert x.rank_finish_times == y.rank_finish_times
    for rx, ry in zip(x.reports, y.reports):
        assert rx.to_dict() == ry.to_dict()
    assert x.fabric.injector.packets_dropped == \
        y.fabric.injector.packets_dropped
