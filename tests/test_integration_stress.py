"""Cross-module integration and stress scenarios.

Larger rank counts, incast pressure, unexpected-message floods, wildcard
rendezvous, tiny event queues under full applications, and mixed
MPI-pattern workloads -- the situations a downstream user will hit first.
"""

import pytest

from repro.mpisim import MpiConfig
from repro.mpisim.config import mvapich2_like, openmpi_like
from repro.mpisim.status import ANY_SOURCE, ANY_TAG
from repro.nas.base import CpuModel
from repro.nas.cg import cg_app
from repro.nas.lu import lu_app
from repro.runtime import run_app

FAST = CpuModel(flop_rate=100e9)


class TestScale:
    def test_32_rank_cg(self):
        result = run_app(
            cg_app, 32, config=openmpi_like(), app_args=("S", 1, FAST, 2)
        )
        assert len(set(result.returns)) == 1
        for rank in range(32):
            m = result.report(rank).total
            assert 0.0 <= m.min_overlap_time <= m.max_overlap_time + 1e-12

    def test_64_rank_barrier_storm(self):
        def app(ctx):
            for _ in range(5):
                yield from ctx.comm.barrier()
            return ctx.now

        result = run_app(app, 64)
        # Everyone leaves the last barrier at a sane time.
        assert max(result.returns) < 0.1

    def test_wide_alltoall(self):
        def app(ctx):
            got = yield from ctx.comm.alltoall(4096, list(range(ctx.size)))
            assert got == [ctx.rank] * ctx.size

        run_app(app, 24, config=mvapich2_like())


class TestIncastPressure:
    def test_many_to_one_eager_flood(self):
        """All ranks blast rank 0; RX-port serialization must not lose or
        reorder anything, and rank 0's accounting must balance."""
        n_msgs = 10

        def app(ctx):
            if ctx.rank == 0:
                seen = {}
                for _ in range(n_msgs * (ctx.size - 1)):
                    status, data = yield from ctx.comm.recv(ANY_SOURCE, ANY_TAG)
                    seen.setdefault(status.source, []).append(data)
                for src, values in seen.items():
                    assert values == list(range(n_msgs)), src
            else:
                for i in range(n_msgs):
                    yield from ctx.comm.send(0, ctx.rank, 2048, data=i)

        result = run_app(app, 6, config=openmpi_like())
        root = result.report(0).total
        assert root.transfer_count == n_msgs * 5
        assert root.case_counts[3] == n_msgs * 5  # all END-only receives

    def test_many_to_one_rendezvous_flood(self):
        def app(ctx):
            if ctx.rank == 0:
                for _ in range(ctx.size - 1):
                    yield from ctx.comm.recv(ANY_SOURCE, 1)
            else:
                yield from ctx.comm.send(0, 1, 500_000)

        result = run_app(app, 5, config=mvapich2_like())
        # Rendezvous transfers all arrive; total bytes on the wire cover
        # 4 x 500 KB of payload plus control traffic.
        assert result.fabric.total_bytes_on_wire() > 4 * 500_000


class TestUnexpectedFlood:
    def test_thousand_unexpected_eager_messages(self):
        def app(ctx):
            if ctx.rank == 0:
                for i in range(1000):
                    req = yield from ctx.comm.isend(1, i % 7, 64, data=i)
                    assert req.done  # eager: buffered immediately
                yield from ctx.comm.barrier()
            else:
                yield from ctx.comm.barrier()  # everything lands unexpected
                got = []
                for _ in range(1000):
                    _, data = yield from ctx.comm.recv(0, ANY_TAG)
                    got.append(data)
                assert got == list(range(1000))  # per-pair FIFO across tags

        run_app(app, 2, config=openmpi_like())

    def test_wildcard_rendezvous_from_unexpected_queue(self):
        # RTS queued unexpected, then matched by an ANY_SOURCE receive.
        def app(ctx):
            if ctx.rank == 0:
                yield from ctx.compute(3e-3)
                status, data = yield from ctx.comm.recv(ANY_SOURCE, ANY_TAG)
                assert status.source == 1
                assert status.nbytes == 300_000
                assert data == "bulk"
            elif ctx.rank == 1:
                yield from ctx.comm.send(0, 9, 300_000, data="bulk")

        run_app(app, 3, config=mvapich2_like())


class TestTinyQueueEquivalence:
    """A capacity-2 event queue must measure a full NAS run identically."""

    def test_lu_identical_measures(self):
        results = {}
        for capacity in (2, 4096):
            cfg = mvapich2_like(queue_capacity=capacity)
            result = run_app(
                lu_app, 4, config=cfg, app_args=("S", 1, FAST, 6)
            )
            results[capacity] = result.report(0).total
        small, big = results[2], results[4096]
        assert small.min_overlap_time == big.min_overlap_time
        assert small.max_overlap_time == big.max_overlap_time
        assert small.computation_time == big.computation_time
        assert small.case_counts == big.case_counts


class TestMixedPatterns:
    def test_pipelined_and_eager_interleaved_with_collectives(self):
        config = MpiConfig(name="mix", eager_limit=8192, rndv_mode="pipelined",
                           frag_size=16384)

        def app(ctx):
            partner = ctx.rank ^ 1
            for i in range(4):
                size = 200_000 if i % 2 else 512
                rreq = yield from ctx.comm.irecv(partner, 3)
                sreq = yield from ctx.comm.isend(partner, 3, size, data=(ctx.rank, i))
                yield from ctx.compute(1e-4)
                yield from ctx.comm.waitall([sreq, rreq])
                assert rreq.data == (partner, i)
                total = yield from ctx.comm.allreduce(1, 8)
                assert total == ctx.size

        run_app(app, 4, config=config)

    def test_nested_sections_attribute_consistently(self):
        def app(ctx):
            partner = ctx.rank ^ 1
            with ctx.section("outer"):
                yield from ctx.comm.sendrecv(partner, 1, 4096, partner, 1)
                with ctx.section("inner"):
                    yield from ctx.comm.sendrecv(partner, 2, 4096, partner, 2)

        result = run_app(app, 2, config=openmpi_like())
        rep = result.report(0)
        outer, inner = rep.sections["outer"], rep.sections["inner"]
        # Outer covers both exchanges; inner only the second.
        assert outer.transfer_count == 4
        assert inner.transfer_count == 2
        assert outer.communication_call_time >= inner.communication_call_time

    def test_rank_counts_that_are_not_powers_of_two(self):
        for nprocs in (3, 5, 7, 11):
            def app(ctx):
                total = yield from ctx.comm.allreduce(ctx.rank, 8)
                assert total == sum(range(ctx.size))
                got = yield from ctx.comm.alltoall(256, list(range(ctx.size)))
                assert got == [ctx.rank] * ctx.size

            run_app(app, nprocs)


class TestAccountingBalances:
    def test_wire_bytes_at_least_payload(self):
        payload = 100_000

        def app(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, 1, payload)
            else:
                yield from ctx.comm.recv(0, 1)

        for config in (openmpi_like(), openmpi_like(leave_pinned=True),
                       mvapich2_like()):
            result = run_app(app, 2, config=config)
            assert result.fabric.total_bytes_on_wire() >= payload

    def test_sender_and_receiver_count_same_transfer_time(self):
        # Both sides account the same message against the same table.
        def app(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, 1, 30_000)
            else:
                yield from ctx.comm.recv(0, 1)

        result = run_app(app, 2, config=openmpi_like())
        s = result.report(0).total.data_transfer_time
        r = result.report(1).total.data_transfer_time
        assert s == pytest.approx(r)
