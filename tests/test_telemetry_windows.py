"""Windowed collection: exact reconstruction, coalescing, bound checks.

The tentpole invariant: summing per-window deltas reconstructs the
whole-run totals to *exact* float equality, under every rendezvous
protocol and through ring coalescing.
"""

import pytest

from repro.core.report import OverlapReport
from repro.mpisim.config import (
    RNDV_PIPELINED,
    RNDV_RGET,
    RNDV_RPUT,
    MpiConfig,
)
from repro.runtime import run_app
from repro.telemetry import (
    TelemetryConfig,
    WindowSeries,
    check_windowed_bounds,
    render_windowed_validation,
)
from repro.telemetry.windows import WINDOW_METRICS, WindowedProcessor

ALL_RNDV = [RNDV_PIPELINED, RNDV_RGET, RNDV_RPUT]


def _rndv_cfg(mode):
    # Low eager limit so the 64 KiB messages exercise the rendezvous path.
    return MpiConfig(name=f"tele-{mode}", eager_limit=1024, rndv_mode=mode)


def _pingpong_compute(ctx, nbytes=64 * 1024, rounds=6):
    """Overlap-rich kernel: isend/irecv with computation before the wait."""
    peer = 1 - ctx.rank
    for _ in range(rounds):
        sreq = yield from ctx.comm.isend(peer, 7, nbytes)
        rreq = yield from ctx.comm.irecv(peer, 7)
        yield from ctx.compute(3e-4)
        yield from ctx.comm.wait(sreq)
        yield from ctx.comm.wait(rreq)


def _assert_exact_reconstruction(result):
    for rank, rep in enumerate(result.reports):
        if rep is None:
            continue
        series = result.telemetry.series(rank)
        totals = series.totals()
        for metric in WINDOW_METRICS:
            assert totals[metric] == getattr(rep.total, metric), (
                f"rank {rank} metric {metric}"
            )
        # The telescoping sum of deltas is the same thing, spelled out.
        for metric in WINDOW_METRICS:
            delta_sum = sum(row[metric] for row in series.deltas())
            assert delta_sum == pytest.approx(
                getattr(rep.total, metric), rel=1e-12, abs=1e-18
            )


@pytest.mark.parametrize("mode", ALL_RNDV)
def test_exact_reconstruction_all_rendezvous_protocols(mode):
    result = run_app(
        _pingpong_compute, 2, config=_rndv_cfg(mode),
        telemetry=TelemetryConfig(window_width=1e-4),
    )
    assert result.telemetry is not None
    _assert_exact_reconstruction(result)
    assert all(len(result.telemetry.series(r)) >= 2 for r in range(2))


def test_exact_reconstruction_lu_kernel():
    from repro.experiments.nas_char import MPI_BENCHMARKS

    app, config_factory = MPI_BENCHMARKS["lu"]
    result = run_app(
        app, 4, config=config_factory(), label="lu.S.4",
        app_args=("S", 2, None, None),
        telemetry=TelemetryConfig(window_width=1e-4),
    )
    _assert_exact_reconstruction(result)


@pytest.mark.parametrize("mode", ALL_RNDV)
def test_telemetry_does_not_perturb_measures(mode):
    """Differential: windowed run == plain run, bit for bit."""
    plain = run_app(_pingpong_compute, 2, config=_rndv_cfg(mode))
    windowed = run_app(
        _pingpong_compute, 2, config=_rndv_cfg(mode),
        telemetry=TelemetryConfig(window_width=5e-5),
    )
    for rank in range(2):
        a, b = plain.report(rank).total, windowed.report(rank).total
        for metric in WINDOW_METRICS:
            assert getattr(a, metric) == getattr(b, metric)
        assert a.case_counts == b.case_counts
        assert a.transfer_count == b.transfer_count
    assert plain.elapsed == windowed.elapsed


def test_coalescing_ring_bounds_memory_and_stays_exact():
    result = run_app(
        _pingpong_compute, 2, config=_rndv_cfg(RNDV_PIPELINED),
        app_args=(64 * 1024, 40),
        telemetry=TelemetryConfig(window_width=1e-6, max_windows=64),
    )
    rank0 = result.telemetry.per_rank[0]
    proc_series = rank0.series
    assert len(proc_series) <= 64
    assert proc_series.width > 1e-6  # coalescing actually happened
    # width stays on the base * 2**k grid
    ratio = proc_series.width / proc_series.base_width
    assert ratio == 2 ** round(__import__("math").log2(ratio))
    _assert_exact_reconstruction(result)


def test_per_window_min_le_max():
    result = run_app(
        _pingpong_compute, 2, config=_rndv_cfg(RNDV_RGET),
        telemetry=TelemetryConfig(window_width=5e-5),
    )
    for rank in range(2):
        for row in result.telemetry.series(rank).deltas():
            assert row["min_overlap_time"] <= row["max_overlap_time"] + 1e-15
            assert row["end"] > row["start"]


def test_resample_is_lossless():
    result = run_app(
        _pingpong_compute, 2, config=_rndv_cfg(RNDV_PIPELINED),
        telemetry=TelemetryConfig(window_width=2e-5),
    )
    series = result.telemetry.series(0)
    coarse = series.resample(series.width * 4)
    assert coarse.width == series.width * 4
    assert coarse.totals() == series.totals()  # last snapshot preserved
    # Coarse deltas are sums of the fine deltas they cover.
    for metric in WINDOW_METRICS:
        assert sum(r[metric] for r in coarse.deltas()) == pytest.approx(
            sum(r[metric] for r in series.deltas()), rel=1e-12, abs=1e-18
        )
    with pytest.raises(ValueError):
        series.resample(series.width * 2.5)  # non-integer factor
    with pytest.raises(ValueError):
        series.resample(series.width / 2)  # cannot refine


def test_series_roundtrip_and_persistence(tmp_path):
    result = run_app(
        _pingpong_compute, 2, config=_rndv_cfg(RNDV_RPUT),
        telemetry=TelemetryConfig(window_width=1e-4),
    )
    series = result.telemetry.series(1)
    clone = WindowSeries.from_dict(series.to_dict())
    assert clone.width == series.width
    assert clone.windows == series.windows
    assert clone.rank == series.rank
    path = tmp_path / "series.json"
    series.save(path)
    loaded = WindowSeries.load(path)
    assert loaded.windows == series.windows
    assert loaded.totals() == series.totals()


def test_from_dict_rejects_bad_version():
    with pytest.raises(ValueError):
        WindowSeries.from_dict({"format_version": 999})


@pytest.mark.parametrize("mode", ALL_RNDV)
def test_windowed_bounds_hold_against_ground_truth(mode):
    result = run_app(
        _pingpong_compute, 2, config=_rndv_cfg(mode),
        record_transfers=True,
        telemetry=TelemetryConfig(window_width=1e-4),
    )
    for rank in range(2):
        checks = check_windowed_bounds(
            result, rank, result.telemetry.series(rank)
        )
        assert checks, "expected at least one closed window"
        for chk in checks:
            assert chk.min_holds, f"rank {rank} window {chk.index}: min"
            assert chk.max_holds, f"rank {rank} window {chk.index}: max"
        text = render_windowed_validation(checks)
        assert "ok" in text


def test_windowed_bounds_hold_for_nas_kernel():
    from repro.experiments.nas_char import MPI_BENCHMARKS

    app, config_factory = MPI_BENCHMARKS["sp"]
    result = run_app(
        app, 4, config=config_factory(), label="sp.S.4",
        app_args=("S", 2, None, False),
        record_transfers=True,
        telemetry=TelemetryConfig(window_width=1e-4),
    )
    for rank in range(4):
        for chk in check_windowed_bounds(
            result, rank, result.telemetry.series(rank)
        ):
            assert chk.holds


def test_config_validation():
    with pytest.raises(ValueError):
        TelemetryConfig(window_width=0.0)
    with pytest.raises(ValueError):
        TelemetryConfig(max_windows=3)  # must be even
    with pytest.raises(ValueError):
        TelemetryConfig(max_windows=0)


def test_windowed_processor_standalone_empty():
    from repro.core.xfer_table import XferTable

    table = XferTable.from_model(latency=1e-6, bandwidth=1e9)
    proc = WindowedProcessor(table, window_width=1e-4)
    proc.finalize(None)
    series = proc.series(rank=0)
    assert len(series) == 0
    assert series.totals() == {m: 0.0 for m in WINDOW_METRICS}


def test_run_without_telemetry_has_none():
    result = run_app(_pingpong_compute, 2, config=_rndv_cfg(RNDV_PIPELINED))
    assert result.telemetry is None


def test_report_totals_match_saved_report_dict():
    """The series snapshot and the serialized report agree post-roundtrip."""
    result = run_app(
        _pingpong_compute, 2, config=_rndv_cfg(RNDV_PIPELINED),
        telemetry=TelemetryConfig(),
    )
    rep = OverlapReport.from_dict(result.report(0).to_dict())
    totals = result.telemetry.series(0).totals()
    for metric in WINDOW_METRICS:
        assert totals[metric] == getattr(rep.total, metric)
