"""End-to-end span tracing: serialization, differentials, explain.

Three contracts under test:

* **Round-trips** (hypothesis): :class:`SpanContext` survives both
  carriers (wire dict, header string) exactly, and a tracer payload --
  rich spans, retro spans, and hot-path channel pairs alike -- survives
  JSON serialization with every field intact.
* **Differential bit-identity**: ``tracer=None`` is the default
  everywhere, so a traced run must produce *byte-for-byte* identical
  simulation reports to an untraced one, single-process and sharded.
* **The merged timeline and its explainer**: one pid per process,
  structurally valid per ``validate_trace``, and ``explain_trace``
  attributes at least 95% of the wall-clock to named stages (the
  acceptance bar for the critical-path breakdown).
"""

from __future__ import annotations

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.metrics import MetricsRegistry
from repro.mpisim.config import mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.lu import lu_app
from repro.runtime import run_app
from repro.tracing import (SpanContext, Tracer, build_trace, explain_trace,
                           flatten_payloads, payload_spans, validate_trace)

# ``/`` is the header separator and the only character SpanContext
# forbids; ids are otherwise opaque strings.
_ids = st.text(st.characters(blacklist_characters="/\n",
                             blacklist_categories=("Cs",)), max_size=24)


# ---------------------------------------------------------------------------
# Round-trips
# ---------------------------------------------------------------------------
@given(trace_id=_ids.filter(bool), span_id=_ids)
@settings(max_examples=100, deadline=None)
def test_span_context_round_trips_both_carriers(trace_id, span_id):
    ctx = SpanContext(trace_id, span_id)
    assert SpanContext.from_wire(ctx.to_wire()) == ctx
    assert SpanContext.from_header(ctx.to_header()) == ctx
    assert hash(SpanContext.from_header(ctx.to_header())) == hash(ctx)


def test_malformed_header_rejected():
    for bad in ("", "/", "no-separator", "/only-span"):
        with pytest.raises(ValueError):
            SpanContext.from_header(bad)


_names = st.text(st.characters(blacklist_categories=("Cs",)),
                 min_size=1, max_size=16)


@given(names=st.lists(_names, min_size=1, max_size=6),
       durs=st.lists(st.floats(1e-6, 10.0), min_size=1, max_size=6),
       pairs=st.integers(0, 5))
@settings(max_examples=50, deadline=None)
def test_payload_survives_json_round_trip(names, durs, pairs):
    tracer = Tracer(process="rt")
    t0 = tracer.now()
    for i, name in enumerate(names):
        dur = durs[i % len(durs)]
        tracer.add_span(name, f"cat{i}", t0 + i, t0 + i + dur,
                        {"k": i} if i % 2 else None)
    ch = tracer.channel("hot", "shard.advance")
    for i in range(pairs):
        ch.append(t0 + i)
        ch.append(t0 + i + 0.5)

    payload = json.loads(json.dumps(tracer.to_payload()))
    recs = payload_spans(payload)
    assert len(recs) == len(names) + pairs
    # Every rich span survives with name/category/args intact...
    by_name = {r.name: r for r in recs if r.category.startswith("cat")}
    for i, name in enumerate(names):
        if name in by_name:  # duplicate names collapse in the lookup only
            assert by_name[name].category.startswith("cat")
    # ...channel pairs surface as ordinary spans sorted into end order.
    hot = [r for r in recs if r.category == "shard.advance"]
    assert len(hot) == pairs
    ends = [r.end for r in recs]
    if pairs:
        assert ends == sorted(ends)
    for r in hot:
        assert r.end - r.start == pytest.approx(0.5)


def test_channel_metrics_observed_once_across_repeated_dumps():
    registry = MetricsRegistry()
    tracer = Tracer(process="m", metrics=registry)
    ch = tracer.channel("hot", "shard.advance")
    ch.append(1.0)
    ch.append(2.0)
    tracer.to_payload()
    tracer.to_payload()  # idempotent: no double counting
    ch.append(3.0)
    ch.append(4.0)
    tracer.to_payload()
    counter = registry.counter("repro_trace_spans_total",
                               labels={"category": "shard.advance"})
    assert counter.value == 2.0


def test_adopted_tracer_joins_parent_trace():
    parent = Tracer(process="parent")
    with parent.span("root", "runner.root") as root:
        wire = parent.child_wire("child proc")
        child = Tracer.adopt(wire)
        assert child.trace_id == parent.trace_id
        assert child.parent_span_id == root.span_id
        assert child.process == "child proc"
        with child.span("work", "runner.task"):
            pass
        parent.absorb(child.to_payload())
    flat = flatten_payloads(parent)
    assert [p["process"] for p in flat] == ["parent", "child proc"]
    # The child's spans hang off the parent's root span id.
    assert flat[1]["parent_span_id"] == root.span_id


# ---------------------------------------------------------------------------
# Differential bit-identity: tracing must not change the simulation
# ---------------------------------------------------------------------------
def _lu(tracer=None, shards=None):
    return run_app(lu_app, 2, config=mvapich2_like(),
                   app_args=("S", 1, CpuModel(), None),
                   shards=shards, tracer=tracer)


@pytest.mark.parametrize("shards", [None, 2])
def test_reports_bit_identical_with_and_without_tracer(shards):
    plain = _lu(shards=shards)
    tracer = Tracer(process="diff")
    traced = _lu(tracer=tracer, shards=shards)
    for rank in range(2):
        assert (plain.report(rank).to_dict()
                == traced.report(rank).to_dict())
    # And the tracer did watch the run.
    spans = sum(len(p.get("spans", ()))
                for p in flatten_payloads(tracer))
    assert spans > 0


# ---------------------------------------------------------------------------
# Merged timeline + explain
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def sharded_trace():
    tracer = Tracer(process="test sweep")
    with tracer.span("sweep", "runner.root"):
        run_app(lu_app, 4, config=mvapich2_like(),
                app_args=("S", 2, CpuModel(), None),
                shards=2, tracer=tracer)
    return build_trace(tracer)


def test_merged_trace_has_one_pid_per_process(sharded_trace):
    meta = [ev for ev in sharded_trace["traceEvents"]
            if ev.get("ph") == "M" and ev.get("name") == "process_name"]
    names = [ev["args"]["name"] for ev in meta]
    assert names[0] == "test sweep"
    assert sum("shard" in n for n in names) == 2
    assert len({ev["pid"] for ev in meta}) == len(meta)
    other = sharded_trace["otherData"]
    assert other["exporter"] == "repro.tracing.merge"
    assert other["processes"] == names


def test_merged_trace_is_structurally_valid(sharded_trace):
    assert validate_trace(sharded_trace) == []


def test_explain_attributes_at_least_95_percent(sharded_trace):
    summary = explain_trace(sharded_trace)
    assert summary["categorized_frac"] >= 0.95
    assert summary["wall_s"] > 0.0
    assert "coordination" in summary["buckets_s"]
    shards = summary["shards"]
    assert shards is not None and shards["count"] == 2
    assert shards["imbalance"] >= 1.0
    # The buckets plus the unattributed remainder cover the wall-clock.
    total = sum(summary["buckets_s"].values()) + summary["unattributed_s"]
    assert total == pytest.approx(summary["wall_s"], rel=0.02)


def test_validate_trace_flags_structural_problems():
    assert validate_trace({}) == ["traceEvents missing or empty"]

    tracer = Tracer(process="leaky")
    tracer.begin("never ended", "work")  # deliberately left open
    problems = validate_trace(build_trace(tracer))
    assert any("unclosed" in p for p in problems)

    def trace_with(*events):
        base = [{"ph": "M", "name": "process_name", "pid": 1,
                 "args": {"name": "p"}}]
        return {"traceEvents": base + list(events)}

    bad_dur = trace_with({"ph": "X", "pid": 1, "name": "s", "cat": "c",
                          "ts": 0.0, "dur": -5.0})
    assert any("negative duration" in p for p in validate_trace(bad_dur))

    backwards = trace_with(
        {"ph": "X", "pid": 1, "name": "a", "cat": "c", "ts": 0.0,
         "dur": 9e6},
        {"ph": "X", "pid": 1, "name": "b", "cat": "c", "ts": 0.0,
         "dur": 1e6})
    assert any("non-monotonic" in p for p in validate_trace(backwards))

    unnamed = {"traceEvents": [{"ph": "X", "pid": 7, "name": "s",
                                "cat": "c", "ts": 0.0, "dur": 1.0}]}
    assert any("no process_name" in p for p in validate_trace(unnamed))


# ---------------------------------------------------------------------------
# Cross-process propagation through the crash-isolated runner
# ---------------------------------------------------------------------------
def _unit_task(tag):
    return {"tag": tag}


def test_run_tasks_isolate_ships_child_payloads_home():
    from repro.experiments.runner import Task, run_tasks

    tracer = Tracer(process="runner")
    results = run_tasks([Task(_unit_task, ("a",)), Task(_unit_task, ("b",))],
                        jobs=2, isolate=True, on_error="continue",
                        tracer=tracer)
    assert [r["tag"] for r in results] == ["a", "b"]
    flat = flatten_payloads(tracer)
    # Root payload + one absorbed payload per crash-isolated cell.
    assert len(flat) == 3
    cats = {rec.category for child in flat[1:]
            for rec in payload_spans(child)}
    assert "runner.task" in cats
    for child in flat[1:]:
        assert child["trace_id"] == tracer.trace_id


# ---------------------------------------------------------------------------
# Service trace endpoint + explain CLI exit codes
# ---------------------------------------------------------------------------
def test_service_trace_endpoint(tmp_path):
    from repro.experiments.runner import Task
    from repro.service import OverlapService
    from repro.service.jobs import Submission

    service = OverlapService(cache_root=tmp_path / "c", workers=1,
                             trace=True)
    service.start()
    try:
        sub = Submission(tenant="t", kind="nas", priority=0,
                         label="traced", spec={})
        status, body = service.submit_tasks(
            sub, [Task(_unit_task, ("x",))])
        assert status == 202
        job_id = body["job_id"]
        import time
        deadline = time.monotonic() + 30.0
        while (service.jobs[job_id].state not in ("done", "failed")
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert service.jobs[job_id].state == "done"
        code, trace = service.job_trace(job_id)
        assert code == 200
        assert validate_trace(trace) == []
        cats = {ev.get("cat") for ev in trace["traceEvents"]
                if ev.get("ph") == "X"}
        assert "service.submit" in cats
        assert "service.execute" in cats
        assert service.job_trace("job-99999999")[0] == 404
    finally:
        service.shutdown()


def test_service_trace_endpoint_disabled_by_default(tmp_path):
    from repro.experiments.runner import Task
    from repro.service import OverlapService
    from repro.service.jobs import Submission

    service = OverlapService(cache_root=tmp_path / "c", workers=1)
    sub = Submission(tenant="t", kind="nas", priority=0,
                     label="untraced", spec={})
    _status, body = service.submit_tasks(sub, [Task(_unit_task, ("x",))])
    code, resp = service.job_trace(body["job_id"])
    assert code == 404
    assert "disabled" in resp["error"]


def test_explain_cli_exit_codes(tmp_path, sharded_trace, capsys):
    from repro.tools.explain import main

    good = tmp_path / "good.json"
    good.write_text(json.dumps(sharded_trace))
    assert main([str(good)]) == 0
    assert "critical-path breakdown" in capsys.readouterr().out
    assert main([str(good), "--check"]) == 0
    capsys.readouterr()
    assert main([str(good), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["categorized_frac"] >= 0.95
    # categorized_frac can never exceed 1.0, so this threshold must fail.
    assert main([str(good), "--min-categorized", "1.01"]) == 1

    tracer = Tracer(process="leaky")
    tracer.begin("open", "work")
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(build_trace(tracer)))
    assert main([str(bad), "--check"]) == 1

    assert main([str(tmp_path / "missing.json")]) == 2
    notjson = tmp_path / "notjson.json"
    notjson.write_text("{")
    assert main([str(notjson), "--check"]) == 2
