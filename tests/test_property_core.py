"""Property-based tests (hypothesis) for the core instrumentation framework.

The central invariants: the derived bounds always nest
(0 <= min <= max <= data transfer time), interval attribution conserves
the stream's time span, the size-range breakdown partitions the totals,
and the circular queue never loses or reorders events.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.equeue import CircularEventQueue
from repro.core.events import EventKind, TimedEvent
from repro.core.measures import SizeBins
from repro.core.processor import DataProcessor
from repro.core.xfer_table import XferTable

TABLE = XferTable.from_model(latency=2e-6, bandwidth=500e6)


# ---------------------------------------------------------------------------
# Random-but-valid event stream generation
# ---------------------------------------------------------------------------
# Action alphabet: each action advances the clock by a random positive step
# and appends structurally valid events (calls balance, xfer ids are fresh
# or open, sections nest).
_ACTION = st.tuples(
    st.sampled_from(["call", "xfer_in_call", "xfer_split", "end_only", "orphan_begin"]),
    st.floats(min_value=1e-7, max_value=1e-3, allow_nan=False),
    st.integers(min_value=1, max_value=1 << 22),
)


def _build_stream(actions):
    """Fold actions into a time-ordered, structurally valid event list."""
    events = []
    t = 0.0
    next_id = 0

    def step(dt):
        nonlocal t
        t += dt
        return t

    for kind, dt, nbytes in actions:
        if kind == "call":
            events.append(TimedEvent(EventKind.CALL_ENTER, step(dt), 0, 0))
            events.append(TimedEvent(EventKind.CALL_EXIT, step(dt), 0, 0))
        elif kind == "xfer_in_call":
            xid = next_id = next_id + 1
            events.append(TimedEvent(EventKind.CALL_ENTER, step(dt), 0, 0))
            events.append(TimedEvent(EventKind.XFER_BEGIN, step(dt), xid, nbytes))
            events.append(TimedEvent(EventKind.XFER_END, step(dt), xid, nbytes))
            events.append(TimedEvent(EventKind.CALL_EXIT, step(dt), 0, 0))
        elif kind == "xfer_split":
            xid = next_id = next_id + 1
            events.append(TimedEvent(EventKind.CALL_ENTER, step(dt), 0, 0))
            events.append(TimedEvent(EventKind.XFER_BEGIN, step(dt), xid, nbytes))
            events.append(TimedEvent(EventKind.CALL_EXIT, step(dt), 0, 0))
            events.append(TimedEvent(EventKind.CALL_ENTER, step(dt), 0, 0))
            events.append(TimedEvent(EventKind.XFER_END, step(dt), xid, nbytes))
            events.append(TimedEvent(EventKind.CALL_EXIT, step(dt), 0, 0))
        elif kind == "end_only":
            xid = next_id = next_id + 1
            events.append(TimedEvent(EventKind.CALL_ENTER, step(dt), 0, 0))
            events.append(TimedEvent(EventKind.XFER_END, step(dt), xid + (1 << 30), nbytes))
            events.append(TimedEvent(EventKind.CALL_EXIT, step(dt), 0, 0))
        elif kind == "orphan_begin":
            xid = next_id = next_id + 1
            events.append(TimedEvent(EventKind.CALL_ENTER, step(dt), 0, 0))
            events.append(TimedEvent(EventKind.XFER_BEGIN, step(dt), xid, nbytes))
            events.append(TimedEvent(EventKind.CALL_EXIT, step(dt), 0, 0))
    return events, t


streams = st.lists(_ACTION, min_size=1, max_size=40).map(_build_stream)


class TestProcessorInvariants:
    @given(streams)
    @settings(max_examples=150, deadline=None)
    def test_bounds_always_nest(self, stream):
        events, end = stream
        proc = DataProcessor(TABLE)
        proc.process(events)
        proc.finalize(end)
        m = proc.total
        assert 0.0 <= m.min_overlap_time <= m.max_overlap_time + 1e-12
        assert m.max_overlap_time <= m.data_transfer_time + 1e-9

    @given(streams)
    @settings(max_examples=150, deadline=None)
    def test_interval_attribution_conserves_span(self, stream):
        events, end = stream
        proc = DataProcessor(TABLE)
        proc.process(events)
        proc.finalize(end)
        m = proc.total
        span = end - events[0].time
        assert m.computation_time + m.communication_call_time == pytest.approx(
            span, rel=1e-9, abs=1e-12
        )

    @given(streams)
    @settings(max_examples=100, deadline=None)
    def test_case_counts_sum_to_transfer_count(self, stream):
        events, end = stream
        proc = DataProcessor(TABLE)
        proc.process(events)
        proc.finalize(end)
        m = proc.total
        assert sum(m.case_counts.values()) == m.transfer_count

    @given(streams)
    @settings(max_examples=100, deadline=None)
    def test_bins_partition_totals(self, stream):
        events, end = stream
        proc = DataProcessor(TABLE)
        proc.process(events)
        proc.finalize(end)
        m = proc.total
        assert sum(b.count for b in m.bins.bins) == m.transfer_count
        assert sum(b.xfer_time for b in m.bins.bins) == pytest.approx(
            m.data_transfer_time, rel=1e-9, abs=1e-15
        )
        assert sum(b.min_overlap for b in m.bins.bins) == pytest.approx(
            m.min_overlap_time, rel=1e-9, abs=1e-15
        )
        assert sum(b.max_overlap for b in m.bins.bins) == pytest.approx(
            m.max_overlap_time, rel=1e-9, abs=1e-15
        )

    @given(streams, st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_queue_capacity_never_changes_results(self, stream, capacity):
        """The Fig.-2 design invariant: drain frequency is irrelevant."""
        events, end = stream
        direct = DataProcessor(TABLE)
        direct.process(events)
        direct.finalize(end)

        chunked = DataProcessor(TABLE)
        queue = CircularEventQueue(capacity, chunked.process)
        for ev in events:
            queue.push(ev)
        queue.flush()
        chunked.finalize(end)

        assert chunked.total.min_overlap_time == direct.total.min_overlap_time
        assert chunked.total.max_overlap_time == direct.total.max_overlap_time
        assert chunked.total.data_transfer_time == direct.total.data_transfer_time
        assert chunked.total.computation_time == direct.total.computation_time
        assert chunked.total.case_counts == direct.total.case_counts


class TestQueueProperties:
    @given(
        st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False), max_size=200),
        st.integers(min_value=1, max_value=17),
    )
    @settings(max_examples=100, deadline=None)
    def test_no_loss_no_reorder(self, times, capacity):
        seen = []
        q = CircularEventQueue(capacity, seen.extend)
        pushed = [
            TimedEvent(EventKind.XFER_BEGIN, t, i, 1) for i, t in enumerate(times)
        ]
        for ev in pushed:
            q.push(ev)
        q.flush()
        assert seen == pushed


class TestXferTableProperties:
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1e8, allow_nan=False),
            min_size=2,
            max_size=20,
            unique=True,
        ),
        st.floats(min_value=0.0, max_value=2e8, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_interpolation_between_neighbors(self, sizes, query):
        sizes = sorted(sizes)
        # Affine times guarantee monotonicity.
        times = [1e-6 + s / 1e9 for s in sizes]
        table = XferTable(sizes, times)
        t = table.time_for(query)
        assert t >= 0.0
        if sizes[0] <= query <= sizes[-1]:
            assert times[0] - 1e-15 <= t <= times[-1] + 1e-15

    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1e8, allow_nan=False),
            min_size=1,
            max_size=20,
            unique=True,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_serialization_roundtrip(self, sizes):
        sizes = sorted(sizes)
        times = [1e-6 + s / 7e8 for s in sizes]
        table = XferTable(sizes, times)
        assert XferTable.loads(table.dumps()) == table

    @given(st.floats(min_value=0, max_value=1e9, allow_nan=False),
           st.floats(min_value=0, max_value=1e9, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_size(self, a, b):
        table = XferTable.from_model(latency=3e-6, bandwidth=9e8)
        lo, hi = min(a, b), max(a, b)
        assert table.time_for(lo) <= table.time_for(hi) + 1e-15


class TestSizeBinsProperties:
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        st.floats(min_value=0.0, max_value=2e9, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_every_size_falls_in_exactly_one_bin(self, edges, size):
        bins = SizeBins(sorted(edges))
        idx = bins.index_for(size)
        assert 0 <= idx <= len(edges)
        lo = 0.0 if idx == 0 else sorted(edges)[idx - 1]
        hi = sorted(edges)[idx] if idx < len(edges) else float("inf")
        assert lo <= size < hi

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1, max_value=1e6, allow_nan=False),
                st.floats(min_value=1e-9, max_value=1e-2, allow_nan=False),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_combined_accumulation(self, items):
        half = len(items) // 2
        a, b, combined = SizeBins(), SizeBins(), SizeBins()
        for i, (size, xfer) in enumerate(items):
            target = a if i < half else b
            target.add(size, xfer, xfer * 0.25, xfer * 0.5)
            combined.add(size, xfer, xfer * 0.25, xfer * 0.5)
        a.merge(b)
        for mine, ref in zip(a.bins, combined.bins):
            assert mine.count == ref.count
            assert mine.xfer_time == pytest.approx(ref.xfer_time)
            assert mine.min_overlap == pytest.approx(ref.min_overlap)
