"""Branch coverage for the interpretation helper's advice rules."""

import pytest

from repro.analysis.interpret import interpret, render_interpretation
from repro.core.measures import CASE_ONE_EVENT, CASE_SPLIT_CALL
from repro.core.report import OverlapReport
from repro.core.measures import OverlapMeasures


def _report(total: OverlapMeasures, wall=1.0, sections=None):
    return OverlapReport(
        rank=0, label="t", wall_time=wall, event_count=10,
        total=total, sections=sections or {}, call_stats={},
    )


def test_no_transfers_advice():
    interp = interpret(_report(OverlapMeasures()))
    assert interp.advice == ["no data transfers observed in this scope"]
    assert interp.dominant_loss_range is None
    assert interp.same_call_share == 0.0


def test_healthy_scope_advice():
    m = OverlapMeasures()
    # Fully hidden small transfer: no loss, tight bounds.
    m.add_transfer(512, 1e-4, 1e-4, 1e-4, CASE_SPLIT_CALL)
    m.add_interval(1.0, in_call=False)
    interp = interpret(_report(m))
    assert interp.advice == ["overlap is healthy in this scope"] or all(
        "size range" in a or "healthy" in a for a in interp.advice
    )
    assert interp.min_nonoverlapped_time == pytest.approx(0.0)


def test_wide_bounds_advice():
    m = OverlapMeasures()
    # Case-3 uncertainty: min 0, max full.
    m.add_transfer(100_000, 5e-3, 0.0, 5e-3, CASE_ONE_EVENT)
    interp = interpret(_report(m, wall=1.0))
    assert any("bounds are wide" in a for a in interp.advice)


def test_large_loss_fraction_advice():
    m = OverlapMeasures()
    m.add_transfer(1 << 20, 0.5, 0.0, 0.0, CASE_SPLIT_CALL)
    interp = interpret(_report(m, wall=1.0))
    assert any("of wall time" in a for a in interp.advice)
    assert interp.loss_fraction_of_wall == pytest.approx(0.5)


def test_dominant_range_identifies_biggest_loss():
    m = OverlapMeasures()
    m.add_transfer(256, 1e-5, 0.0, 0.0, CASE_SPLIT_CALL)  # tiny loss
    m.add_transfer(1 << 20, 2e-3, 0.0, 0.0, CASE_SPLIT_CALL)  # big loss
    interp = interpret(_report(m))
    assert interp.dominant_loss_range is not None
    assert "256KiB" in interp.dominant_loss_range or "inf" in interp.dominant_loss_range


def test_zero_wall_time_guard():
    m = OverlapMeasures()
    m.add_transfer(64, 1e-6, 0.0, 0.0, CASE_SPLIT_CALL)
    interp = interpret(_report(m, wall=0.0))
    assert interp.loss_fraction_of_wall == 0.0


def test_section_scope_render():
    m = OverlapMeasures()
    m.add_transfer(64, 1e-6, 0.0, 0.0, CASE_SPLIT_CALL)
    rep = _report(OverlapMeasures(), sections={"phase": m})
    text = render_interpretation(interpret(rep, section="phase"))
    assert "interpretation (phase)" in text
