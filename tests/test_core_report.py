"""Tests for per-process reports, persistence, and aggregation."""

import pytest

from repro.core.measures import CASE_SPLIT_CALL, OverlapMeasures
from repro.core.monitor import Monitor
from repro.core.report import OverlapReport, aggregate_reports, aggregate_sections
from repro.core.xfer_table import XferTable


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_report(rank=0, label="test", with_section=False):
    clock = FakeClock()
    table = XferTable.from_model(latency=1e-6, bandwidth=1e9)
    mon = Monitor(clock, table)
    ctx = mon.section("solver") if with_section else None
    if ctx:
        ctx.__enter__()
    with mon.call("MPI_Isend"):
        clock.advance(1e-6)
        xid = mon.xfer_begin(10000)
    clock.advance(50e-6)
    with mon.call("MPI_Wait"):
        clock.advance(2e-6)
        mon.xfer_end(xid, 10000)
    if ctx:
        ctx.__exit__(None, None, None)
    return mon.finalize(rank=rank, label=label)


def test_report_roundtrip_through_file(tmp_path):
    report = make_report(rank=3, label="cg.A.4", with_section=True)
    path = tmp_path / "overlap.rank3.json"
    report.save(path)
    loaded = OverlapReport.load(path)
    assert loaded.rank == 3
    assert loaded.label == "cg.A.4"
    assert loaded.total.data_transfer_time == pytest.approx(
        report.total.data_transfer_time
    )
    assert loaded.total.case_counts == report.total.case_counts
    assert "solver" in loaded.sections
    assert loaded.call_stats["MPI_Wait"][0] == 1


def test_report_rejects_unknown_format():
    with pytest.raises(ValueError):
        OverlapReport.from_dict({"format_version": 999})


def test_mpi_time_is_total_call_time():
    report = make_report()
    assert report.mpi_time == pytest.approx(
        report.total.communication_call_time
    )
    assert report.mpi_time == pytest.approx(3e-6)


def test_mean_call_time_missing_name_is_zero():
    report = make_report()
    assert report.mean_call_time("MPI_Alltoall") == 0.0
    assert report.total_call_time("MPI_Alltoall") == 0.0


def test_render_text_contains_key_measures():
    report = make_report(with_section=True)
    text = report.render_text()
    assert "data transfer time" in text
    assert "min overlapped" in text
    assert "section 'solver'" in text
    assert "by message size" in text


def test_aggregate_reports_sums_totals():
    reports = [make_report(rank=i) for i in range(4)]
    merged = aggregate_reports(reports)
    assert merged.transfer_count == 4
    assert merged.data_transfer_time == pytest.approx(
        4 * reports[0].total.data_transfer_time
    )


def test_aggregate_reports_empty_raises():
    with pytest.raises(ValueError):
        aggregate_reports([])
    with pytest.raises(ValueError):
        aggregate_sections([], "x")


def test_aggregate_sections_skips_ranks_without_section():
    with_sec = make_report(rank=0, with_section=True)
    without = make_report(rank=1, with_section=False)
    merged = aggregate_sections([with_sec, without], "solver")
    assert merged.transfer_count == 1


def test_aggregated_percent_is_weighted_not_mean():
    # One rank with all-overlap, one with none: percent must weight by
    # transfer time, not average the percents.
    a = OverlapMeasures()
    a.add_transfer(100, 3.0, 3.0, 3.0, CASE_SPLIT_CALL)
    b = OverlapMeasures()
    b.add_transfer(100, 1.0, 0.0, 0.0, CASE_SPLIT_CALL)
    merged = OverlapMeasures()
    merged.merge(a)
    merged.merge(b)
    assert merged.max_overlap_pct == pytest.approx(75.0)


class TestReportMerge:
    """OverlapReport.merge / __iadd__ (built on OverlapMeasures.merge)."""

    def test_merge_empty_other_is_identity(self):
        base = make_report(rank=0, with_section=True)
        before = base.to_dict()
        clock = FakeClock()
        table = XferTable.from_model(latency=1e-6, bandwidth=1e9)
        empty = Monitor(clock, table).finalize(rank=1)
        base.merge(empty)
        after = base.to_dict()
        assert after["total"] == before["total"]
        assert after["sections"] == before["sections"]
        assert after["call_stats"] == before["call_stats"]

    def test_merge_matches_aggregate_reports(self):
        reports = [make_report(rank=i) for i in range(4)]
        expected = aggregate_reports(reports)
        merged = OverlapReport.from_dict(reports[0].to_dict())
        for rep in reports[1:]:
            merged.merge(rep)
        assert merged.total.data_transfer_time == pytest.approx(
            expected.data_transfer_time
        )
        assert merged.total.transfer_count == expected.transfer_count
        assert merged.total.case_counts == expected.case_counts

    def test_merge_disjoint_sections_deep_copies(self):
        a = make_report(rank=0, with_section=False)
        b = make_report(rank=1, with_section=True)
        a.merge(b)
        assert "solver" in a.sections
        assert a.sections["solver"] is not b.sections["solver"]
        # Mutating the merged copy must not touch b's section.
        a.sections["solver"].add_transfer(64, 1.0, 0.5, 1.0, CASE_SPLIT_CALL)
        assert b.sections["solver"].transfer_count == 1

    def test_merge_overlapping_sections_accumulate_bins(self):
        a = make_report(rank=0, with_section=True)
        b = make_report(rank=1, with_section=True)
        counts_before = [b.count for b in a.sections["solver"].bins.bins]
        a.merge(b)
        counts_after = [b.count for b in a.sections["solver"].bins.bins]
        assert sum(counts_after) == 2 * sum(counts_before)

    def test_merge_mismatched_bin_edges_raise(self):
        a = make_report(rank=0)
        other_total = OverlapMeasures(bin_edges=(10.0, 1000.0))
        b = OverlapReport(
            rank=1, label="", wall_time=0.0, event_count=0,
            total=other_total, sections={}, call_stats={},
        )
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_call_stats_and_scalars(self):
        a = make_report(rank=0)
        b = make_report(rank=1)
        b.wall_time = a.wall_time * 3
        a_count, a_time = a.call_stats["MPI_Wait"]
        merged = a.merge(b)
        assert merged is a  # chaining
        assert a.call_stats["MPI_Wait"][0] == 2 * a_count
        assert a.call_stats["MPI_Wait"][1] == pytest.approx(2 * a_time)
        assert a.wall_time == b.wall_time  # slowest rank wins
        assert a.rank == 0 and a.event_count > 0

    def test_iadd_delegates_to_merge(self):
        a = make_report(rank=0)
        b = make_report(rank=1)
        expected = a.total.data_transfer_time + b.total.data_transfer_time
        a += b
        assert a.total.data_transfer_time == pytest.approx(expected)
