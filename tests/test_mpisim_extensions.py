"""Tests for the extended MPI API: waitany/waitsome/testall/cancel,
scan, and reduce_scatter."""

import pytest

from repro.mpisim import MpiConfig
from repro.mpisim.status import MpiError
from repro.runtime import run_app

CFG = MpiConfig(name="t-ext")


class TestWaitAnySome:
    def test_waitany_returns_first_completed_index(self):
        def app(ctx):
            if ctx.rank == 0:
                # Rank 2's message is sent late: rank 1's completes first.
                fast = yield from ctx.comm.irecv(1, 1)
                slow = yield from ctx.comm.irecv(2, 2)
                idx = yield from ctx.comm.waitany([slow, fast])
                assert idx == 1  # 'fast' sits at index 1
                yield from ctx.comm.waitall([slow, fast])
            elif ctx.rank == 1:
                yield from ctx.comm.send(0, 1, 64)
            else:
                yield from ctx.compute(5e-3)
                yield from ctx.comm.send(0, 2, 64)

        run_app(app, 3, config=CFG)

    def test_waitany_prefers_lowest_index_when_several_done(self):
        def app(ctx):
            if ctx.rank == 0:
                yield from ctx.compute(2e-3)  # let both messages arrive
                r1 = yield from ctx.comm.irecv(1, 1)
                r2 = yield from ctx.comm.irecv(1, 2)
                yield from ctx.comm.waitall([r1, r2])
                idx = yield from ctx.comm.waitany([r1, r2])
                assert idx == 0
            else:
                yield from ctx.comm.send(0, 1, 64)
                yield from ctx.comm.send(0, 2, 64)

        run_app(app, 2, config=CFG)

    def test_waitsome_returns_all_completed(self):
        def app(ctx):
            if ctx.rank == 0:
                r1 = yield from ctx.comm.irecv(1, 1)
                r2 = yield from ctx.comm.irecv(1, 2)
                yield from ctx.compute(2e-3)  # both arrive during compute
                done = yield from ctx.comm.waitsome([r1, r2])
                assert done == [0, 1]
            else:
                yield from ctx.comm.send(0, 1, 64)
                yield from ctx.comm.send(0, 2, 64)

        run_app(app, 2, config=CFG)

    def test_empty_request_list_rejected(self):
        def app(ctx):
            yield from ctx.comm.waitany([])

        with pytest.raises(MpiError):
            run_app(app, 1, config=CFG)


class TestTestallCancel:
    def test_testall_polls_and_reports(self):
        def app(ctx):
            if ctx.rank == 0:
                r1 = yield from ctx.comm.irecv(1, 1)
                r2 = yield from ctx.comm.irecv(1, 2)
                done = yield from ctx.comm.testall([r1, r2])
                assert done is False  # nothing can have arrived at t=0
                yield from ctx.compute(2e-3)
                while not (yield from ctx.comm.testall([r1, r2])):
                    yield from ctx.compute(1e-4)
            else:
                yield from ctx.comm.send(0, 1, 64)
                yield from ctx.comm.send(0, 2, 64)

        run_app(app, 2, config=CFG)

    def test_cancel_unmatched_recv_succeeds(self):
        def app(ctx):
            req = yield from ctx.comm.irecv(source=ctx.rank, tag=99)
            ok = yield from ctx.comm.cancel(req)
            assert ok is True
            assert req.done and req.cancelled

        run_app(app, 1, config=CFG)

    def test_cancel_matched_recv_fails(self):
        def app(ctx):
            if ctx.rank == 0:
                req = yield from ctx.comm.irecv(1, 5)
                yield from ctx.compute(2e-3)  # message arrives & matches
                yield from ctx.comm.wait(req)
                ok = yield from ctx.comm.cancel(req)
                assert ok is False
                assert not req.cancelled
            else:
                yield from ctx.comm.send(0, 5, 64)

        run_app(app, 2, config=CFG)

    def test_cancel_send_rejected(self):
        # A rendezvous send is still in flight (receiver posts late), so
        # the cancel hits the kind check and must be refused.
        config = MpiConfig(name="t-cancel", eager_limit=1024, rndv_mode="rget")

        def app(ctx):
            if ctx.rank == 0:
                req = yield from ctx.comm.isend(1, 1, 100_000)
                yield from ctx.comm.cancel(req)
            else:
                yield from ctx.compute(5e-3)
                yield from ctx.comm.recv(0, 1)

        with pytest.raises(MpiError, match="only receive"):
            run_app(app, 2, config=config)

    def test_cancel_completed_send_returns_false(self):
        # An eager send buffers and completes immediately; cancelling a
        # complete request is a no-op returning False (any kind).
        def app(ctx):
            if ctx.rank == 0:
                req = yield from ctx.comm.isend(1, 1, 64)
                assert req.done
                ok = yield from ctx.comm.cancel(req)
                assert ok is False
            else:
                yield from ctx.comm.recv(0, 1)

        run_app(app, 2, config=CFG)

    def test_cancelled_recv_never_matches_later_message(self):
        def app(ctx):
            if ctx.rank == 0:
                doomed = yield from ctx.comm.irecv(1, 5)
                ok = yield from ctx.comm.cancel(doomed)
                assert ok
                # A fresh receive must get the message instead.
                status, data = yield from ctx.comm.recv(1, 5)
                assert data == "payload"
            else:
                yield from ctx.compute(1e-3)
                yield from ctx.comm.send(0, 5, 64, data="payload")

        run_app(app, 2, config=CFG)


class TestScan:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 5, 8])
    def test_inclusive_prefix_sum(self, nprocs):
        def app(ctx):
            got = yield from ctx.comm.scan(ctx.rank + 1, 8)
            assert got == sum(range(1, ctx.rank + 2))

        run_app(app, nprocs, config=CFG)

    def test_scan_custom_op(self):
        def app(ctx):
            got = yield from ctx.comm.scan(ctx.rank, 8, op=max)
            assert got == ctx.rank  # max of 0..rank

        run_app(app, 5, config=CFG)


class TestReduceScatter:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 5])
    def test_each_rank_gets_its_reduced_block(self, nprocs):
        def app(ctx):
            blocks = [(ctx.rank + 1) * (dst + 1) for dst in range(ctx.size)]
            got = yield from ctx.comm.reduce_scatter(blocks, 1024)
            expect = sum((src + 1) * (ctx.rank + 1) for src in range(ctx.size))
            assert got == expect

        run_app(app, nprocs, config=CFG)

    def test_block_count_validated(self):
        def app(ctx):
            yield from ctx.comm.reduce_scatter([1], 64)

        with pytest.raises(ValueError):
            run_app(app, 3, config=CFG)
