"""Reproduction of the CLUSTER 2006 overlap instrumentation framework.

Top-level convenience re-exports; see the subpackage docstrings for the
full map (``repro.core`` is the paper's contribution, everything else is
the evaluation substrate).
"""

from repro.core import Monitor, OverlapMeasures, OverlapReport, XferTable
from repro.mpisim import MpiConfig, mvapich2_like, openmpi_like
from repro.netsim import NetworkParams
from repro.runtime import RunResult, run_app

__version__ = "1.0.0"

__all__ = [
    "Monitor",
    "MpiConfig",
    "NetworkParams",
    "OverlapMeasures",
    "OverlapReport",
    "RunResult",
    "XferTable",
    "__version__",
    "mvapich2_like",
    "openmpi_like",
    "run_app",
]
