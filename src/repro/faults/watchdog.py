"""Watchdog policy + diagnostic dump for wedged simulations.

The mechanism (stepped guarded run) lives in
:meth:`repro.sim.engine.Engine.run_guarded`; this module holds the policy
knobs (:class:`WatchdogConfig`) and the post-mortem snapshot
(:class:`WatchdogDiagnostic`) that :func:`repro.runtime.launcher.run_app`
attaches to its :class:`~repro.runtime.launcher.RunResult` instead of
raising or hanging.  Reports harvested from such a run are best-effort
partial reports: the monitors finalize normally, so in-flight transfers
resolve under the paper's Case 3 bounds.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class WatchdogConfig:
    """When to give up on a run instead of hanging.

    ``max_sim_time`` caps total simulated seconds; ``stall_sim_time``
    trips when the progress token (events stamped + packets received)
    stays flat for that much simulated time.  ``check_interval`` is how
    often the guarded run re-checks (default: a quarter of the tightest
    guard).
    """

    max_sim_time: float | None = None
    stall_sim_time: float | None = 0.05
    check_interval: float | None = None

    def __post_init__(self) -> None:
        if self.max_sim_time is None and self.stall_sim_time is None:
            raise ValueError("watchdog needs max_sim_time or stall_sim_time")
        for name in ("max_sim_time", "stall_sim_time", "check_interval"):
            value = getattr(self, name)
            if value is not None and value <= 0.0:
                raise ValueError(f"{name} must be positive, got {value}")


@dataclasses.dataclass
class RankSnapshot:
    """One rank's state at the moment the watchdog fired."""

    rank: int
    alive: bool
    waiting_on: str
    outstanding_sends: int
    outstanding_recvs: int
    pending_local: int
    unacked_packets: int
    inbound_depth: int
    cq_depth: int


@dataclasses.dataclass
class WatchdogDiagnostic:
    """Why the run was stopped, and what everything was doing."""

    reason: str  # "stalled" | "max_sim_time" | "deadlock"
    sim_time: float
    pending_events: int
    processed_count: int
    ranks: list[RankSnapshot]

    def render_text(self) -> str:
        lines = [
            f"watchdog: run stopped ({self.reason}) at t={self.sim_time:.6f}s",
            f"  pending store: {self.pending_events} event(s), "
            f"{self.processed_count} processed",
        ]
        for r in self.ranks:
            state = "blocked" if r.alive else "finished"
            lines.append(
                f"  rank {r.rank}: {state}"
                f" sends={r.outstanding_sends} recvs={r.outstanding_recvs}"
                f" local={r.pending_local} unacked={r.unacked_packets}"
                f" inbound={r.inbound_depth} cq={r.cq_depth}"
            )
            if r.alive and r.waiting_on:
                lines.append(f"    waiting on: {r.waiting_on}")
        return "\n".join(lines)


def diagnose(
    engine: typing.Any,
    reason: str,
    procs: typing.Sequence,
    endpoints: typing.Sequence,
) -> WatchdogDiagnostic:
    """Snapshot engine + per-rank state after a guarded run gave up."""
    ranks: list[RankSnapshot] = []
    for proc, ep in zip(procs, endpoints):
        target = getattr(proc, "_target", None)
        unacked = getattr(ep, "_unacked", None)
        ranks.append(
            RankSnapshot(
                rank=ep.rank,
                alive=proc.is_alive,
                waiting_on=repr(target) if target is not None else "",
                outstanding_sends=len(ep.sends),
                outstanding_recvs=len(ep.recvs),
                pending_local=int(ep.pending_local_completions),
                unacked_packets=len(unacked) if unacked else 0,
                inbound_depth=sum(len(nic.inbound) for nic in ep.nics),
                cq_depth=sum(len(nic.cq) for nic in ep.nics),
            )
        )
    return WatchdogDiagnostic(
        reason=reason,
        sim_time=engine.now,
        pending_events=engine.pending_count,
        processed_count=engine.processed_count,
        ranks=ranks,
    )
