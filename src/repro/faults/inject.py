"""Live fault machinery: per-link RNG streams + fault verdicts + counters.

One :class:`FaultInjector` is built per :class:`~repro.netsim.fabric.Fabric`
when ``NetworkParams.faults`` is set.  Determinism contract:

* every directed link ``(src_node, dst_node)`` owns an independent RNG
  stream seeded from ``(plan.seed, src, dst)``, so the fault pattern on
  one link never depends on traffic elsewhere (and multiprocess sweeps
  replay identically regardless of worker scheduling);
* :meth:`roll` draws exactly three uniforms per packet whatever the
  verdict, so adding or removing one fault class never perturbs the
  stream consumed by the others.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.faults.plan import FaultPlan

# Stream-family discriminators mixed into derived seeds so link rolls,
# stamp loss, and any future family never share an RNG stream.
_FAMILY_LINK = 1
_FAMILY_STAMP = 2


class PacketVerdict(typing.NamedTuple):
    """What happens to one send-channel packet."""

    drop: bool
    duplicate: bool
    reorder: bool


_CLEAN = PacketVerdict(False, False, False)


class FaultInjector:
    """Per-fabric fault state derived from one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan, num_nodes: int) -> None:
        self.plan = plan
        self.num_nodes = num_nodes
        self._links: dict[tuple[int, int], typing.Any] = {}
        self._straggler = {rank: factor for rank, factor in plan.stragglers}
        # Per-node windows, sorted by start (lookups scan; plans are tiny).
        self._degradations: dict[int, list] = {}
        for window in plan.degradations:
            self._degradations.setdefault(window.node, []).append(window)
        self._stalls: dict[int, list] = {}
        for window in plan.stalls:
            self._stalls.setdefault(window.node, []).append(window)
        # Counters (surfaced through repro.metrics when a registry is given).
        self.packets_dropped = 0
        self.packets_duplicated = 0
        self.packets_reordered = 0

    # -- packet verdicts ---------------------------------------------------
    def _link_rng(self, src: int, dst: int) -> typing.Any:
        rng = self._links.get((src, dst))
        if rng is None:
            rng = self._links[(src, dst)] = np.random.default_rng(
                (self.plan.seed, _FAMILY_LINK, src, dst)
            )
        return rng

    def roll(self, src: int, dst: int) -> PacketVerdict:
        """Fault verdict for one send-channel packet on link ``src -> dst``.

        Always draws three uniforms (drop, dup, reorder) to keep per-link
        streams stable across fault-class mixes.  Drop wins over duplicate
        over reorder when several fire on the same packet.
        """
        plan = self.plan
        if not plan.has_packet_faults:
            return _CLEAN
        rng = self._link_rng(src, dst)
        u_drop = rng.random()
        u_dup = rng.random()
        u_reorder = rng.random()
        if u_drop < plan.drop_prob:
            self.packets_dropped += 1
            return PacketVerdict(True, False, False)
        if u_dup < plan.dup_prob:
            self.packets_duplicated += 1
            return PacketVerdict(False, True, False)
        if u_reorder < plan.reorder_prob:
            self.packets_reordered += 1
            return PacketVerdict(False, False, True)
        return _CLEAN

    # -- timing faults -----------------------------------------------------
    def straggler_factor(self, node: int) -> float:
        """Per-message cost multiplier for ``node`` (1.0 = healthy)."""
        return self._straggler.get(node, 1.0)

    def degrade_factor(self, node: int, when: float) -> float:
        """Serialization-time multiplier on ``node``'s ports at ``when``."""
        windows = self._degradations.get(node)
        if not windows:
            return 1.0
        factor = 1.0
        for w in windows:
            if w.start <= when < w.end:
                factor *= w.factor
        return factor

    def stall_adjust(self, node: int, start: float) -> float:
        """Push ``start`` past any stall window covering it on ``node``."""
        windows = self._stalls.get(node)
        if not windows:
            return start
        # Windows may chain (end of one inside the next); iterate to fixpoint.
        moved = True
        while moved:
            moved = False
            for w in windows:
                if w.start <= start < w.end:
                    start = w.end
                    moved = True
        return start

    # -- instrumentation loss ----------------------------------------------
    def stamp_rng(self, rank: int) -> typing.Any:
        """Independent stream for rank-local event-stamp loss."""
        return np.random.default_rng((self.plan.seed, _FAMILY_STAMP, rank))

    def stamp_loss(self, rank: int) -> "StampLoss | None":
        """Rank-local stamp-loss state, or None when the plan has none."""
        if self.plan.event_drop_prob <= 0.0:
            return None
        return StampLoss(self.stamp_rng(rank), self.plan.event_drop_prob)

    # -- observability -----------------------------------------------------
    def attach_metrics(self, registry: typing.Any, labels: dict | None = None) -> None:
        """Register fault counters on a :class:`~repro.metrics.MetricsRegistry`."""
        labels = labels or {}
        registry.sampled_counter(
            "repro_faults_packets_dropped",
            lambda: self.packets_dropped,
            help="Send-channel packets silently dropped by fault injection",
            labels=labels,
        )
        registry.sampled_counter(
            "repro_faults_packets_duplicated",
            lambda: self.packets_duplicated,
            help="Send-channel packets delivered twice by fault injection",
            labels=labels,
        )
        registry.sampled_counter(
            "repro_faults_packets_reordered",
            lambda: self.packets_reordered,
            help="Send-channel packets delayed past later traffic",
            labels=labels,
        )


class StampLoss:
    """Probabilistic loss of instrumentation event stamps on one rank.

    Models a lossy measurement layer (overflowing trace buffer, sampled
    PMU hooks): each XFER_BEGIN / XFER_END stamp is independently dropped
    with the plan's ``event_drop_prob``.  Losing one endpoint of a
    transfer leaves the other unmatched, which the processor resolves
    under the paper's Case 3 bounds (min = 0, max = xfer_time).  One draw
    per stamp from a rank-local stream keeps loss patterns independent of
    simulation interleaving.
    """

    def __init__(self, rng: typing.Any, prob: float) -> None:
        self._rng = rng
        self.prob = prob
        #: Stamps dropped, by endpoint kind (diagnostics / reconciliation).
        self.begin_dropped = 0
        self.end_dropped = 0

    @property
    def dropped(self) -> int:
        return self.begin_dropped + self.end_dropped

    def drop_begin(self) -> bool:
        if self._rng.random() < self.prob:
            self.begin_dropped += 1
            return True
        return False

    def drop_end(self) -> bool:
        if self._rng.random() < self.prob:
            self.end_dropped += 1
            return True
        return False
