"""Declarative, seeded fault schedules (what goes wrong, and when).

A :class:`FaultPlan` is a frozen value object: it carries probabilities,
windows, and a seed, never RNG state.  The same plan therefore hashes to
the same experiment-cache key, replays identically across processes, and
can be threaded through :class:`~repro.netsim.params.NetworkParams`
(``faults=``) without breaking the frozen-dataclass contract.  The live
machinery that consumes a plan lives in :mod:`repro.faults.inject`.

Fault model (see docs/robustness.md):

* **Packet faults** (drop / duplicate / reorder) apply to two-sided
  *send-channel* packets only -- eager data and protocol control packets.
  RDMA verbs model InfiniBand reliable-connection hardware, which
  retransmits below the verbs interface, so they see *timing* faults
  (degradation, stalls, stragglers) but never lose data.
* **Link degradation** multiplies serialization time on a node's ports
  during a window; **NIC stalls** freeze a node's ports for an interval;
  **stragglers** scale a node's per-message costs for the whole run.
* **Instrumentation loss** drops XFER event stamps with probability
  ``event_drop_prob`` and/or bounds the event queue to a ring of
  ``ring_capacity`` slots -- both drive the paper's Case 3 bounds.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class LinkDegradation:
    """Bandwidth degradation window on one node's ports.

    While ``start <= t < end``, serialization time on node ``node`` is
    multiplied by ``factor`` (>= 1.0; 4.0 means the link runs at 1/4
    speed).
    """

    node: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be non-negative, got {self.node}")
        if not 0.0 <= self.start <= self.end:
            raise ValueError(f"bad window [{self.start}, {self.end})")
        if self.factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1.0, got {self.factor}")


@dataclasses.dataclass(frozen=True)
class NicStall:
    """A pause window on one node's ports (firmware hiccup, PFC storm).

    Work that would start inside ``[start, end)`` is pushed to ``end``.
    """

    node: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be non-negative, got {self.node}")
        if not 0.0 <= self.start <= self.end:
            raise ValueError(f"bad window [{self.start}, {self.end})")


@dataclasses.dataclass(frozen=True)
class ResilienceParams:
    """Ack/retransmission tuning for the reliable send channel.

    The sender arms a retransmit timer per unacked packet: attempt ``k``
    (0-based) fires after ``ack_timeout * backoff**k``.  After
    ``max_retries`` retransmissions the packet is abandoned and the
    endpoint's ``retries_exhausted`` counter is bumped -- the operation
    then never completes, which is the watchdog's job to report.
    """

    ack_timeout: float = 100.0e-6
    backoff: float = 2.0
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0.0:
            raise ValueError(f"ack_timeout must be positive, got {self.ack_timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {self.backoff}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one run, deterministically seeded."""

    #: Master seed; every per-link / per-rank stream derives from it.
    seed: int = 0
    #: Probability a send-channel packet is silently dropped on the wire.
    drop_prob: float = 0.0
    #: Probability a send-channel packet is delivered twice.
    dup_prob: float = 0.0
    #: Probability a send-channel packet is delayed by ``reorder_delay``
    #: (overtaking packets posted after it).
    reorder_prob: float = 0.0
    #: Extra delay applied to reordered packets (seconds).
    reorder_delay: float = 50.0e-6
    #: Bandwidth-degradation windows, per node.
    degradations: tuple[LinkDegradation, ...] = ()
    #: NIC stall windows, per node.
    stalls: tuple[NicStall, ...] = ()
    #: ``(rank, factor)`` pairs: node ``rank``'s per-message overhead and
    #: latency are multiplied by ``factor`` for the whole run.
    stragglers: tuple[tuple[int, float], ...] = ()
    #: Probability an XFER_BEGIN/XFER_END stamp is lost (instrumentation
    #: loss -- drives Case 3 bounds).
    event_drop_prob: float = 0.0
    #: When > 0, replace the drain-mode event queue with a ring of this
    #: many slots; overflow overwrites the oldest stamps (also Case 3).
    ring_capacity: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "reorder_prob", "event_drop_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.reorder_delay < 0.0:
            raise ValueError(f"reorder_delay must be non-negative, got {self.reorder_delay}")
        if self.ring_capacity < 0:
            raise ValueError(f"ring_capacity must be >= 0, got {self.ring_capacity}")
        for rank, factor in self.stragglers:
            if rank < 0:
                raise ValueError(f"straggler rank must be non-negative, got {rank}")
            if factor < 1.0:
                raise ValueError(f"straggler factor must be >= 1.0, got {factor}")

    def validate(self) -> None:
        """Explicit re-validation hook (``__post_init__`` already ran)."""
        # Frozen dataclass: construction validated everything.

    # -- derived -----------------------------------------------------------
    @property
    def has_packet_faults(self) -> bool:
        """True when any send-channel packet can be lost/duped/delayed."""
        return self.drop_prob > 0.0 or self.dup_prob > 0.0 or self.reorder_prob > 0.0

    @property
    def has_timing_faults(self) -> bool:
        return bool(self.degradations or self.stalls or self.stragglers)

    @property
    def degrades_instrumentation(self) -> bool:
        return self.event_drop_prob > 0.0 or self.ring_capacity > 0


_SPEC_HELP = (
    "drop=P, dup=P, reorder=P, reorder_delay=SECONDS, events=P, ring=N, "
    "degrade=NODE:START:END:FACTOR, stall=NODE:START:END, "
    "straggler=RANK:FACTOR (degrade/stall/straggler may repeat)"
)


def parse_fault_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Build a :class:`FaultPlan` from a compact CLI string.

    Example::

        drop=0.05,dup=0.01,reorder=0.02,events=0.1,ring=512,straggler=0:2.5
    """
    kwargs: dict[str, typing.Any] = {"seed": seed}
    degradations: list[LinkDegradation] = []
    stalls: list[NicStall] = []
    stragglers: list[tuple[int, float]] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"bad fault spec item {item!r}; expected key=value ({_SPEC_HELP})")
        key, _, value = item.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key == "drop":
                kwargs["drop_prob"] = float(value)
            elif key == "dup":
                kwargs["dup_prob"] = float(value)
            elif key == "reorder":
                kwargs["reorder_prob"] = float(value)
            elif key == "reorder_delay":
                kwargs["reorder_delay"] = float(value)
            elif key == "events":
                kwargs["event_drop_prob"] = float(value)
            elif key == "ring":
                kwargs["ring_capacity"] = int(value)
            elif key == "degrade":
                node, start, end, factor = value.split(":")
                degradations.append(
                    LinkDegradation(int(node), float(start), float(end), float(factor))
                )
            elif key == "stall":
                node, start, end = value.split(":")
                stalls.append(NicStall(int(node), float(start), float(end)))
            elif key == "straggler":
                rank, factor = value.split(":")
                stragglers.append((int(rank), float(factor)))
            else:
                raise ValueError(f"unknown fault spec key {key!r} ({_SPEC_HELP})")
        except ValueError:
            raise
        except Exception as exc:  # malformed colon lists
            raise ValueError(f"bad fault spec item {item!r}: {exc}") from exc
    return FaultPlan(
        degradations=tuple(degradations),
        stalls=tuple(stalls),
        stragglers=tuple(stragglers),
        **kwargs,
    )
