"""Deterministic transport faults for the socket shard backend.

The coordinator's host-loss handling (heartbeat timeouts, EOF detection,
diagnostic snapshots, retryable service failures) must be testable
without killing real hosts.  :class:`TransportFaultPlan` describes a
count-based failure -- *after N sent frames, this worker drops / stalls /
slows* -- and :meth:`TransportFaultPlan.injector` builds the live hook a
:class:`repro.netsim.transport.FrameStream` calls before every send.

Counts, not probabilities: the same plan always fails on the same frame,
so CI asserts exact failure modes ("connection-lost at frame 12") rather
than flaky approximations.  The hook runs under the stream's send lock,
which is the point of the stall fault -- a stalled worker can't emit
heartbeats either, which is exactly what a wedged host looks like from
the coordinator.
"""

from __future__ import annotations

import dataclasses
import time

__all__ = [
    "TransportFaultInjected",
    "TransportFaultPlan",
    "TransportInjector",
    "parse_transport_fault_spec",
]


class TransportFaultInjected(RuntimeError):
    """Raised inside the worker when an injected fault fires.

    The worker session treats it like the host dying: the coordinator
    only ever observes the *symptom* (EOF or silence), same as a real
    loss.
    """


@dataclasses.dataclass(frozen=True)
class TransportFaultPlan:
    """What goes wrong on one worker's transport, and when.

    ``drop_after_frames``: hard-close the socket after that many sent
    frames (coordinator sees EOF -> "connection-lost").
    ``stall_after_frames``: sleep ``stall_s`` holding the send lock after
    that many frames (heartbeats stop too -> "heartbeat-timeout").
    ``slow_send_s``: added latency before every send (a slow host; the
    run completes, just late -- exercises timeout headroom).
    """

    drop_after_frames: "int | None" = None
    stall_after_frames: "int | None" = None
    stall_s: float = 3600.0
    slow_send_s: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_after_frames", "stall_after_frames"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.stall_s <= 0.0:
            raise ValueError("stall_s must be positive")
        if self.slow_send_s < 0.0:
            raise ValueError("slow_send_s must be >= 0")

    def injector(self) -> "TransportInjector":
        return TransportInjector(self)


class TransportInjector:
    """Live per-stream state for one :class:`TransportFaultPlan`."""

    def __init__(self, plan: TransportFaultPlan) -> None:
        self.plan = plan
        self.frames = 0
        self.fired: "str | None" = None

    def before_send(self, stream) -> None:
        """Called by ``FrameStream.send`` under the send lock."""
        plan = self.plan
        if plan.slow_send_s:
            time.sleep(plan.slow_send_s)
        self.frames += 1
        if (plan.drop_after_frames is not None
                and self.frames > plan.drop_after_frames):
            self.fired = "drop"
            stream.abort()
            raise TransportFaultInjected(
                f"injected connection drop after "
                f"{plan.drop_after_frames} frame(s)")
        if (plan.stall_after_frames is not None
                and self.frames > plan.stall_after_frames):
            self.fired = "stall"
            time.sleep(plan.stall_s)
            raise TransportFaultInjected(
                f"injected {plan.stall_s:.1f}s stall after "
                f"{plan.stall_after_frames} frame(s)")


def parse_transport_fault_spec(spec: str) -> TransportFaultPlan:
    """Parse ``"drop-after=12,stall-after=30,stall=2.5,slow=0.01"``.

    Mirrors :func:`repro.faults.parse_fault_spec` so CLI surfaces
    (``repro.experiments.halo --worker-fault``, ``repro.sim.remote
    --fault``) share one compact syntax.
    """
    kwargs: "dict[str, object]" = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"bad transport fault entry {part!r} "
                             f"(expected key=value)")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "drop-after":
                kwargs["drop_after_frames"] = int(value)
            elif key == "stall-after":
                kwargs["stall_after_frames"] = int(value)
            elif key == "stall":
                kwargs["stall_s"] = float(value)
            elif key == "slow":
                kwargs["slow_send_s"] = float(value)
            else:
                raise ValueError(
                    f"unknown transport fault key {key!r} "
                    f"(known: drop-after, stall-after, stall, slow)")
        except ValueError as exc:
            if "transport fault" in str(exc):
                raise
            raise ValueError(
                f"bad value for transport fault {key!r}: {value!r}"
            ) from None
    return TransportFaultPlan(**kwargs)
