"""Deterministic fault injection + resilience for the simulated stack.

``repro.faults`` splits into declarative schedules (:mod:`~repro.faults.plan`:
what goes wrong, seeded, hashable, cache-key-able), live machinery
(:mod:`~repro.faults.inject`: per-link RNG streams, verdicts, counters),
watchdog policy/diagnostics (:mod:`~repro.faults.watchdog`), and report
invariant checks for degraded runs (:mod:`~repro.faults.checks`).

Entry points: set ``NetworkParams(faults=FaultPlan(...))`` to arm the
fabric, ``MpiConfig(resilience=ResilienceParams())`` to arm ack/retransmit,
and pass ``watchdog=WatchdogConfig(...)`` to ``run_app`` to bound wedged
runs.  ``faults=None`` (the default) is bit-identical to a fault-free
build.  See docs/robustness.md.
"""

from repro.faults.checks import InvariantViolation, check_run_invariants
from repro.faults.inject import FaultInjector, PacketVerdict, StampLoss
from repro.faults.plan import (
    FaultPlan,
    LinkDegradation,
    NicStall,
    ResilienceParams,
    parse_fault_spec,
)
from repro.faults.transport import (
    TransportFaultInjected,
    TransportFaultPlan,
    TransportInjector,
    parse_transport_fault_spec,
)
from repro.faults.watchdog import (
    RankSnapshot,
    WatchdogConfig,
    WatchdogDiagnostic,
    diagnose,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "InvariantViolation",
    "LinkDegradation",
    "NicStall",
    "PacketVerdict",
    "RankSnapshot",
    "ResilienceParams",
    "StampLoss",
    "TransportFaultInjected",
    "TransportFaultPlan",
    "TransportInjector",
    "WatchdogConfig",
    "WatchdogDiagnostic",
    "check_run_invariants",
    "diagnose",
    "parse_fault_spec",
    "parse_transport_fault_spec",
]
