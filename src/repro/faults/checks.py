"""Report invariants that must survive every fault mix.

Under fault injection the ground-truth transfer table no longer predicts
observed timings (that is the point), so the usual bound-vs-truth
validation (``repro.experiments.validation``) does not apply.  What *must*
still hold -- for any drop/dup/reorder/stall/straggler/instrumentation-loss
schedule -- are the structural invariants of the paper's bounds machinery:

* per measure set: ``0 <= min_overlap <= max_overlap <= data_transfer_time``
  and case counts partition the transfer count;
* the size-bin table partitions the totals (bin sums reconstruct them);
* telemetry window snapshots reconstruct the whole-run totals and the
  per-window deltas telescope back to them;
* the cluster rollup (report merge) stays exact: merged totals equal the
  float-ordered sum of the per-rank totals.

:func:`check_run_invariants` walks a :class:`~repro.runtime.launcher.RunResult`
and returns every violation found (or raises).  It is the engine behind
``python -m repro.tools.validate --faults`` and the hypothesis suite.
"""

from __future__ import annotations

import typing

from repro.core.report import OverlapReport, aggregate_reports

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.measures import OverlapMeasures
    from repro.runtime.launcher import RunResult

#: Absolute slack for accumulated-float comparisons.  Individual transfers
#: are admitted with <= 1e-12 slack (see ``OverlapMeasures.add_transfer``);
#: sums of many of them need proportional room.
_ABS_EPS = 1e-9


class InvariantViolation(AssertionError):
    """A degraded run produced a report that breaks the bounds contract."""


def _tol(scale: float) -> float:
    return _ABS_EPS + 1e-9 * abs(scale)


def _check_measures(meas: "OverlapMeasures", where: str, errors: list[str]) -> None:
    m_min, m_max, xfer = meas.min_overlap_time, meas.max_overlap_time, meas.data_transfer_time
    if m_min < -_tol(m_min):
        errors.append(f"{where}: min overlap {m_min} < 0")
    if m_min > m_max + _tol(m_max):
        errors.append(f"{where}: min overlap {m_min} > max overlap {m_max}")
    if m_max > xfer + _tol(xfer):
        errors.append(f"{where}: max overlap {m_max} > transfer time {xfer}")
    if meas.computation_time < 0.0 or meas.communication_call_time < 0.0:
        errors.append(f"{where}: negative interval attribution")
    case_total = sum(meas.case_counts.values())
    if case_total != meas.transfer_count:
        errors.append(
            f"{where}: case counts {meas.case_counts} do not partition "
            f"{meas.transfer_count} transfers"
        )
    # The size-bin table must partition the totals.
    b_count = sum(b.count for b in meas.bins.bins)
    b_xfer = sum(b.xfer_time for b in meas.bins.bins)
    b_min = sum(b.min_overlap for b in meas.bins.bins)
    b_max = sum(b.max_overlap for b in meas.bins.bins)
    if b_count != meas.transfer_count:
        errors.append(f"{where}: bin counts {b_count} != transfers {meas.transfer_count}")
    for name, got, want in (
        ("xfer_time", b_xfer, xfer),
        ("min_overlap", b_min, m_min),
        ("max_overlap", b_max, m_max),
    ):
        if abs(got - want) > _tol(want):
            errors.append(f"{where}: bin {name} sum {got} != total {want}")
    for i, b in enumerate(meas.bins.bins):
        if not (-_tol(b.max_overlap)
                <= b.min_overlap
                <= b.max_overlap + _tol(b.max_overlap)
                <= b.xfer_time + 2.0 * _tol(b.xfer_time)):
            errors.append(
                f"{where}: bin {i} bounds broken "
                f"(min={b.min_overlap} max={b.max_overlap} xfer={b.xfer_time})"
            )


def check_report(report: OverlapReport, errors: list[str] | None = None) -> list[str]:
    """Structural invariants of one per-process report."""
    errors = [] if errors is None else errors
    where = f"rank {report.rank}"
    if report.wall_time < 0.0:
        errors.append(f"{where}: negative wall time {report.wall_time}")
    if report.event_count < 0:
        errors.append(f"{where}: negative event count {report.event_count}")
    _check_measures(report.total, f"{where} total", errors)
    for name, meas in report.sections.items():
        _check_measures(meas, f"{where} section {name!r}", errors)
    return errors


def check_run_invariants(
    result: "RunResult", raise_on_error: bool = True
) -> list[str]:
    """Every structural invariant of one (possibly degraded) run.

    Returns the list of violations found; empty means the run's reports,
    rollup, and telemetry (when collected) are internally consistent.
    With ``raise_on_error`` (the default) a non-empty list raises
    :class:`InvariantViolation` instead.
    """
    errors: list[str] = []
    reports = [r for r in result.reports if r is not None]
    for report in reports:
        check_report(report, errors)

    if reports:
        # Rollup exactness: OverlapMeasures.merge folds rank totals in list
        # order starting from zero, which is float-identical to summing the
        # per-rank fields in that same order.
        merged = aggregate_reports(reports)
        _check_measures(merged, "rollup", errors)
        for field in (
            "data_transfer_time",
            "min_overlap_time",
            "max_overlap_time",
            "computation_time",
            "communication_call_time",
        ):
            expect = 0.0
            for rep in reports:
                expect += getattr(rep.total, field)
            got = getattr(merged, field)
            if got != expect:
                errors.append(f"rollup: merged {field} {got} != exact sum {expect}")
        if merged.transfer_count != sum(r.total.transfer_count for r in reports):
            errors.append("rollup: merged transfer count is not the rank sum")

    telemetry = getattr(result, "telemetry", None)
    if telemetry is not None:
        report_by_rank = {
            rank: rep for rank, rep in enumerate(result.reports) if rep is not None
        }
        for rank_tel in telemetry.per_rank:
            series = rank_tel.series
            rep = report_by_rank.get(rank_tel.rank)
            if rep is None:
                continue
            where = f"rank {rank_tel.rank} telemetry"
            totals = series.totals()
            for field, value in totals.items():
                if value != getattr(rep.total, field):
                    errors.append(
                        f"{where}: window totals {field}={value} != "
                        f"report {getattr(rep.total, field)}"
                    )
            # Per-window deltas must telescope back to the totals.
            rows = series.deltas()
            for field in totals:
                acc = 0.0
                for row in rows:
                    acc += row[field]
                if abs(acc - totals[field]) > _tol(totals[field]):
                    errors.append(
                        f"{where}: window deltas for {field} sum to {acc}, "
                        f"totals say {totals[field]}"
                    )

    if errors and raise_on_error:
        raise InvariantViolation(
            f"{len(errors)} invariant violation(s):\n  " + "\n  ".join(errors)
        )
    return errors
