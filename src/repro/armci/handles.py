"""Non-blocking ARMCI request handles."""

from __future__ import annotations


class NbHandle:
    """Handle returned by ``nbput`` / ``nbget`` / ``nbacc``.

    Completion is observed by draining the local completion queue inside
    some later ARMCI call (``wait``, ``fence``, or any other call that
    polls) -- never asynchronously.
    """

    __slots__ = ("op", "target", "nbytes", "done", "data")

    def __init__(self, op: str, target: int, nbytes: float) -> None:
        self.op = op
        self.target = target
        self.nbytes = nbytes
        self.done = False
        #: For gets: the data read from the target (set at completion).
        self.data: object = None

    def complete(self, data: object = None) -> None:
        if self.done:
            raise RuntimeError(f"{self!r} completed twice")
        self.done = True
        self.data = data

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"<NbHandle {self.op}->{self.target} {self.nbytes}B {state}>"
