"""Launcher for ARMCI applications (mirrors :mod:`repro.runtime.launcher`)."""

from __future__ import annotations

import typing

import numpy as np

from repro.armci.api import ArmciConfig, ArmciEndpoint, Region
from repro.core.monitor import Monitor, NullMonitor
from repro.core.report import OverlapReport
from repro.core.xfer_table import XferTable
from repro.netsim.fabric import Fabric
from repro.netsim.params import NetworkParams
from repro.runtime.launcher import default_xfer_table
from repro.sim import Engine


class ArmciContext:
    """Everything one simulated ARMCI process sees."""

    def __init__(self, engine: Engine, endpoint: ArmciEndpoint) -> None:
        self.engine = engine
        self.armci = endpoint
        self.monitor = endpoint.monitor

    @property
    def rank(self) -> int:
        return self.armci.rank

    @property
    def size(self) -> int:
        return self.armci.size

    @property
    def now(self) -> float:
        return self.engine.now

    def compute(self, seconds: float) -> typing.Generator:
        """Spend user computation time (outside the library)."""
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds!r}")
        if seconds > 0:
            yield self.engine.timeout(seconds)

    def malloc(self, name: str, shape: object, dtype: object = np.float64) -> Region:
        """Create and register this rank's piece of a shared region."""
        return self.armci.register_region(name, np.zeros(shape, dtype=dtype))

    def section(self, name: str):
        return self.monitor.section(name)


class ArmciRunResult:
    """Outcome of one simulated ARMCI job."""

    def __init__(
        self,
        reports: list[OverlapReport | None],
        returns: list[object],
        elapsed: float,
        config: ArmciConfig,
        fabric: Fabric,
    ) -> None:
        self.reports = reports
        self.returns = returns
        self.elapsed = elapsed
        self.config = config
        self.fabric = fabric

    def report(self, rank: int = 0) -> OverlapReport:
        rep = self.reports[rank]
        if rep is None:
            raise ValueError("run was not instrumented")
        return rep


def run_armci_app(
    app: typing.Callable[..., typing.Generator],
    nprocs: int,
    config: ArmciConfig | None = None,
    params: NetworkParams | None = None,
    xfer_table: XferTable | None = None,
    label: str = "",
    app_args: tuple = (),
    metrics: "typing.Any | None" = None,
) -> ArmciRunResult:
    """Run ``app(ctx, *app_args)`` on ``nprocs`` simulated ARMCI ranks.

    ``metrics`` (an optional :class:`~repro.metrics.MetricsRegistry`)
    enables framework self-observability, exactly as in
    :func:`repro.runtime.launcher.run_app`.
    """
    if nprocs < 1:
        raise ValueError("need at least one rank")
    config = config or ArmciConfig()
    params = params or NetworkParams()
    table = xfer_table or default_xfer_table(params)

    engine = Engine()
    if metrics is not None:
        engine.attach_metrics(metrics)
    fabric = Fabric(engine, params, nprocs)
    directory: dict[tuple[int, str], Region] = {}
    monitors: list[Monitor | NullMonitor] = []
    contexts: list[ArmciContext] = []
    for rank in range(nprocs):
        monitor: Monitor | NullMonitor
        if config.instrument:
            monitor = Monitor(
                clock=lambda: engine.now,
                xfer_table=table,
                queue_capacity=config.queue_capacity,
                bin_edges=config.bin_edges,
                metrics=metrics,
                metrics_labels={"rank": str(rank)} if metrics is not None else None,
            )
            # Anchor interval attribution at startup (ARMCI_Init).
            monitor.call_enter("ARMCI_Init")
            monitor.call_exit("ARMCI_Init")
        else:
            monitor = NullMonitor()
        endpoint = ArmciEndpoint(engine, fabric, rank, nprocs, config, monitor, directory)
        monitors.append(monitor)
        contexts.append(ArmciContext(engine, endpoint))

    finish_times = [0.0] * nprocs
    returns: list[object] = [None] * nprocs

    def rank_main(rank: int) -> typing.Generator:
        result = yield from app(contexts[rank], *app_args)
        yield from contexts[rank].armci.finalize()
        finish_times[rank] = engine.now
        returns[rank] = result
        return result

    procs = [engine.process(rank_main(rank)) for rank in range(nprocs)]
    engine.run()
    stuck = [p for p in procs if p.is_alive]
    if stuck:
        raise RuntimeError(
            f"deadlock: {len(stuck)} ARMCI rank(s) never finished"
        )
    reports: list[OverlapReport | None] = []
    for rank, monitor in enumerate(monitors):
        if isinstance(monitor, Monitor):
            reports.append(monitor.finalize(rank=rank, label=label))
        else:
            reports.append(None)
    return ArmciRunResult(reports, returns, max(finish_times), config, fabric)
