"""Simulated ARMCI: one-sided remote memory access (paper Sec. 4.4).

ARMCI "focuses on one-sided communication, which does not require explicit
coordination of sender and receiver, and is inherently non-blocking".  On
the simulated fabric its operations map directly onto RDMA verbs:

* ``put`` / ``nbput``  -> RDMA Write into the target's registered region;
* ``get`` / ``nbget``  -> RDMA Read from the target's region;
* ``acc`` / ``nbacc``  -> accumulate: an RDMA Write plus a (modeled)
  target-side combine;
* ``wait`` / ``wait_all`` / ``fence`` -- completion and ordering;
* ``barrier`` / ``msg_allreduce`` -- the small message layer real ARMCI
  applications use alongside RMA.

Because a non-blocking ARMCI transfer is pure NIC DMA after the post, the
instrumentation sees ``XFER_BEGIN`` inside the posting call and
``XFER_END`` in a later ``wait`` -- bounding case 2 with all interleaved
computation available for overlap.  That is why the paper's non-blocking
MG code reports ~99% maximum overlap (Fig. 19).
"""

from repro.armci.api import ArmciConfig, ArmciEndpoint, Region
from repro.armci.handles import NbHandle
from repro.armci.runtime import ArmciContext, ArmciRunResult, run_armci_app
from repro.armci.strided import StridedSpec

__all__ = [
    "ArmciConfig",
    "ArmciContext",
    "ArmciEndpoint",
    "ArmciRunResult",
    "NbHandle",
    "Region",
    "StridedSpec",
    "run_armci_app",
]
