"""ARMCI endpoint: one-sided RMA calls + the small message layer.

Every public call is one instrumented library call.  RMA data transfers
stamp ``XFER_BEGIN`` at the descriptor post and ``XFER_END`` when the
completion-queue entry is drained; the message layer (barrier /
allreduce), like MPI control packets, moves no user-message bytes and is
not stamped with XFER events.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

import numpy as np

from repro.armci.handles import NbHandle
from repro.core.measures import DEFAULT_BIN_EDGES
from repro.core.monitor import Monitor, NullMonitor
from repro.netsim.fabric import Fabric
from repro.netsim.nic import InboundPacket

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.armci.strided import StridedSpec
from repro.sim import Engine


@dataclasses.dataclass(frozen=True)
class ArmciConfig:
    """Tunables of the simulated ARMCI library."""

    name: str = "armci"
    instrument: bool = True
    overhead_per_event: float = 25e-9
    queue_capacity: int = 4096
    bin_edges: tuple[float, ...] = DEFAULT_BIN_EDGES

    def __post_init__(self) -> None:
        if self.overhead_per_event < 0:
            raise ValueError("overhead_per_event must be non-negative")


class Region(typing.NamedTuple):
    """A remotely accessible memory region owned by one rank."""

    owner: int
    name: str
    array: np.ndarray


class _MsgPacket(typing.NamedTuple):
    """Small message-layer payload (barrier tokens, reduction pieces)."""

    tag: int
    value: object


class ArmciError(RuntimeError):
    """Raised on misuse of the simulated ARMCI API."""


class ArmciEndpoint:
    """One rank's ARMCI library instance."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        rank: int,
        size: int,
        config: ArmciConfig,
        monitor: "Monitor | NullMonitor",
        directory: dict[tuple[int, str], Region],
    ) -> None:
        self.engine = engine
        self.fabric = fabric
        self.params = fabric.params
        self.rank = rank
        self.size = size
        self.config = config
        self.monitor = monitor
        self.nic = fabric.nic(rank)
        #: Cluster-wide region directory (shared object, read-only use).
        self.directory = directory
        #: Outstanding non-blocking handles (for fence / finalize).
        self.outstanding: list[NbHandle] = []
        #: Message-layer mailbox: tag -> FIFO of (src, value).
        self._mailbox: dict[int, collections.deque] = {}
        self._msg_seq = 0
        self.pending_local = 0

    # -- region management ------------------------------------------------
    def register_region(self, name: str, array: np.ndarray) -> Region:
        """Expose ``array`` for remote access under ``name`` (collective in
        spirit: every rank registers its own piece)."""
        key = (self.rank, name)
        if key in self.directory:
            raise ArmciError(f"region {name!r} already registered on rank {self.rank}")
        region = Region(self.rank, name, array)
        self.directory[key] = region
        return region

    def region_of(self, owner: int, name: str) -> Region:
        try:
            return self.directory[(owner, name)]
        except KeyError:
            raise ArmciError(f"no region {name!r} on rank {owner}") from None

    # -- call demarcation -----------------------------------------------------
    def _call(self, name: str, body: typing.Generator) -> typing.Generator:
        mon = self.monitor
        n0 = mon.event_count
        mon.call_enter(name)
        result = yield from body
        stamped = mon.event_count - n0
        if stamped:
            debt = (stamped + 1) * self.config.overhead_per_event
            if debt > 0:
                yield self.engine.timeout(debt)
        mon.call_exit(name)
        return result

    # -- progress ---------------------------------------------------------------
    def poll(self) -> typing.Generator:
        """Drain CQ entries and message-layer packets (polling progress)."""
        yield self.engine.timeout(self.params.poll_cost)
        progressed = False
        while self.nic.cq or self.nic.inbound:
            progressed = True
            yield self.engine.timeout(self.params.poll_cost)
            if self.nic.cq:
                entry = self.nic.cq.popleft()
                if entry.context is not None:
                    result = entry.context()
                    if result is not None:
                        yield from result
            else:
                pkt = typing.cast(InboundPacket, self.nic.inbound.popleft())
                msg = typing.cast(_MsgPacket, pkt.payload)
                self._mailbox.setdefault(msg.tag, collections.deque()).append(
                    (pkt.src_node, msg.value)
                )
        return progressed

    def progress_until(self, pred: typing.Callable[[], bool]) -> typing.Generator:
        while not pred():
            progressed = yield from self.poll()
            if pred():
                break
            if not progressed:
                yield self.nic.wait_activity()

    # -- RMA bodies (shared by blocking and non-blocking forms) -----------------
    def _check_target(self, target: int) -> None:
        if not 0 <= target < self.size:
            raise ArmciError(f"target rank {target} out of range")
        if target == self.rank:
            raise ArmciError("local RMA should use plain memory access")

    def _track(self, handle: NbHandle) -> None:
        self.outstanding.append(handle)

    def _nbput_body(
        self, target: int, region: str, offset: int, data: np.ndarray | None,
        nbytes: float | None, accumulate: bool,
    ) -> typing.Generator:
        self._check_target(target)
        if data is None and nbytes is None:
            raise ArmciError("need data or an explicit byte count")
        size = float(data.nbytes) if data is not None else float(nbytes)  # type: ignore[union-attr]
        yield from self.poll()  # opportunistic progress on entry
        yield self.engine.timeout(self.params.post_cost)
        handle = NbHandle("acc" if accumulate else "put", target, size)
        xid = self.monitor.xfer_begin(size)
        snapshot = data.copy() if data is not None else None
        self.pending_local += 1

        def on_done() -> None:
            self.pending_local -= 1
            self.monitor.xfer_end(xid, size)
            if snapshot is not None:
                dest = self.region_of(target, region).array
                view = dest.reshape(-1)[offset : offset + snapshot.size]
                if accumulate:
                    view += snapshot.reshape(-1)
                else:
                    view[:] = snapshot.reshape(-1)
            handle.complete()

        self.nic.post_rdma_write(self.fabric.nic(target), size, context=on_done)
        self._track(handle)
        return handle

    def _nbget_body(
        self, target: int, region: str, offset: int, count: int | None,
        nbytes: float | None,
    ) -> typing.Generator:
        self._check_target(target)
        if count is None and nbytes is None:
            raise ArmciError("need an element count or an explicit byte count")
        if count is not None:
            src = self.region_of(target, region).array
            size = float(src.dtype.itemsize * count)
        else:
            size = float(nbytes)  # type: ignore[arg-type]
        yield from self.poll()
        yield self.engine.timeout(self.params.post_cost)
        handle = NbHandle("get", target, size)
        xid = self.monitor.xfer_begin(size)
        self.pending_local += 1

        def on_done() -> None:
            self.pending_local -= 1
            self.monitor.xfer_end(xid, size)
            data = None
            if count is not None:
                src_arr = self.region_of(target, region).array
                data = src_arr.reshape(-1)[offset : offset + count].copy()
            handle.complete(data)

        self.nic.post_rdma_read(self.fabric.nic(target), size, context=on_done)
        self._track(handle)
        return handle

    def _wait_body(self, handle: NbHandle) -> typing.Generator:
        yield from self.progress_until(lambda: handle.done)
        if handle in self.outstanding:
            self.outstanding.remove(handle)
        return handle.data

    # -- public API ---------------------------------------------------------------
    def nbput(
        self, target: int, region: str, data: np.ndarray | None = None,
        offset: int = 0, nbytes: float | None = None,
    ) -> typing.Generator:
        """Non-blocking put; returns an :class:`NbHandle`."""
        return (
            yield from self._call(
                "ARMCI_NbPut", self._nbput_body(target, region, offset, data, nbytes, False)
            )
        )

    def put(
        self, target: int, region: str, data: np.ndarray | None = None,
        offset: int = 0, nbytes: float | None = None,
    ) -> typing.Generator:
        """Blocking put (returns when remotely complete)."""

        def body() -> typing.Generator:
            handle = yield from self._nbput_body(target, region, offset, data, nbytes, False)
            yield from self._wait_body(handle)

        return (yield from self._call("ARMCI_Put", body()))

    def nbacc(
        self, target: int, region: str, data: np.ndarray,
        offset: int = 0,
    ) -> typing.Generator:
        """Non-blocking accumulate (elementwise add into the remote region)."""
        return (
            yield from self._call(
                "ARMCI_NbAcc", self._nbput_body(target, region, offset, data, None, True)
            )
        )

    def acc(
        self, target: int, region: str, data: np.ndarray, offset: int = 0
    ) -> typing.Generator:
        """Blocking accumulate."""

        def body() -> typing.Generator:
            handle = yield from self._nbput_body(target, region, offset, data, None, True)
            yield from self._wait_body(handle)

        return (yield from self._call("ARMCI_Acc", body()))

    def nbget(
        self, target: int, region: str, offset: int = 0,
        count: int | None = None, nbytes: float | None = None,
    ) -> typing.Generator:
        """Non-blocking get; the handle's ``data`` is filled at completion."""
        return (
            yield from self._call(
                "ARMCI_NbGet", self._nbget_body(target, region, offset, count, nbytes)
            )
        )

    def get(
        self, target: int, region: str, offset: int = 0,
        count: int | None = None, nbytes: float | None = None,
    ) -> typing.Generator:
        """Blocking get; returns the data (or None in size-only mode)."""

        def body() -> typing.Generator:
            handle = yield from self._nbget_body(target, region, offset, count, nbytes)
            data = yield from self._wait_body(handle)
            return data

        return (yield from self._call("ARMCI_Get", body()))

    def wait(self, handle: NbHandle) -> typing.Generator:
        """Complete one non-blocking operation; returns get data if any."""
        return (yield from self._call("ARMCI_Wait", self._wait_body(handle)))

    def wait_all(self, handles: typing.Sequence[NbHandle]) -> typing.Generator:
        """Complete several non-blocking operations."""

        def body() -> typing.Generator:
            yield from self.progress_until(lambda: all(h.done for h in handles))
            for h in handles:
                if h in self.outstanding:
                    self.outstanding.remove(h)

        return (yield from self._call("ARMCI_WaitAll", body()))

    def fence(self, target: int | None = None) -> typing.Generator:
        """Complete all outstanding operations (to ``target``, or all)."""

        def body() -> typing.Generator:
            pending = [
                h
                for h in self.outstanding
                if target is None or h.target == target
            ]
            yield from self.progress_until(lambda: all(h.done for h in pending))
            for h in pending:
                self.outstanding.remove(h)

        return (yield from self._call("ARMCI_Fence", body()))

    # -- strided RMA (ARMCI_PutS / ARMCI_GetS) --------------------------------------
    def nbput_strided(
        self, target: int, region: str, spec: "StridedSpec",
        data: np.ndarray | None = None, strategy: str = "auto",
    ) -> typing.Generator:
        """Non-blocking strided put; one handle covers all segments."""
        from repro.armci import strided as _strided

        return (
            yield from self._call(
                "ARMCI_NbPutS",
                _strided.nbput_strided(self, target, region, spec, data, strategy),
            )
        )

    def put_strided(
        self, target: int, region: str, spec: "StridedSpec",
        data: np.ndarray | None = None, strategy: str = "auto",
    ) -> typing.Generator:
        """Blocking strided put."""
        from repro.armci import strided as _strided

        def body() -> typing.Generator:
            handle = yield from _strided.nbput_strided(
                self, target, region, spec, data, strategy
            )
            yield from self._wait_body(handle)

        return (yield from self._call("ARMCI_PutS", body()))

    def nbget_strided(
        self, target: int, region: str, spec: "StridedSpec",
        want_data: bool = False, strategy: str = "auto",
    ) -> typing.Generator:
        """Non-blocking strided get; handle.data receives packed segments."""
        from repro.armci import strided as _strided

        return (
            yield from self._call(
                "ARMCI_NbGetS",
                _strided.nbget_strided(self, target, region, spec, want_data, strategy),
            )
        )

    def get_strided(
        self, target: int, region: str, spec: "StridedSpec",
        want_data: bool = False, strategy: str = "auto",
    ) -> typing.Generator:
        """Blocking strided get; returns the packed segments (or None)."""
        from repro.armci import strided as _strided

        def body() -> typing.Generator:
            handle = yield from _strided.nbget_strided(
                self, target, region, spec, want_data, strategy
            )
            data = yield from self._wait_body(handle)
            return data

        return (yield from self._call("ARMCI_GetS", body()))

    # -- message layer -------------------------------------------------------------
    def _msg_send(self, dest: int, tag: int, value: object) -> typing.Generator:
        yield self.engine.timeout(self.params.post_cost)
        self.nic.post_send(
            self.fabric.nic(dest),
            self.params.control_packet_size,
            _MsgPacket(tag, value),
            context=None,
        )

    def _msg_recv(self, tag: int) -> typing.Generator:
        box = self._mailbox.setdefault(tag, collections.deque())
        yield from self.progress_until(lambda: bool(box))
        _src, value = box.popleft()
        return value

    def barrier(self) -> typing.Generator:
        """Dissemination barrier over the message layer."""

        def body() -> typing.Generator:
            self._msg_seq += 1
            base = self._msg_seq * 64
            dist, k = 1, 0
            while dist < self.size:
                yield from self._msg_send((self.rank + dist) % self.size, base + k, None)
                yield from self._msg_recv(base + k)
                dist <<= 1
                k += 1

        return (yield from self._call("armci_msg_barrier", body()))

    def msg_allreduce(
        self,
        value: object,
        op: typing.Callable[[object, object], object] = lambda a, b: a + b,
    ) -> typing.Generator:
        """Small allreduce over the message layer (binomial reduce to rank 0
        followed by a binomial broadcast; correct for any rank count)."""

        def body() -> typing.Generator:
            self._msg_seq += 1
            base = self._msg_seq * 64
            size, rank = self.size, self.rank
            acc = value
            # Reduce to rank 0.
            mask = 1
            while mask < size:
                if rank & mask == 0:
                    peer = rank | mask
                    if peer < size:
                        other = yield from self._msg_recv(base + 0)
                        acc = op(acc, other)
                else:
                    yield from self._msg_send(rank & ~mask, base + 0, acc)
                    break
                mask <<= 1
            # Broadcast the result.
            mask = 1
            while mask < size:
                if rank & mask:
                    acc = yield from self._msg_recv(base + 1)
                    break
                mask <<= 1
            mask >>= 1
            while mask > 0:
                if rank & mask == 0 and rank + mask < size and (rank % (mask * 2) == 0):
                    yield from self._msg_send(rank + mask, base + 1, acc)
                mask >>= 1
            return acc

        return (yield from self._call("armci_msg_gop", body()))

    def finalize(self) -> typing.Generator:
        """Drain everything outstanding (end-of-run)."""

        def body() -> typing.Generator:
            yield from self.progress_until(
                lambda: all(h.done for h in self.outstanding)
                and self.pending_local == 0
                and not self.nic.cq
                and not self.nic.inbound
            )
            self.outstanding.clear()

        return (yield from self._call("ARMCI_Finalize", body()))
