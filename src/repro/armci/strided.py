"""Strided RMA transfers (ARMCI_PutS / ARMCI_GetS).

ARMCI's distinguishing API is multi-dimensional strided transfer: a ghost
face of a 3-D array is a set of equally spaced segments, not one
contiguous block.  Two wire strategies exist, both modeled here:

* ``packed`` -- copy the segments into a contiguous bounce buffer (host
  memcpy cost), ship one message, unpack remotely (the remote unpack cost
  is borne by the NIC/host at delivery; we charge it to the wire-time
  side as a copy at completion).  One descriptor, one latency; wins for
  many small segments.
* ``direct`` -- one RDMA operation per segment; zero copies, but one
  descriptor post and one wire latency per segment; wins for a few large
  segments.

``auto`` picks by a crossover heuristic, as real ARMCI does.  The
instrumentation counts the whole strided transfer as one data-transfer
operation of the total payload size (segments of one ghost face move as
one logical message; control/packing is not user payload).
"""

from __future__ import annotations

import typing

import numpy as np

from repro.armci.handles import NbHandle

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.armci.api import ArmciEndpoint

#: Wire strategies.
PACKED = "packed"
DIRECT = "direct"
AUTO = "auto"

#: ``auto`` packs when segments are smaller than this (bytes).
PACK_THRESHOLD = 16 * 1024


class StridedSpec(typing.NamedTuple):
    """A strided region: ``count`` segments of ``seg_nbytes`` bytes,
    ``stride`` bytes apart, starting at ``offset`` (element units are
    bytes here; the data path uses element offsets computed from these)."""

    offset: int
    seg_nbytes: float
    stride: int
    count: int

    @property
    def total_nbytes(self) -> float:
        return self.seg_nbytes * self.count


def choose_strategy(spec: StridedSpec, strategy: str) -> str:
    """Resolve ``auto`` to packed/direct by segment size."""
    if strategy == AUTO:
        return PACKED if spec.seg_nbytes < PACK_THRESHOLD else DIRECT
    if strategy not in (PACKED, DIRECT):
        raise ValueError(f"unknown strided strategy {strategy!r}")
    return strategy


def nbput_strided(
    ep: "ArmciEndpoint",
    target: int,
    region: str,
    spec: StridedSpec,
    data: np.ndarray | None = None,
    strategy: str = AUTO,
) -> typing.Generator:
    """Non-blocking strided put; returns one :class:`NbHandle` covering
    all segments.  ``data`` (if given) holds ``count * seg_elems``
    elements, segment-major."""
    ep._check_target(target)
    resolved = choose_strategy(spec, strategy)
    total = spec.total_nbytes
    yield from ep.poll()
    handle = NbHandle("puts", target, total)
    snapshot = data.copy() if data is not None else None

    def place_segments() -> None:
        if snapshot is None:
            return
        dest = ep.region_of(target, region).array.reshape(-1)
        itemsize = dest.dtype.itemsize
        seg_elems = int(spec.seg_nbytes // itemsize)
        stride_elems = spec.stride // itemsize
        start = spec.offset // itemsize
        flat = snapshot.reshape(-1)
        for seg in range(spec.count):
            lo = start + seg * stride_elems
            dest[lo : lo + seg_elems] = flat[seg * seg_elems : (seg + 1) * seg_elems]

    if resolved == PACKED:
        # Pack into a contiguous buffer, one wire message.
        yield ep.engine.timeout(ep.params.copy_time(total))
        yield ep.engine.timeout(ep.params.post_cost)
        xid = ep.monitor.xfer_begin(total)
        ep.pending_local += 1

        def on_done() -> None:
            ep.pending_local -= 1
            ep.monitor.xfer_end(xid, total)
            place_segments()
            handle.complete()

        ep.nic.post_rdma_write(ep.fabric.nic(target), total, context=on_done)
    else:
        # One RDMA write per segment; completion when the last one lands.
        xid = ep.monitor.xfer_begin(total)
        remaining = [spec.count]
        for _seg in range(spec.count):
            yield ep.engine.timeout(ep.params.post_cost)
            ep.pending_local += 1

            def on_seg_done() -> None:
                ep.pending_local -= 1
                remaining[0] -= 1
                if remaining[0] == 0:
                    ep.monitor.xfer_end(xid, total)
                    place_segments()
                    handle.complete()

            ep.nic.post_rdma_write(
                ep.fabric.nic(target), spec.seg_nbytes, context=on_seg_done
            )
    ep._track(handle)
    return handle


def nbget_strided(
    ep: "ArmciEndpoint",
    target: int,
    region: str,
    spec: StridedSpec,
    want_data: bool = False,
    strategy: str = AUTO,
) -> typing.Generator:
    """Non-blocking strided get; the handle's ``data`` (if requested)
    receives the segments packed contiguously."""
    ep._check_target(target)
    resolved = choose_strategy(spec, strategy)
    total = spec.total_nbytes
    yield from ep.poll()
    handle = NbHandle("gets", target, total)

    def gather_segments() -> np.ndarray | None:
        if not want_data:
            return None
        src = ep.region_of(target, region).array.reshape(-1)
        itemsize = src.dtype.itemsize
        seg_elems = int(spec.seg_nbytes // itemsize)
        stride_elems = spec.stride // itemsize
        start = spec.offset // itemsize
        parts = [
            src[start + seg * stride_elems : start + seg * stride_elems + seg_elems]
            for seg in range(spec.count)
        ]
        return np.concatenate(parts) if parts else np.empty(0, dtype=src.dtype)

    if resolved == PACKED:
        # Target-side pack is modeled as a remote copy folded into one
        # read of the packed buffer (server-assisted pack).
        yield ep.engine.timeout(ep.params.post_cost)
        xid = ep.monitor.xfer_begin(total)
        ep.pending_local += 1

        def on_done() -> None:
            ep.pending_local -= 1
            ep.monitor.xfer_end(xid, total)
            handle.complete(gather_segments())

        ep.nic.post_rdma_read(ep.fabric.nic(target), total, context=on_done)
    else:
        xid = ep.monitor.xfer_begin(total)
        remaining = [spec.count]
        for _seg in range(spec.count):
            yield ep.engine.timeout(ep.params.post_cost)
            ep.pending_local += 1

            def on_seg_done() -> None:
                ep.pending_local -= 1
                remaining[0] -= 1
                if remaining[0] == 0:
                    ep.monitor.xfer_end(xid, total)
                    handle.complete(gather_segments())

            ep.nic.post_rdma_read(
                ep.fabric.nic(target), spec.seg_nbytes, context=on_seg_done
            )
    ep._track(handle)
    return handle
