"""Cluster-wide rollup of per-rank telemetry files.

The paper keeps aggregation strictly post-processing ("the reported
information only characterizes the local process communication activity");
this module scales that step to any rank count: files are streamed one at
a time, and the per-window cross-rank statistics use constant memory per
window (running min/max/sum plus a bounded deterministic reservoir for
percentiles -- exact whenever ``nranks <= sample_cap``).

Rank series may have diverged in window width (the bounded ring coalesces
independently per rank); since every width is ``base_width * 2**k`` on the
shared grid anchored at t=0, finer series are losslessly resampled onto
the rollup grid (see :meth:`WindowSeries.resample`).
"""

from __future__ import annotations

import json
import os
import typing

from repro.core.report import OverlapReport
from repro.telemetry.windows import WINDOW_METRICS, WindowSeries

ROLLUP_FORMAT_VERSION = 1

#: Percentiles reported per (window, metric) across ranks.
QUANTILES = (0.25, 0.5, 0.75, 0.95)

#: Report totals summarized in the rank-imbalance table.
IMBALANCE_METRICS = (
    "wall_time",
    "communication_call_time",
    "computation_time",
    "data_transfer_time",
    "min_overlap_time",
    "max_overlap_time",
)


class StreamStats:
    """Constant-memory accumulator: moments, extrema, bounded reservoir."""

    __slots__ = ("count", "total", "min", "max", "argmin", "argmax",
                 "samples", "_cap", "_lcg")

    def __init__(self, sample_cap: int = 128) -> None:
        if sample_cap < 1:
            raise ValueError("sample_cap must be >= 1")
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.argmin = -1
        self.argmax = -1
        self.samples: list[float] = []
        self._cap = sample_cap
        # Deterministic LCG for reservoir replacement (reproducible output
        # without perturbing any global RNG state).
        self._lcg = 0x2545F491

    def add(self, value: float, tag: int = -1) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min, self.argmin = value, tag
        if value > self.max:
            self.max, self.argmax = value, tag
        if len(self.samples) < self._cap:
            self.samples.append(value)
        else:
            # Algorithm R with a deterministic LCG: keep each seen value
            # with probability cap/count.
            self._lcg = (self._lcg * 1103515245 + 12345) & 0x7FFFFFFF
            slot = self._lcg % self.count
            if slot < self._cap:
                self.samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float, pad_zeros_to: int = 0) -> float:
        """Nearest-rank quantile over the reservoir.

        ``pad_zeros_to``: treat the population as having that many members,
        the missing ones being zero (ranks whose series ended early
        contribute empty windows).
        """
        values = sorted(self.samples)
        missing = max(0, min(pad_zeros_to, self._cap) - len(values))
        if missing:
            values = [0.0] * missing + values
        if not values:
            return 0.0
        idx = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
        return values[idx]


class ClusterRollup:
    """Streaming merger of per-rank reports + window series."""

    def __init__(self, width: float, sample_cap: int = 128) -> None:
        if width <= 0:
            raise ValueError(f"rollup grid width must be positive, got {width}")
        self.width = float(width)
        self.sample_cap = sample_cap
        self.nranks = 0
        self.labels: set[str] = set()
        #: Merged whole-run report (totals, sections, call stats).
        self.totals: OverlapReport | None = None
        #: window index -> metric -> cross-rank stats of per-window deltas.
        self._windows: dict[int, dict[str, StreamStats]] = {}
        #: report metric -> cross-rank stats of per-rank totals.
        self._imbalance: dict[str, StreamStats] = {
            m: StreamStats(sample_cap) for m in IMBALANCE_METRICS
        }

    # -- intake -------------------------------------------------------------
    def add_rank(self, report: OverlapReport, series: WindowSeries) -> None:
        """Fold one rank in; forgets the rank's data before returning."""
        if series.width > self.width * (1 + 1e-12):
            raise ValueError(
                f"series width {series.width} is coarser than the rollup "
                f"grid {self.width}; build the rollup on the coarsest width"
            )
        self.nranks += 1
        if report.label:
            self.labels.add(report.label)
        # Whole-run totals: OverlapReport.merge on a private copy.
        copy = OverlapReport.from_dict(report.to_dict())
        if self.totals is None:
            self.totals = copy
        else:
            self.totals.merge(copy)
        # Imbalance streams over per-rank run totals.
        rank = report.rank
        self._imbalance["wall_time"].add(report.wall_time, rank)
        m = report.total
        for name in IMBALANCE_METRICS:
            if name == "wall_time":
                continue
            self._imbalance[name].add(getattr(m, name), rank)
        # Per-window percentile streams.
        aligned = series.resample(self.width)
        for i, row in enumerate(aligned.deltas()):
            stats = self._windows.get(i)
            if stats is None:
                stats = self._windows[i] = {
                    name: StreamStats(self.sample_cap) for name in WINDOW_METRICS
                }
            for name in WINDOW_METRICS:
                stats[name].add(row[name], rank)

    def add_file(self, path: "str | os.PathLike") -> None:
        """Stream one per-rank telemetry file (report + series)."""
        report, series = load_rank_telemetry(path)
        self.add_rank(report, series)

    # -- output -------------------------------------------------------------
    def result(self) -> dict[str, object]:
        """The rollup as a plain-data payload (JSON-ready)."""
        if self.totals is None:
            raise ValueError("no ranks added to the rollup")
        windows = []
        for i in sorted(self._windows):
            stats = self._windows[i]
            windows.append({
                "index": i,
                "start": i * self.width,
                "end": (i + 1) * self.width,
                "metrics": {
                    name: {
                        "min": 0.0 if st.count < self.nranks else st.min,
                        "max": st.max if st.count else 0.0,
                        "mean": st.total / self.nranks,
                        **{
                            f"p{int(q * 100)}": st.quantile(q, self.nranks)
                            for q in QUANTILES
                        },
                    }
                    for name, st in stats.items()
                },
            })
        imbalance = {}
        for name, st in self._imbalance.items():
            mean = st.mean
            imbalance[name] = {
                "min": st.min if st.count else 0.0,
                "max": st.max if st.count else 0.0,
                "mean": mean,
                "max_over_mean": (st.max / mean) if mean > 0 else 0.0,
                "max_rank": st.argmax,
                "min_rank": st.argmin,
            }
        return {
            "format_version": ROLLUP_FORMAT_VERSION,
            "nranks": self.nranks,
            "labels": sorted(self.labels),
            "window_width": self.width,
            "totals": self.totals.to_dict(),
            "windows": windows,
            "imbalance": imbalance,
        }

    def save(self, path: "str | os.PathLike") -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.result(), fh, indent=1)

    def render_text(self) -> str:
        """Terminal summary: totals, imbalance table, window count."""
        res = self.result()
        totals = typing.cast("dict", res["totals"])["total"]
        lines = [
            f"cluster rollup: {res['nranks']} ranks, "
            f"{len(typing.cast('list', res['windows']))} windows of "
            f"{typing.cast('float', res['window_width']) * 1e3:.3g} ms",
            f"  data transfer time   {totals['data_transfer_time']:.6f} s",
            f"  overlap bounds       [{totals['min_overlap_time']:.6f}, "
            f"{totals['max_overlap_time']:.6f}] s",
            f"  computation time     {totals['computation_time']:.6f} s",
            f"  comm call time       {totals['communication_call_time']:.6f} s",
            "  rank imbalance (max/mean):",
        ]
        for name, row in typing.cast("dict[str, dict]", res["imbalance"]).items():
            lines.append(
                f"    {name:<26} {row['max_over_mean']:>6.3f}"
                f"  (max {row['max']:.6f} s @ rank {row['max_rank']})"
            )
        return "\n".join(lines)


# -- per-rank file layout -----------------------------------------------------
RANK_FILE_FORMAT_VERSION = 1


def save_rank_telemetry(
    path: "str | os.PathLike", report: OverlapReport, series: WindowSeries
) -> None:
    """Write one rank's telemetry file (report + window series)."""
    payload = {
        "format_version": RANK_FILE_FORMAT_VERSION,
        "rank": report.rank,
        "report": report.to_dict(),
        "series": series.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)


def load_rank_telemetry(
    path: "str | os.PathLike",
) -> tuple[OverlapReport, WindowSeries]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("format_version") != RANK_FILE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported rank telemetry format {data.get('format_version')!r}"
        )
    return (
        OverlapReport.from_dict(data["report"]),
        WindowSeries.from_dict(data["series"]),
    )


def rollup_files(
    paths: typing.Sequence["str | os.PathLike"], sample_cap: int = 128
) -> ClusterRollup:
    """Two-pass streaming rollup: scan widths, then merge on the coarsest.

    Memory stays bounded by one rank file at a time plus the per-window
    accumulators -- independent of rank count.
    """
    if not paths:
        raise ValueError("no telemetry files to roll up")
    width = 0.0
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        width = max(width, float(data["series"]["width"]))
    rollup = ClusterRollup(width, sample_cap=sample_cap)
    for path in paths:
        rollup.add_file(path)
    return rollup
