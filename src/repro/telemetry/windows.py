"""Windowed collection: time-resolved overlap measures on a bounded ring.

The paper's processor reports one aggregate per process for the whole run.
This module adds a *time-resolved* view without giving up the paper's
bounded-memory, no-tracing ethos: :class:`WindowedProcessor` extends
:class:`~repro.core.processor.DataProcessor` with fixed simulated-time
windows and snapshots the cumulative :class:`OverlapMeasures` totals at
every window boundary.

Design rules (see ``docs/telemetry.md``):

* **Cumulative snapshots, not per-window accumulators.**  A window stores
  the cumulative totals *at its close*; its per-window delta is derived by
  subtraction on demand.  Because the last window's snapshot is literally
  the processor's final totals, the reconstruction invariant

      sum of window deltas  ==  whole-run totals

  holds to **exact float equality** (the telescoping sum cancels by
  construction), and coalescing adjacent windows is lossless (drop the
  intermediate snapshot).
* **Event-quantized attribution.**  An interval or transfer lands wholly
  in the window containing the event that closes it; nothing is split at
  boundaries.  This keeps the per-event cost at one comparison and is what
  makes the invariant exact.
* **Bounded ring.**  When the window count reaches ``max_windows``,
  adjacent pairs are merged and the window width doubles -- constant
  memory for any run length, like an adaptive histogram.

Windows are anchored at simulated time zero: window ``i`` of a series with
width ``w`` spans ``(i*w, (i+1)*w]``.  All ranks of a run therefore share
grid alignment, which is what lets the cluster rollup re-bucket series
whose widths diverged through coalescing (widths are always
``base_width * 2**k``).
"""

from __future__ import annotations

import json
import os
import typing

from repro.core.measures import DEFAULT_BIN_EDGES
from repro.core.processor import DataProcessor

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.xfer_table import XferTable

#: The five whole-run measures that get a time-resolved series, in the
#: order they appear in each window's cumulative snapshot.
WINDOW_METRICS: tuple[str, ...] = (
    "data_transfer_time",
    "min_overlap_time",
    "max_overlap_time",
    "computation_time",
    "communication_call_time",
)

#: Default window width (simulated seconds).  Deliberately fine: the
#: coalescing ring widens it automatically on long runs.
DEFAULT_WINDOW_WIDTH = 1e-4

#: Default ring capacity (must be even; pairs merge on overflow).
DEFAULT_MAX_WINDOWS = 256

SERIES_FORMAT_VERSION = 1


class Window(typing.NamedTuple):
    """Cumulative state snapshot at one window close.

    ``cum`` holds the five :data:`WINDOW_METRICS` values; ``transfers`` is
    the cumulative resolved-transfer count; ``active`` and
    ``pending_xfer_time`` describe transfers still in flight at the close
    (count, and the sum of their a-priori transfer times) -- used by the
    windowed ground-truth bound check.
    """

    cum: tuple[float, float, float, float, float]
    transfers: int
    active: int
    pending_xfer_time: float


_ZERO_CUM = (0.0, 0.0, 0.0, 0.0, 0.0)


class WindowSeries:
    """An immutable per-rank time series of windowed overlap measures."""

    def __init__(
        self,
        width: float,
        windows: typing.Sequence[Window],
        rank: int = -1,
        label: str = "",
        base_width: float | None = None,
    ) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive, got {width}")
        self.width = float(width)
        self.windows = list(windows)
        self.rank = rank
        self.label = label
        #: The pre-coalescing width the series was collected with.
        self.base_width = float(base_width) if base_width else self.width

    def __len__(self) -> int:
        return len(self.windows)

    # -- geometry -----------------------------------------------------------
    def start(self, i: int) -> float:
        """Window ``i`` spans ``(start(i), end(i)]`` in simulated seconds."""
        return i * self.width

    def end(self, i: int) -> float:
        return (i + 1) * self.width

    # -- values -------------------------------------------------------------
    def totals(self) -> dict[str, float]:
        """Whole-run totals reconstructed from the windows.

        Bit-identical to the finalized processor's ``total`` fields: the
        last window's snapshot *is* those floats.
        """
        cum = self.windows[-1].cum if self.windows else _ZERO_CUM
        return dict(zip(WINDOW_METRICS, cum))

    @property
    def total_transfers(self) -> int:
        return self.windows[-1].transfers if self.windows else 0

    def cum_at(self, i: int) -> tuple[float, ...]:
        """Cumulative metric values at the close of window ``i``."""
        return self.windows[i].cum

    def delta(self, i: int) -> dict[str, float]:
        """Per-window metric deltas (each rounded to <= 1 ulp of the cum)."""
        prev = self.windows[i - 1].cum if i > 0 else _ZERO_CUM
        cur = self.windows[i].cum
        return {m: cur[j] - prev[j] for j, m in enumerate(WINDOW_METRICS)}

    def deltas(self) -> list[dict[str, float]]:
        """All windows as rows: start/end, metric deltas, transfer delta."""
        rows = []
        prev_cum: tuple[float, ...] = _ZERO_CUM
        prev_transfers = 0
        for i, win in enumerate(self.windows):
            row: dict[str, float] = {"start": self.start(i), "end": self.end(i)}
            for j, m in enumerate(WINDOW_METRICS):
                row[m] = win.cum[j] - prev_cum[j]
            row["transfers"] = win.transfers - prev_transfers
            rows.append(row)
            prev_cum = win.cum
            prev_transfers = win.transfers
        return rows

    # -- transforms ---------------------------------------------------------
    def resample(self, new_width: float) -> "WindowSeries":
        """Coarsen onto a wider grid (an integer multiple of ``width``).

        Lossless for cumulative state: each coarse window keeps the last
        fine snapshot it covers, so :meth:`totals` is unchanged bit-for-bit.
        """
        factor = round(new_width / self.width)
        if factor < 1 or abs(factor * self.width - new_width) > 1e-12 * new_width:
            raise ValueError(
                f"new width {new_width} is not an integer multiple of {self.width}"
            )
        if factor == 1:
            return WindowSeries(self.width, self.windows, self.rank, self.label,
                                base_width=self.base_width)
        merged = [
            self.windows[min(i + factor, len(self.windows)) - 1]
            for i in range(0, len(self.windows), factor)
        ]
        return WindowSeries(new_width, merged, self.rank, self.label,
                            base_width=self.base_width)

    # -- persistence --------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "format_version": SERIES_FORMAT_VERSION,
            "rank": self.rank,
            "label": self.label,
            "width": self.width,
            "base_width": self.base_width,
            "metrics": list(WINDOW_METRICS),
            "windows": [
                {
                    "cum": list(w.cum),
                    "transfers": w.transfers,
                    "active": w.active,
                    "pending_xfer_time": w.pending_xfer_time,
                }
                for w in self.windows
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "WindowSeries":
        if data.get("format_version") != SERIES_FORMAT_VERSION:
            raise ValueError(
                f"unsupported series format {data.get('format_version')!r}"
            )
        if list(data.get("metrics", [])) != list(WINDOW_METRICS):
            raise ValueError(f"unexpected metric set {data.get('metrics')!r}")
        windows = [
            Window(
                cum=tuple(float(v) for v in w["cum"]),  # type: ignore[index]
                transfers=int(w["transfers"]),  # type: ignore[index]
                active=int(w["active"]),  # type: ignore[index]
                pending_xfer_time=float(w["pending_xfer_time"]),  # type: ignore[index]
            )
            for w in typing.cast("list[dict]", data["windows"])
        ]
        return cls(
            width=float(data["width"]),  # type: ignore[arg-type]
            windows=windows,
            rank=int(data["rank"]),  # type: ignore[arg-type]
            label=str(data["label"]),
            base_width=float(data.get("base_width") or data["width"]),  # type: ignore[arg-type]
        )

    def save(self, path: "str | os.PathLike") -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "WindowSeries":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def __repr__(self) -> str:
        return (
            f"<WindowSeries rank={self.rank} n={len(self.windows)} "
            f"width={self.width:.3g}s>"
        )


class WindowedProcessor(DataProcessor):
    """A :class:`DataProcessor` that also snapshots fixed-time windows.

    The hot path gains one float comparison per event; windows close only
    when simulated time crosses a grid boundary.  Memory is bounded by
    ``max_windows`` regardless of run length (the ring coalesces).
    """

    def __init__(
        self,
        xfer_table: "XferTable",
        bin_edges: typing.Sequence[float] = DEFAULT_BIN_EDGES,
        *,
        window_width: float = DEFAULT_WINDOW_WIDTH,
        max_windows: int = DEFAULT_MAX_WINDOWS,
    ) -> None:
        super().__init__(xfer_table, bin_edges)
        if window_width <= 0:
            raise ValueError(f"window_width must be positive, got {window_width}")
        if max_windows < 4:
            raise ValueError(f"max_windows must be >= 4, got {max_windows}")
        self.base_width = float(window_width)
        self._width = float(window_width)
        # Pairs merge on overflow, so keep the capacity even.
        self._max_windows = max_windows & ~1
        self._windows: list[Window] = []
        self._boundary = self._width
        #: Number of ring-coalescing passes performed (diagnostics).
        self.coalesce_count = 0

    # -- window machinery ---------------------------------------------------
    @property
    def window_width(self) -> float:
        """Current window width (grows by doubling when the ring fills)."""
        return self._width

    @property
    def window_count(self) -> int:
        return len(self._windows)

    def _close_window(self) -> None:
        m = self.total
        pending = 0.0
        if self._active:
            time_for = self.xfer_table.time_for
            for xfer in self._active.values():
                pending += time_for(xfer.nbytes)
        self._windows.append(
            Window(
                cum=(
                    m.data_transfer_time,
                    m.min_overlap_time,
                    m.max_overlap_time,
                    m.computation_time,
                    m.communication_call_time,
                ),
                transfers=m.transfer_count,
                active=len(self._active),
                pending_xfer_time=pending,
            )
        )
        if len(self._windows) >= self._max_windows:
            self._coalesce()
        self._boundary = (len(self._windows) + 1) * self._width

    def _coalesce(self) -> None:
        """Halve the ring by merging adjacent pairs; double the width.

        Lossless: the cumulative snapshot of a merged pair is the second
        member's snapshot (dropping the intermediate one).
        """
        wins = self._windows
        self._windows = [wins[i + 1] for i in range(0, len(wins) - 1, 2)]
        self._width *= 2.0
        self.coalesce_count += 1

    def _advance(self, t: float) -> None:
        # Close every grid boundary strictly before t; the interval ending
        # at t is then attributed to the window containing t.  Statically
        # bound base-class call: this runs once per instrumented event.
        while t > self._boundary:
            self._close_window()
        DataProcessor._advance(self, t)

    def finalize(self, end_time: float | None = None) -> None:
        already = self._finalized
        super().finalize(end_time)
        if not already and self._last_time is not None:
            # Close the trailing (possibly partial) window so the last
            # snapshot equals the final totals -- the exactness invariant.
            self._close_window()

    def series(self, rank: int = -1, label: str = "") -> WindowSeries:
        """Snapshot the collected windows as an immutable series."""
        return WindowSeries(
            self._width, list(self._windows), rank=rank, label=label,
            base_width=self.base_width,
        )
