"""Windowed bound validation against simulator ground truth.

Extends :mod:`repro.experiments.validation` (whole-run bounds vs the
fabric's physical transfer log) to window boundaries.  At the close of
window ``i`` (simulated time ``b_i``) the framework has resolved
``n(b_i)`` transfers with cumulative bounds ``min(b_i) <= max(b_i)``,
while ``a(b_i)`` transfers are still active with a-priori span budget
``pending(b_i)``.  The simulator's truth clipped at ``b_i`` is
``true(b_i)``; restricted to transfers this rank *initiated* it is
``true_src(b_i)``.  The validated invariants are::

    min(b_i)      <=  true(b_i) + 2 * n(b_i) * slack
    true_src(b_i) <=  max(b_i) + pending(b_i) + (n(b_i) + a(b_i)) * slack

with per-transfer ``slack = latency + per_message_overhead``, for the same
reasons the whole-run check carries slack (the sender's completion event
precedes remote arrival by one latency; contention can stretch physical
intervals past the a-priori time).  The min-side factor 2 covers both the
per-transfer bound slack and truth landing just past the boundary.

The max side compares against *initiated* transfers only because incoming
wire activity can precede any local evidence: "the initiation of the send
is transparent to the receiver" (an eager payload, or a fragment riding
the RTS, overlaps the receiver's computation before the matching END-only
event fires), so no intermediate-boundary allowance built from the
monitor's own state can cover it.  Every transfer a rank initiates, by
contrast, stamps XFER_BEGIN before its wire activity under all three
rendezvous protocols and both eager modes, so it is always in the
monitor's active set (covered by ``pending``) or resolved (covered by
``max``) when its physical bytes move.  Incoming transfers are still
validated -- by the min side here, and by the whole-run check once
resolved.  At the final boundary ``pending`` and ``a`` are zero and the
max check reduces to the whole-run one restricted to initiated transfers.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.experiments.validation import merge_intervals
from repro.telemetry.windows import WindowSeries

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.launcher import RunResult


@dataclasses.dataclass
class WindowBoundCheck:
    """One window boundary's cumulative bounds vs clipped ground truth."""

    index: int
    boundary: float
    cum_min: float
    cum_max: float
    cum_true: float
    cum_true_src: float
    resolved: int
    active: int
    pending_xfer_time: float
    slack_per_transfer: float

    @property
    def min_holds(self) -> bool:
        return self.cum_min <= self.cum_true + 2 * self.resolved * self.slack_per_transfer

    @property
    def max_holds(self) -> bool:
        allowance = (
            self.pending_xfer_time
            + (self.resolved + self.active) * self.slack_per_transfer
        )
        return self.cum_true_src <= self.cum_max + allowance

    @property
    def holds(self) -> bool:
        return self.min_holds and self.max_holds


def _clipped_true_overlap(
    result: "RunResult",
    rank: int,
    boundaries: typing.Sequence[float],
    src_only: bool = False,
) -> list[float]:
    """Cumulative physical-transfer ∩ computation time at each boundary.

    With ``src_only`` the sum covers only transfers this rank initiated
    (``rec.src == rank``) -- the population the max-side check is sound
    against (see the module docstring).
    """
    log = result.fabric.transfer_log
    if log is None:
        raise ValueError("run_app(..., record_transfers=True) required")
    params = result.fabric.params
    compute = merge_intervals(result.compute_logs[rank])
    # Per-transfer intersection segments (kept per transfer, not merged:
    # the framework's accounting is per transfer too).
    segments: list[tuple[float, float]] = []
    for rec in log:
        if rec.nbytes <= params.control_packet_size:
            continue
        if src_only:
            if rec.src != rank:
                continue
        elif rec.src != rank and rec.dst != rank:
            continue
        for a, b in compute:
            if b <= rec.start:
                continue
            if a >= rec.end:
                break
            segments.append((max(a, rec.start), min(b, rec.end)))
    segments.sort()
    out = []
    for boundary in boundaries:
        total = 0.0
        for a, b in segments:
            if a >= boundary:
                break
            total += min(b, boundary) - a
        out.append(total)
    return out


def check_windowed_bounds(
    result: "RunResult", rank: int, series: WindowSeries
) -> list[WindowBoundCheck]:
    """Validate every window boundary of one rank's series."""
    params = result.fabric.params
    slack = params.latency + params.per_message_overhead
    boundaries = [series.end(i) for i in range(len(series))]
    truths = _clipped_true_overlap(result, rank, boundaries)
    truths_src = _clipped_true_overlap(result, rank, boundaries, src_only=True)
    checks = []
    for i, win in enumerate(series.windows):
        checks.append(
            WindowBoundCheck(
                index=i,
                boundary=boundaries[i],
                cum_min=win.cum[1],
                cum_max=win.cum[2],
                cum_true=truths[i],
                cum_true_src=truths_src[i],
                resolved=win.transfers,
                active=win.active,
                pending_xfer_time=win.pending_xfer_time,
                slack_per_transfer=slack,
            )
        )
    return checks


def render_windowed_validation(
    checks: typing.Sequence[WindowBoundCheck], title: str = ""
) -> str:
    """Tabulate cumulative bounds vs clipped truth per window boundary."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'win':>4} {'t(ms)':>8} {'min(ms)':>9} {'true(ms)':>9} "
        f"{'max(ms)':>9} {'n':>5} {'act':>4} {'verdict':>8}"
    )
    for c in checks:
        lines.append(
            f"{c.index:>4} {c.boundary * 1e3:>8.3f} {c.cum_min * 1e3:>9.3f} "
            f"{c.cum_true * 1e3:>9.3f} {c.cum_max * 1e3:>9.3f} "
            f"{c.resolved:>5} {c.active:>4} "
            f"{'ok' if c.holds else 'VIOLATED':>8}"
        )
    return "\n".join(lines)
