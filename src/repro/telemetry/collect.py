"""Run-time collection glue: telemetry config, per-rank capture, files.

``run_app(..., telemetry=TelemetryConfig())`` swaps each monitor's
processor for a :class:`~repro.telemetry.windows.WindowedProcessor` and
(optionally) attaches a PERUSE :class:`~repro.core.trace.TraceSink` per
rank for trace export.  The result carries a :class:`TelemetryResult`,
whose :func:`write_run_telemetry` emits the full on-disk layout::

    out/
      telemetry.rank0.json   # per-rank report + window series
      ...
      trace.json             # Perfetto / chrome://tracing
      rollup.json            # cluster-wide totals, percentiles, imbalance
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import typing

from repro.core.events import NameRegistry, TimedEvent
from repro.telemetry.perfetto import ChromeTraceExporter
from repro.telemetry.rollup import rollup_files, save_rank_telemetry
from repro.telemetry.windows import (
    DEFAULT_MAX_WINDOWS,
    DEFAULT_WINDOW_WIDTH,
    WindowSeries,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.xfer_table import XferTable
    from repro.runtime.launcher import RunResult


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for time-resolved collection during a simulated run."""

    #: Initial window width (simulated seconds); the bounded ring doubles
    #: it automatically on long runs.
    window_width: float = DEFAULT_WINDOW_WIDTH
    #: Ring capacity (windows kept per rank; even).
    max_windows: int = DEFAULT_MAX_WINDOWS
    #: Also record each rank's raw event stream for Perfetto export.
    collect_trace: bool = True

    def __post_init__(self) -> None:
        if self.window_width <= 0:
            raise ValueError("window_width must be positive")
        if self.max_windows < 4:
            raise ValueError("max_windows must be >= 4")


class RankTelemetry:
    """What telemetry collected for one rank."""

    def __init__(
        self,
        rank: int,
        series: WindowSeries,
        events: "list[TimedEvent] | None",
        names: NameRegistry,
    ) -> None:
        self.rank = rank
        self.series = series
        #: Raw event stream (None when ``collect_trace`` was off).
        self.events = events
        self.names = names


class TelemetryResult:
    """All ranks' telemetry plus what's needed to export it."""

    def __init__(
        self,
        per_rank: list[RankTelemetry],
        xfer_table: "XferTable",
        config: TelemetryConfig,
    ) -> None:
        self.per_rank = per_rank
        self.xfer_table = xfer_table
        self.config = config

    def series(self, rank: int = 0) -> WindowSeries:
        return self.per_rank[rank].series

    def build_trace(self, result: "RunResult") -> ChromeTraceExporter:
        """Assemble the Chrome/Perfetto trace for the whole job."""
        exporter = ChromeTraceExporter()
        for rt in self.per_rank:
            if rt.events is not None:
                exporter.add_rank_events(
                    rt.rank, rt.events, rt.names,
                    xfer_table=self.xfer_table,
                    label=rt.series.label,
                )
            exporter.add_window_counters(rt.rank, rt.series,
                                         label=rt.series.label)
        log = result.fabric.transfer_log
        if log:
            exporter.add_transfer_log(
                log, min_nbytes=result.fabric.params.control_packet_size
            )
        return exporter


def write_run_telemetry(
    result: "RunResult",
    out_dir: "str | os.PathLike",
    trace_name: str = "trace.json",
    rollup_name: str = "rollup.json",
) -> dict[str, list[pathlib.Path]]:
    """Emit the per-rank files, the Perfetto trace, and the cluster rollup.

    Returns the written paths keyed ``{"ranks": [...], "trace": [...],
    "rollup": [...]}``.  The rollup is produced by streaming the just-
    written rank files back (the same constant-memory path an offline
    aggregation of a real cluster would take).
    """
    telemetry = result.telemetry
    if telemetry is None:
        raise ValueError("run_app was not given a TelemetryConfig")
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    rank_paths: list[pathlib.Path] = []
    for rt in telemetry.per_rank:
        report = result.reports[rt.rank]
        assert report is not None
        path = out / f"telemetry.rank{rt.rank}.json"
        save_rank_telemetry(path, report, rt.series)
        rank_paths.append(path)

    trace_path = out / trace_name
    telemetry.build_trace(result).save(trace_path)

    rollup_path = out / rollup_name
    rollup_files(rank_paths).save(rollup_path)

    return {"ranks": rank_paths, "trace": [trace_path], "rollup": [rollup_path]}
