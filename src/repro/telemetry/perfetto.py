"""Chrome ``trace_event`` / Perfetto export of instrumented runs.

Renders a simulated job as a standard trace JSON file that loads directly
in ``ui.perfetto.dev`` or ``chrome://tracing``:

* one *process* per rank (``pid`` = rank, named ``rank N``);
* a **calls** thread with one complete ("X") slice per library call
  (nested calls nest);
* a **sections** thread with one slice per monitoring section;
* a **transfers** async track per data-transfer operation ("b"/"e" pairs
  keyed by transfer id).  Transfers whose initiation was invisible
  (case 3) get an *a-priori* span ``[end - xfer_time, end]`` when an
  :class:`~repro.core.xfer_table.XferTable` is supplied;
* a **wire** async track with the simulator's ground-truth physical
  transfer intervals (``Fabric.transfer_log``), when recording was on;
* one counter ("C") track per windowed metric fed from a
  :class:`~repro.telemetry.windows.WindowSeries`.

Timestamps are simulated seconds scaled to trace microseconds.  The
exporter is pure post-processing: it consumes a recorded event list (a
PERUSE :class:`~repro.core.trace.TraceSink`), never the live hot path.
"""

from __future__ import annotations

import json
import os
import typing

from repro.core.events import EventKind, NameRegistry, TimedEvent
from repro.telemetry.windows import WINDOW_METRICS, WindowSeries

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.xfer_table import XferTable
    from repro.netsim.nic import TransferRecord

#: Simulated seconds -> trace microseconds.
TIME_SCALE = 1e6

#: Thread ids within each rank's process.
TID_CALLS = 1
TID_SECTIONS = 2
TID_TRANSFERS = 3
TID_WIRE = 4

#: Thread id used by host-time span timelines (``repro.tracing.merge``).
TID_SPANS = 1

_THREAD_NAMES = {
    TID_CALLS: "library calls",
    TID_SECTIONS: "sections",
    TID_TRANSFERS: "data transfers",
    TID_WIRE: "wire (ground truth)",
}


class ChromeTraceExporter:
    """Accumulates trace events; serializes the Chrome JSON object format."""

    def __init__(self) -> None:
        self.events: list[dict[str, object]] = []
        self._named_pids: set[int] = set()
        self._wire_seq = 0

    # -- metadata -----------------------------------------------------------
    def _ensure_process(self, rank: int, label: str = "") -> None:
        if rank in self._named_pids:
            return
        self._named_pids.add(rank)
        name = f"rank {rank}" + (f" ({label})" if label else "")
        self.events.append(
            {"ph": "M", "name": "process_name", "pid": rank, "tid": 0,
             "args": {"name": name}}
        )
        self.events.append(
            {"ph": "M", "name": "process_sort_index", "pid": rank, "tid": 0,
             "args": {"sort_index": rank}}
        )
        for tid, tname in _THREAD_NAMES.items():
            self.events.append(
                {"ph": "M", "name": "thread_name", "pid": rank, "tid": tid,
                 "args": {"name": tname}}
            )

    def add_process(self, pid: int, name: str,
                    sort_index: "int | None" = None,
                    thread_names: "dict[int, str] | None" = None) -> None:
        """Name an arbitrary process track (not tied to a simulated rank).

        The host-span merge (:mod:`repro.tracing.merge`) builds multi-
        process timelines -- service worker, sweep cells, shard workers
        -- whose pids are assigned by enumeration, not rank number.
        """
        if pid in self._named_pids:
            return
        self._named_pids.add(pid)
        self.events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )
        self.events.append(
            {"ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
             "args": {"sort_index": sort_index if sort_index is not None
                      else pid}}
        )
        for tid, tname in (thread_names or {TID_SPANS: "spans"}).items():
            self.events.append(
                {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                 "args": {"name": tname}}
            )

    def add_complete_slice(self, pid: int, tid: int, name: str, cat: str,
                           t0: float, t1: float,
                           args: "dict | None" = None) -> None:
        """One complete ("X") slice from absolute times in seconds."""
        ev: dict[str, object] = {
            "ph": "X", "name": name, "cat": cat, "pid": pid, "tid": tid,
            "ts": t0 * TIME_SCALE, "dur": max(0.0, (t1 - t0)) * TIME_SCALE,
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    # -- slices from the raw event stream -----------------------------------
    def add_rank_events(
        self,
        rank: int,
        events: typing.Sequence[TimedEvent],
        names: NameRegistry,
        xfer_table: "XferTable | None" = None,
        label: str = "",
    ) -> None:
        """Render one rank's recorded event stream as slices."""
        self._ensure_process(rank, label)
        if not events:
            return
        end_of_stream = events[-1].time
        call_stack: list[tuple[int, float]] = []
        section_stack: list[tuple[int, float]] = []
        open_xfers: dict[int, TimedEvent] = {}

        def slice_event(name: str, tid: int, t0: float, t1: float,
                        cat: str, args: dict | None = None) -> None:
            ev: dict[str, object] = {
                "ph": "X", "name": name, "cat": cat, "pid": rank, "tid": tid,
                "ts": t0 * TIME_SCALE, "dur": max(0.0, (t1 - t0)) * TIME_SCALE,
            }
            if args:
                ev["args"] = args
            self.events.append(ev)

        def async_span(name: str, ident: str, t0: float, t1: float,
                       cat: str, args: dict | None = None) -> None:
            base: dict[str, object] = {
                "cat": cat, "name": name, "id": ident, "pid": rank,
                "tid": TID_TRANSFERS if cat.startswith("transfer") else TID_WIRE,
            }
            begin = dict(base, ph="b", ts=t0 * TIME_SCALE)
            if args:
                begin["args"] = args
            self.events.append(begin)
            self.events.append(dict(base, ph="e", ts=t1 * TIME_SCALE))

        for ev in events:
            kind = ev.kind
            if kind == EventKind.CALL_ENTER:
                call_stack.append((ev.a, ev.time))
            elif kind == EventKind.CALL_EXIT:
                if call_stack:
                    ident, t0 = call_stack.pop()
                    slice_event(names.name_of(ident), TID_CALLS, t0, ev.time,
                                "call")
            elif kind == EventKind.SECTION_BEGIN:
                section_stack.append((ev.a, ev.time))
            elif kind == EventKind.SECTION_END:
                if section_stack:
                    ident, t0 = section_stack.pop()
                    slice_event(names.name_of(ident), TID_SECTIONS, t0,
                                ev.time, "section")
            elif kind == EventKind.XFER_BEGIN:
                open_xfers[ev.a] = ev
            elif kind == EventKind.XFER_END:
                begin = open_xfers.pop(ev.a, None)
                if begin is not None:
                    async_span(f"xfer {_fmt_nbytes(ev.b)}", f"x{rank}.{ev.a}",
                               begin.time, ev.time, "transfer",
                               {"nbytes": ev.b})
                elif xfer_table is not None:
                    # Case 3: initiation invisible; draw the a-priori span.
                    span = xfer_table.time_for(float(ev.b))
                    async_span(f"xfer {_fmt_nbytes(ev.b)} (a-priori)",
                               f"x{rank}.{ev.a}", max(0.0, ev.time - span),
                               ev.time, "transfer.apriori", {"nbytes": ev.b})
        # Anything still open at the end of the stream is drawn to the end.
        for ident, t0 in call_stack:
            slice_event(names.name_of(ident), TID_CALLS, t0, end_of_stream,
                        "call.unclosed")
        for ident, t0 in section_stack:
            slice_event(names.name_of(ident), TID_SECTIONS, t0, end_of_stream,
                        "section.unclosed")
        for xid, begin in open_xfers.items():
            async_span(f"xfer {_fmt_nbytes(begin.b)} (unresolved)",
                       f"x{rank}.{xid}", begin.time, end_of_stream,
                       "transfer.unresolved", {"nbytes": begin.b})

    # -- counters from the windowed series -----------------------------------
    def add_window_counters(
        self,
        rank: int,
        series: WindowSeries,
        metrics: typing.Sequence[str] = WINDOW_METRICS,
        label: str = "",
    ) -> None:
        """One counter track per metric: the per-window delta, stepped."""
        self._ensure_process(rank, label)
        unknown = set(metrics) - set(WINDOW_METRICS)
        if unknown:
            raise ValueError(f"unknown window metrics {sorted(unknown)}")
        rows = series.deltas()
        for metric in metrics:
            name = f"win.{metric}"
            for row in rows:
                self.events.append(
                    {"ph": "C", "name": name, "pid": rank, "tid": 0,
                     "ts": row["start"] * TIME_SCALE,
                     "args": {"value": row[metric]}}
                )
            if rows:
                # Close the staircase so the last window has visible width.
                self.events.append(
                    {"ph": "C", "name": name, "pid": rank, "tid": 0,
                     "ts": rows[-1]["end"] * TIME_SCALE, "args": {"value": 0.0}}
                )

    # -- ground-truth wire intervals -----------------------------------------
    def add_transfer_log(
        self,
        records: "typing.Sequence[TransferRecord]",
        min_nbytes: float = 0.0,
    ) -> None:
        """Render the simulator's physical transfer log on per-rank tracks.

        Each record is drawn on its *source* rank's wire thread (for RDMA
        Read, the source is the target NIC streaming the data back).
        Records of at most ``min_nbytes`` (control packets) are skipped.
        """
        for rec in records:
            if rec.nbytes <= min_nbytes:
                continue
            self._ensure_process(rec.src)
            self._wire_seq += 1
            ident = f"w{self._wire_seq}"
            base: dict[str, object] = {
                "cat": "wire", "name": f"{rec.kind} {_fmt_nbytes(rec.nbytes)} "
                f"→ {rec.dst}", "id": ident, "pid": rec.src,
                "tid": TID_WIRE,
            }
            self.events.append(
                dict(base, ph="b", ts=rec.start * TIME_SCALE,
                     args={"nbytes": rec.nbytes, "dst": rec.dst})
            )
            self.events.append(dict(base, ph="e", ts=rec.end * TIME_SCALE))

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"exporter": "repro.telemetry.perfetto",
                          "time_unit": "us (simulated)"},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=None, separators=(",", ":"))

    def save(self, path: "str | os.PathLike") -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())


def _fmt_nbytes(n: float) -> str:
    n = int(n)
    if n >= 1 << 20 and n % (1 << 20) == 0:
        return f"{n >> 20}MiB"
    if n >= 1 << 10 and n % (1 << 10) == 0:
        return f"{n >> 10}KiB"
    return f"{n}B"
