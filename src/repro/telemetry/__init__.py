"""Time-resolved overlap telemetry: windows, trace export, cluster rollup.

Three cooperating pieces on top of the paper's bounded-memory pipeline:

* :mod:`repro.telemetry.windows` -- :class:`WindowedProcessor` snapshots
  the cumulative overlap measures on a bounded ring of fixed simulated-
  time windows; window sums reconstruct the whole-run totals to exact
  float equality;
* :mod:`repro.telemetry.perfetto` -- Chrome ``trace_event`` JSON export
  (calls, sections, transfers, ground-truth wire intervals, per-window
  counters) that opens directly in ``ui.perfetto.dev``;
* :mod:`repro.telemetry.rollup` -- constant-memory streaming merge of
  per-rank telemetry files into cluster totals, per-window cross-rank
  percentiles, and a rank-imbalance summary.

Entry points: ``run_app(..., telemetry=TelemetryConfig())`` and the
``python -m repro.tools.timeline`` CLI.  See ``docs/telemetry.md``.
"""

from repro.telemetry.collect import (
    RankTelemetry,
    TelemetryConfig,
    TelemetryResult,
    write_run_telemetry,
)
from repro.telemetry.perfetto import ChromeTraceExporter
from repro.telemetry.rollup import (
    ClusterRollup,
    StreamStats,
    load_rank_telemetry,
    rollup_files,
    save_rank_telemetry,
)
from repro.telemetry.validate import (
    WindowBoundCheck,
    check_windowed_bounds,
    render_windowed_validation,
)
from repro.telemetry.windows import (
    WINDOW_METRICS,
    Window,
    WindowSeries,
    WindowedProcessor,
)

__all__ = [
    "ChromeTraceExporter",
    "ClusterRollup",
    "RankTelemetry",
    "StreamStats",
    "TelemetryConfig",
    "TelemetryResult",
    "WINDOW_METRICS",
    "Window",
    "WindowBoundCheck",
    "WindowSeries",
    "WindowedProcessor",
    "check_windowed_bounds",
    "load_rank_telemetry",
    "render_windowed_validation",
    "rollup_files",
    "save_rank_telemetry",
    "write_run_telemetry",
]
