"""Submission validation and canonicalization for the analysis service.

A submission is a JSON object naming a *kind* of analysis plus its
parameters.  This module turns it into the exact
:class:`~repro.experiments.runner.Task` objects the CLIs build -- same
worker function, same argument tuple -- so:

* the **content-hash key** is identical to the CLI's, so the service's
  cache, single-flight dedupe, and any CLI sweep agree on what "the same
  question" means (the service keeps its own sharded store; only the
  keys are shared);
* the **result is byte-identical** to the CLI's (the differential test in
  ``tests/test_service.py`` asserts JSON-level equality), including with
  fault plans and ``shards=N``.

Kinds
-----
``nas``
    One NAS benchmark sweep cell per ``np`` value -- mirrors
    ``repro.tools.nas`` (benchmark, klass, np grid, niter, library,
    modified/nonblocking, faults + fault_seed, shards + shard_sync).
``micro``
    The Sec. 3 overlap micro-benchmark: one cell per inserted-computation
    value -- mirrors ``overlap_sweep_parallel``.
``paper``
    One rendered figure section of ``repro.tools.paper`` (text payload).
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

from repro.experiments.nas_char import MPI_BENCHMARKS
from repro.experiments.runner import Task

KINDS = ("nas", "micro", "paper")
KLASSES = ("S", "W", "A", "B")
LIBRARIES = ("paper", "openmpi", "mvapich2")
SHARD_SYNCS = ("window", "null")

#: Upper bound on cells per submission: a "job" is one user question,
#: not a bulk import channel.
MAX_CELLS = 64


class SubmissionError(ValueError):
    """Invalid submission payload (maps to HTTP 400)."""


@dataclasses.dataclass(frozen=True)
class Submission:
    """A validated, canonicalized job request."""

    tenant: str
    kind: str
    priority: int
    label: str
    spec: "dict[str, typing.Any]"


def _require_str(payload: dict, field: str, default: "str | None" = None,
                 choices: "tuple[str, ...] | None" = None) -> str:
    value = payload.get(field, default)
    if not isinstance(value, str) or not value:
        raise SubmissionError(f"field {field!r} must be a non-empty string")
    if choices is not None and value not in choices:
        raise SubmissionError(
            f"field {field!r} must be one of {list(choices)}, got {value!r}")
    return value


def _require_int(payload: dict, field: str, default: int,
                 lo: int = 0, hi: int = 1_000_000) -> int:
    value = payload.get(field, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SubmissionError(f"field {field!r} must be an integer")
    if not lo <= value <= hi:
        raise SubmissionError(
            f"field {field!r} must be in [{lo}, {hi}], got {value}")
    return value


def _require_bool(payload: dict, field: str, default: bool = False) -> bool:
    value = payload.get(field, default)
    if not isinstance(value, bool):
        raise SubmissionError(f"field {field!r} must be a boolean")
    return value


def _parse_np(payload: dict) -> "list[int]":
    value = payload.get("np", 4)
    if isinstance(value, bool):
        raise SubmissionError("field 'np' must be an integer or list of them")
    if isinstance(value, int):
        value = [value]
    if (not isinstance(value, list) or not value
            or not all(isinstance(v, int) and not isinstance(v, bool)
                       and 1 <= v <= 4096 for v in value)):
        raise SubmissionError(
            "field 'np' must be a positive integer or non-empty list of them")
    return list(value)


def _parse_nas(payload: dict) -> "tuple[dict, list[Task], str]":
    from repro.tools.nas import _run_cell

    benchmark = _require_str(payload, "benchmark",
                             choices=tuple(sorted(MPI_BENCHMARKS)) + ("mg",))
    klass = _require_str(payload, "klass", "S", choices=KLASSES)
    nprocs = _parse_np(payload)
    niter = _require_int(payload, "niter", 2, lo=1, hi=1000)
    library = _require_str(payload, "library", "paper", choices=LIBRARIES)
    modified = _require_bool(payload, "modified")
    nonblocking = _require_bool(payload, "nonblocking")
    faults = payload.get("faults")
    if faults is not None and (not isinstance(faults, str) or not faults):
        raise SubmissionError("field 'faults' must be a spec string or null")
    fault_seed = _require_int(payload, "fault_seed", 0, lo=0, hi=2**31)
    shards = payload.get("shards")
    if shards is not None:
        shards = _require_int(payload, "shards", 1, lo=1, hi=64)
    shard_sync = _require_str(payload, "shard_sync", "window",
                              choices=SHARD_SYNCS)
    if shards is not None and benchmark == "mg":
        raise SubmissionError("'shards' is not supported for mg (ARMCI)")
    if shards is not None and faults is not None:
        raise SubmissionError("'shards' cannot be combined with 'faults'")
    if faults is not None:
        # Fail a bad spec at submit time (HTTP 400), not in the worker.
        from repro.faults.plan import parse_fault_spec

        try:
            parse_fault_spec(faults, seed=fault_seed)
        except Exception as exc:
            raise SubmissionError(f"invalid 'faults' spec: {exc}") from exc
    spec = {
        "benchmark": benchmark, "klass": klass, "np": nprocs, "niter": niter,
        "library": library, "modified": modified, "nonblocking": nonblocking,
        "faults": faults, "fault_seed": fault_seed,
        "shards": shards, "shard_sync": shard_sync,
    }
    # The exact argument tuple repro.tools.nas builds (emit_metrics=False:
    # the service's metrics live on the server, not inside the cells).
    tasks = [
        Task(_run_cell, (benchmark, klass, np, niter, library, modified,
                         nonblocking, False, faults, fault_seed,
                         shards, shard_sync))
        for np in nprocs
    ]
    label = f"nas.{benchmark}.{klass}.x{len(nprocs)}"
    return spec, tasks, label


def _parse_micro(payload: dict) -> "tuple[dict, list[Task], str]":
    from repro.experiments.micro import PATTERNS
    from repro.experiments.runner import _sweep_point
    from repro.mpisim.config import mvapich2_like, openmpi_like

    pattern = _require_str(payload, "pattern", choices=tuple(PATTERNS))
    nbytes = payload.get("nbytes", 4096)
    if isinstance(nbytes, bool) or not isinstance(nbytes, (int, float)) \
            or not 1 <= nbytes <= 2**32:
        raise SubmissionError("field 'nbytes' must be a number in [1, 2^32]")
    computes = payload.get("computes", [0.0])
    if (not isinstance(computes, list) or not computes
            or not all(isinstance(c, (int, float)) and not isinstance(c, bool)
                       and 0 <= c <= 10 for c in computes)):
        raise SubmissionError(
            "field 'computes' must be a non-empty list of seconds in [0, 10]")
    library = _require_str(payload, "library", "mvapich2",
                           choices=("openmpi", "mvapich2"))
    iters = _require_int(payload, "iters", 50, lo=1, hi=10_000)
    warmup = _require_int(payload, "warmup", 3, lo=0, hi=1000)
    config = openmpi_like() if library == "openmpi" else mvapich2_like()
    spec = {
        "pattern": pattern, "nbytes": float(nbytes),
        "computes": [float(c) for c in computes], "library": library,
        "iters": iters, "warmup": warmup,
    }
    tasks = [
        Task(_sweep_point,
             (pattern, float(nbytes), float(c), config, None, None,
              iters, warmup))
        for c in computes
    ]
    label = f"micro.{pattern}.{int(nbytes)}B.x{len(computes)}"
    return spec, tasks, label


def _parse_paper(payload: dict) -> "tuple[dict, list[Task], str]":
    from repro.tools.paper import _render_section, build_sections

    quick = _require_bool(payload, "quick", True)
    shards = payload.get("shards")
    if shards is not None:
        shards = _require_int(payload, "shards", 1, lo=1, hi=64)
    sections = sorted(build_sections(quick, shards))
    section = _require_str(payload, "section", choices=tuple(sections))
    spec = {"section": section, "quick": quick, "shards": shards}
    tasks = [Task(_render_section, (section, quick, shards))]
    return spec, tasks, f"paper.{section}"


_PARSERS = {"nas": _parse_nas, "micro": _parse_micro, "paper": _parse_paper}


def parse_submission(payload: object) -> "tuple[Submission, list[Task]]":
    """Validate a JSON submission; return it canonicalized plus its tasks."""
    if not isinstance(payload, dict):
        raise SubmissionError("submission body must be a JSON object")
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise SubmissionError(
            "field 'tenant' must be a string of 1..64 characters")
    kind = _require_str(payload, "kind", "nas", choices=KINDS)
    priority = _require_int(payload, "priority", 0, lo=0, hi=9)
    spec, tasks, label = _PARSERS[kind](payload)
    if len(tasks) > MAX_CELLS:
        raise SubmissionError(
            f"submission expands to {len(tasks)} cells; limit is {MAX_CELLS}")
    sub = Submission(tenant=tenant, kind=kind, priority=priority,
                     label=label, spec=spec)
    return sub, tasks


def job_content_key(kind: str, tasks: "typing.Sequence[Task]") -> str:
    """One hash for the whole job: what single-flight dedupe keys on.

    Derived from the per-cell content hashes (which already cover
    function identity, arguments, and CACHE_VERSION), so two submissions
    asking the same question -- from *any* tenant, in any concurrent
    order -- collapse onto one execution.
    """
    h = hashlib.sha256()
    h.update(kind.encode("utf-8"))
    for task in tasks:
        h.update(task.key.encode("ascii"))
    return h.hexdigest()
