"""Prioritized, quota-bounded, multi-tenant job queue.

The scheduling core of :mod:`repro.service` -- deliberately free of
threads, sockets, and asyncio so its semantics can be property-tested as
a plain data structure (``tests/test_service_queue.py``):

* **admission control**: a tenant whose queued-job budget (or the global
  budget) is exhausted is refused *before* the job exists, with a
  ``retry_after`` hint for the HTTP 429;
* **priority with per-tenant FIFO**: higher priority runs first; within
  one tenant and one priority class, submission order is start order, no
  matter how other tenants or priorities interleave;
* **running quotas**: :meth:`TenantQueue.pop_next` never hands out a job
  for a tenant already running ``max_running_per_tenant`` jobs -- a noisy
  tenant can saturate its own slots, never the cluster.

The queue stores opaque job objects; it only reads ``tenant`` and
``priority`` attributes and assigns ``seq`` (a global arrival stamp).
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class QuotaConfig:
    """Per-tenant and global budgets enforced by the queue."""

    #: Jobs one tenant may have waiting; further submissions get a 429.
    max_queued_per_tenant: int = 64
    #: Jobs one tenant may have *executing* concurrently.
    max_running_per_tenant: int = 2
    #: Waiting jobs across every tenant (global backpressure).
    max_queued_total: int = 1024
    #: Priorities are clamped into ``[0, max_priority]``.
    max_priority: int = 9


class Admission(typing.NamedTuple):
    """Outcome of an admission-control check."""

    ok: bool
    reason: str = ""
    #: Suggested client back-off in seconds (the ``Retry-After`` header).
    retry_after: float = 1.0


class TenantQueue:
    """FIFO-per-(tenant, priority) queue with quotas.

    Not thread-safe by itself: the service serializes access under its
    own lock (and the property tests exploit that purity).
    """

    def __init__(self, quotas: "QuotaConfig | None" = None) -> None:
        self.quotas = quotas if quotas is not None else QuotaConfig()
        self._waiting: list = []  # arrival order; scanned on pop
        self._queued_by_tenant: dict[str, int] = {}
        self._seq = 0

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._waiting)

    def queued_for(self, tenant: str) -> int:
        return self._queued_by_tenant.get(tenant, 0)

    def tenants(self) -> "list[str]":
        return sorted(t for t, n in self._queued_by_tenant.items() if n)

    # -- admission ---------------------------------------------------------
    def check(self, tenant: str,
              retry_after: float = 1.0) -> Admission:
        """Admission control for one prospective submission (no mutation)."""
        if len(self._waiting) >= self.quotas.max_queued_total:
            return Admission(False, "service queue is full", retry_after)
        if self.queued_for(tenant) >= self.quotas.max_queued_per_tenant:
            return Admission(
                False,
                f"tenant {tenant!r} has "
                f"{self.quotas.max_queued_per_tenant} jobs queued",
                retry_after,
            )
        return Admission(True)

    def clamp_priority(self, priority: int) -> int:
        return max(0, min(int(priority), self.quotas.max_priority))

    # -- mutation ----------------------------------------------------------
    def push(self, job) -> None:
        """Enqueue an admitted job (assigns its arrival ``seq``)."""
        self._seq += 1
        job.seq = self._seq
        self._waiting.append(job)
        self._queued_by_tenant[job.tenant] = self.queued_for(job.tenant) + 1

    def pop_next(self, running: "typing.Mapping[str, int]"):
        """Dequeue the next runnable job, or ``None``.

        ``running`` maps tenant -> currently executing job count; tenants
        at their running quota are skipped (their jobs stay queued, in
        order).  Among eligible jobs: highest priority first, then global
        arrival order -- which preserves FIFO within any one tenant and
        priority class.
        """
        best_idx = -1
        best_key: "tuple[int, int] | None" = None
        for idx, job in enumerate(self._waiting):
            if running.get(job.tenant, 0) >= self.quotas.max_running_per_tenant:
                continue
            key = (-job.priority, job.seq)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = idx
        if best_idx < 0:
            return None
        job = self._waiting.pop(best_idx)
        self._queued_by_tenant[job.tenant] -= 1
        return job

    def remove(self, job_id: str):
        """Remove a queued job by id (the DELETE path); returns it or None."""
        for idx, job in enumerate(self._waiting):
            if job.id == job_id:
                self._waiting.pop(idx)
                self._queued_by_tenant[job.tenant] -= 1
                return job
        return None
