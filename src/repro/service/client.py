"""Minimal stdlib client for the overlap-analysis service.

Used by ``repro.tools.watch --url``, the ``--smoke`` self-test, the CI
smoke job, and the load benchmark.  One :class:`ServiceClient` holds one
keep-alive :class:`http.client.HTTPConnection`, so a submit/poll loop
pays connection setup once -- exactly how a real high-volume client
behaves, and what the warm-hit latency numbers measure.  A keep-alive
the server dropped between calls is re-dialed once per request (see
:meth:`ServiceClient._roundtrip`) so one idle timeout or server restart
never poisons the client.

Not thread-safe: give each thread its own client.
"""

from __future__ import annotations

import http.client
import json
import time
import typing
import urllib.parse


class ServiceError(RuntimeError):
    """Transport-level failure talking to the service."""


class Response(typing.NamedTuple):
    status: int
    body: "dict[str, typing.Any]"
    headers: "dict[str, str]"


class ServiceClient:
    """Blocking JSON client over one keep-alive connection."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// URLs are supported, got {base_url!r}")
        host = parsed.hostname or "127.0.0.1"
        port = parsed.port or 80
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------
    def _roundtrip(
        self, method: str, path: str,
        body: "bytes | None" = None,
        headers: "dict[str, str] | None" = None,
    ) -> "tuple[http.client.HTTPResponse, bytes]":
        """One request/response with a single reconnect on a dead socket.

        Every HTTP path in this client funnels through here: a server
        that closed the keep-alive between calls (idle timeout, restart)
        surfaces as ``ConnectionError``/``BadStatusLine``/``OSError`` on
        the *next* use, and without the retry that one dead socket would
        poison every later request on this client.  ``HTTPConnection``
        auto-reopens after ``close()``, so one retry on a fresh socket is
        exactly a reconnect.

        CAVEAT -- the retry assumes every request is idempotent: if the
        server processed the first attempt but the connection died before
        the response arrived, the request is replayed.  That holds for
        this service's API (GET/DELETE are naturally idempotent, and
        POST ``/v1/jobs`` dedupes resubmits by job content hash -- see
        :meth:`submit`).  Do not route a non-idempotent request through
        this client without revisiting this.
        """
        headers = headers or {"Connection": "keep-alive"}
        for attempt in (0, 1):
            try:
                self._conn.request(method, path, body=body, headers=headers)
                resp = self._conn.getresponse()
                return resp, resp.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self._conn.close()
                if attempt:
                    raise ServiceError(f"{method} {path}: {exc}") from exc
        raise AssertionError("unreachable")  # pragma: no cover

    def request(self, method: str, path: str,
                payload: "object | None" = None) -> Response:
        body = None
        headers = {"Connection": "keep-alive"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        resp, raw = self._roundtrip(method, path, body=body, headers=headers)
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"raw": raw.decode("utf-8", "replace")}
        if not isinstance(decoded, dict):
            decoded = {"value": decoded}
        return Response(resp.status, decoded, dict(resp.getheaders()))

    def text(self, path: str) -> "tuple[int, str]":
        resp, raw = self._roundtrip("GET", path)
        return resp.status, raw.decode("utf-8")

    # -- the job API -------------------------------------------------------
    def healthz(self) -> Response:
        return self.request("GET", "/healthz")

    def submit(self, spec: "dict[str, typing.Any]") -> Response:
        # Safe under _roundtrip's replay-on-dead-socket retry only
        # because the server dedupes submissions by content hash: a
        # replayed submit attaches to the already-accepted job instead
        # of enqueueing a duplicate.
        return self.request("POST", "/v1/jobs", payload=spec)

    def job(self, job_id: str) -> Response:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str, offset: int = 0,
               limit: "int | None" = None) -> Response:
        query = f"?offset={offset}"
        if limit is not None:
            query += f"&limit={limit}"
        return self.request("GET", f"/v1/jobs/{job_id}/result{query}")

    def stream_result(self, job_id: str) -> "list[dict[str, typing.Any]]":
        """Fetch the NDJSON stream; returns [meta, row, row, ...]."""
        resp, raw = self._roundtrip(
            "GET", f"/v1/jobs/{job_id}/result?stream=1")
        if resp.status != 200:
            raise ServiceError(
                f"stream_result({job_id!r}): HTTP {resp.status} "
                f"{raw[:200]!r}")
        # http.client undoes the chunking; NDJSON lines remain.
        lines = raw.decode("utf-8").splitlines()
        return [json.loads(line) for line in lines if line.strip()]

    def cancel(self, job_id: str) -> Response:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def progress(self, job_id: "str | None" = None) -> Response:
        path = ("/v1/progress" if job_id is None
                else f"/v1/jobs/{job_id}/progress")
        return self.request("GET", path)

    def metrics_text(self) -> str:
        status, text = self.text("/v1/metrics")
        if status != 200:
            raise ServiceError(f"/v1/metrics: HTTP {status}")
        return text

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.05) -> Response:
        """Poll until the job leaves queued/running; returns final status."""
        deadline = time.monotonic() + timeout
        while True:
            resp = self.job(job_id)
            if resp.status != 200:
                raise ServiceError(
                    f"wait({job_id!r}): HTTP {resp.status}: {resp.body}")
            if resp.body.get("state") not in ("queued", "running"):
                return resp
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"wait({job_id!r}): still {resp.body.get('state')} "
                    f"after {timeout}s")
            time.sleep(poll)

    def submit_and_wait(self, spec: "dict[str, typing.Any]",
                        timeout: float = 60.0) -> "tuple[Response, Response]":
        """Submit; if queued, wait.  Returns (submit, final-status)."""
        sub = self.submit(spec)
        if sub.status == 200:
            return sub, sub
        if sub.status != 202:
            raise ServiceError(f"submit: HTTP {sub.status}: {sub.body}")
        job_id = typing.cast(str, sub.body["job_id"])
        return sub, self.wait(job_id, timeout=timeout)
