"""Overlap-analysis-as-a-service: the paper tool behind one front door.

PRs 1-6 built the backends -- a content-hash result cache, a metrics
registry with OpenMetrics exposition, fault plans, crash-isolated sweep
workers, a sharded parallel-DES engine.  This package is the long-running
front door over all of them: an asyncio HTTP/JSON job server with
multi-tenant queueing, admission control, single-flight dedupe, a
sharded result cache, and streamed results.

Start it with ``python -m repro.tools.serve``; see ``docs/service.md``.
"""

from repro.service.cache import CacheLayoutError, ShardedResultCache
from repro.service.client import Response, ServiceClient, ServiceError
from repro.service.core import Job, OverlapService
from repro.service.jobs import (
    Submission,
    SubmissionError,
    job_content_key,
    parse_submission,
)
from repro.service.queue import Admission, QuotaConfig, TenantQueue
from repro.service.server import ServerThread, ServiceHTTPServer

__all__ = [
    "Admission",
    "CacheLayoutError",
    "Job",
    "OverlapService",
    "QuotaConfig",
    "Response",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "ShardedResultCache",
    "Submission",
    "SubmissionError",
    "TenantQueue",
    "job_content_key",
    "parse_submission",
]
