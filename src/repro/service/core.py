"""The overlap-analysis job service: queueing, dedupe, caching, workers.

:class:`OverlapService` is the HTTP-free heart of ``repro.service`` --
the asyncio front end in :mod:`repro.service.server` is a thin adapter
over it, and the property tests drive it directly.

Life of a submission
--------------------
1. **Canonicalize** (:mod:`repro.service.jobs`): the JSON body becomes
   the exact CLI task tuples, so content-hash keys are shared with every
   CLI invocation ever cached.
2. **Cache probe**: all cells already on disk -> the job is born
   ``done`` and the submitter gets the rows in the same round trip
   (the warm path the load test holds under 10 ms p50).
3. **Single-flight dedupe**: an identical job already queued or running
   -> the new job becomes a *waiter* on that execution; one simulation
   serves every concurrent asker, across tenants.
4. **Admission control**: per-tenant and global queue budgets; over
   budget -> HTTP 429 with a ``Retry-After`` estimate.
5. **Execution**: a bounded worker-thread pool drains the queue, running
   each job's cells through :func:`repro.experiments.runner.run_tasks`
   in crash-isolated processes (``isolate=True, on_error="continue"``) --
   a segfaulting cell fails its own job, never the server -- with a
   cooperative cancel event behind ``DELETE /v1/jobs/{id}``.

Every execution publishes the standard ``sweep.json``/``metrics.om``
artifacts (when the service has a metrics dir), so ``repro.tools.watch``
tails a server exactly like it tails a CLI sweep.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
import time
import typing

from repro.experiments.runner import FailedTask, run_tasks
from repro.metrics import MetricsRegistry, SweepProgress, render_openmetrics
from repro.service.cache import ShardedResultCache
from repro.service.jobs import (
    Submission,
    SubmissionError,
    job_content_key,
    parse_submission,
)
from repro.service.queue import QuotaConfig, TenantQueue
from repro.tracing.span import Tracer

#: Finished jobs kept addressable (GET-able) before being forgotten.
DEFAULT_MAX_FINISHED_JOBS = 10_000

_job_ids = itertools.count(1)


def _new_job_id() -> str:
    return f"job-{next(_job_ids):08d}"


class _Execution:
    """One actual run of a deduped job: the unit the queue schedules."""

    __slots__ = ("id", "key", "tenant", "priority", "label", "tasks",
                 "state", "seq", "created", "started", "finished",
                 "cancel_event", "waiters", "results", "progress_payload",
                 "tracer", "trace", "retried")

    def __init__(self, job: "Job", tasks: list) -> None:
        self.id = job.id
        self.key = job.key
        self.tenant = job.tenant
        self.priority = job.priority
        self.label = job.label
        self.tasks = tasks
        self.state = "queued"
        self.seq = 0
        self.created = time.time()
        self.started: "float | None" = None
        self.finished: "float | None" = None
        self.cancel_event = threading.Event()
        self.waiters: "list[Job]" = [job]
        self.results: "list | None" = None
        #: One automatic re-queue has been spent on a retryable failure
        #: (e.g. a lost shard-worker host); the second failure is final.
        self.retried = False
        #: Per-execution span tracer (None when service tracing is off)
        #: and its final payload after _finalize.
        self.tracer: "Tracer | None" = None
        self.trace: "dict | None" = None
        self.progress_payload: "dict[str, object]" = {
            "label": job.label, "total": len(tasks), "done": 0, "cached": 0,
            "failed": 0, "queued": len(tasks), "finished": False,
        }


@dataclasses.dataclass
class Job:
    """One tenant-visible submission (possibly a dedupe waiter)."""

    id: str
    tenant: str
    kind: str
    priority: int
    label: str
    key: str
    created: float
    #: Answered straight from the result cache at submit time.
    cached: bool = False
    #: Attached to an execution another submission started first.
    deduped: bool = False
    #: Set by DELETE; overrides the execution-derived state.
    cancelled: bool = False
    execution: "_Execution | None" = None
    #: For cache-hit jobs: the rows themselves (executions carry their own).
    results: "list | None" = None
    finished: "float | None" = None
    #: For cache-hit jobs: their (tiny) span payload; executed jobs read
    #: the trace from their execution.
    trace: "dict | None" = None

    @property
    def state(self) -> str:
        if self.cancelled:
            return "cancelled"
        if self.cached:
            return "done"
        assert self.execution is not None
        return self.execution.state

    def rows(self) -> "list | None":
        if self.results is not None:
            return self.results
        if self.execution is not None:
            return self.execution.results
        return None

    def describe(self) -> "dict[str, object]":
        exc = self.execution
        rows = self.rows()
        return {
            "job_id": self.id,
            "tenant": self.tenant,
            "kind": self.kind,
            "priority": self.priority,
            "label": self.label,
            "key": self.key,
            "state": self.state,
            "cached": self.cached,
            "deduped": self.deduped,
            "retried": exc.retried if exc is not None else False,
            "created_unix": self.created,
            "started_unix": exc.started if exc is not None else self.created,
            "finished_unix": (self.finished if self.finished is not None
                              else (exc.finished if exc is not None else None)),
            "total_rows": len(rows) if rows is not None else None,
        }


def _failed_row(value: FailedTask) -> "dict[str, object]":
    return {
        "failed": True,
        "cancelled": value.cancelled,
        "name": value.name,
        "error": value.error,
        "exitcode": value.exitcode,
        "retryable": value.retryable,
    }


class OverlapService:
    """Multi-tenant overlap-analysis job server (transport-agnostic)."""

    def __init__(
        self,
        cache_root: "str | os.PathLike | None" = None,
        cache_shards: int = 4,
        workers: int = 2,
        quotas: "QuotaConfig | None" = None,
        metrics_dir: "str | os.PathLike | None" = None,
        cache_max_entries: "int | None" = None,
        cache_max_bytes: "int | None" = None,
        max_finished_jobs: int = DEFAULT_MAX_FINISHED_JOBS,
        label: str = "service",
        trace_dir: "str | os.PathLike | None" = None,
        trace: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.registry = MetricsRegistry()
        #: Span tracing: on when asked for explicitly or via a trace dir.
        #: Every execution then carries a Tracer from HTTP accept through
        #: the crash-isolated worker processes; merged traces are served
        #: at /v1/jobs/{id}/trace and (with trace_dir) written to disk.
        self.trace_dir = os.fspath(trace_dir) if trace_dir else None
        self.trace = bool(trace or trace_dir)
        if self.trace_dir:
            os.makedirs(self.trace_dir, exist_ok=True)
        self.cache = ShardedResultCache(
            cache_root, shards=cache_shards, max_entries=cache_max_entries,
            max_bytes=cache_max_bytes, metrics=self.registry)
        self.queue = TenantQueue(quotas)
        self.workers = workers
        self.metrics_dir = os.fspath(metrics_dir) if metrics_dir else None
        self.max_finished_jobs = max_finished_jobs
        self.started_unix = time.time()

        self.jobs: "dict[str, Job]" = {}
        self._finished_order: "list[str]" = []
        self._by_key: "dict[str, _Execution]" = {}
        self._running_counts: "dict[str, int]" = {}
        self._running: "dict[str, _Execution]" = {}
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._stop = False
        self._threads: "list[threading.Thread]" = []

        # Service-level progress: one "task" per submitted job, published
        # as the standard sweep.json/metrics.om pair when metrics_dir is
        # set, so `repro.tools.watch --metrics-dir` works on a server dir.
        self.progress = SweepProgress(self.metrics_dir, label=label,
                                      registry=self.registry)
        self.progress.jobs = workers
        self._submissions = {
            outcome: self.registry.counter(
                "repro_service_submissions",
                "Submissions by admission outcome",
                labels={"outcome": outcome})
            for outcome in ("cache_hit", "deduped", "queued",
                            "rejected", "invalid")
        }
        self._finished = {
            state: self.registry.counter(
                "repro_service_jobs_finished", "Jobs finished by final state",
                labels={"state": state})
            for state in ("done", "failed", "cancelled")
        }
        self._retried = self.registry.counter(
            "repro_service_retries",
            "Jobs re-queued once after a retryable (host-loss) failure")
        self._job_seconds = self.registry.histogram(
            "repro_service_job_seconds", "Host seconds per executed job")
        self.registry.sampled_gauge(
            "repro_service_queue_depth", lambda: len(self.queue),
            "Jobs waiting for a worker")
        self.registry.sampled_gauge(
            "repro_service_jobs_running", lambda: len(self._running),
            "Jobs currently executing")
        self.registry.sampled_gauge(
            "repro_service_jobs_known", lambda: len(self.jobs),
            "Jobs currently addressable over the API")

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._threads:
            return
        self._stop = False
        for i in range(self.workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"repro-service-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers; running jobs are cancelled."""
        with self._cond:
            self._stop = True
            for exc in self._running.values():
                exc.cancel_event.set()
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout)
        self._threads.clear()

    # -- submission --------------------------------------------------------
    def submit(self, payload: object,
               accept_ts: "float | None" = None
               ) -> "tuple[int, dict[str, object]]":
        """Admit one submission; returns ``(http_status, response_body)``.

        200: answered from cache in this round trip.  202: queued (or
        attached to an in-flight identical execution).  400: invalid.
        429: tenant/global budget exhausted (body carries
        ``retry_after``, mirrored in the HTTP header).

        ``accept_ts`` (epoch seconds stamped when the HTTP request was
        accepted) anchors the ``service.http`` span when tracing is on.
        """
        try:
            sub, tasks = parse_submission(payload)
        except SubmissionError as exc:
            self._submissions["invalid"].inc()
            return 400, {"error": str(exc)}
        return self.submit_tasks(sub, tasks, accept_ts=accept_ts)

    def submit_tasks(self, sub: Submission, tasks: list,
                     accept_ts: "float | None" = None
                     ) -> "tuple[int, dict[str, object]]":
        """Admission for an already-canonicalized submission.

        Split from :meth:`submit` so tests can drive the queue, dedupe,
        and crash-isolation machinery with synthetic tasks.
        """
        key = job_content_key(sub.kind, tasks)

        tracer: "Tracer | None" = None
        if self.trace:
            tracer = Tracer(process="service worker", metrics=self.registry)
            if accept_ts is not None:
                tracer.add_span("http accept", "service.http", accept_ts,
                                tracer.now())
        t_submit = tracer.now() if tracer is not None else 0.0

        # Probe the cache outside the lock: pure disk reads, and the
        # common warm path must not serialize behind other submissions.
        hit_rows: "list[object] | None" = []
        for task in tasks:
            found, value = self.cache.get(task.key)
            if not found:
                hit_rows = None
                break
            hit_rows.append(value)
        if tracer is not None:
            tracer.add_span("cache probe", "service.cache", t_submit,
                            tracer.now(),
                            {"tasks": len(tasks),
                             "hit": hit_rows is not None})

        with self._cond:
            if hit_rows is not None:
                job = self._make_job(sub, key, cached=True)
                job.results = hit_rows
                job.finished = time.time()
                self._submissions["cache_hit"].inc()
                self.progress.total += 1
                self.progress.task_done(0.0, cached=True, name=job.label)
                self._remember_finished(job)
                if tracer is not None:
                    tracer.add_span("submit (cache hit)", "service.submit",
                                    t_submit, tracer.now(),
                                    {"job": job.id})
                    job.trace = tracer.to_payload()
                return 200, {**job.describe(), "rows_url":
                             f"/v1/jobs/{job.id}/result"}

            existing = self._by_key.get(key)
            if existing is not None:
                job = self._make_job(sub, key, deduped=True)
                job.execution = existing
                existing.waiters.append(job)
                self._submissions["deduped"].inc()
                self.progress.total += 1
                if tracer is not None and existing.tracer is not None:
                    # The waiter's submit joins the primary's timeline.
                    tracer.add_span("submit (deduped)", "service.submit",
                                    t_submit, tracer.now(),
                                    {"job": job.id, "primary": existing.id})
                    existing.tracer.absorb(tracer.to_payload())
                return 202, {**job.describe(), "primary_job_id": existing.id}

            admission = self.queue.check(sub.tenant,
                                         retry_after=self._retry_after())
            if not admission.ok:
                self._submissions["rejected"].inc()
                return 429, {"error": admission.reason,
                             "retry_after": round(admission.retry_after, 1)}

            job = self._make_job(sub, key)
            execution = _Execution(job, tasks)
            job.execution = execution
            if tracer is not None:
                tracer.add_span("submit", "service.submit", t_submit,
                                tracer.now(), {"job": job.id,
                                               "tasks": len(tasks)})
                execution.tracer = tracer
            self.queue.push(execution)
            self._by_key[key] = execution
            self._submissions["queued"].inc()
            self.progress.total += 1
            self._cond.notify()
            return 202, job.describe()

    def _make_job(self, sub: Submission, key: str, cached: bool = False,
                  deduped: bool = False) -> Job:
        job = Job(id=_new_job_id(), tenant=sub.tenant, kind=sub.kind,
                  priority=self.queue.clamp_priority(sub.priority),
                  label=sub.label, key=key, created=time.time(),
                  cached=cached, deduped=deduped)
        self.jobs[job.id] = job
        return job

    def _retry_after(self) -> float:
        """Back-off hint: queue drain time at the observed job rate."""
        executed = self.progress.done - self.progress.cached
        avg = (self.progress.busy_seconds / executed) if executed else 0.5
        estimate = avg * max(1, len(self.queue)) / max(1, self.workers)
        return min(60.0, max(1.0, estimate))

    def _remember_finished(self, job: Job) -> None:
        self._finished_order.append(job.id)
        while len(self._finished_order) > self.max_finished_jobs:
            old = self._finished_order.pop(0)
            self.jobs.pop(old, None)

    # -- job API -----------------------------------------------------------
    def job_status(self, job_id: str) -> "tuple[int, dict[str, object]]":
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                return 404, {"error": f"no such job {job_id!r}"}
            return 200, job.describe()

    def job_result(self, job_id: str, offset: int = 0,
                   limit: "int | None" = None
                   ) -> "tuple[int, dict[str, object]]":
        """Paged result rows; 409 while the job is still queued/running."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                return 404, {"error": f"no such job {job_id!r}"}
            state = job.state
            rows = job.rows()
            if rows is None:
                return 409, {"job_id": job_id, "state": state,
                             "error": "result not ready"}
            offset = max(0, offset)
            page = rows[offset:offset + limit if limit is not None else None]
            return 200, {
                "job_id": job_id,
                "state": state,
                "total_rows": len(rows),
                "offset": offset,
                "rows": page,
            }

    def job_trace(self, job_id: str) -> "tuple[int, dict[str, object]]":
        """The job's merged Perfetto trace; 409 until it has finished."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                return 404, {"error": f"no such job {job_id!r}"}
            if not self.trace:
                return 404, {"error": "tracing is disabled on this server "
                                      "(start it with --trace-dir or "
                                      "trace=True)"}
            payload = job.trace
            if payload is None and job.execution is not None:
                payload = job.execution.trace
            if payload is None:
                return 409, {"job_id": job_id, "state": job.state,
                             "error": "trace not ready"}
        from repro.tracing.merge import build_trace

        return 200, build_trace(payload)

    def cancel(self, job_id: str) -> "tuple[int, dict[str, object]]":
        """Cancel one job.  A dedupe waiter detaches without disturbing
        the shared execution; the *last* waiter to leave cancels it (a
        queued execution is dequeued, a running one has its workers
        terminated and joined via the runner's cancel event)."""
        with self._cond:
            job = self.jobs.get(job_id)
            if job is None:
                return 404, {"error": f"no such job {job_id!r}"}
            if job.state in ("done", "failed", "cancelled"):
                return 409, {"job_id": job_id, "state": job.state,
                             "error": "job already finished"}
            job.cancelled = True
            job.finished = time.time()
            self.progress.task_done(0.0, name=job.label, failed=True)
            self._finished["cancelled"].inc()
            self._remember_finished(job)
            execution = job.execution
            assert execution is not None
            if job in execution.waiters:
                execution.waiters.remove(job)
            if not execution.waiters:
                if execution.state == "queued":
                    self.queue.remove(execution.id)
                    execution.state = "cancelled"
                    execution.finished = time.time()
                    if self._by_key.get(execution.key) is execution:
                        del self._by_key[execution.key]
                elif execution.state == "running":
                    execution.cancel_event.set()
            return 200, job.describe()

    def list_jobs(self, tenant: "str | None" = None
                  ) -> "tuple[int, dict[str, object]]":
        with self._lock:
            jobs = [j.describe() for j in self.jobs.values()
                    if tenant is None or j.tenant == tenant]
            return 200, {"jobs": jobs, "count": len(jobs)}

    # -- observability -----------------------------------------------------
    def progress_payload(self, job_id: "str | None" = None
                         ) -> "tuple[int, dict[str, object]]":
        """The sweep.json-schema payload, service-level or per-job."""
        with self._lock:
            if job_id is None:
                payload = self.progress.status()
                stages = self._stage_latency()
                if stages:
                    payload["stages"] = stages
                return 200, payload
            job = self.jobs.get(job_id)
            if job is None:
                return 404, {"error": f"no such job {job_id!r}"}
            if job.execution is not None:
                payload = dict(job.execution.progress_payload)
            else:  # cache-hit job: born finished
                payload = {"label": job.label, "total": 1, "done": 1,
                           "cached": 1, "failed": 0, "queued": 0,
                           "finished": True}
            payload["state"] = job.state
            return 200, payload

    def _stage_latency(self) -> "dict[str, dict[str, float]]":
        """Per-category span stats from the tracer-fed histograms.

        What ``repro.tools.watch`` renders as live per-stage latency:
        ``{category: {count, avg_ms, total_s}}``.  Empty when tracing is
        off (the families are then never registered).
        """
        stages: "dict[str, dict[str, float]]" = {}
        for fam in self.registry.collect():
            if fam.name != "repro_trace_span_seconds":
                continue
            for labels, value in fam.samples:
                hist = typing.cast(typing.Any, value)
                if not getattr(hist, "count", 0):
                    continue
                category = dict(labels).get("category", "")
                stages[category] = {
                    "count": hist.count,
                    "avg_ms": round(1e3 * hist.sum / hist.count, 3),
                    "total_s": round(hist.sum, 6),
                }
        return stages

    def metrics_text(self) -> str:
        return render_openmetrics(self.registry)

    def healthz(self) -> "dict[str, object]":
        with self._lock:
            states: "dict[str, int]" = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "ok": True,
                "uptime_s": round(time.time() - self.started_unix, 1),
                "workers": self.workers,
                "queue_depth": len(self.queue),
                "running": len(self._running),
                "jobs": states,
                "cache": self.cache.describe(),
            }

    # -- the worker pool ---------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                execution = None
                while not self._stop:
                    execution = self.queue.pop_next(self._running_counts)
                    if execution is not None:
                        break
                    self._cond.wait(0.2)
                if self._stop or execution is None:
                    return
                execution.state = "running"
                execution.started = time.time()
                self._running_counts[execution.tenant] = (
                    self._running_counts.get(execution.tenant, 0) + 1)
                self._running[execution.id] = execution

            progress = self._execution_progress(execution)
            tracer = execution.tracer
            if tracer is not None:
                tracer.add_span("queue wait", "service.queue",
                                execution.created, tracer.now(),
                                {"job": execution.id})
            sp = (tracer.begin("execute", "service.execute",
                              job=execution.id, tasks=len(execution.tasks))
                  if tracer is not None else None)
            t0 = time.perf_counter()
            try:
                values = run_tasks(
                    execution.tasks, jobs=1, cache=self.cache,
                    on_error="continue", isolate=True,
                    cancel=execution.cancel_event, progress=progress,
                    tracer=tracer,
                )
            except Exception as exc:  # defensive: never kill a worker
                values = [FailedTask(execution.label,
                                     f"{type(exc).__name__}: {exc}")
                          for _ in execution.tasks]
            duration = time.perf_counter() - t0
            if sp is not None:
                sp.end()

            with self._cond:
                self._running_counts[execution.tenant] -= 1
                del self._running[execution.id]
                if self._should_retry(execution, values):
                    # Retryable failure (e.g. a shard-worker host died
                    # mid-run): failed cells were never cached, so one
                    # re-queue re-runs exactly them -- cells that did
                    # finish answer from cache.  _by_key still maps to
                    # this execution, so identical submissions keep
                    # deduping onto it while it waits for its retry.
                    execution.retried = True
                    execution.state = "queued"
                    self._retried.inc()
                    self.queue.push(execution)
                    self._cond.notify_all()
                    continue
                self._finalize(execution, values, duration)
                self._cond.notify_all()

    def _execution_progress(self, execution: _Execution) -> SweepProgress:
        metrics_dir = (os.path.join(self.metrics_dir, execution.id)
                       if self.metrics_dir else None)

        def on_update(payload: "dict[str, object]") -> None:
            execution.progress_payload = payload

        return SweepProgress(metrics_dir, label=execution.label,
                             on_update=on_update, min_write_interval=0.05)

    def _should_retry(self, execution: _Execution, values: list) -> bool:
        """Spend the execution's one automatic retry?  (Held lock.)

        Only *retryable* failures qualify -- cells whose exception
        advertised ``retryable = True`` (a lost shard-worker host, not a
        bug in the task).  The retry budget is one: a job that loses its
        host twice fails for real.  Cancelled and shutting-down
        executions are finalized as they are.
        """
        if self._stop or execution.retried:
            return False
        if execution.cancel_event.is_set():
            return False
        return any(isinstance(v, FailedTask) and v.retryable
                   for v in values)

    def _finalize(self, execution: _Execution, values: list,
                  duration: float) -> None:
        rows = [
            _failed_row(v) if isinstance(v, FailedTask) else v
            for v in values
        ]
        execution.results = rows
        cancelled = execution.cancel_event.is_set()
        hard_failures = any(
            isinstance(v, FailedTask) and not v.cancelled for v in values)
        if cancelled and not execution.waiters:
            execution.state = "cancelled"
        elif hard_failures or (cancelled and execution.waiters):
            execution.state = "failed"
        else:
            execution.state = "done"
        execution.finished = time.time()
        if self._by_key.get(execution.key) is execution:
            del self._by_key[execution.key]
        if execution.tracer is not None:
            execution.trace = execution.tracer.to_payload()
            execution.tracer = None
            if self.trace_dir:
                from repro.tracing.merge import save_trace

                try:
                    save_trace(os.path.join(self.trace_dir,
                                            f"{execution.id}.trace.json"),
                               execution.trace)
                except OSError:  # tracing must never fail a job
                    pass
        self._job_seconds.observe(duration)
        # Per-job accounting on the service-level dashboard: the first
        # waiter carries the execution's cost, the rest were deduped.
        for n, job in enumerate(execution.waiters):
            job.finished = execution.finished
            self._finished[execution.state].inc()
            if execution.state == "done":
                self.progress.task_done(duration if n == 0 else 0.0,
                                        cached=n > 0, name=job.label)
            else:
                self.progress.task_done(duration if n == 0 else 0.0,
                                        name=job.label, failed=True)
            self._remember_finished(job)
