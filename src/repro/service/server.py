"""Asyncio HTTP/JSON front end for :class:`~repro.service.core.OverlapService`.

A deliberately small HTTP/1.1 server on stdlib :mod:`asyncio` streams --
no web framework, no new dependencies.  It supports exactly what the job
API needs: GET/POST/DELETE, JSON request bodies by ``Content-Length``,
keep-alive connections (the load test's warm path reuses one socket for
thousands of submissions), and chunked transfer-encoding for streamed
result rows (NDJSON: one report row per chunk).

Routes
------
==========  =============================  =======================================
GET         ``/healthz``                   liveness + queue/cache summary
GET         ``/v1/metrics``                OpenMetrics text (``repro.metrics``)
GET         ``/v1/progress``               service-level ``sweep.json`` payload
GET         ``/v1/jobs``                   job listing (``?tenant=`` filter)
POST        ``/v1/jobs``                   submit (200 cached / 202 queued / 429)
GET         ``/v1/jobs/{id}``              job status
DELETE      ``/v1/jobs/{id}``              cancel
GET         ``/v1/jobs/{id}/result``       rows (``?offset=&limit=``; ``?stream=1``
                                           for chunked NDJSON)
GET         ``/v1/jobs/{id}/progress``     per-job ``sweep.json`` payload
GET         ``/v1/jobs/{id}/trace``        merged Perfetto trace JSON (when the
                                           service was started with tracing)
==========  =============================  =======================================

Blocking service calls (cache probes are disk reads) run on the event
loop's default thread-pool executor, keeping the accept loop responsive
while a submission hashes and probes.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
import time
import typing
import urllib.parse

from repro.service.core import OverlapService

MAX_BODY_BYTES = 1 << 20  # 1 MiB: submissions are small JSON objects
SERVER_NAME = "repro-service"

_REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error",
}


class _Request(typing.NamedTuple):
    method: str
    path: str
    query: "dict[str, str]"
    headers: "dict[str, str]"
    body: bytes


def _head(status: int, content_type: str, length: "int | None",
          extra: "dict[str, str] | None" = None,
          chunked: bool = False) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Server: {SERVER_NAME}",
        f"Content-Type: {content_type}",
    ]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    elif length is not None:
        lines.append(f"Content-Length: {length}")
    for k, v in (extra or {}).items():
        lines.append(f"{k}: {v}")
    lines.append("Connection: keep-alive")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


async def _read_request(reader: asyncio.StreamReader) -> "_Request | None":
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line or not line.strip():
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        return None
    method, target, _version = parts
    headers: "dict[str, str]" = {}
    while True:
        hline = await reader.readline()
        if not hline or hline in (b"\r\n", b"\n"):
            break
        name, _, value = hline.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ValueError("body too large")
    body = await reader.readexactly(length) if length else b""
    parsed = urllib.parse.urlsplit(target)
    query = {k: v[-1] for k, v in
             urllib.parse.parse_qs(parsed.query).items()}
    return _Request(method.upper(), parsed.path, query, headers, body)


class ServiceHTTPServer:
    """Binds an :class:`OverlapService` to a host:port."""

    def __init__(self, service: OverlapService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: "asyncio.AbstractServer | None" = None
        self._http_requests = {
            klass: service.registry.counter(
                "repro_service_http_requests", "HTTP responses by status class",
                labels={"code": klass})
            for klass in ("2xx", "4xx", "5xx")
        }

    async def start(self) -> int:
        """Start accepting; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- connection handling ------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except (ValueError, asyncio.IncompleteReadError):
                    await self._send_json(writer, 413,
                                          {"error": "request too large"})
                    break
                if request is None:
                    break
                keep_alive = request.headers.get(
                    "connection", "keep-alive").lower() != "close"
                try:
                    await self._dispatch(request, writer)
                except ConnectionError:
                    break
                except Exception as exc:  # route bug: report, keep serving
                    await self._send_json(
                        writer, 500,
                        {"error": f"{type(exc).__name__}: {exc}"})
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection's parked read.
            # Absorb it so the handler task finishes cleanly: a task left
            # in the cancelled state makes the streams protocol's done
            # callback log a spurious "Exception in callback".
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: object,
                         extra: "dict[str, str] | None" = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        writer.write(_head(status, "application/json", len(body), extra))
        writer.write(body)
        await writer.drain()
        self._count(status)

    async def _send_text(self, writer: asyncio.StreamWriter, status: int,
                         text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        writer.write(_head(status, content_type, len(body)))
        writer.write(body)
        await writer.drain()
        self._count(status)

    async def _send_ndjson_stream(
            self, writer: asyncio.StreamWriter, status: int,
            meta: "dict[str, object]",
            rows: "typing.Iterable[object]") -> None:
        """Chunked NDJSON: a meta line, then one line per result row."""
        writer.write(_head(status, "application/x-ndjson", None,
                           chunked=True))

        def chunk(obj: object) -> bytes:
            line = json.dumps(obj).encode("utf-8") + b"\n"
            return f"{len(line):x}\r\n".encode("ascii") + line + b"\r\n"

        writer.write(chunk(meta))
        await writer.drain()
        for row in rows:
            writer.write(chunk(row))
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        self._count(status)

    def _count(self, status: int) -> None:
        klass = f"{status // 100}xx"
        counter = self._http_requests.get(klass)
        if counter is not None:
            counter.inc()

    # -- routing -------------------------------------------------------------
    async def _dispatch(self, request: _Request,
                        writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        service = self.service
        method, path = request.method, request.path
        segments = [s for s in path.split("/") if s]

        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, service.healthz())
            return

        if path == "/v1/metrics" and method == "GET":
            text = await loop.run_in_executor(None, service.metrics_text)
            await self._send_text(writer, 200, text,
                                  "application/openmetrics-text")
            return

        if path == "/v1/progress" and method == "GET":
            status, payload = service.progress_payload()
            await self._send_json(writer, status, payload)
            return

        if path == "/v1/jobs" and method == "POST":
            accept_ts = time.time()  # span anchor: before parse + executor
            try:
                body = json.loads(request.body.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError):
                await self._send_json(writer, 400,
                                      {"error": "body is not valid JSON"})
                return
            status, payload = await loop.run_in_executor(
                None,
                functools.partial(service.submit, body, accept_ts=accept_ts))
            extra = None
            if status == 429:
                extra = {"Retry-After":
                         str(int(float(payload.get("retry_after", 1)) + 0.5))}
            await self._send_json(writer, status, payload, extra)
            return

        if path == "/v1/jobs" and method == "GET":
            status, payload = service.list_jobs(request.query.get("tenant"))
            await self._send_json(writer, status, payload)
            return

        if len(segments) >= 3 and segments[:2] == ["v1", "jobs"]:
            job_id = segments[2]
            tail = segments[3:]
            if not tail and method == "GET":
                status, payload = service.job_status(job_id)
                await self._send_json(writer, status, payload)
                return
            if not tail and method == "DELETE":
                status, payload = service.cancel(job_id)
                await self._send_json(writer, status, payload)
                return
            if tail == ["result"] and method == "GET":
                try:
                    offset = int(request.query.get("offset", "0"))
                    limit_s = request.query.get("limit")
                    limit = int(limit_s) if limit_s is not None else None
                except ValueError:
                    await self._send_json(
                        writer, 400,
                        {"error": "offset/limit must be integers"})
                    return
                status, payload = await loop.run_in_executor(
                    None, service.job_result, job_id, offset, limit)
                if status == 200 and request.query.get("stream") in ("1", "true"):
                    rows = typing.cast(list, payload.pop("rows"))
                    await self._send_ndjson_stream(writer, status, payload,
                                                   rows)
                    return
                await self._send_json(writer, status, payload)
                return
            if tail == ["progress"] and method == "GET":
                status, payload = service.progress_payload(job_id)
                await self._send_json(writer, status, payload)
                return
            if tail == ["trace"] and method == "GET":
                # Building the merged trace walks every absorbed payload:
                # off the event loop with the other blocking calls.
                status, payload = await loop.run_in_executor(
                    None, service.job_trace, job_id)
                await self._send_json(writer, status, payload)
                return

        if path.startswith("/v1/") or path == "/healthz":
            await self._send_json(writer, 405,
                                  {"error": f"{method} not supported here"})
            return
        await self._send_json(writer, 404, {"error": f"no route {path!r}"})


# ---------------------------------------------------------------------------
# Threaded embedding (tests, --smoke, the load benchmark)
# ---------------------------------------------------------------------------
class ServerThread:
    """Run the asyncio server on a private loop in a daemon thread.

    The production entrypoint (``repro.tools.serve``) runs the loop in
    the main thread; this helper is for embedding a *real* HTTP server
    inside tests and benchmarks without blocking them.
    """

    def __init__(self, service: OverlapService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.http = ServiceHTTPServer(service, host, port)
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.http.port

    @property
    def url(self) -> str:
        return f"http://{self.http.host}:{self.http.port}"

    def start(self) -> "ServerThread":
        self.service.start()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.http.start())
            self._started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.http.close())
                # Keep-alive handler coroutines may still be parked on a
                # read; cancel them so the loop closes without warnings.
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True))
                loop.close()

        self._thread = threading.Thread(target=run, name="repro-service-http",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(10.0):
            raise RuntimeError("HTTP server failed to start within 10 s")
        return self

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(5.0)
        self.service.shutdown()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
