"""Sharded front over :class:`repro.experiments.runner.ResultCache`.

One long-running server hammering a single cache directory serializes on
that directory's metadata; splitting the key space over N independent
roots (``<root>/shard-00`` ... ``shard-NN``, selected by the leading hex
of the content hash) keeps directory fan-out and any per-shard locking
independent.  The shard layout is self-describing: a ``shards.json``
marker records the shard count so a restart with a different ``--cache-
shards`` value refuses to silently mis-route keys.

Every shard can be bounded (``max_entries`` / ``max_bytes`` are *per
shard*) and all shards share one metrics registry, so the service's
``/v1/metrics`` exposes aggregate hit/miss/eviction counters.

The class implements the same ``get``/``put`` protocol ``run_tasks``
expects, so it drops in anywhere a plain :class:`ResultCache` does.
"""

from __future__ import annotations

import json
import os
import typing

from repro.experiments.runner import ResultCache

SHARD_MARKER = "shards.json"


class CacheLayoutError(RuntimeError):
    """An existing cache root was sharded with a different shard count."""


class ShardedResultCache:
    """N content-hash-partitioned :class:`ResultCache` directories."""

    def __init__(self, root: "str | os.PathLike | None" = None,
                 shards: int = 4,
                 max_entries: "int | None" = None,
                 max_bytes: "int | None" = None,
                 metrics: "object | None" = None) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        # Resolve the root exactly like ResultCache (env var, default).
        self.root = ResultCache(root).root
        self.shards = shards
        self._check_marker()
        self._shards = [
            ResultCache(os.path.join(self.root, f"shard-{i:02d}"),
                        max_entries=max_entries, max_bytes=max_bytes,
                        metrics=metrics)
            for i in range(shards)
        ]

    def _check_marker(self) -> None:
        path = os.path.join(self.root, SHARD_MARKER)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
        except (OSError, json.JSONDecodeError):
            os.makedirs(self.root, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump({"shards": self.shards}, fh)
            return
        if existing.get("shards") != self.shards:
            raise CacheLayoutError(
                f"cache root {self.root!r} was laid out with "
                f"{existing.get('shards')} shards; asked for {self.shards} "
                "(pick a fresh --cache-dir or match the existing count)"
            )

    def shard_for(self, key: str) -> ResultCache:
        return self._shards[int(key[:8], 16) % self.shards]

    # -- the run_tasks cache protocol --------------------------------------
    def get(self, key: str) -> "tuple[bool, object]":
        return self.shard_for(key).get(key)

    def put(self, key: str, value: object) -> None:
        self.shard_for(key).put(key, value)

    # -- aggregate observability -------------------------------------------
    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._shards)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._shards)

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in self._shards)

    def clear(self) -> int:
        return sum(s.clear() for s in self._shards)

    def describe(self) -> "dict[str, typing.Any]":
        return {
            "root": self.root,
            "shards": self.shards,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
