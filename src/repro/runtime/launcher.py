"""Launch N simulated ranks and harvest their overlap reports.

``run_app`` is the simulated ``mpiexec``: it builds one engine, one
fabric, one endpoint+monitor per rank, drives every rank's generator to
completion, and finalizes the monitors into per-process
:class:`~repro.core.report.OverlapReport` objects -- the paper's
"output file ... generated for each process".
"""

from __future__ import annotations

import typing

from repro.core.monitor import Monitor, NullMonitor
from repro.core.report import OverlapReport
from repro.core.trace import TraceSink
from repro.core.xfer_table import XferTable
from repro.faults.watchdog import diagnose
from repro.mpisim.config import MpiConfig
from repro.mpisim.endpoint import Endpoint
from repro.netsim.fabric import Fabric
from repro.netsim.params import NetworkParams
from repro.runtime.world import RankContext
from repro.sim import Engine

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.watchdog import WatchdogConfig, WatchdogDiagnostic
    from repro.metrics import MetricsRegistry
    from repro.telemetry.collect import TelemetryConfig, TelemetryResult
    from repro.tracing import Tracer

AppFn = typing.Callable[..., typing.Generator]


class RunResult:
    """Outcome of one simulated job."""

    def __init__(
        self,
        reports: list[OverlapReport | None],
        returns: list[object],
        rank_finish_times: list[float],
        elapsed: float,
        config: MpiConfig,
        fabric: Fabric,
    ) -> None:
        #: Per-rank overlap reports (None when uninstrumented).
        self.reports = reports
        #: Per-rank application return values.
        self.returns = returns
        #: Simulation time at which each rank's code finished.
        self.rank_finish_times = rank_finish_times
        #: Job wall time: when the slowest rank finished.
        self.elapsed = elapsed
        self.config = config
        self.fabric = fabric
        #: Per-rank ground-truth computation intervals, filled by run_app.
        self.compute_logs: list[list[tuple[float, float]]] = []
        #: Time-resolved telemetry (set when run_app got a TelemetryConfig).
        self.telemetry: "TelemetryResult | None" = None
        #: Post-mortem snapshot when a watchdog stopped the run early
        #: (None for a run that completed normally).
        self.watchdog: "WatchdogDiagnostic | None" = None
        #: Per-shard execution statistics (sharded runs only, else None).
        self.shard_stats: "list[dict] | None" = None
        #: Synchronization-protocol statistics (sharded runs only).
        self.sync_stats: "dict | None" = None

    def report(self, rank: int = 0) -> OverlapReport:
        """The report of one rank (the paper presents "data for process 0")."""
        rep = self.reports[rank]
        if rep is None:
            raise ValueError("run was not instrumented")
        return rep


def default_xfer_table(params: NetworkParams) -> XferTable:
    """Analytic stand-in for the ``perf_main``-measured table.

    ``time(n) = (latency + per-message overhead) + n / bandwidth`` --
    exactly the raw network cost of one message in the simulator, which is
    what the real ``perf_main`` utility measures on the real fabric.
    Experiments that want the full measured pipeline use
    :func:`repro.experiments.micro.build_xfer_table`.
    """
    key = (params.latency, params.per_message_overhead, params.bandwidth)
    table = _xfer_table_cache.get(key)
    if table is None:
        sizes = [float(2**k) for k in range(0, 24)]
        table = XferTable.from_model(
            params.latency + params.per_message_overhead, params.bandwidth, sizes
        )
        if len(_xfer_table_cache) < 64:
            _xfer_table_cache[key] = table
    return table


#: Memo for :func:`default_xfer_table` -- sweeps re-run many apps on the
#: same parameters, and the table (and its internal memo) is immutable.
_xfer_table_cache: "dict[tuple[float, float, float], XferTable]" = {}


def build_rank_stack(
    engine: Engine,
    fabric: Fabric,
    rank: int,
    nprocs: int,
    config: MpiConfig,
    table: XferTable,
    processor_factory: "typing.Callable | None" = None,
    metrics: "MetricsRegistry | None" = None,
    collect_trace: bool = False,
) -> "tuple[Monitor | NullMonitor, Endpoint, RankContext, TraceSink | None]":
    """Build one simulated rank: monitor, endpoint, context (and sink).

    Shared by :func:`run_app` and the sharded launcher
    (:mod:`repro.sim.parallel`): a shard worker must assemble each rank
    *exactly* as the single-process path does, or reports stop being
    bit-comparable.  Degraded-instrumentation knobs (stamp loss, bounded
    ring) are derived from the fabric's injector, per rank.
    """
    injector = fabric.injector
    degraded = injector is not None and injector.plan.degrades_instrumentation
    ring_capacity = injector.plan.ring_capacity if degraded else 0
    monitor: Monitor | NullMonitor
    sink: TraceSink | None = None
    if config.instrument:
        monitor = Monitor(
            clock=lambda: engine.now,
            xfer_table=table,
            queue_capacity=ring_capacity or config.queue_capacity,
            bin_edges=config.bin_edges,
            processor_factory=processor_factory,
            metrics=metrics,
            metrics_labels={"rank": str(rank)} if metrics is not None else None,
            stamp_loss=injector.stamp_loss(rank) if degraded else None,
            ring_mode=ring_capacity > 0,
        )
        if collect_trace:
            sink = TraceSink()
            # Subscribe the list's bound append (a C function) rather
            # than the sink itself: one less Python frame per event on
            # the stamping hot path.
            monitor.peruse.subscribe(sink.events.append)
        # Anchor interval attribution at startup, as the real framework
        # does inside MPI_Init (this is also where the transfer-time
        # table would be read from disk).
        monitor.call_enter("MPI_Init")
        monitor.call_exit("MPI_Init")
    else:
        monitor = NullMonitor()
    endpoint = Endpoint(engine, fabric, rank, nprocs, config, monitor)
    context = RankContext(engine, endpoint, monitor)
    return monitor, endpoint, context, sink


def run_app(
    app: AppFn,
    nprocs: int,
    config: MpiConfig | None = None,
    params: NetworkParams | None = None,
    xfer_table: XferTable | None = None,
    label: str = "",
    app_args: tuple = (),
    seed: int = 0,
    record_transfers: bool = False,
    telemetry: "TelemetryConfig | None" = None,
    metrics: "MetricsRegistry | None" = None,
    watchdog: "WatchdogConfig | None" = None,
    shards: int | None = None,
    shard_sync: str = "window",
    shard_strategy: str = "contiguous",
    shard_backend: str = "process",
    shard_partition: "list[list[int]] | None" = None,
    shard_batch: bool = True,
    shard_fence_impl: str = "incremental",
    shard_hosts: "typing.Sequence | None" = None,
    shard_transport: "typing.Any | None" = None,
    tracer: "Tracer | None" = None,
) -> RunResult:
    """Run ``app(ctx, *app_args)`` on ``nprocs`` simulated ranks.

    ``seed`` feeds the fabric RNG (only relevant with latency jitter).
    ``telemetry`` enables time-resolved collection (windowed measures and,
    unless disabled, per-rank raw event capture for Perfetto export); the
    result's ``telemetry`` attribute then holds a
    :class:`~repro.telemetry.collect.TelemetryResult`.
    ``metrics`` enables framework self-observability: the engine and every
    rank's monitor stack register health metrics in the given
    :class:`~repro.metrics.MetricsRegistry` (per-rank metrics labeled
    ``rank="N"``); ``None`` keeps the nil fast path.
    ``watchdog`` arms the engine watchdog: instead of hanging (or
    raising on deadlock) a wedged run is stopped early, a
    :class:`~repro.faults.watchdog.WatchdogDiagnostic` is attached as
    ``result.watchdog``, and the monitors finalize normally -- partial
    reports resolve in-flight transfers under the paper's Case 3 bounds.
    Without a watchdog, raises whatever any rank's generator raises; a
    hang (every rank blocked with no scheduled events) surfaces as a
    deadlock error from the engine.
    ``tracer`` (optional :class:`~repro.tracing.Tracer`) records host-time
    phase spans -- ``launcher.build`` / ``launcher.run`` /
    ``launcher.finalize`` here, coordinator and per-shard spans in the
    sharded path -- with zero cost and bit-identical reports when absent.
    """
    if nprocs < 1:
        raise ValueError("need at least one rank")
    if shards is not None:
        from repro.sim.parallel import run_app_sharded

        return run_app_sharded(
            app, nprocs, shards,
            config=config, params=params, xfer_table=xfer_table,
            label=label, app_args=app_args, seed=seed,
            record_transfers=record_transfers,
            telemetry=telemetry, metrics=metrics, watchdog=watchdog,
            sync=shard_sync, strategy=shard_strategy,
            backend=shard_backend, partition=shard_partition,
            batch=shard_batch, fence_impl=shard_fence_impl,
            hosts=shard_hosts, transport=shard_transport,
            tracer=tracer,
        )
    config = config or MpiConfig()
    params = params or NetworkParams()
    table = xfer_table or default_xfer_table(params)

    processor_factory = None
    if telemetry is not None:
        from repro.telemetry.windows import WindowedProcessor

        def processor_factory(xt, edges):  # noqa: F811 - deliberate rebind
            return WindowedProcessor(
                xt, edges,
                window_width=telemetry.window_width,
                max_windows=telemetry.max_windows,
            )

    sp_build = (tracer.begin("build rank stacks", "launcher.build",
                             nprocs=nprocs)
                if tracer is not None else None)
    engine = Engine()
    if metrics is not None:
        engine.attach_metrics(metrics)
    if tracer is not None:
        engine.attach_tracer(tracer)
    fabric = Fabric(
        engine, params, nprocs, config.nics_per_node, seed=seed,
        record_transfers=record_transfers,
    )
    injector = fabric.injector
    if injector is not None and metrics is not None:
        injector.attach_metrics(metrics)
    monitors: list[Monitor | NullMonitor] = []
    contexts: list[RankContext] = []
    endpoints: list[Endpoint] = []
    sinks: list[TraceSink | None] = []
    for rank in range(nprocs):
        monitor, endpoint, context, sink = build_rank_stack(
            engine, fabric, rank, nprocs, config, table,
            processor_factory=processor_factory, metrics=metrics,
            collect_trace=telemetry is not None and telemetry.collect_trace,
        )
        if metrics is not None and config.resilience is not None:
            endpoint.attach_metrics(metrics, {"rank": str(rank)})
        monitors.append(monitor)
        endpoints.append(endpoint)
        sinks.append(sink)
        contexts.append(context)

    finish_times = [0.0] * nprocs
    returns: list[object] = [None] * nprocs

    def rank_main(rank: int) -> typing.Generator:
        result = yield from app(contexts[rank], *app_args)
        yield from contexts[rank].comm.finalize()
        finish_times[rank] = engine.now
        returns[rank] = result
        return result

    procs = [engine.process(rank_main(rank)) for rank in range(nprocs)]
    if sp_build is not None:
        sp_build.end()
    sp_run = (tracer.begin("engine run", "launcher.run", nprocs=nprocs)
              if tracer is not None else None)
    diag = None
    if watchdog is None:
        engine.run()
        stuck = [p.name for p in procs if p.is_alive]
        if stuck:
            raise RuntimeError(
                f"deadlock: {len(stuck)} rank(s) never finished "
                "(blocked on communication that cannot arrive)"
            )
    else:
        # Progress = useful work, not engine activity: events stamped by
        # the monitors plus packets received by any NIC.  A retransmission
        # storm keeps the engine busy but moves neither, so it trips the
        # stall guard instead of spinning forever.
        def progress() -> int:
            stamped = sum(m.event_count for m in monitors)
            received = sum(
                nic.messages_received
                for node in range(nprocs)
                for nic in fabric.nics_of(node)
            )
            return stamped + received

        reason = engine.run_guarded(
            max_sim_time=watchdog.max_sim_time,
            stall_sim_time=watchdog.stall_sim_time,
            check_interval=watchdog.check_interval,
            progress=progress,
        )
        if reason is None and any(p.is_alive for p in procs):
            # Event store drained with ranks still blocked: a true deadlock
            # (the unguarded path would have raised here).
            reason = "deadlock"
        if reason is not None:
            diag = diagnose(engine, reason, procs, endpoints)

    if sp_run is not None:
        sp_run.annotate(sim_time=engine.now).end()
    sp_fin = (tracer.begin("finalize reports", "launcher.finalize")
              if tracer is not None else None)
    reports: list[OverlapReport | None] = []
    for rank, monitor in enumerate(monitors):
        if isinstance(monitor, Monitor):
            reports.append(monitor.finalize(rank=rank, label=label))
        else:
            reports.append(None)
    result = RunResult(
        reports=reports,
        returns=returns,
        rank_finish_times=finish_times,
        elapsed=max(finish_times),
        config=config,
        fabric=fabric,
    )
    result.watchdog = diag
    #: Per-rank ground-truth computation intervals (bound validation).
    result.compute_logs = [ctx.compute_log for ctx in contexts]
    if telemetry is not None:
        from repro.telemetry.collect import RankTelemetry, TelemetryResult
        from repro.telemetry.windows import WindowedProcessor

        per_rank = []
        for rank, monitor in enumerate(monitors):
            if not isinstance(monitor, Monitor):
                continue
            processor = monitor.processor
            assert isinstance(processor, WindowedProcessor)
            sink = sinks[rank]
            per_rank.append(
                RankTelemetry(
                    rank=rank,
                    series=processor.series(rank=rank, label=label),
                    events=sink.events if sink is not None else None,
                    names=monitor.names,
                )
            )
        result.telemetry = TelemetryResult(per_rank, table, telemetry)
    if sp_fin is not None:
        sp_fin.end()
    return result
