"""Rank launcher: runs N simulated processes and collects their reports."""

from repro.runtime.launcher import RunResult, run_app
from repro.runtime.world import RankContext

__all__ = ["RankContext", "RunResult", "run_app"]
