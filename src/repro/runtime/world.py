"""Per-rank application context.

A simulated application is a generator function ``app(ctx)`` receiving a
:class:`RankContext`; it communicates through ``ctx.comm`` and spends CPU
through ``ctx.compute``.  Time spent in ``compute`` falls outside library
calls, so the instrumentation attributes it to user computation.
"""

from __future__ import annotations

import typing

from repro.core.monitor import Monitor, NullMonitor
from repro.mpisim.communicator import Comm
from repro.mpisim.endpoint import Endpoint
from repro.sim import Engine


class RankContext:
    """Everything one simulated MPI process sees."""

    def __init__(
        self,
        engine: Engine,
        endpoint: Endpoint,
        monitor: "Monitor | NullMonitor",
    ) -> None:
        self.engine = engine
        self.endpoint = endpoint
        #: The instrumented communicator.
        self.comm = Comm(endpoint)
        #: The per-process monitor (section control lives here).
        self.monitor = monitor
        #: Ground-truth computation intervals (for bound validation).
        self.compute_log: list[tuple[float, float]] = []

    @property
    def rank(self) -> int:
        return self.endpoint.rank

    @property
    def size(self) -> int:
        return self.endpoint.size

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.engine.now

    def compute(self, seconds: float) -> typing.Generator:
        """Spend ``seconds`` of user computation (outside the library)."""
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds!r}")
        if seconds > 0:
            start = self.engine.now
            t = self.engine.elapse(seconds)
            if t is not None:
                yield t
            self.compute_log.append((start, self.engine.now))

    def section(self, name: str):
        """Context manager marking a monitored code region (Sec. 2.3)."""
        return self.monitor.section(name)
