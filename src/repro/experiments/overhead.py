"""Instrumentation overhead (Sec. 4.5, Fig. 20).

"we re-ran the NAS benchmarks using the original, uninstrumented versions
of Open MPI and MVAPICH2.  The results ... show an instrumentation
overhead of less than 0.9% of the total execution time for all test
cases."  Here the instrumented and uninstrumented builds are the same
library with the monitor swapped for a null object, and stamping costs
``overhead_per_event`` of simulated CPU per event.
"""

from __future__ import annotations

import dataclasses

from repro.armci import ArmciConfig, run_armci_app
from repro.experiments.nas_char import MPI_BENCHMARKS
from repro.nas.base import CpuModel
from repro.nas.mg import mg_app
from repro.runtime.launcher import run_app


@dataclasses.dataclass
class OverheadPoint:
    """Instrumented-vs-uninstrumented run time for one benchmark cell."""

    benchmark: str
    klass: str
    nprocs: int
    time_instrumented: float
    time_uninstrumented: float
    events: int

    @property
    def overhead_pct(self) -> float:
        """Run-time increase caused by the instrumentation (percent)."""
        if self.time_uninstrumented <= 0:
            return 0.0
        return 100.0 * (
            self.time_instrumented / self.time_uninstrumented - 1.0
        )


def measure_overhead(
    benchmark: str,
    klass: str,
    nprocs: int,
    niter: int | None = 2,
    cpu: CpuModel | None = None,
) -> OverheadPoint:
    """Run one benchmark twice -- instrumented and not -- and compare."""
    if benchmark == "mg":
        times = {}
        events = 0
        for instrument in (True, False):
            cfg = ArmciConfig(instrument=instrument)
            result = run_armci_app(
                mg_app, nprocs, config=cfg, app_args=(klass, niter, cpu, False)
            )
            times[instrument] = result.elapsed
            if instrument:
                events = result.report(0).event_count
        return OverheadPoint(benchmark, klass, nprocs, times[True], times[False], events)

    app, config_factory = MPI_BENCHMARKS[benchmark]
    if benchmark == "lu":
        args: tuple = (klass, niter, cpu, None)
    elif benchmark == "ep":
        args = (klass, cpu, 1e-3)
    else:
        args = (klass, niter, cpu)
    times = {}
    events = 0
    for instrument in (True, False):
        cfg = dataclasses.replace(config_factory(), instrument=instrument)
        result = run_app(app, nprocs, config=cfg, app_args=args)
        times[instrument] = result.elapsed
        if instrument:
            events = result.report(0).event_count
    return OverheadPoint(benchmark, klass, nprocs, times[True], times[False], events)


def overhead_suite(
    cells: tuple[tuple[str, str, int], ...] = (
        ("bt", "A", 4),
        ("cg", "A", 4),
        ("lu", "A", 4),
        ("ft", "A", 4),
        ("sp", "A", 4),
        ("mg", "A", 4),
    ),
    niter: int | None = 2,
    cpu: CpuModel | None = None,
) -> list[OverheadPoint]:
    """The Fig.-20 sweep across the NAS suite."""
    return [
        measure_overhead(bench, klass, nprocs, niter=niter, cpu=cpu)
        for bench, klass, nprocs in cells
    ]
