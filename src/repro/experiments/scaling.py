"""Scalability of the instrumentation design (paper Sec. 2.4).

"Because the instrumentation itself involves no interprocessor
communications, and is not dependent on the number of processors used by
the application (except for the startup and shutdown), it is scalable to
large processor counts."

The check: run a weak-scaled workload (fixed communication volume per
rank) at growing rank counts and verify that the per-rank instrumentation
footprint -- events stamped, queue drains, and the run-time overhead
percentage -- stays flat.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.mpisim.config import MpiConfig, openmpi_like
from repro.runtime.launcher import run_app
from repro.runtime.world import RankContext


@dataclasses.dataclass
class ScalePoint:
    """Instrumentation footprint at one rank count."""

    nprocs: int
    events_per_rank: float
    drains_per_rank: float
    overhead_pct: float
    min_pct: float
    max_pct: float


def _weak_scaled_app(ctx: RankContext, rounds: int, nbytes: float) -> typing.Generator:
    """Ring exchange: every rank sends/receives ``rounds`` messages and
    computes between initiation and wait -- per-rank work independent of
    the rank count."""
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    for _ in range(rounds):
        rreq = yield from ctx.comm.irecv(left, 1)
        sreq = yield from ctx.comm.isend(right, 1, nbytes)
        yield from ctx.compute(100e-6)
        yield from ctx.comm.waitall([sreq, rreq])


def scaling_sweep(
    proc_counts: typing.Sequence[int] = (2, 4, 8, 16, 32),
    rounds: int = 25,
    nbytes: float = 32 * 1024,
    config: MpiConfig | None = None,
    queue_capacity: int = 256,
) -> list[ScalePoint]:
    """Measure per-rank instrumentation footprint across rank counts."""
    base = config or openmpi_like()
    points: list[ScalePoint] = []
    for nprocs in proc_counts:
        times = {}
        events = drains = 0.0
        min_pct = max_pct = 0.0
        for instrument in (True, False):
            cfg = dataclasses.replace(
                base, instrument=instrument, queue_capacity=queue_capacity
            )
            result = run_app(
                _weak_scaled_app, nprocs, config=cfg,
                app_args=(rounds, nbytes),
            )
            times[instrument] = result.elapsed
            if instrument:
                events = sum(r.event_count for r in result.reports) / nprocs
                # Queue drains are not exposed on the report; approximate
                # from event count (pushes / capacity), which is exact for
                # full batches.
                drains = events / queue_capacity
                min_pct = result.report(0).total.min_overlap_pct
                max_pct = result.report(0).total.max_overlap_pct
        overhead = (
            100.0 * (times[True] / times[False] - 1.0) if times[False] > 0 else 0.0
        )
        points.append(
            ScalePoint(nprocs, events, drains, overhead, min_pct, max_pct)
        )
    return points


def render_scaling(points: typing.Sequence[ScalePoint], title: str = "") -> str:
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'procs':>6} {'events/rank':>12} {'drains/rank':>12} "
        f"{'overhead %':>11} {'min%':>6} {'max%':>6}"
    )
    for p in points:
        lines.append(
            f"{p.nprocs:>6} {p.events_per_rank:>12.1f} {p.drains_per_rank:>12.2f} "
            f"{p.overhead_pct:>11.4f} {p.min_pct:>6.1f} {p.max_pct:>6.1f}"
        )
    return "\n".join(lines)
