"""Ground-truth validation of the overlap bounds.

The paper's premise is that precise overlap cannot be measured on real
hardware ("the precise times for NIC-initiated data transfer events is
unknown to the host processor"), so the framework brackets it.  A
simulator, uniquely, *does* know the truth: every physical transfer
interval (``Fabric.transfer_log``) and every user-computation interval
(``RankContext.compute_log``).  This module computes the **true
overlapped transfer time** per process and checks it against the derived
bounds.

Exactness caveats (why a tolerance exists):

* the sender's last stamped event (its local send completion) precedes the
  remote arrival by one wire latency, so up to one latency of true overlap
  per transfer can fall outside the sender's observation window;
* ``xfer_time`` comes from the a-priori table, while contention can
  stretch the physical interval;
* case-3 maxima are deliberately optimistic (that is their definition).

Hence the validated invariants are::

    min_bound <= true_overlap + n_transfers * slack
    true_overlap <= max_bound + n_transfers * slack

with ``slack`` of one latency + per-message overhead.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.netsim.params import NetworkParams
from repro.runtime.launcher import RunResult


def merge_intervals(
    intervals: typing.Iterable[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Union of possibly-overlapping intervals, sorted and disjoint."""
    items = sorted((a, b) for a, b in intervals if b > a)
    merged: list[tuple[float, float]] = []
    for a, b in items:
        if merged and a <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], b))
        else:
            merged.append((a, b))
    return merged


def intersection_length(
    span: tuple[float, float], intervals: typing.Sequence[tuple[float, float]]
) -> float:
    """Total length of ``span``'s intersection with disjoint intervals."""
    lo, hi = span
    total = 0.0
    for a, b in intervals:
        if b <= lo:
            continue
        if a >= hi:
            break
        total += min(hi, b) - max(lo, a)
    return total


@dataclasses.dataclass
class BoundCheck:
    """One rank's bounds vs the simulator's ground truth."""

    rank: int
    true_overlap: float
    min_bound: float
    max_bound: float
    transfer_count: int
    slack: float

    @property
    def min_holds(self) -> bool:
        """The lower bound never overclaims (modulo observation slack)."""
        return self.min_bound <= self.true_overlap + self.slack

    @property
    def max_holds(self) -> bool:
        """The upper bound never underclaims (modulo observation slack)."""
        return self.true_overlap <= self.max_bound + self.slack

    @property
    def holds(self) -> bool:
        return self.min_holds and self.max_holds


def true_overlap_for_rank(
    result: RunResult, rank: int, params: NetworkParams
) -> tuple[float, int]:
    """Σ physical-transfer ∩ computation time for one rank's transfers.

    A transfer counts for a rank if that rank sent or received it (the
    same per-process accounting the framework uses); control packets
    (``nbytes <= control_packet_size``) are excluded, as in the paper.
    """
    log = result.fabric.transfer_log
    if log is None:
        raise ValueError("run_app(..., record_transfers=True) required")
    compute = merge_intervals(result.compute_logs[rank])
    total = 0.0
    count = 0
    for rec in log:
        if rec.nbytes <= params.control_packet_size:
            continue
        if rec.src == rank or rec.dst == rank:
            total += intersection_length((rec.start, rec.end), compute)
            count += 1
    return total, count


def validate_bounds(
    result: RunResult, params: NetworkParams | None = None
) -> list[BoundCheck]:
    """Check every rank's bounds against ground truth."""
    params = params or result.fabric.params
    checks = []
    per_transfer_slack = params.latency + params.per_message_overhead
    for rank, report in enumerate(result.reports):
        if report is None:
            continue
        true_overlap, count = true_overlap_for_rank(result, rank, params)
        checks.append(
            BoundCheck(
                rank=rank,
                true_overlap=true_overlap,
                min_bound=report.total.min_overlap_time,
                max_bound=report.total.max_overlap_time,
                transfer_count=count,
                slack=count * per_transfer_slack,
            )
        )
    return checks


def render_validation(checks: typing.Sequence[BoundCheck], title: str = "") -> str:
    """Tabulate bounds vs truth."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'rank':>5} {'min(ms)':>9} {'true(ms)':>9} {'max(ms)':>9} "
        f"{'n':>5} {'verdict':>8}"
    )
    for c in checks:
        lines.append(
            f"{c.rank:>5} {c.min_bound * 1e3:>9.3f} {c.true_overlap * 1e3:>9.3f} "
            f"{c.max_bound * 1e3:>9.3f} {c.transfer_count:>5} "
            f"{'ok' if c.holds else 'VIOLATED':>8}"
        )
    return "\n".join(lines)
