"""Fault-matrix robustness sweep: fault kinds x wire protocols.

Runs a tiny NAS LU job under every combination of an injected fault kind
(drop / dup / reorder / instrumentation loss) and a wire protocol
(eager / pipelined / rget / rput), with the reliable transport armed for
packet faults and a watchdog guarding every cell.  Each cell checks the
framework's internal report invariants
(:func:`repro.faults.check_run_invariants`): the point of the matrix is
that a degraded fabric degrades the *bounds* (toward Case 3), never the
report algebra.

Doubles as the CI smoke::

    python -m repro.experiments.faultmatrix --quick
"""

from __future__ import annotations

import argparse
import dataclasses
import typing

from repro.faults import WatchdogConfig, check_run_invariants
from repro.faults.plan import FaultPlan, ResilienceParams, parse_fault_spec
from repro.mpisim.config import MpiConfig, openmpi_like
from repro.netsim.params import NetworkParams
from repro.runtime.launcher import run_app

#: Wire protocols under test.  The rendezvous configs force every message
#: through the long-message path (``eager_limit=0``) so tiny NAS traffic
#: still exercises them.
PROTOCOL_CONFIGS: "dict[str, MpiConfig]" = {
    "eager": MpiConfig(name="eager", eager_limit=1 << 30),
    "pipelined": openmpi_like(eager_limit=0, name="pipelined"),
    "rget": openmpi_like(leave_pinned=True, eager_limit=0, name="rget"),
    "rput": MpiConfig(name="rput", rndv_mode="rput", eager_limit=0),
}

#: Fault kinds under test (parse_fault_spec strings).
FAULT_SPECS: "dict[str, str]" = {
    "drop": "drop=0.1",
    "dup": "dup=0.1",
    "reorder": "reorder=0.1",
    "stamp-loss": "events=0.2,ring=256",
}


@dataclasses.dataclass
class MatrixCell:
    """Outcome of one (fault kind, protocol) combination."""

    fault: str
    protocol: str
    status: str  # "ok" | watchdog reason | "error: ..."
    transfers: int
    case3: int
    dropped: int
    duplicated: int
    reordered: int
    violations: list[str]

    @property
    def passed(self) -> bool:
        return self.status == "ok" and not self.violations


def run_cell(
    fault: str,
    protocol: str,
    seed: int = 0,
    klass: str = "S",
    nprocs: int = 2,
    niter: int = 1,
) -> MatrixCell:
    """Run one matrix cell: NAS LU tiny under one fault kind and protocol."""
    from repro.experiments.nas_char import MPI_BENCHMARKS

    plan = parse_fault_spec(FAULT_SPECS[fault], seed=seed)
    config = PROTOCOL_CONFIGS[protocol]
    if plan.has_packet_faults:
        config = dataclasses.replace(config, resilience=ResilienceParams())
    app, _ = MPI_BENCHMARKS["lu"]
    try:
        result = run_app(
            app, nprocs, config=config,
            params=NetworkParams(faults=plan),
            label=f"faultmatrix.{fault}.{protocol}",
            app_args=(klass, niter, None, None),
            watchdog=WatchdogConfig(stall_sim_time=0.05, max_sim_time=60.0),
        )
    except Exception as exc:
        return MatrixCell(fault, protocol, f"error: {type(exc).__name__}: {exc}",
                          0, 0, 0, 0, 0, [])
    violations = check_run_invariants(result, raise_on_error=False)
    injector = result.fabric.injector
    total = result.reports[0].total
    status = "ok" if result.watchdog is None else result.watchdog.reason
    return MatrixCell(
        fault=fault,
        protocol=protocol,
        status=status,
        transfers=total.transfer_count,
        case3=total.case_counts.get(3, 0),
        dropped=injector.packets_dropped,
        duplicated=injector.packets_duplicated,
        reordered=injector.packets_reordered,
        violations=violations,
    )


def fault_matrix(
    faults: "typing.Sequence[str] | None" = None,
    protocols: "typing.Sequence[str] | None" = None,
    seed: int = 0,
    klass: str = "S",
    nprocs: int = 2,
    niter: int = 1,
) -> list[MatrixCell]:
    """Run the full (fault, protocol) grid; cells are independent."""
    cells = []
    for fault in faults or FAULT_SPECS:
        for protocol in protocols or PROTOCOL_CONFIGS:
            cells.append(run_cell(fault, protocol, seed=seed, klass=klass,
                                  nprocs=nprocs, niter=niter))
    return cells


def render_fault_matrix(cells: "typing.Sequence[MatrixCell]",
                        title: str = "fault matrix") -> str:
    """Fixed-width table of the matrix outcomes."""
    lines = [
        title,
        f"  {'fault':<12}{'protocol':<12}{'status':<12}"
        f"{'xfers':>6}{'case3':>6}{'drop':>6}{'dup':>5}{'reord':>6}  checks",
    ]
    for c in cells:
        checks = "ok" if not c.violations else f"{len(c.violations)} VIOLATION(S)"
        lines.append(
            f"  {c.fault:<12}{c.protocol:<12}{c.status:<12}"
            f"{c.transfers:>6}{c.case3:>6}{c.dropped:>6}{c.duplicated:>5}"
            f"{c.reordered:>6}  {checks}"
        )
        for v in c.violations:
            lines.append(f"    ! {v}")
    return "\n".join(lines)


def main(argv: "typing.Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.faultmatrix",
        description="Robustness smoke: fault kinds x wire protocols on a "
        "tiny NAS LU job, checking the internal report invariants.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--klass", default="S", choices=["S", "W", "A", "B"])
    parser.add_argument("--np", dest="nprocs", type=int, default=2)
    parser.add_argument("--niter", type=int, default=1)
    parser.add_argument("--quick", action="store_true",
                        help="alias for the defaults (tiny job); kept so CI "
                        "invocations self-describe")
    args = parser.parse_args(argv)
    cells = fault_matrix(seed=args.seed, klass=args.klass,
                         nprocs=args.nprocs, niter=args.niter)
    print(render_fault_matrix(
        cells, f"fault matrix (LU class {args.klass}, {args.nprocs} ranks)"))
    failed = [c for c in cells if not c.passed]
    if failed:
        print(f"\n{len(failed)} of {len(cells)} cells failed")
        return 1
    print(f"\nall {len(cells)} cells completed with invariants intact")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
