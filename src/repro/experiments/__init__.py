"""Experiment drivers regenerating every figure of the paper's evaluation.

* :mod:`repro.experiments.micro` -- Sec. 3 microbenchmarks (Figs. 3-9):
  two-rank overlap tests sweeping inserted computation, plus the
  ``perf_main``-style transfer-time table builder.
* :mod:`repro.experiments.nas_char` -- Sec. 4.1/4.2/4.4 NAS benchmark
  characterization (Figs. 10-13 and 19).
* :mod:`repro.experiments.sp_tuning` -- Sec. 4.3 NAS SP overlap
  improvement (Figs. 14-18).
* :mod:`repro.experiments.overhead` -- Sec. 4.5 instrumentation overhead
  (Fig. 20).
* :mod:`repro.experiments.runner` -- parallel, content-hash-cached
  execution of independent sweep points (shared by the CLIs).

Each driver returns plain data records; rendering (text tables/plots)
lives in :mod:`repro.analysis`.
"""

from repro.experiments.micro import (
    MicroPoint,
    build_xfer_table,
    measure_one_way_time,
    overlap_sweep,
)
from repro.experiments.runner import (
    ResultCache,
    Task,
    content_key,
    overlap_sweep_parallel,
    run_tasks,
)

__all__ = [
    "MicroPoint",
    "ResultCache",
    "Task",
    "build_xfer_table",
    "content_key",
    "measure_one_way_time",
    "overlap_sweep",
    "overlap_sweep_parallel",
    "run_tasks",
]
