"""Parallel, cached execution of independent experiment sweeps.

Every figure in the paper's evaluation is a sweep over independent points
(inserted-computation values, message sizes, process counts).  Each point
is a pure function of its configuration -- the simulator is deterministic
-- so two orthogonal speedups apply:

* **fan-out**: independent points run concurrently on a
  :mod:`multiprocessing` pool, with results returned in task order so a
  parallel sweep is indistinguishable from a serial one;
* **memoisation**: a point's result is stored on disk under a content
  hash of everything that determines it (function identity, arguments,
  configuration dataclasses, the transfer-time table).  Re-rendering a
  figure after an unrelated edit is a cache hit and skips the simulation
  entirely.

The cache key is structural, not positional: it hashes a canonical JSON
encoding of the task, so equal configurations hash equally regardless of
object identity.  Bump :data:`CACHE_VERSION` when a change invalidates
previously stored results (e.g. the bounds arithmetic changes); stale
entries are then simply never looked up again.

Worker functions must be module-level (picklable) and must return
picklable values -- return plain data or ``to_dict()`` payloads, never
:class:`~repro.runtime.launcher.RunResult` (it holds the live fabric).
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import json
import multiprocessing
import multiprocessing.connection
import os
import pickle
import tempfile
import threading
import time
import traceback
import typing

from repro.tracing.span import Tracer, use_tracer

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.metrics import SweepProgress

#: Bump to invalidate every previously cached result (schema or
#: simulation-semantics changes).
CACHE_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk cache root (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


# ---------------------------------------------------------------------------
# Content hashing
# ---------------------------------------------------------------------------
def _encode(obj: object) -> object:
    """Canonical JSON-compatible encoding of a task ingredient.

    Equal values encode equally; type information is kept so that e.g.
    the tuple ``(1,)`` and the list ``[1]`` do not collide with scalars.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() is exact for floats (round-trips); json would also do,
        # but being explicit keeps the key stable across json versions.
        return {"__float__": repr(obj)}
    if isinstance(obj, (list, tuple)):
        return {
            "__seq__": type(obj).__name__,
            "items": [_encode(x) for x in obj],
        }
    if isinstance(obj, dict):
        return {
            "__map__": sorted(
                (str(k), _encode(v)) for k, v in obj.items()
            )
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "fields": {
                f.name: _encode(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if callable(obj) and hasattr(obj, "__qualname__"):
        # Functions contribute identity, not code: renaming or moving a
        # worker deliberately invalidates its cached results.
        return {
            "__callable__": f"{getattr(obj, '__module__', '?')}."
            f"{obj.__qualname__}"
        }
    dumps = getattr(obj, "dumps", None)
    if callable(dumps):  # e.g. XferTable: full measured content
        return {"__dumps__": type(obj).__qualname__, "text": dumps()}
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return {"__to_dict__": type(obj).__qualname__, "data": _encode(to_dict())}
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):  # numpy arrays / scalars
        return {"__array__": _encode(tolist())}
    raise TypeError(
        f"cannot build a cache key from {type(obj).__qualname__!r}; give the "
        "object a dumps()/to_dict() method or pass plain data"
    )


def content_key(fn: typing.Callable, args: tuple, kwargs: dict) -> str:
    """Hex digest identifying one task's full input content."""
    payload = {
        "version": CACHE_VERSION,
        "fn": _encode(fn),
        "args": _encode(tuple(args)),
        "kwargs": _encode(dict(kwargs)),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The task unit and the on-disk cache
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class Task:
    """One unit of sweep work: ``fn(*args, **kwargs)``.

    ``fn`` must be a module-level callable (workers unpickle it by
    qualified name) and its return value must be picklable.
    """

    fn: typing.Callable
    args: tuple = ()
    kwargs: dict = dataclasses.field(default_factory=dict)

    @property
    def key(self) -> str:
        return content_key(self.fn, self.args, self.kwargs)

    def run(self) -> object:
        return self.fn(*self.args, **self.kwargs)


class ResultCache:
    """Content-addressed pickle store for sweep-point results.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` -- two-level fan-out keeps any
    one directory small.  Writes are atomic (tmp file + ``os.replace``),
    so a crashed or interrupted sweep never leaves a truncated entry.

    By default the store is unbounded (a CLI cache on a developer machine
    is a feature, not a leak).  A long-lived service writing to it is a
    different story: pass ``max_entries`` and/or ``max_bytes`` to bound
    it, and the least-recently-*used* entries (hits refresh recency) are
    evicted on write.  ``metrics`` (optional
    :class:`~repro.metrics.MetricsRegistry`) exposes hit/miss/eviction
    counters; several caches sharing one registry accumulate into the
    same counters.
    """

    def __init__(self, root: "str | os.PathLike | None" = None,
                 max_entries: "int | None" = None,
                 max_bytes: "int | None" = None,
                 metrics: "object | None" = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = os.fspath(root)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        #: key -> (recency tick, size); lazily built from disk the first
        #: time a bound must be enforced.  ``None`` means "not scanned".
        self._index: "dict[str, tuple[float, int]] | None" = None
        self._tick = 0.0
        self._hits_c = self._misses_c = self._evictions_c = None
        if metrics is not None:
            self._hits_c = metrics.counter(  # type: ignore[attr-defined]
                "repro_cache_lookups", "Result-cache lookups by outcome",
                labels={"outcome": "hit"})
            self._misses_c = metrics.counter(  # type: ignore[attr-defined]
                "repro_cache_lookups", labels={"outcome": "miss"})
            self._evictions_c = metrics.counter(  # type: ignore[attr-defined]
                "repro_cache_evictions", "Result-cache LRU evictions")

    @property
    def bounded(self) -> bool:
        return self.max_entries is not None or self.max_bytes is not None

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    def _next_tick(self) -> float:
        self._tick += 1.0
        return self._tick

    def _scan_index(self) -> "dict[str, tuple[float, int]]":
        """Build the LRU index from disk (mtime seeds the recency order)."""
        index: "dict[str, tuple[float, int]]" = {}
        if not os.path.isdir(self.root):
            return index
        entries = []
        for sub in os.listdir(self.root):
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir):
                continue
            for name in os.listdir(subdir):
                if not name.endswith(".pkl"):
                    continue
                try:
                    st = os.stat(os.path.join(subdir, name))
                except OSError:
                    continue
                entries.append((st.st_mtime, name[:-4], st.st_size))
        entries.sort()
        for mtime, key, size in entries:
            index[key] = (self._next_tick(), size)
        return index

    def _touch(self, key: str, size: "int | None" = None) -> None:
        """Refresh ``key``'s recency (and size, when known) in the index."""
        if not self.bounded:
            return
        if self._index is None:
            self._index = self._scan_index()
        old = self._index.get(key)
        if size is None:
            size = old[1] if old is not None else 0
        self._index[key] = (self._next_tick(), size)

    def _evict_over_bound(self) -> None:
        assert self._index is not None
        while True:
            over_entries = (self.max_entries is not None
                            and len(self._index) > self.max_entries)
            over_bytes = (self.max_bytes is not None
                          and sum(s for _, s in self._index.values())
                          > self.max_bytes)
            if not (over_entries or over_bytes) or not self._index:
                return
            victim = min(self._index, key=lambda k: self._index[k][0])  # type: ignore[index]
            del self._index[victim]
            try:
                os.unlink(self._path(victim))
            except OSError:
                pass
            self.evictions += 1
            if self._evictions_c is not None:
                self._evictions_c.inc()

    def get(self, key: str) -> "tuple[bool, object]":
        """Return ``(found, value)``; counts a hit or a miss.

        A corrupt entry -- truncated write, bit rot, a stale pickle
        referencing since-renamed classes -- is indistinguishable from a
        miss: ``pickle.load`` on garbage can raise nearly anything
        (``UnpicklingError``, ``EOFError``, ``AttributeError``,
        ``ImportError``, ``MemoryError``...), so anything short of an
        exiting exception means "re-run the point", never "crash the
        sweep".
        """
        try:
            with open(self._path(key), "rb") as fh:
                value = pickle.load(fh)
        except Exception:
            with self._lock:
                self.misses += 1
                if self._misses_c is not None:
                    self._misses_c.inc()
            return False, None
        with self._lock:
            self.hits += 1
            if self._hits_c is not None:
                self._hits_c.inc()
            self._touch(key)
        return True, value

    def put(self, key: str, value: object) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.bounded:
            with self._lock:
                try:
                    size = os.stat(path).st_size
                except OSError:
                    size = 0
                self._touch(key, size)
                self._evict_over_bound()

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for sub in os.listdir(self.root):
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir):
                continue
            for name in os.listdir(subdir):
                if name.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(subdir, name))
                        removed += 1
                    except OSError:
                        pass
        return removed


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
# Persistent worker pool, shared across run_tasks / overlap_sweep_parallel
# calls within one process.  A CLI invocation typically renders several
# figures back to back, each a sweep of its own; spinning a fresh pool per
# sweep pays process fork + interpreter/import startup every time, which
# for cached-or-small sweeps dominates the sweep itself (see
# ``benchmarks/test_sweep_startup.py``).  The pool is keyed by its worker
# count: asking for a different ``jobs`` value retires the old pool.
_shared_pool: "multiprocessing.pool.Pool | None" = None
_shared_pool_procs = 0
#: Pools ever constructed by :func:`_get_shared_pool` (startup-overhead
#: observability; the paired benchmark asserts reuse through this).
pool_spawns = 0


def _get_shared_pool(processes: int) -> "multiprocessing.pool.Pool":
    """Return the process-wide pool, (re)building it if the size changed."""
    global _shared_pool, _shared_pool_procs, pool_spawns
    if _shared_pool is not None and _shared_pool_procs == processes:
        return _shared_pool
    shutdown_shared_pool()
    _shared_pool = multiprocessing.get_context().Pool(processes=processes)
    _shared_pool_procs = processes
    pool_spawns += 1
    return _shared_pool


def shutdown_shared_pool() -> None:
    """Terminate the shared worker pool (no-op when none is alive).

    Registered via :mod:`atexit`; call it explicitly to reclaim the
    workers early (e.g. at the end of a long-lived service's sweep phase)
    or after a worker-side crash left the pool in a doubtful state.
    """
    global _shared_pool, _shared_pool_procs
    pool = _shared_pool
    _shared_pool = None
    _shared_pool_procs = 0
    if pool is not None:
        pool.terminate()
        pool.join()


atexit.register(shutdown_shared_pool)


@dataclasses.dataclass
class FailedTask:
    """Placeholder result for a sweep point whose worker raised or died.

    With ``run_tasks(..., on_error="continue")`` a failing point yields
    one of these in its result slot instead of aborting the whole sweep;
    the remaining points still run.  Failed cells are never cached, so a
    re-run retries them.
    """

    name: str
    error: str
    traceback: str = ""
    #: Worker process exit code when the worker died without reporting
    #: (crash / signal); ``None`` for an in-worker Python exception.
    exitcode: "int | None" = None
    #: True when the cell never completed because the sweep's ``cancel``
    #: event fired (the service's ``DELETE /v1/jobs/{id}`` path).
    cancelled: bool = False
    #: True when the failing exception advertised ``retryable = True``
    #: (e.g. :class:`repro.sim.parallel.ShardHostLost`): the cell failed
    #: for an environmental reason -- a lost worker host, not a bug in
    #: the task -- so re-running the identical task can succeed.  The
    #: service re-queues a job once when any of its cells says so.
    retryable: bool = False

    def __bool__(self) -> bool:
        # A failed cell is falsy so sweep code can filter results with a
        # plain truthiness check.
        return False


class SweepCancelled(RuntimeError):
    """Raised by :func:`run_tasks` under ``on_error="raise"`` when the
    ``cancel`` event fires mid-sweep."""


def _cancelled_cell(task: Task) -> FailedTask:
    return FailedTask(_task_name(task), "cancelled", cancelled=True)


def _run_task(task: Task) -> object:  # worker-side entry point
    return task.run()


def _run_task_timed(task: Task) -> "tuple[float, object]":
    """Worker-side entry point that also reports the task's host seconds."""
    t0 = time.perf_counter()
    value = task.run()
    return time.perf_counter() - t0, value


def _task_name(task: Task) -> str:
    fn = getattr(task.fn, "__name__", str(task.fn)).lstrip("_")
    return f"{fn}{task.args[:2]!r}" if task.args else fn


def _run_task_failsafe(task: Task) -> "tuple[float, object]":
    """Run one task, converting any exception into a :class:`FailedTask`."""
    t0 = time.perf_counter()
    try:
        value: object = task.run()
    except Exception as exc:
        value = FailedTask(
            _task_name(task),
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
            retryable=bool(getattr(exc, "retryable", False)),
        )
    return time.perf_counter() - t0, value


def _run_task_piped(task: Task, conn, trace_wire: "dict | None" = None) -> None:
    """Child-process entry point: run one task, ship the result home.

    With ``trace_wire`` (a :meth:`Tracer.child_wire` dict) the child
    joins the parent's trace: it records a ``runner.task`` span around
    the cell, installs the tracer ambiently (so ``run_app`` deep inside
    the cell can pick it up without a signature change -- task argument
    tuples are content-hash cache keys), and ships its span payload home
    as a third tuple element.
    """
    if trace_wire is None:
        dur, value = _run_task_failsafe(task)
        msg: tuple = (dur, value)
    else:
        tracer = Tracer.adopt(trace_wire)
        with use_tracer(tracer):
            with tracer.span(f"task {_task_name(task)}", "runner.task"):
                dur, value = _run_task_failsafe(task)
        msg = (dur, value, tracer.to_payload())
    try:
        conn.send(msg)
    except Exception as exc:  # e.g. an unpicklable result
        conn.send((dur, FailedTask(
            _task_name(task), f"result not picklable: {exc}")))
    finally:
        conn.close()


def _run_task_timed_traced(item: "tuple[Task, dict]"
                           ) -> "tuple[float, object, dict]":
    """Pool worker entry point joining the parent's trace (see above)."""
    task, trace_wire = item
    tracer = Tracer.adopt(trace_wire)
    with use_tracer(tracer):
        with tracer.span(f"task {_task_name(task)}", "runner.task"):
            t0 = time.perf_counter()
            value = task.run()
            dur = time.perf_counter() - t0
    return dur, value, tracer.to_payload()


def _progress_done(progress: "SweepProgress | None", dur: float,
                   task: Task, value: object) -> None:
    if progress is None:
        return
    if isinstance(value, FailedTask):
        progress.task_done(dur, name=_task_name(task), failed=True)
    else:
        progress.task_done(dur, name=_task_name(task))


def _run_pending_resilient(
    tasks: "list[Task]",
    pending: "list[int]",
    jobs: int,
    progress: "SweepProgress | None",
    cancel: "typing.Any | None" = None,
    tracer: "Tracer | None" = None,
) -> "list[tuple[float, object]]":
    """Fan tasks across one process *each* (at most ``jobs`` at a time).

    Unlike a shared :class:`multiprocessing.pool.Pool`, a worker that dies
    outright -- segfault, OOM kill, ``os._exit`` -- takes only its own
    cell with it: the broken pipe surfaces as an ``EOFError`` on the
    parent's end and the cell becomes a :class:`FailedTask` carrying the
    exit code, while every other point proceeds.  Results are slotted
    positionally, so ordering stays deterministic.

    ``cancel`` (any object with ``is_set()``) is polled between launches
    and while draining: once set, no new worker starts, every in-flight
    worker is terminated *and joined*, and the untouched cells resolve to
    cancelled :class:`FailedTask` placeholders.
    """
    ctx = multiprocessing.get_context()
    timed: "list[tuple[float, object] | None]" = [None] * len(pending)
    inflight: dict = {}  # parent conn -> (slot, task index, process, start)
    next_slot = 0

    def _is_cancelled() -> bool:
        return cancel is not None and cancel.is_set()

    try:
        while next_slot < len(pending) or inflight:
            if _is_cancelled():
                # Kill in-flight workers (terminate + join: no orphans,
                # no zombies) and mark every unfinished cell cancelled.
                for conn, (slot, i, proc, t0) in inflight.items():
                    proc.terminate()
                    proc.join()
                    conn.close()
                    timed[slot] = (time.perf_counter() - t0,
                                   _cancelled_cell(tasks[i]))
                    _progress_done(progress, timed[slot][0], tasks[i],
                                   timed[slot][1])
                inflight.clear()
                for slot in range(next_slot, len(pending)):
                    i = pending[slot]
                    timed[slot] = (0.0, _cancelled_cell(tasks[i]))
                    _progress_done(progress, 0.0, tasks[i], timed[slot][1])
                next_slot = len(pending)
                break
            while next_slot < len(pending) and len(inflight) < jobs:
                i = pending[next_slot]
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                # Non-daemonic: a cell may itself fork (the sharded
                # parallel-DES engine runs one process per shard), which
                # daemonic processes are forbidden to do.  The ``finally``
                # below terminates + joins whatever is still in flight, so
                # no path leaks a child.
                wire = (tracer.child_wire(f"cell {_task_name(tasks[i])}")
                        if tracer is not None else None)
                proc = ctx.Process(
                    target=_run_task_piped,
                    args=(tasks[i], child_conn, wire),
                )
                proc.start()
                child_conn.close()
                inflight[parent_conn] = (next_slot, i, proc, time.perf_counter())
                next_slot += 1
            # Poll with a timeout when cancellable so a cancel fired
            # mid-cell is noticed promptly, not at the next completion.
            ready = multiprocessing.connection.wait(
                list(inflight), timeout=0.05 if cancel is not None else None
            )
            for conn in ready:
                slot, i, proc, t0 = inflight.pop(conn)
                try:
                    msg = conn.recv()
                    dur, value = msg[0], msg[1]
                    if tracer is not None and len(msg) > 2:
                        tracer.absorb(msg[2])
                except EOFError:
                    # The worker died before reporting.
                    proc.join()
                    dur = time.perf_counter() - t0
                    value = FailedTask(
                        _task_name(tasks[i]),
                        f"worker died without a result (exitcode {proc.exitcode})",
                        exitcode=proc.exitcode,
                    )
                else:
                    proc.join()
                conn.close()
                timed[slot] = (dur, value)
                _progress_done(progress, dur, tasks[i], value)
    finally:
        for conn, (_slot, _i, proc, _t0) in inflight.items():
            proc.terminate()
            # Always join after terminate -- an exception path that skips
            # the join leaks zombie children for the parent's lifetime.
            proc.join()
            conn.close()
    return typing.cast("list[tuple[float, object]]", timed)


def run_tasks(
    tasks: typing.Sequence[Task],
    jobs: "int | None" = None,
    cache: "ResultCache | None" = None,
    progress: "SweepProgress | None" = None,
    reuse_pool: bool = True,
    on_error: str = "raise",
    cancel: "typing.Any | None" = None,
    isolate: bool = False,
    tracer: "Tracer | None" = None,
) -> list[object]:
    """Run ``tasks`` and return their results **in task order**.

    ``jobs`` counts worker processes: ``None`` or ``1`` runs serially in
    this process (no pool, no pickling); ``jobs > 1`` fans uncached tasks
    across a pool.  ``cache`` (optional) is consulted before any work and
    updated after; only cache misses are executed.  ``progress``
    (optional :class:`~repro.metrics.SweepProgress`) receives one
    ``task_done`` per task -- cache hits immediately, executed tasks with
    their measured duration as results stream back -- and is
    ``finish()``-ed before returning.

    ``reuse_pool`` (default on) keeps the worker pool alive between calls
    (same ``jobs`` value -> same pool), so a CLI invocation that renders
    several sweeps pays process startup once; pass ``False`` to get a
    private pool torn down on return.  A task that raises retires the
    shared pool (the surviving workers' state is no longer trusted)
    before the exception propagates.

    ``on_error`` selects the failure policy.  ``"raise"`` (the default)
    propagates the first failing task's exception, retiring the shared
    pool.  ``"continue"`` hardens the sweep against bad cells: a task
    that raises -- or whose worker process dies outright -- leaves a
    :class:`FailedTask` in its result slot and every other point still
    runs.  Failed cells are never cached.  With ``jobs > 1`` the
    continue policy runs each uncached task in its own short-lived
    process (crash isolation costs the pool reuse).

    ``cancel`` (optional; anything with ``is_set()``, e.g. a
    :class:`threading.Event`) makes the sweep cooperatively cancellable:
    it is checked between tasks, and in the crash-isolated path in-flight
    worker processes are terminated and joined.  Under
    ``on_error="continue"`` cancelled cells resolve to
    :class:`FailedTask` placeholders with ``cancelled=True``; under
    ``on_error="raise"`` a fired cancel raises :class:`SweepCancelled`.

    ``isolate=True`` (requires ``on_error="continue"``) forces the
    one-process-per-task crash-isolated path even for a single task or
    ``jobs=1`` -- this is how the analysis service keeps a crashing job
    from taking the server down, and what makes its ``DELETE`` endpoint
    able to kill a running job without orphaning processes.

    Determinism: results are positionally identical to a serial run
    regardless of ``jobs``, cache state, pool reuse, or progress
    publication, because every task is an independent pure function and
    the pool uses ordered ``imap``.

    ``tracer`` (optional :class:`~repro.tracing.Tracer`) records a
    ``runner.cache`` span for the cache probe and one ``runner.task``
    span per executed task; worker processes join the trace via a wire
    context over the result pipe and their span payloads are absorbed,
    so the merged timeline shows every cell on its own track.  Results
    are bit-identical with and without a tracer.
    """
    if on_error not in ("raise", "continue"):
        raise ValueError(
            f"on_error must be 'raise' or 'continue', got {on_error!r}"
        )
    if isolate and on_error != "continue":
        raise ValueError("isolate=True requires on_error='continue'")
    tasks = list(tasks)
    results: list[object] = [None] * len(tasks)
    pending: list[int] = []
    keys: list[str | None] = [None] * len(tasks)

    if progress is not None:
        progress.start(len(tasks), jobs or 1)

    if cache is not None:
        probe_t0 = tracer.now() if tracer is not None else 0.0
        for i, task in enumerate(tasks):
            key = keys[i] = task.key
            found, value = cache.get(key)
            if found:
                results[i] = value
                if progress is not None:
                    progress.task_done(0.0, cached=True, name=_task_name(task))
            else:
                pending.append(i)
        if tracer is not None:
            tracer.add_span("cache probe", "runner.cache", probe_t0,
                            tracer.now(),
                            {"hits": len(tasks) - len(pending),
                             "misses": len(pending)})
    else:
        pending = list(range(len(tasks)))

    if not pending:
        if progress is not None:
            progress.finish()
        return results

    if jobs is None:
        jobs = 1
    if isolate:
        timed = _run_pending_resilient(
            tasks, pending, max(1, min(jobs, len(pending))), progress, cancel,
            tracer,
        )
    elif jobs <= 1 or len(pending) == 1:
        run_one = _run_task_failsafe if on_error == "continue" else _run_task_timed
        timed = []
        for n, i in enumerate(pending):
            if cancel is not None and cancel.is_set():
                if on_error == "raise":
                    raise SweepCancelled(
                        f"sweep cancelled after {n} of {len(pending)} "
                        "pending tasks"
                    )
                for j in pending[n:]:
                    value = _cancelled_cell(tasks[j])
                    _progress_done(progress, 0.0, tasks[j], value)
                    timed.append((0.0, value))
                break
            if tracer is not None:
                with tracer.span(f"task {_task_name(tasks[i])}",
                                 "runner.task"):
                    with use_tracer(tracer):
                        dur, value = run_one(tasks[i])
            else:
                dur, value = run_one(tasks[i])
            _progress_done(progress, dur, tasks[i], value)
            timed.append((dur, value))
    elif on_error == "continue":
        timed = _run_pending_resilient(
            tasks, pending, min(jobs, len(pending)), progress, cancel, tracer
        )
    else:
        def _pool_imap(pool):
            if tracer is None:
                return pool.imap(_run_task_timed,
                                 [tasks[i] for i in pending], chunksize=1)
            return pool.imap(
                _run_task_timed_traced,
                [(tasks[i],
                  tracer.child_wire(f"cell {_task_name(tasks[i])}"))
                 for i in pending], chunksize=1)

        def _drain(pool) -> "list[tuple[float, object]]":
            out: "list[tuple[float, object]]" = []
            for i, item in zip(pending, _pool_imap(pool)):
                if cancel is not None and cancel.is_set():
                    raise SweepCancelled(
                        f"sweep cancelled after {len(out)} of "
                        f"{len(pending)} pending tasks"
                    )
                dur, value = item[0], item[1]
                if tracer is not None and len(item) > 2:
                    tracer.absorb(item[2])
                if progress is not None:
                    progress.task_done(dur, name=_task_name(tasks[i]))
                out.append((dur, value))
            return out

        if reuse_pool:
            pool = _get_shared_pool(jobs)
            try:
                timed = _drain(pool)
            except BaseException:
                shutdown_shared_pool()
                raise
        else:
            ctx = multiprocessing.get_context()
            with ctx.Pool(processes=min(jobs, len(pending))) as pool:
                timed = _drain(pool)

    for i, (_dur, value) in zip(pending, timed):
        results[i] = value
        if cache is not None and not isinstance(value, FailedTask):
            key = keys[i]
            assert key is not None
            cache.put(key, value)
    if progress is not None:
        progress.finish()
    return results


# ---------------------------------------------------------------------------
# Parallel overlap sweep (the Sec. 3 micro figures)
# ---------------------------------------------------------------------------
def _sweep_point(
    pattern: str,
    nbytes: float,
    compute: float,
    config: object,
    params: object,
    xfer_table_text: "str | None",
    iters: int,
    warmup: int,
) -> "tuple[float, dict, dict]":
    """Worker: one compute value of the overlap test; returns plain data."""
    from repro.core.xfer_table import XferTable
    from repro.experiments.micro import overlap_sweep

    table = (
        XferTable.loads(xfer_table_text) if xfer_table_text is not None else None
    )
    (point,) = overlap_sweep(
        pattern,
        nbytes,
        [compute],
        config,  # type: ignore[arg-type]
        params=params,  # type: ignore[arg-type]
        xfer_table=table,
        iters=iters,
        warmup=warmup,
    )
    return (compute, point.sender.to_dict(), point.receiver.to_dict())


def overlap_sweep_parallel(
    pattern: str,
    nbytes: float,
    compute_times: typing.Sequence[float],
    config: object,
    params: object = None,
    xfer_table: object = None,
    iters: int = 50,
    warmup: int = 3,
    jobs: "int | None" = None,
    cache: "ResultCache | None" = None,
    reuse_pool: bool = True,
) -> list:
    """:func:`repro.experiments.micro.overlap_sweep`, fanned and cached.

    Point-for-point equal to the serial sweep (same reports, same order);
    see ``tests/test_experiments_runner.py`` for the equivalence test.
    """
    from repro.core.report import OverlapReport
    from repro.experiments.micro import PATTERNS, MicroPoint

    if pattern not in PATTERNS:
        raise ValueError(f"pattern must be one of {PATTERNS}, got {pattern!r}")
    table_text = xfer_table.dumps() if xfer_table is not None else None  # type: ignore[attr-defined]
    tasks = [
        Task(
            _sweep_point,
            (pattern, nbytes, compute, config, params, table_text, iters, warmup),
        )
        for compute in compute_times
    ]
    points = []
    for compute, sender_d, receiver_d in run_tasks(
        tasks, jobs=jobs, cache=cache, reuse_pool=reuse_pool
    ):
        points.append(
            MicroPoint(
                compute_time=compute,
                sender=OverlapReport.from_dict(sender_d),
                receiver=OverlapReport.from_dict(receiver_d),
            )
        )
    return points
