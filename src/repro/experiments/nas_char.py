"""NAS benchmark overlap characterization (Figs. 10-13 and 19).

"We characterized each NAS benchmark from the NPB 3.2 suite in one of the
three communication environments ...  BT and CG with Open MPI v1.0.1; LU,
FT and SP with MVAPICH2-0.6.5; and MG with ARMCI v1.1 ...  Each process
was individually monitored for overlap and we present data for process 0.
Data was gathered for different message size ranges." (Sec. 4.)
"""

from __future__ import annotations

import dataclasses
import typing

from repro.armci import ArmciConfig, run_armci_app
from repro.core.report import OverlapReport
from repro.mpisim.config import MpiConfig, mvapich2_like, openmpi_like
from repro.nas.base import CpuModel
from repro.nas.bt import bt_app
from repro.nas.cg import cg_app
from repro.nas.ep import ep_app
from repro.nas.ft import ft_app
from repro.nas.is_ import is_app
from repro.nas.lu import lu_app
from repro.nas.mg import mg_app
from repro.nas.sp import sp_app
from repro.runtime.launcher import run_app

#: benchmark -> (app, library config factory) matching the paper's pairing.
MPI_BENCHMARKS: dict[str, tuple[typing.Callable, typing.Callable[[], MpiConfig]]] = {
    "bt": (bt_app, openmpi_like),
    "cg": (cg_app, openmpi_like),
    "lu": (lu_app, mvapich2_like),
    "ft": (ft_app, mvapich2_like),
    "sp": (sp_app, mvapich2_like),
    "ep": (ep_app, openmpi_like),
    "is": (is_app, mvapich2_like),
}

#: Processor counts the paper plots per benchmark (class S is dropped for
#: the biggest grids to keep decompositions legal).
PAPER_PROC_COUNTS: dict[str, tuple[int, ...]] = {
    "bt": (4, 9, 16),
    "sp": (4, 9, 16),
    "cg": (4, 8, 16),
    "lu": (4, 8, 16),
    "ft": (4, 8, 16),
    "mg": (4, 8, 16),
}


@dataclasses.dataclass
class CharPoint:
    """Overlap characterization of one (benchmark, class, nprocs) cell."""

    benchmark: str
    klass: str
    nprocs: int
    variant: str  # "", "blocking", "nonblocking", "original", "modified"
    #: Report of process 0 (the paper presents process 0).
    report: OverlapReport
    elapsed: float

    @property
    def min_pct(self) -> float:
        return self.report.total.min_overlap_pct

    @property
    def max_pct(self) -> float:
        return self.report.total.max_overlap_pct


def characterize(
    benchmark: str,
    klass: str,
    nprocs: int,
    niter: int | None = 2,
    cpu: CpuModel | None = None,
    config: MpiConfig | None = None,
    lu_planes: int | None = None,
    shards: int | None = None,
    shard_sync: str = "window",
) -> CharPoint:
    """Run one MPI NAS benchmark cell and return its characterization.

    ``shards`` routes the cell through the sharded parallel-DES engine
    (:mod:`repro.sim.parallel`); reports are bit-identical to the
    single-process channel-delivery run by construction.
    """
    try:
        app, config_factory = MPI_BENCHMARKS[benchmark]
    except KeyError:
        raise ValueError(
            f"unknown MPI benchmark {benchmark!r}; choose from "
            f"{sorted(MPI_BENCHMARKS)} (mg runs via characterize_mg)"
        ) from None
    cfg = config or config_factory()
    if benchmark == "lu":
        args: tuple = (klass, niter, cpu, lu_planes)
    elif benchmark == "ep":
        args = (klass, cpu, 1e-3)
    else:
        args = (klass, niter, cpu)
    result = run_app(
        app, nprocs, config=cfg, label=f"{benchmark}.{klass}.{nprocs}",
        app_args=args, shards=shards, shard_sync=shard_sync,
    )
    return CharPoint(benchmark, klass, nprocs, "", result.report(0), result.elapsed)


def characterize_matrix(
    benchmark: str,
    klasses: typing.Sequence[str],
    proc_counts: typing.Sequence[int],
    **kwargs: object,
) -> list[CharPoint]:
    """The full grid one paper figure plots (classes x processor counts)."""
    return [
        characterize(benchmark, klass, nprocs, **kwargs)  # type: ignore[arg-type]
        for klass in klasses
        for nprocs in proc_counts
    ]


def characterize_mg(
    klass: str,
    nprocs: int,
    blocking: bool,
    niter: int | None = 1,
    cpu: CpuModel | None = None,
) -> CharPoint:
    """One NAS-MG-on-ARMCI cell (Fig. 19: blocking vs non-blocking)."""
    result = run_armci_app(
        mg_app, nprocs, config=ArmciConfig(),
        label=f"mg.{klass}.{nprocs}.{'b' if blocking else 'nb'}",
        app_args=(klass, niter, cpu, blocking),
    )
    variant = "blocking" if blocking else "nonblocking"
    return CharPoint("mg", klass, nprocs, variant, result.report(0), result.elapsed)
