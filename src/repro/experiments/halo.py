"""Synthetic halo exchange: the shard scale-curve workload.

A 1-D ring decomposition with nearest-neighbor boundary exchange -- the
communication skeleton of every stencil code.  Each step posts eager-sized
``isend``/``irecv`` pairs to both neighbors, computes the interior while
they fly, then ``waitall``s: the canonical computation-communication
overlap pattern the paper instruments (Sec. 2), reduced to its minimal
form.

Because traffic is strictly nearest-neighbor in rank order, a contiguous
rank partition cuts exactly two directed links per shard boundary --
independent of the rank count -- which makes this the reference workload
for the sharded engine's scale curve (``benchmarks/check_regression.py``):
per-shard work grows with ranks-per-shard while cross-shard traffic stays
constant.
"""

from __future__ import annotations

import typing

from repro.runtime.world import RankContext

_TAG_LEFT = 710
_TAG_RIGHT = 711


def halo_app(
    ctx: RankContext,
    steps: int = 50,
    nbytes: float = 4096.0,
    compute_s: float = 20.0e-6,
) -> typing.Generator:
    """One rank of a periodic 1-D halo exchange; returns steps completed.

    Per step: post receives from both ring neighbors, send both boundary
    pencils (``nbytes`` each -- keep it below the eager limit so the
    exchange needs no rendezvous round-trips), overlap ``compute_s`` of
    interior work, then wait for all four requests.
    """
    comm = ctx.comm
    size = ctx.size
    rank = ctx.rank
    left = (rank - 1) % size
    right = (rank + 1) % size
    for _step in range(steps):
        if size > 1:
            rl = yield from comm.irecv(left, _TAG_RIGHT)
            rr = yield from comm.irecv(right, _TAG_LEFT)
            sl = yield from comm.isend(left, _TAG_LEFT, nbytes,
                                       bufkey="halo-left")
            sr = yield from comm.isend(right, _TAG_RIGHT, nbytes,
                                       bufkey="halo-right")
        yield from ctx.compute(compute_s)
        if size > 1:
            yield from comm.waitall([rl, rr, sl, sr])
    return steps


def halo_edges(nprocs: int) -> list[tuple[int, int]]:
    """The ring's communication graph (for the topology partitioner)."""
    return [(r, (r + 1) % nprocs) for r in range(nprocs)]
