"""Synthetic halo exchange: the shard scale-curve workload.

A 1-D ring decomposition with nearest-neighbor boundary exchange -- the
communication skeleton of every stencil code.  Each step posts eager-sized
``isend``/``irecv`` pairs to both neighbors, computes the interior while
they fly, then ``waitall``s: the canonical computation-communication
overlap pattern the paper instruments (Sec. 2), reduced to its minimal
form.

Because traffic is strictly nearest-neighbor in rank order, a contiguous
rank partition cuts exactly two directed links per shard boundary --
independent of the rank count -- which makes this the reference workload
for the sharded engine's scale curve (``benchmarks/check_regression.py``):
per-shard work grows with ranks-per-shard while cross-shard traffic stays
constant.
"""

from __future__ import annotations

import typing

from repro.runtime.world import RankContext

_TAG_LEFT = 710
_TAG_RIGHT = 711


def halo_app(
    ctx: RankContext,
    steps: int = 50,
    nbytes: float = 4096.0,
    compute_s: float = 20.0e-6,
) -> typing.Generator:
    """One rank of a periodic 1-D halo exchange; returns steps completed.

    Per step: post receives from both ring neighbors, send both boundary
    pencils (``nbytes`` each -- keep it below the eager limit so the
    exchange needs no rendezvous round-trips), overlap ``compute_s`` of
    interior work, then wait for all four requests.
    """
    comm = ctx.comm
    size = ctx.size
    rank = ctx.rank
    left = (rank - 1) % size
    right = (rank + 1) % size
    for _step in range(steps):
        if size > 1:
            rl = yield from comm.irecv(left, _TAG_RIGHT)
            rr = yield from comm.irecv(right, _TAG_LEFT)
            sl = yield from comm.isend(left, _TAG_LEFT, nbytes,
                                       bufkey="halo-left")
            sr = yield from comm.isend(right, _TAG_RIGHT, nbytes,
                                       bufkey="halo-right")
        yield from ctx.compute(compute_s)
        if size > 1:
            yield from comm.waitall([rl, rr, sl, sr])
    return steps


def halo_edges(nprocs: int) -> list[tuple[int, int]]:
    """The ring's communication graph (for the topology partitioner)."""
    return [(r, (r + 1) % nprocs) for r in range(nprocs)]


def main(argv: "typing.Sequence[str] | None" = None) -> int:
    """CLI: run (and optionally differential-check) a sharded halo run.

    The CI high-rank smoke job drives this::

        python -m repro.experiments.halo --ranks 1024 --shards 4 \\
            --steps 3 --sync null --check --json

    ``--check`` runs the full sharded differential
    (:func:`repro.netsim.differential.assert_sharded_identical`): the
    sharded run must be bit-identical to a single-process run or the
    process exits nonzero with the first diverging measures printed.

    ``--backend socket`` drives workers over TCP: give running worker
    addresses with ``--hosts``, or let ``--workers N`` spawn N local
    ``repro.sim.remote`` subprocesses (the CI multi-host smoke).  A lost
    worker (e.g. one armed with ``--worker-fault drop-after=5``) prints
    the shard-loss diagnostic snapshot and exits with code 3 within
    ``--host-timeout`` seconds -- never a hang.
    """
    import argparse
    import json as _json
    import sys as _sys

    parser = argparse.ArgumentParser(
        prog="repro.experiments.halo",
        description="Sharded halo-exchange smoke runner.",
    )
    parser.add_argument("--ranks", type=int, default=64)
    parser.add_argument("--steps", type=int, default=5)
    parser.add_argument("--nbytes", type=float, default=4096.0)
    parser.add_argument("--compute-us", type=float, default=20.0)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--sync", choices=("window", "null"),
                        default="window")
    parser.add_argument("--backend",
                        choices=("process", "inline", "socket"),
                        default="process")
    parser.add_argument("--hosts", default=None,
                        help="comma-separated host:port list of running "
                        "repro.sim.remote workers (socket backend)")
    parser.add_argument("--workers", type=int, default=0,
                        help="spawn N local socket workers instead of "
                        "--hosts (socket backend)")
    parser.add_argument("--worker-fault", default=None, metavar="SPEC",
                        help="transport fault armed on the first spawned "
                        "worker, e.g. drop-after=5 (see "
                        "repro.faults.parse_transport_fault_spec)")
    parser.add_argument("--host-timeout", type=float, default=10.0,
                        help="declare a silent socket worker lost after "
                        "this many seconds (default %(default)s)")
    parser.add_argument("--fence-impl",
                        choices=("incremental", "reference"),
                        default="incremental")
    parser.add_argument("--no-batch", action="store_true",
                        help="disable batched cross-shard wire frames")
    parser.add_argument("--check", action="store_true",
                        help="also run single-process and require "
                        "bit-identical results")
    parser.add_argument("--json", action="store_true",
                        help="print a machine-readable summary")
    args = parser.parse_args(argv)
    if args.worker_fault and (args.backend != "socket" or args.hosts):
        # Faults are armed on workers *we* spawn; on externally managed
        # hosts (or non-socket backends) the spec would be silently
        # ignored and a fault-injection run would look like a healthy
        # pass.
        parser.error(
            "--worker-fault requires --backend socket with spawned "
            "workers (--workers N); it cannot be armed on externally "
            "started --hosts workers")

    from repro.mpisim.config import mvapich2_like
    from repro.sim.parallel import ShardHostLost
    # Under ``python -m repro.experiments.halo`` this module *is*
    # ``__main__``; re-import the app by its canonical name so it pickles
    # resolvably for socket workers (whose ``__main__`` is repro.sim.remote).
    from repro.experiments.halo import halo_app as _app

    app_args = (args.steps, args.nbytes, args.compute_us * 1e-6)
    config = mvapich2_like()
    pool = None
    hosts = None
    transport = None
    if args.backend == "socket":
        from repro.netsim.transport import TransportOptions

        transport = TransportOptions(
            heartbeat_interval=min(0.5, args.host_timeout / 4.0),
            host_timeout=args.host_timeout,
        )
        if args.hosts:
            hosts = [h.strip() for h in args.hosts.split(",") if h.strip()]
        else:
            from repro.sim.remote import LocalWorkerPool

            count = args.workers or 2
            faults = None
            if args.worker_fault:
                faults = [args.worker_fault] + [None] * (count - 1)
            pool = LocalWorkerPool(count, faults=faults)
            hosts = pool.addresses
    try:
        if args.check:
            from repro.netsim.differential import (
                assert_sharded_identical,
                run_sharded_pair,
            )

            try:
                assert_sharded_identical(
                    _app, args.ranks, args.shards, config=config,
                    app_args=app_args, sync=args.sync,
                    backend=args.backend, batch=not args.no_batch,
                    fence_impl=args.fence_impl,
                    hosts=hosts, transport=transport,
                )
            except AssertionError as exc:
                print(f"halo --check FAILED: {exc}")
                return 1
            _single, result = run_sharded_pair(
                _app, args.ranks, args.shards, config=config,
                app_args=app_args, sync=args.sync, backend=args.backend,
                batch=not args.no_batch, fence_impl=args.fence_impl,
                hosts=hosts, transport=transport,
            )
        else:
            from repro.runtime.launcher import run_app

            result = run_app(
                _app, args.ranks, config=config, app_args=app_args,
                label=f"halo.{args.ranks}", shards=args.shards,
                shard_sync=args.sync, shard_backend=args.backend,
                shard_batch=not args.no_batch,
                shard_fence_impl=args.fence_impl,
                shard_hosts=hosts, shard_transport=transport,
            )
    except ShardHostLost as exc:
        if exc.diagnostic is not None:
            print(exc.diagnostic.render_text(), file=_sys.stderr)
        else:
            print(f"halo: {exc}", file=_sys.stderr)
        if args.json and exc.partial is not None:
            print(_json.dumps(exc.partial, indent=2))
        return 3
    finally:
        if pool is not None:
            pool.close()
    st = result.sync_stats
    summary = {
        "ranks": args.ranks,
        "shards": args.shards,
        "sync": args.sync,
        "fence_impl": st["fence_impl"],
        "batch": st["batch"],
        "checked": args.check,
        "events": st["events"],
        "rounds": st["rounds"],
        "messages": st["messages"],
        "fence_recomputes": st["fence_recomputes"],
        "events_per_busy_s": round(st["events"] / max(st["busy_s"])),
        "elapsed_sim_s": result.elapsed,
    }
    if args.json:
        print(_json.dumps(summary, indent=2))
    else:
        checked = " [bit-identity checked]" if args.check else ""
        print(
            f"halo {args.ranks} ranks x {args.steps} steps, "
            f"shards={args.shards} sync={args.sync}{checked}: "
            f"{summary['events']} events in {summary['rounds']} rounds, "
            f"{summary['events_per_busy_s']} ev/s per busy-CPU"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
