"""NAS SP overlap improvement via Iprobe insertion (Sec. 4.3, Figs. 14-18).

"We then placed Iprobe calls at multiple locations in the computation
region of the overlapping section.  We tried different numbers as well as
positions of Iprobe calls, each time measuring the change in overlap."
The driver runs the original and modified codes with identical inputs and
reports: overlap bounds over the overlapping section (Figs. 14, 15),
over the complete code (Figs. 16, 17), and total MPI time (Fig. 18).
"""

from __future__ import annotations

import dataclasses

from repro.core.measures import OverlapMeasures
from repro.core.report import OverlapReport
from repro.mpisim.config import MpiConfig, mvapich2_like
from repro.nas.base import CpuModel
from repro.nas.sp import OVERLAP_SECTION, sp_app
from repro.netsim.params import NetworkParams
from repro.runtime.launcher import run_app


@dataclasses.dataclass
class SpTuningResult:
    """Original-vs-modified comparison for one (class, nprocs) cell."""

    klass: str
    nprocs: int
    iprobe_calls: int
    original: OverlapReport
    modified: OverlapReport

    # -- Figs. 14/15: the overlapping section ---------------------------------
    def section(self, variant: str) -> OverlapMeasures:
        report = self.original if variant == "original" else self.modified
        return report.sections[OVERLAP_SECTION]

    # -- Figs. 16/17: the complete code ----------------------------------------
    def full(self, variant: str) -> OverlapMeasures:
        report = self.original if variant == "original" else self.modified
        return report.total

    # -- Fig. 18: overall MPI time ----------------------------------------------
    @property
    def mpi_time_original(self) -> float:
        return self.original.mpi_time

    @property
    def mpi_time_modified(self) -> float:
        return self.modified.mpi_time

    @property
    def mpi_time_improvement_pct(self) -> float:
        """Percent drop in overall MPI time from the modification."""
        if self.mpi_time_original <= 0:
            return 0.0
        return 100.0 * (1.0 - self.mpi_time_modified / self.mpi_time_original)


def sp_tuning(
    klass: str,
    nprocs: int,
    niter: int = 2,
    iprobe_calls: int = 4,
    cpu: CpuModel | None = None,
    config: MpiConfig | None = None,
    params: NetworkParams | None = None,
) -> SpTuningResult:
    """Run SP original and Iprobe-modified with identical parameters."""
    cfg = config or mvapich2_like()
    runs = {}
    for modified in (False, True):
        result = run_app(
            sp_app, nprocs, config=cfg, params=params,
            label=f"sp.{klass}.{nprocs}.{'mod' if modified else 'orig'}",
            app_args=(klass, niter, cpu, modified, iprobe_calls),
        )
        runs[modified] = result.report(0)
    return SpTuningResult(klass, nprocs, iprobe_calls, runs[False], runs[True])


def iprobe_placement_sweep(
    klass: str,
    nprocs: int,
    counts: tuple[int, ...] = (0, 1, 2, 4, 8, 16),
    niter: int = 2,
    cpu: CpuModel | None = None,
) -> list[SpTuningResult]:
    """Ablation EA5: the paper's manual search over Iprobe counts."""
    return [
        sp_tuning(klass, nprocs, niter=niter, iprobe_calls=n, cpu=cpu)
        for n in counts
    ]
