"""Protocol crossover: where does rendezvous start beating eager?

Not a paper figure, but the decision its protocol analysis implies: the
eager path buys sender-side buffering (instant Isend return, full sender
overlap) at the cost of a copy; zero-copy rendezvous avoids the copy but
needs the handshake.  Sweeping message size with each protocol forced,
this finds the latency-minimizing threshold -- and, separately, the
*overlap*-maximizing one, which is not the same answer (the framework's
point: latency tells only half the story).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.mpisim.config import MpiConfig
from repro.runtime.launcher import run_app
from repro.runtime.world import RankContext


@dataclasses.dataclass
class CrossoverPoint:
    """One (size, protocol) cell of the sweep."""

    nbytes: float
    protocol: str  # "eager" | rendezvous mode
    #: Mean per-message completion latency at the receiver (s).
    latency: float
    #: Sender's guaranteed overlap fraction with ample computation.
    sender_min_pct: float


def _pingpong(ctx: RankContext, nbytes: float, iters: int, compute: float):
    for _ in range(iters):
        if ctx.rank == 0:
            req = yield from ctx.comm.isend(1, 0, nbytes, bufkey="b")
            yield from ctx.compute(compute)
            yield from ctx.comm.wait(req)
        else:
            yield from ctx.comm.recv(0, 0)


def crossover_sweep(
    sizes: typing.Sequence[float],
    rndv_mode: str = "rget",
    iters: int = 30,
) -> list[CrossoverPoint]:
    """For each size, measure both protocols (forced via the threshold)."""
    points: list[CrossoverPoint] = []
    for nbytes in sizes:
        for protocol, limit in (("eager", int(nbytes)), (rndv_mode, 0)):
            config = MpiConfig(
                name=f"x-{protocol}", eager_limit=limit,
                rndv_mode=rndv_mode, leave_pinned=True,
            )
            # Ample computation so overlap potential is protocol-limited.
            compute = 3.0 * (6e-6 + nbytes / 700e6)
            result = run_app(
                _pingpong, 2, config=config,
                app_args=(nbytes, iters, compute),
            )
            receiver = result.report(1)
            # Receiver-side completion latency: time per message spent in
            # the library (recv call time / messages).
            latency = receiver.total.communication_call_time / iters
            points.append(
                CrossoverPoint(
                    nbytes=nbytes,
                    protocol=protocol,
                    latency=latency,
                    sender_min_pct=result.report(0).total.min_overlap_pct,
                )
            )
    return points


def find_crossover(points: typing.Sequence[CrossoverPoint]) -> float | None:
    """Smallest size at which rendezvous latency beats eager, or None."""
    by_size: dict[float, dict[str, CrossoverPoint]] = {}
    for p in points:
        by_size.setdefault(p.nbytes, {})[
            "eager" if p.protocol == "eager" else "rndv"
        ] = p
    for size in sorted(by_size):
        cell = by_size[size]
        if "eager" in cell and "rndv" in cell:
            if cell["rndv"].latency < cell["eager"].latency:
                return size
    return None


def render_crossover(points: typing.Sequence[CrossoverPoint], title: str = "") -> str:
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'bytes':>10} {'protocol':>9} {'recv lat(us)':>13} {'snd min ovlp %':>15}"
    )
    for p in points:
        lines.append(
            f"{int(p.nbytes):>10} {p.protocol:>9} {p.latency * 1e6:>13.2f} "
            f"{p.sender_min_pct:>15.1f}"
        )
    return "\n".join(lines)
