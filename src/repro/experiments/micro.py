"""Section 3 microbenchmarks: the two-process overlap test (Figs. 3-9).

"We ran an overlap test in which two processes communicate a message using
different combinations of point-to-point MPI calls with increasing
computation inserted between the initiating and wait non-blocking methods.
One process acts as a sender calling only MPI_Send or MPI_Isend methods,
while the other process acts as a receiver calling only MPI_Recv or
MPI_Irecv methods." (Sec. 3.2.)

Also provides the simulated ``perf_main`` utility: a raw NIC-level
ping-pong that measures one-way transfer times for a range of sizes and
writes the disk-resident table the instrumented library loads at init.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.report import OverlapReport
from repro.core.xfer_table import XferTable
from repro.mpisim.config import MpiConfig
from repro.netsim.fabric import Fabric
from repro.netsim.params import NetworkParams
from repro.runtime.launcher import run_app
from repro.runtime.world import RankContext
from repro.sim import Engine

#: Valid call-pair patterns (which side is non-blocking).
PATTERNS = ("isend_irecv", "isend_recv", "send_irecv")

#: Default table sample sizes: powers of two, 1 B .. 8 MiB.
DEFAULT_TABLE_SIZES = tuple(float(2**k) for k in range(0, 24))


# ---------------------------------------------------------------------------
# perf_main: a-priori transfer-time measurement on the raw fabric
# ---------------------------------------------------------------------------
def measure_one_way_time(
    params: NetworkParams, nbytes: float, reps: int = 4
) -> float:
    """One-way transfer time for ``nbytes`` measured on an idle fabric.

    A fresh two-node fabric plays ping-pong ``reps`` times; the result is
    the mean one-way (arrival - post) time.  This is the simulation analog
    of running Mellanox's ``perf_main`` before the instrumented runs.
    """
    if reps < 1:
        raise ValueError("need at least one repetition")
    engine = Engine()
    fabric = Fabric(engine, params, num_nodes=2)
    a, b = fabric.nic(0), fabric.nic(1)
    samples: list[float] = []

    def take_ball(me):
        # Drain local send completions (left in the CQ by earlier serves)
        # while waiting for the ball to arrive.
        while not me.inbound:
            me.cq.clear()
            yield me.wait_activity()
        me.inbound.popleft()

    def player(me, peer, serves_first):
        for _ in range(reps):
            if serves_first:
                start = engine.now
                me.post_send(peer, nbytes, payload="ball")
                yield from take_ball(me)
                samples.append((engine.now - start) / 2.0)
            else:
                yield from take_ball(me)
                me.post_send(peer, nbytes, payload="ball")

    engine.process(player(a, b, True))
    engine.process(player(b, a, False))
    engine.run()
    return sum(samples) / len(samples)


def build_xfer_table(
    params: NetworkParams | None = None,
    sizes: typing.Sequence[float] = DEFAULT_TABLE_SIZES,
    path: str | None = None,
    reps: int = 2,
) -> XferTable:
    """Measure transfer times for ``sizes`` and optionally save the table.

    The one-time cost of loading this file at init is the caveat the paper
    notes under Fig. 20.
    """
    params = params or NetworkParams()
    times = [measure_one_way_time(params, s, reps=reps) for s in sizes]
    table = XferTable(list(sizes), times)
    if path is not None:
        table.save(path)
    return table


# ---------------------------------------------------------------------------
# The overlap test
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class MicroPoint:
    """One point of an overlap-vs-computation sweep."""

    compute_time: float
    #: Report of the sending rank (rank 0).
    sender: OverlapReport
    #: Report of the receiving rank (rank 1).
    receiver: OverlapReport

    def side(self, which: str) -> OverlapReport:
        if which == "sender":
            return self.sender
        if which == "receiver":
            return self.receiver
        raise ValueError(f"side must be sender/receiver, got {which!r}")

    def wait_time(self, which: str) -> float:
        """Mean MPI_Wait duration on one side."""
        return self.side(which).mean_call_time("MPI_Wait")

    def min_pct(self, which: str) -> float:
        return self.side(which).total.min_overlap_pct

    def max_pct(self, which: str) -> float:
        return self.side(which).total.max_overlap_pct


def _sender_app(
    ctx: RankContext, pattern: str, nbytes: float, compute: float, iters: int,
    warmup: int,
) -> typing.Generator:
    comm = ctx.comm
    for i in range(warmup + iters):
        if i == warmup:
            ctx.monitor.resume()
        if pattern in ("isend_irecv", "isend_recv"):
            req = yield from comm.isend(1, 0, nbytes, bufkey="sendbuf")
            yield from ctx.compute(compute)
            yield from comm.wait(req)
        else:
            # Blocking side: bare send loop -- computation is only inserted
            # "between the initiating and wait non-blocking methods".
            yield from comm.send(1, 0, nbytes, bufkey="sendbuf")


def _receiver_app(
    ctx: RankContext, pattern: str, nbytes: float, compute: float, iters: int,
    warmup: int,
) -> typing.Generator:
    comm = ctx.comm
    for i in range(warmup + iters):
        if i == warmup:
            ctx.monitor.resume()
        if pattern in ("isend_irecv", "send_irecv"):
            req = yield from comm.irecv(0, 0)
            yield from ctx.compute(compute)
            yield from comm.wait(req)
        else:
            # Blocking side: bare receive loop (it polls continuously, so
            # rendezvous data transfers start as soon as the RTS arrives).
            status, _ = yield from comm.recv(0, 0)
            assert status.nbytes == nbytes


def _micro_app(
    ctx: RankContext, pattern: str, nbytes: float, compute: float, iters: int,
    warmup: int,
) -> typing.Generator:
    # Warm-up iterations run unmonitored (registration caches fill, queues
    # settle); the monitor resumes at the first measured iteration.
    ctx.monitor.pause()
    if ctx.rank == 0:
        yield from _sender_app(ctx, pattern, nbytes, compute, iters, warmup)
    else:
        yield from _receiver_app(ctx, pattern, nbytes, compute, iters, warmup)


def overlap_sweep(
    pattern: str,
    nbytes: float,
    compute_times: typing.Sequence[float],
    config: MpiConfig,
    params: NetworkParams | None = None,
    xfer_table: XferTable | None = None,
    iters: int = 50,
    warmup: int = 3,
) -> list[MicroPoint]:
    """Run the two-process overlap test across ``compute_times``.

    Returns one :class:`MicroPoint` per inserted-computation value, each
    holding both ranks' overlap reports (the figures plot the non-blocking
    side).
    """
    if pattern not in PATTERNS:
        raise ValueError(f"pattern must be one of {PATTERNS}, got {pattern!r}")
    if iters < 1:
        raise ValueError("need at least one measured iteration")
    points: list[MicroPoint] = []
    for compute in compute_times:
        result = run_app(
            _micro_app,
            nprocs=2,
            config=config,
            params=params,
            xfer_table=xfer_table,
            label=f"micro.{pattern}.{int(nbytes)}B.c{compute:g}",
            app_args=(pattern, nbytes, compute, iters, warmup),
        )
        points.append(
            MicroPoint(
                compute_time=compute,
                sender=result.report(0),
                receiver=result.report(1),
            )
        )
    return points
