"""Fixed-size circular event queue (paper Fig. 2).

The data collection module logs time-stamped events into a statically
allocated, fixed-size, in-memory structure.  When the queue fills, the data
processing module examines the events, updates the overlap measures
on-the-fly, and the head pointer is reset so subsequent events can be
stored.  No tracing is performed: the queue never grows and nothing is
written to disk until the final report.

Overflow semantics are explicit.  With a ``drain`` callback (the normal
monitor wiring) a full queue is flushed to the processor and nothing is
ever lost.  Without one (``drain=None`` -- a standalone capture ring, e.g.
a debugging tap on the PERUSE hub) the queue keeps the **newest**
``capacity`` events, overwriting the oldest and counting every overwrite
in :attr:`CircularEventQueue.dropped` -- overflow is a number, not a
silent behavior.
"""

from __future__ import annotations

import time
import typing

from repro.core.events import TimedEvent

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.metrics import MetricsRegistry


class CircularEventQueue:
    """Statically allocated event buffer drained by a callback when full.

    Parameters
    ----------
    capacity:
        Number of event slots (the paper's fixed queue size).
    drain:
        Callable invoked with the sequence of buffered events (oldest
        first) when the queue fills or :meth:`flush` is called.  After the
        callback returns, the head pointer is reset.  ``None`` selects
        ring mode: overflow overwrites the oldest event and increments
        :attr:`dropped`.
    metrics:
        Optional :class:`~repro.metrics.MetricsRegistry`; when given, the
        queue registers occupancy / flush / drop health metrics under
        ``labels``.  ``None`` (the default) is the nil fast path: no
        registration, no per-event metric work.
    """

    def __init__(
        self,
        capacity: int,
        drain: "typing.Callable[[typing.Sequence[TimedEvent]], None] | None",
        metrics: "MetricsRegistry | None" = None,
        labels: "dict[str, str] | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._drain = drain
        # Slot storage grows on demand up to ``capacity`` rather than
        # being preallocated: a 4096-rank run builds 4096 of these queues
        # and most never see more than a few dozen events between drains,
        # so eager ``[None] * capacity`` lists were ~130 MB of dead
        # ballast at high rank counts.  Observable behavior (capacity
        # bound, drain points, ring overwrite) is unchanged.
        self._slots: list[TimedEvent | None] = []
        self._head = 0  # next free slot
        self._start = 0  # oldest slot (ring mode only)
        self._draining = False
        #: Total events ever pushed (diagnostics).
        self.pushed = 0
        #: Number of times the queue filled and was drained.
        self.drains = 0
        #: Events overwritten before anyone saw them (ring mode overflow).
        self.dropped = 0
        #: Flushes requested while a drain callback was already running.
        self.reentrant_flushes = 0
        #: Highest occupancy ever reached.
        self.occupancy_high_water = 0
        self._flush_hist = None
        if metrics is not None:
            self.attach_metrics(metrics, labels)

    def attach_metrics(
        self,
        metrics: "MetricsRegistry",
        labels: "dict[str, str] | None" = None,
    ) -> None:
        """Register this queue's health metrics (sampled: no hot-path cost)."""
        metrics.sampled_gauge(
            "repro_equeue_occupancy", lambda: self._head,
            "Events currently buffered in the circular queue", labels)
        metrics.sampled_gauge(
            "repro_equeue_occupancy_hiwater",
            lambda: self.occupancy_high_water,
            "Highest circular-queue occupancy reached", labels)
        metrics.sampled_counter(
            "repro_equeue_events_pushed", lambda: self.pushed,
            "Events ever pushed into the circular queue", labels)
        metrics.sampled_counter(
            "repro_equeue_flushes", lambda: self.drains,
            "Queue drains to the data processor", labels)
        metrics.sampled_counter(
            "repro_equeue_events_dropped", lambda: self.dropped,
            "Events overwritten on ring-mode overflow", labels)
        metrics.sampled_counter(
            "repro_equeue_reentrant_flushes", lambda: self.reentrant_flushes,
            "Flushes requested while a drain was already running", labels)
        self._flush_hist = metrics.histogram(
            "repro_equeue_flush_seconds",
            "Host seconds spent inside one drain callback", labels)

    def __len__(self) -> int:
        return self._head

    def push(self, event: TimedEvent) -> None:
        """Append an event, draining to the processor first if full.

        In ring mode (no drain callback) a full queue overwrites its
        oldest event instead, counting the loss in :attr:`dropped`.
        """
        head = self._head
        if head == self.capacity:
            if self._drain is None:
                # Ring mode: overwrite the oldest slot, keep the newest
                # ``capacity`` events, and account for the loss.
                self._slots[self._start] = event
                self._start += 1
                if self._start == self.capacity:
                    self._start = 0
                self.dropped += 1
                self.pushed += 1
                return
            self.flush()
            head = self._head
        slots = self._slots
        try:
            slots[head] = event
        except IndexError:
            # Slot storage grows geometrically toward ``capacity`` (at
            # most O(log capacity) times per queue); the steady-state
            # store above stays branch-free on the stamping hot path.
            grown = min(self.capacity, max(64, 2 * len(slots)))
            slots.extend([None] * (grown - len(slots)))
            slots[head] = event
        head += 1
        self._head = head
        if head > self.occupancy_high_water:
            self.occupancy_high_water = head
        self.pushed += 1

    def events(self) -> list[TimedEvent]:
        """Buffered events, oldest first, without consuming them."""
        slots = typing.cast("list[TimedEvent]", self._slots)
        if self._head == self.capacity and self._start:
            return slots[self._start:] + slots[: self._start]
        return slots[: self._head]

    def flush(self) -> None:
        """Drain all buffered events to the processor and reset the head.

        Reentrancy-safe: the head is reset *before* the drain callback
        runs (the batch is an independent copy), so a callback that
        pushes events back -- e.g. a processor emitting derived events
        while consuming a full queue -- stores them in the freed slots
        instead of having them silently erased by a post-drain reset.
        """
        if self._head == 0:
            return
        if self._drain is None:
            raise ValueError("cannot flush a queue created without a drain")
        if self._draining:
            self.reentrant_flushes += 1
        batch = typing.cast("list[TimedEvent]", self._slots[: self._head])
        self.drains += 1
        self._head = 0
        hist = self._flush_hist
        was_draining = self._draining
        self._draining = True
        try:
            if hist is not None:
                t0 = time.perf_counter()
                self._drain(batch)
                hist.observe(time.perf_counter() - t0)
            else:
                self._drain(batch)
        finally:
            self._draining = was_draining
