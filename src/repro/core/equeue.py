"""Fixed-size circular event queue (paper Fig. 2).

The data collection module logs time-stamped events into a statically
allocated, fixed-size, in-memory structure.  When the queue fills, the data
processing module examines the events, updates the overlap measures
on-the-fly, and the head pointer is reset so subsequent events can be
stored.  No tracing is performed: the queue never grows and nothing is
written to disk until the final report.
"""

from __future__ import annotations

import typing

from repro.core.events import TimedEvent


class CircularEventQueue:
    """Statically allocated event buffer drained by a callback when full.

    Parameters
    ----------
    capacity:
        Number of event slots (the paper's fixed queue size).
    drain:
        Callable invoked with the sequence of buffered events (oldest
        first) when the queue fills or :meth:`flush` is called.  After the
        callback returns, the head pointer is reset.
    """

    def __init__(
        self,
        capacity: int,
        drain: typing.Callable[[typing.Sequence[TimedEvent]], None],
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._drain = drain
        self._slots: list[TimedEvent | None] = [None] * capacity
        self._head = 0  # next free slot
        #: Total events ever pushed (diagnostics).
        self.pushed = 0
        #: Number of times the queue filled and was drained.
        self.drains = 0

    def __len__(self) -> int:
        return self._head

    def push(self, event: TimedEvent) -> None:
        """Append an event, draining to the processor first if full."""
        if self._head == self.capacity:
            self.flush()
        self._slots[self._head] = event
        self._head += 1
        self.pushed += 1

    def flush(self) -> None:
        """Drain all buffered events to the processor and reset the head.

        Reentrancy-safe: the head is reset *before* the drain callback
        runs (the batch is an independent copy), so a callback that
        pushes events back -- e.g. a processor emitting derived events
        while consuming a full queue -- stores them in the freed slots
        instead of having them silently erased by a post-drain reset.
        """
        if self._head == 0:
            return
        batch = typing.cast("list[TimedEvent]", self._slots[: self._head])
        self.drains += 1
        self._head = 0
        self._drain(batch)
