"""The overlap instrumentation framework (the paper's primary contribution).

This package implements the CLUSTER 2006 measurement framework exactly as
described in Section 2 of the paper:

* four event kinds -- ``CALL_ENTER`` / ``CALL_EXIT`` demarcating library
  calls, ``XFER_BEGIN`` / ``XFER_END`` approximating physical data movement
  (:mod:`repro.core.events`);
* a fixed-size, in-memory circular event queue drained on-the-fly, with no
  tracing (:mod:`repro.core.equeue`, paper Fig. 2);
* the three-case bounding algorithm deriving minimum and maximum overlapped
  transfer time per data-transfer operation (:mod:`repro.core.processor`);
* an a-priori transfer-time table, measured by a ping-pong utility and
  loaded from disk at init time (:mod:`repro.core.xfer_table`, the paper's
  ``perf_main`` step);
* per-process measures with message-size-range breakdowns and
  application-controlled monitoring sections (:mod:`repro.core.measures`,
  :mod:`repro.core.monitor`);
* per-process output reports and cross-process aggregation
  (:mod:`repro.core.report`).

The framework is driven purely by time-stamped event streams; it does not
know whether timestamps come from a wall clock inside a real library or from
the simulation clock of :mod:`repro.mpisim`.
"""

from repro.core.diff import MeasureDelta, diff_reports, render_diff
from repro.core.events import EventKind, TimedEvent
from repro.core.equeue import CircularEventQueue
from repro.core.measures import OverlapMeasures, SizeBins
from repro.core.monitor import Monitor
from repro.core.peruse import PeruseHub, PeruseSubscription
from repro.core.processor import DataProcessor
from repro.core.processor_reference import ReferenceDataProcessor
from repro.core.report import OverlapReport, aggregate_reports
from repro.core.trace import TraceSink, replay_overlap
from repro.core.xfer_table import XferTable

__all__ = [
    "CircularEventQueue",
    "DataProcessor",
    "EventKind",
    "MeasureDelta",
    "Monitor",
    "OverlapMeasures",
    "OverlapReport",
    "PeruseHub",
    "PeruseSubscription",
    "ReferenceDataProcessor",
    "SizeBins",
    "TimedEvent",
    "TraceSink",
    "XferTable",
    "aggregate_reports",
    "diff_reports",
    "render_diff",
    "replay_overlap",
]
