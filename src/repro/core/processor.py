"""The data processing module: on-the-fly overlap bound derivation.

This implements Sec. 2.2 of the paper.  Walking the time-ordered event
stream of one process (paper Fig. 1 shows the stream for an RDMA-Read
exchange), the processor

* attributes every interval between consecutive events either to **user
  computation** (outside any library call) or **communication call time**
  (inside a call),
* tracks the set of *active* data-transfer operations (``XFER_BEGIN`` seen,
  ``XFER_END`` not yet), accumulating for each the interleaved
  ``computation_time`` and in-library ``noncomputation_time``,
* on ``XFER_END`` resolves the operation under one of three cases:

  1. begin and end stamped within the **same** library call -- the
     application sat inside the library for the whole transfer, so both
     bounds are zero;
  2. begin and end stamped in **different** calls -- with ``xfer_time``
     taken from the a-priori table:
     ``max = min(computation_time, xfer_time)`` and
     ``min = max(0, xfer_time - noncomputation_time)``;
  3. only **one** of the two events stamped -- nothing conclusive:
     ``min = 0``, ``max = xfer_time``.

State persists across drains of the circular queue, so only *active*
events need memory (the paper: "information is maintained only for the set
of currently active events"; no tracing).

Hot-path note: interval attribution is O(1) per event regardless of how
many transfers are active.  Instead of walking the active set on every
event (O(active) per event, quadratic on deep injection windows), the
processor maintains two *cumulative* clocks -- total user-computation time
and total in-call time since startup -- and each active transfer snapshots
them at ``XFER_BEGIN``.  At ``XFER_END`` the interleaved ``comp`` /
``noncomp`` windows fall out by subtraction.  The clocks are kept as exact
Shewchuk partial sums so the window values are *correctly rounded*: the
subtraction is bit-identical to exactly summing the per-transfer interval
list, which is what :mod:`repro.core.processor_reference` does and what
the differential property test relies on.
"""

from __future__ import annotations

import math
import typing

from repro.core.events import EventKind, TimedEvent
from repro.core.measures import (
    CASE_ONE_EVENT,
    CASE_SAME_CALL,
    CASE_SPLIT_CALL,
    DEFAULT_BIN_EDGES,
    OverlapMeasures,
)
from repro.core.xfer_table import XferTable

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.metrics import MetricsRegistry

_TIME_EPS = 1e-12

#: Human-readable label values for the three bounding cases.
CASE_LABELS = {
    CASE_SAME_CALL: "same_call",
    CASE_SPLIT_CALL: "split_call",
    CASE_ONE_EVENT: "one_event",
}


class InstrumentationError(RuntimeError):
    """Raised on malformed event streams (library instrumentation bugs)."""


# Plain-int mirrors of the EventKind members for the dispatch loop: an
# IntEnum attribute lookup plus enum comparison per event is measurable at
# flush time, a raw int compare is not.
_CALL_ENTER = int(EventKind.CALL_ENTER)
_CALL_EXIT = int(EventKind.CALL_EXIT)
_XFER_BEGIN = int(EventKind.XFER_BEGIN)
_XFER_END = int(EventKind.XFER_END)
_SECTION_BEGIN = int(EventKind.SECTION_BEGIN)
_SECTION_END = int(EventKind.SECTION_END)
_RESET = int(EventKind.RESET)


def _grow_partials(partials: list[float], x: float) -> None:
    """Add ``x`` to a Shewchuk partial-sum list, keeping the sum exact.

    The list always represents the exact real value of everything added so
    far; ``math.fsum`` over it yields the correctly rounded total.  The
    list stays short in practice (a handful of non-overlapping floats), so
    this is an O(1)-in-active-transfers accumulation step.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


def _window(now: list[float], begin: tuple[float, ...]) -> float:
    """Correctly rounded ``sum(now) - sum(begin)`` of two exact partial sums.

    Negation of floats is exact, so fsum over the concatenation computes
    the correctly rounded value of the exact window -- bit-identical to
    exactly summing the intervals that fell inside it.
    """
    return math.fsum(now + [-y for y in begin])


class _ActiveXfer:
    """A data-transfer operation whose ``XFER_END`` has not been seen yet."""

    __slots__ = ("begin_time", "begin_call", "nbytes", "comp0", "noncomp0", "sections")

    def __init__(
        self,
        begin_time: float,
        begin_call: int,
        nbytes: float,
        comp0: tuple[float, ...],
        noncomp0: tuple[float, ...],
        sections: tuple[int, ...],
    ) -> None:
        self.begin_time = begin_time
        self.begin_call = begin_call  # outermost call sequence no., -1 if outside
        self.nbytes = nbytes
        self.comp0 = comp0  # computation-clock snapshot at begin
        self.noncomp0 = noncomp0  # in-call-clock snapshot at begin
        self.sections = sections


class CallStats:
    """Per-call-name invocation count and cumulative in-call time.

    Used to report e.g. "average time spent in MPI_Wait" (Figs. 3-9) and
    "overall MPI time" (Fig. 18).
    """

    __slots__ = ("count", "total_time")

    def __init__(self) -> None:
        self.count = 0
        self.total_time = 0.0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.count if self.count else 0.0


class DataProcessor:
    """Consumes event batches; owns the per-process overlap measures."""

    def __init__(
        self,
        xfer_table: XferTable,
        bin_edges: typing.Sequence[float] = DEFAULT_BIN_EDGES,
    ) -> None:
        self.xfer_table = xfer_table
        self._bin_edges = tuple(bin_edges)
        #: Whole-run measures.
        self.total = OverlapMeasures(bin_edges)
        #: Measures restricted to named monitoring sections.
        self.sections: dict[int, OverlapMeasures] = {}
        #: Per-call-name statistics (keyed by interned name id).
        self.call_stats: dict[int, CallStats] = {}

        self._active: dict[int, _ActiveXfer] = {}
        #: Most transfers ever simultaneously awaiting their ``XFER_END``.
        self.active_high_water = 0
        #: Intervals attributed (``_advance`` calls that moved the clocks).
        self.interval_ops = 0
        # Cumulative clocks (exact partial sums): total attributed user
        # computation and total attributed in-call time since startup.
        self._comp_clock: list[float] = []
        self._call_clock: list[float] = []
        self._depth = 0
        self._call_seq = 0
        self._call_enter_time = 0.0
        self._call_name = -1
        self._last_time: float | None = None
        self._section_stack: list[int] = []
        self._finalized = False

    def attach_metrics(
        self,
        metrics: "MetricsRegistry",
        labels: "dict[str, str] | None" = None,
    ) -> None:
        """Register processor health metrics (all sampled: no hot-path cost).

        Case counts read straight from the always-maintained
        :attr:`OverlapMeasures.case_counts`, so the three-case mix is
        scrapeable without a single extra operation per transfer.
        """
        counts = self.total.case_counts
        for case, label in CASE_LABELS.items():
            metrics.sampled_counter(
                "repro_processor_cases",
                (lambda c=case: counts[c]),
                "Transfers resolved under each Sec. 2.2 bounding case",
                {**(labels or {}), "case": label})
        metrics.sampled_gauge(
            "repro_processor_active_transfers", lambda: len(self._active),
            "Transfers currently awaiting their XFER_END", labels)
        metrics.sampled_gauge(
            "repro_processor_active_transfers_hiwater",
            lambda: self.active_high_water,
            "Most transfers ever simultaneously active", labels)
        metrics.sampled_counter(
            "repro_processor_interval_ops", lambda: self.interval_ops,
            "Interval-attribution operations (clock advances)", labels)
        metrics.sampled_counter(
            "repro_processor_transfers", lambda: self.total.transfer_count,
            "Transfers resolved into the overlap measures", labels)

    # -- event intake -----------------------------------------------------
    def process(self, batch: typing.Sequence[TimedEvent]) -> None:
        """Digest a drained batch of events (oldest first)."""
        if self._finalized:
            raise InstrumentationError("processor already finalized")
        # Bound handlers and advance are hoisted out of the loop; branches
        # are ordered by frequency in real streams (calls, then transfers).
        advance = self._advance
        on_call_enter = self._on_call_enter
        on_call_exit = self._on_call_exit
        on_xfer_begin = self._on_xfer_begin
        on_xfer_end = self._on_xfer_end
        for ev in batch:
            kind = ev.kind
            if kind == _CALL_ENTER:
                advance(ev.time)
                on_call_enter(ev)
            elif kind == _CALL_EXIT:
                advance(ev.time)
                on_call_exit(ev)
            elif kind == _XFER_END:
                advance(ev.time)
                on_xfer_end(ev)
            elif kind == _XFER_BEGIN:
                advance(ev.time)
                on_xfer_begin(ev)
            elif kind == _RESET:
                # Monitoring was paused: do not attribute the gap.
                self._last_time = ev.time
            elif kind == _SECTION_BEGIN:
                advance(ev.time)
                self._section_stack.append(ev.a)
                self.sections.setdefault(ev.a, OverlapMeasures(self._bin_edges))
            elif kind == _SECTION_END:
                advance(ev.time)
                if not self._section_stack or self._section_stack[-1] != ev.a:
                    raise InstrumentationError(
                        f"SECTION_END {ev.a} does not match open section stack "
                        f"{self._section_stack}"
                    )
                self._section_stack.pop()
            else:  # pragma: no cover - enum is exhaustive
                raise InstrumentationError(f"unknown event kind {kind}")

    def finalize(self, end_time: float | None = None) -> None:
        """Resolve still-active transfers (case 3) and freeze the measures."""
        if self._finalized:
            return
        if end_time is not None:
            self._advance(end_time)
        for xfer in self._active.values():
            xfer_time = self.xfer_table.time_for(xfer.nbytes)
            self._record(xfer.nbytes, xfer_time, 0.0, xfer_time, CASE_ONE_EVENT, xfer.sections)
        self._active.clear()
        self._finalized = True

    # -- interval attribution ----------------------------------------------
    def _advance(self, t: float) -> None:
        last = self._last_time
        if last is None:
            self._last_time = t
            return
        dt = t - last
        if dt < -_TIME_EPS:
            raise InstrumentationError(
                f"event stream goes backwards in time: {last} -> {t}"
            )
        if dt > 0.0:
            self.interval_ops += 1
            in_call = self._depth > 0
            self.total.add_interval(dt, in_call)
            for sec in self._section_stack:
                self.sections[sec].add_interval(dt, in_call)
            # O(1) in active transfers: bump one cumulative clock; the
            # per-transfer windows are recovered by subtraction at XFER_END.
            _grow_partials(self._call_clock if in_call else self._comp_clock, dt)
        self._last_time = t

    # -- event handlers -----------------------------------------------------
    def _on_call_enter(self, ev: TimedEvent) -> None:
        self._depth += 1
        if self._depth == 1:
            self._call_seq += 1
            self._call_enter_time = ev.time
            self._call_name = ev.a

    def _on_call_exit(self, ev: TimedEvent) -> None:
        if self._depth <= 0:
            raise InstrumentationError("CALL_EXIT without a matching CALL_ENTER")
        self._depth -= 1
        if self._depth == 0:
            stats = self.call_stats.setdefault(self._call_name, CallStats())
            stats.count += 1
            stats.total_time += ev.time - self._call_enter_time

    def _on_xfer_begin(self, ev: TimedEvent) -> None:
        if ev.a in self._active:
            raise InstrumentationError(f"duplicate XFER_BEGIN for transfer {ev.a}")
        begin_call = self._call_seq if self._depth > 0 else -1
        self._active[ev.a] = _ActiveXfer(
            ev.time,
            begin_call,
            float(ev.b),
            tuple(self._comp_clock),
            tuple(self._call_clock),
            tuple(self._section_stack),
        )
        if len(self._active) > self.active_high_water:
            self.active_high_water = len(self._active)

    def _on_xfer_end(self, ev: TimedEvent) -> None:
        xfer = self._active.pop(ev.a, None)
        nbytes = float(ev.b)
        if xfer is None:
            # Case 3: END without a BEGIN (e.g. the eager receiver, for whom
            # initiation is transparent).
            xfer_time = self.xfer_table.time_for(nbytes)
            self._record(
                nbytes, xfer_time, 0.0, xfer_time, CASE_ONE_EVENT,
                tuple(self._section_stack),
            )
            return
        if xfer.nbytes != nbytes and nbytes > 0:
            raise InstrumentationError(
                f"transfer {ev.a} size mismatch: begin={xfer.nbytes} end={nbytes}"
            )
        xfer_time = self.xfer_table.time_for(xfer.nbytes)
        same_call = (
            self._depth > 0
            and xfer.begin_call == self._call_seq
            and xfer.begin_call != -1
        )
        if same_call:
            # Case 1: the application never left the library.
            self._record(xfer.nbytes, xfer_time, 0.0, 0.0, CASE_SAME_CALL, xfer.sections)
        else:
            # Case 2: bounded by interleaved computation / in-library time.
            comp = _window(self._comp_clock, xfer.comp0)
            noncomp = _window(self._call_clock, xfer.noncomp0)
            max_ov = min(comp, xfer_time)
            min_ov = max(0.0, xfer_time - noncomp)
            # The bounds must nest: min <= max always holds because
            # comp + noncomp == end - begin >= xfer_time - noncomp whenever
            # min > 0; clamp defensively against float noise.
            min_ov = min(min_ov, max_ov)
            self._record(
                xfer.nbytes, xfer_time, min_ov, max_ov, CASE_SPLIT_CALL, xfer.sections
            )

    def _record(
        self,
        nbytes: float,
        xfer_time: float,
        min_ov: float,
        max_ov: float,
        case: int,
        sections: tuple[int, ...],
    ) -> None:
        self.total.add_transfer(nbytes, xfer_time, min_ov, max_ov, case)
        for sec in sections:
            self.sections[sec].add_transfer(nbytes, xfer_time, min_ov, max_ov, case)

    # -- introspection -------------------------------------------------------
    @property
    def active_transfer_count(self) -> int:
        """Number of transfers currently awaiting their ``XFER_END``."""
        return len(self._active)

    @property
    def in_call(self) -> bool:
        """True while the event stream is inside a library call."""
        return self._depth > 0
