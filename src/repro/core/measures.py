"""Per-process overlap measures and message-size-range breakdowns.

Section 2.2 defines five derived measures per process; Sec. 2.3 motivates a
breakdown of the non-overlapped time "as a function of message size
distribution, such as short versus long, or a more detailed size
distribution".  :class:`SizeBins` implements that breakdown with arbitrary
bin edges; :class:`OverlapMeasures` carries the five measures, per-transfer
case counts, and a bin table.
"""

from __future__ import annotations

import bisect
import typing

#: Default size-range edges (bytes): short / medium / long / huge.
DEFAULT_BIN_EDGES: tuple[float, ...] = (1024.0, 16384.0, 262144.0)

#: The paper's coarsest breakdown: "short versus long".
SHORT_LONG_EDGES: tuple[float, ...] = (16384.0,)

#: "a more detailed size distribution": power-of-four bins, 256 B..16 MiB.
DETAILED_EDGES: tuple[float, ...] = tuple(
    float(4**k) for k in range(4, 13)
)

#: The three bounding cases of Sec. 2.2.
CASE_SAME_CALL = 1
CASE_SPLIT_CALL = 2
CASE_ONE_EVENT = 3


class BinStats:
    """Accumulators for one message-size range."""

    __slots__ = ("count", "bytes", "xfer_time", "min_overlap", "max_overlap")

    def __init__(self) -> None:
        self.count = 0
        self.bytes = 0.0
        self.xfer_time = 0.0
        self.min_overlap = 0.0
        self.max_overlap = 0.0

    def add(self, nbytes: float, xfer_time: float, min_ov: float, max_ov: float) -> None:
        self.count += 1
        self.bytes += nbytes
        self.xfer_time += xfer_time
        self.min_overlap += min_ov
        self.max_overlap += max_ov

    def merge(self, other: "BinStats") -> None:
        self.count += other.count
        self.bytes += other.bytes
        self.xfer_time += other.xfer_time
        self.min_overlap += other.min_overlap
        self.max_overlap += other.max_overlap

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "bytes": self.bytes,
            "xfer_time": self.xfer_time,
            "min_overlap": self.min_overlap,
            "max_overlap": self.max_overlap,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "BinStats":
        stats = cls()
        stats.count = int(data["count"])
        stats.bytes = float(data["bytes"])
        stats.xfer_time = float(data["xfer_time"])
        stats.min_overlap = float(data["min_overlap"])
        stats.max_overlap = float(data["max_overlap"])
        return stats


class SizeBins:
    """Message-size histogram with overlap accumulators per range.

    ``edges`` are the interior boundaries; a message of ``n`` bytes falls in
    bin ``i`` such that ``edges[i-1] <= n < edges[i]`` (first bin is
    ``[0, edges[0])``, last is ``[edges[-1], inf)``).
    """

    def __init__(self, edges: typing.Sequence[float] = DEFAULT_BIN_EDGES) -> None:
        edges_list = [float(e) for e in edges]
        if any(b <= a for a, b in zip(edges_list, edges_list[1:])):
            raise ValueError("bin edges must be strictly increasing")
        if any(e <= 0 for e in edges_list):
            raise ValueError("bin edges must be positive")
        self.edges = tuple(edges_list)
        self.bins = [BinStats() for _ in range(len(edges_list) + 1)]

    def index_for(self, nbytes: float) -> int:
        """Bin index for a message size."""
        return bisect.bisect_right(self.edges, nbytes)

    def label_for(self, index: int) -> str:
        """Human-readable range label for a bin index."""
        lo = 0.0 if index == 0 else self.edges[index - 1]
        hi = self.edges[index] if index < len(self.edges) else float("inf")
        hi_txt = "inf" if hi == float("inf") else _fmt_bytes(hi)
        return f"[{_fmt_bytes(lo)}, {hi_txt})"

    def add(self, nbytes: float, xfer_time: float, min_ov: float, max_ov: float) -> None:
        self.bins[self.index_for(nbytes)].add(nbytes, xfer_time, min_ov, max_ov)

    def merge(self, other: "SizeBins") -> None:
        if self.edges != other.edges:
            raise ValueError("cannot merge SizeBins with different edges")
        for mine, theirs in zip(self.bins, other.bins):
            mine.merge(theirs)

    def to_dict(self) -> dict[str, object]:
        return {
            "edges": list(self.edges),
            "bins": [b.to_dict() for b in self.bins],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SizeBins":
        bins = cls(typing.cast("list[float]", data["edges"]))
        bins.bins = [
            BinStats.from_dict(typing.cast("dict[str, float]", b))
            for b in typing.cast("list[object]", data["bins"])
        ]
        return bins


def _fmt_bytes(n: float) -> str:
    if n >= 1024 * 1024 and n % (1024 * 1024) == 0:
        return f"{int(n) // (1024 * 1024)}MiB"
    if n >= 1024 and n % 1024 == 0:
        return f"{int(n) // 1024}KiB"
    return f"{int(n)}B"


class OverlapMeasures:
    """The paper's five per-process measures plus diagnostics.

    Attributes
    ----------
    data_transfer_time:
        Σ a-priori ``xfer_time`` over every data-transfer operation that
        moved user-message bytes sent or received by this process.
    min_overlap_time / max_overlap_time:
        Lower / upper bounds on overlapped transfer time.
    computation_time:
        Σ ``CALL_EXIT`` → next ``CALL_ENTER`` intervals (user computation).
    communication_call_time:
        Σ ``CALL_ENTER`` → ``CALL_EXIT`` intervals (in-library time).
    """

    __slots__ = (
        "data_transfer_time",
        "min_overlap_time",
        "max_overlap_time",
        "computation_time",
        "communication_call_time",
        "transfer_count",
        "case_counts",
        "bins",
    )

    def __init__(self, bin_edges: typing.Sequence[float] = DEFAULT_BIN_EDGES) -> None:
        self.data_transfer_time = 0.0
        self.min_overlap_time = 0.0
        self.max_overlap_time = 0.0
        self.computation_time = 0.0
        self.communication_call_time = 0.0
        self.transfer_count = 0
        #: transfers resolved under each bounding case {1: n, 2: n, 3: n}.
        self.case_counts = {CASE_SAME_CALL: 0, CASE_SPLIT_CALL: 0, CASE_ONE_EVENT: 0}
        self.bins = SizeBins(bin_edges)

    # -- accumulation -----------------------------------------------------
    def add_transfer(
        self,
        nbytes: float,
        xfer_time: float,
        min_ov: float,
        max_ov: float,
        case: int,
    ) -> None:
        """Record one resolved data-transfer operation."""
        if not 0.0 <= min_ov <= max_ov + 1e-15:
            raise ValueError(f"invalid bounds: min={min_ov} max={max_ov}")
        if max_ov > xfer_time + 1e-12:
            raise ValueError(f"max overlap {max_ov} exceeds xfer time {xfer_time}")
        self.data_transfer_time += xfer_time
        self.min_overlap_time += min_ov
        self.max_overlap_time += max_ov
        self.transfer_count += 1
        self.case_counts[case] += 1
        self.bins.add(nbytes, xfer_time, min_ov, max_ov)

    def add_interval(self, duration: float, in_call: bool) -> None:
        """Attribute a wall interval to computation or communication call time."""
        if in_call:
            self.communication_call_time += duration
        else:
            self.computation_time += duration

    def merge(self, other: "OverlapMeasures") -> None:
        """Fold another process's (or section's) measures into this one."""
        self.data_transfer_time += other.data_transfer_time
        self.min_overlap_time += other.min_overlap_time
        self.max_overlap_time += other.max_overlap_time
        self.computation_time += other.computation_time
        self.communication_call_time += other.communication_call_time
        self.transfer_count += other.transfer_count
        for case, n in other.case_counts.items():
            self.case_counts[case] += n
        self.bins.merge(other.bins)

    # -- derived values (Sec. 2.3) ----------------------------------------
    @property
    def min_overlap_pct(self) -> float:
        """Minimum overlap as % of data transfer time (the figures' y-axis)."""
        if self.data_transfer_time <= 0:
            return 0.0
        return 100.0 * self.min_overlap_time / self.data_transfer_time

    @property
    def max_overlap_pct(self) -> float:
        """Maximum overlap as % of data transfer time."""
        if self.data_transfer_time <= 0:
            return 0.0
        return 100.0 * self.max_overlap_time / self.data_transfer_time

    @property
    def min_nonoverlapped_time(self) -> float:
        """data transfer time − max overlap: communication provably not hidden.

        Sec. 2.3: "an indicator of overall application performance loss".
        """
        return self.data_transfer_time - self.max_overlap_time

    @property
    def guaranteed_overlap_time(self) -> float:
        """The min bound: "a clear savings in execution time" (Sec. 2.3)."""
        return self.min_overlap_time

    # -- persistence --------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "data_transfer_time": self.data_transfer_time,
            "min_overlap_time": self.min_overlap_time,
            "max_overlap_time": self.max_overlap_time,
            "computation_time": self.computation_time,
            "communication_call_time": self.communication_call_time,
            "transfer_count": self.transfer_count,
            "case_counts": {str(k): v for k, v in self.case_counts.items()},
            "bins": self.bins.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "OverlapMeasures":
        meas = cls.__new__(cls)
        meas.data_transfer_time = float(data["data_transfer_time"])  # type: ignore[arg-type]
        meas.min_overlap_time = float(data["min_overlap_time"])  # type: ignore[arg-type]
        meas.max_overlap_time = float(data["max_overlap_time"])  # type: ignore[arg-type]
        meas.computation_time = float(data["computation_time"])  # type: ignore[arg-type]
        meas.communication_call_time = float(data["communication_call_time"])  # type: ignore[arg-type]
        meas.transfer_count = int(data["transfer_count"])  # type: ignore[arg-type]
        raw_cases = typing.cast("dict[str, int]", data["case_counts"])
        meas.case_counts = {int(k): int(v) for k, v in raw_cases.items()}
        meas.bins = SizeBins.from_dict(typing.cast("dict[str, object]", data["bins"]))
        return meas

    def __repr__(self) -> str:
        return (
            f"<OverlapMeasures xfer={self.data_transfer_time:.3g}s "
            f"ov=[{self.min_overlap_pct:.1f}%, {self.max_overlap_pct:.1f}%] "
            f"comp={self.computation_time:.3g}s "
            f"call={self.communication_call_time:.3g}s "
            f"n={self.transfer_count}>"
        )
