"""PERUSE-style event subscription.

The paper's events are "in the spirit of the PERUSE standard" (Sec. 2.1),
which exists "primarily for the purposes of facilitating the development
of performance monitoring": external tools subscribe to library-internal
events.  This module adds that facility to the monitor -- callbacks fire
synchronously as events are stamped, so other performance tools (or
tests) can observe the stream without touching the overlap pipeline.

Subscribers must be cheap: in the real system a slow callback perturbs
the application; here it would only slow the simulation, but the contract
is the same.
"""

from __future__ import annotations

import time
import typing

from repro.core.events import EventKind, TimedEvent

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.metrics import MetricsRegistry


class PeruseSubscription:
    """Handle returned by :meth:`PeruseHub.subscribe`; detachable."""

    __slots__ = ("hub", "kind", "callback", "active")

    def __init__(
        self,
        hub: "PeruseHub",
        kind: EventKind | None,
        callback: typing.Callable[[TimedEvent], None],
    ) -> None:
        self.hub = hub
        self.kind = kind
        self.callback = callback
        self.active = True

    def cancel(self) -> None:
        """Stop receiving events (idempotent)."""
        if self.active:
            self.active = False
            self.hub._remove(self)


class PeruseHub:
    """Dispatches stamped events to subscribers.

    A subscriber attaches to one :class:`EventKind` or to all events
    (``kind=None``).  Dispatch order is subscription order.
    """

    def __init__(self) -> None:
        self._by_kind: dict[int, list[PeruseSubscription]] = {}
        self._all: list[PeruseSubscription] = []
        #: Total events dispatched (diagnostics).
        self.dispatched = 0
        self._dispatch_hist = None

    def attach_metrics(
        self,
        metrics: "MetricsRegistry",
        labels: "dict[str, str] | None" = None,
    ) -> None:
        """Register dispatch count and per-dispatch cost metrics.

        The cost histogram adds two clock reads per *dispatched* event,
        which only happens when a subscriber is live -- idle hubs stay on
        the zero-cost path.
        """
        metrics.sampled_counter(
            "repro_peruse_dispatched", lambda: self.dispatched,
            "Events delivered to PERUSE subscribers", labels)
        metrics.sampled_gauge(
            "repro_peruse_subscribers",
            lambda: len(self._all) + sum(len(v) for v in self._by_kind.values()),
            "Live PERUSE subscriptions", labels)
        self._dispatch_hist = metrics.histogram(
            "repro_peruse_dispatch_seconds",
            "Host seconds spent delivering one event to subscribers", labels)

    def subscribe(
        self,
        callback: typing.Callable[[TimedEvent], None],
        kind: EventKind | None = None,
    ) -> PeruseSubscription:
        """Register ``callback`` for events of ``kind`` (or all events)."""
        sub = PeruseSubscription(self, kind, callback)
        if kind is None:
            self._all.append(sub)
        else:
            self._by_kind.setdefault(int(kind), []).append(sub)
        return sub

    def _remove(self, sub: PeruseSubscription) -> None:
        bucket = self._all if sub.kind is None else self._by_kind.get(int(sub.kind), [])
        if sub in bucket:
            bucket.remove(sub)

    @property
    def has_subscribers(self) -> bool:
        return bool(self._all) or any(self._by_kind.values())

    def dispatch(self, event: TimedEvent) -> None:
        """Deliver one event to every matching subscriber."""
        # Local refs and a flat emptiness check: this runs once per stamped
        # event when any subscriber (e.g. a telemetry TraceSink) is live.
        by_kind = self._by_kind
        subs_all = self._all
        if not subs_all and not by_kind:
            return
        self.dispatched += 1
        hist = self._dispatch_hist
        t0 = time.perf_counter() if hist is not None else 0.0
        if by_kind:
            for sub in by_kind.get(event.kind, ()):
                sub.callback(event)
        for sub in subs_all:
            sub.callback(event)
        if hist is not None:
            hist.observe(time.perf_counter() - t0)
