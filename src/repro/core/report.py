"""Per-process output reports and cross-process aggregation.

"When the application terminates, an output file is generated for each
process, with information about overlap achieved by that process.  The
reported information only characterizes the local process communication
activity." (paper Sec. 2.4).  Reports serialize to JSON; aggregation across
ranks is a post-processing step, never interprocess communication.
"""

from __future__ import annotations

import json
import os
import typing

from repro.core.events import NameRegistry
from repro.core.measures import OverlapMeasures

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.processor import DataProcessor

FORMAT_VERSION = 1


class OverlapReport:
    """Everything one process's monitor learned about its own overlap."""

    def __init__(
        self,
        rank: int,
        label: str,
        wall_time: float,
        event_count: int,
        total: OverlapMeasures,
        sections: dict[str, OverlapMeasures],
        call_stats: dict[str, tuple[int, float]],
    ) -> None:
        self.rank = rank
        self.label = label
        #: Run duration as seen by the monitor (finalize time - init time).
        self.wall_time = wall_time
        self.event_count = event_count
        self.total = total
        self.sections = sections
        #: call name -> (invocations, cumulative in-call seconds).
        self.call_stats = call_stats

    @classmethod
    def from_processor(
        cls,
        processor: "DataProcessor",
        names: NameRegistry,
        rank: int,
        label: str,
        wall_time: float,
        event_count: int,
    ) -> "OverlapReport":
        sections = {
            names.name_of(ident): meas for ident, meas in processor.sections.items()
        }
        call_stats = {
            names.name_of(ident): (st.count, st.total_time)
            for ident, st in processor.call_stats.items()
        }
        return cls(
            rank=rank,
            label=label,
            wall_time=wall_time,
            event_count=event_count,
            total=processor.total,
            sections=sections,
            call_stats=call_stats,
        )

    # -- aggregation ---------------------------------------------------------
    def merge(self, other: "OverlapReport") -> "OverlapReport":
        """Fold another process's report into this one (cluster rollup).

        Measures, sections, and call stats accumulate via
        :meth:`OverlapMeasures.merge` (which enforces matching
        :class:`~repro.core.measures.SizeBins` edges); ``wall_time``
        becomes the slowest rank's, ``event_count`` the sum.  ``rank`` and
        ``label`` keep ``self``'s values -- a merged report describes the
        job, not one process.  Returns ``self`` for chaining.
        """
        self.total.merge(other.total)
        for name, meas in other.sections.items():
            mine = self.sections.get(name)
            if mine is None:
                # Deep copy so later merges never mutate ``other``'s data.
                self.sections[name] = OverlapMeasures.from_dict(meas.to_dict())
            else:
                mine.merge(meas)
        for name, (count, total) in other.call_stats.items():
            c0, t0 = self.call_stats.get(name, (0, 0.0))
            self.call_stats[name] = (c0 + count, t0 + total)
        self.wall_time = max(self.wall_time, other.wall_time)
        self.event_count += other.event_count
        return self

    def __iadd__(self, other: "OverlapReport") -> "OverlapReport":
        return self.merge(other)

    # -- derived ------------------------------------------------------------
    def mean_call_time(self, name: str) -> float:
        """Average duration of one library call (e.g. ``MPI_Wait``)."""
        count, total = self.call_stats.get(name, (0, 0.0))
        return total / count if count else 0.0

    def total_call_time(self, name: str) -> float:
        """Cumulative time inside calls named ``name``."""
        return self.call_stats.get(name, (0, 0.0))[1]

    @property
    def mpi_time(self) -> float:
        """Total in-library time (the paper's "overall MPI time", Fig. 18)."""
        return self.total.communication_call_time

    # -- persistence ---------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "format_version": FORMAT_VERSION,
            "rank": self.rank,
            "label": self.label,
            "wall_time": self.wall_time,
            "event_count": self.event_count,
            "total": self.total.to_dict(),
            "sections": {k: v.to_dict() for k, v in self.sections.items()},
            "call_stats": {k: list(v) for k, v in self.call_stats.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "OverlapReport":
        if data.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported report format {data.get('format_version')!r}"
            )
        return cls(
            rank=int(data["rank"]),  # type: ignore[arg-type]
            label=str(data["label"]),
            wall_time=float(data["wall_time"]),  # type: ignore[arg-type]
            event_count=int(data["event_count"]),  # type: ignore[arg-type]
            total=OverlapMeasures.from_dict(
                typing.cast("dict[str, object]", data["total"])
            ),
            sections={
                k: OverlapMeasures.from_dict(typing.cast("dict[str, object]", v))
                for k, v in typing.cast(
                    "dict[str, object]", data["sections"]
                ).items()
            },
            call_stats={
                k: (int(v[0]), float(v[1]))
                for k, v in typing.cast(
                    "dict[str, list[float]]", data["call_stats"]
                ).items()
            },
        )

    def save(self, path: str | os.PathLike) -> None:
        """Write the per-process output file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "OverlapReport":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # -- rendering -------------------------------------------------------------
    def render_text(self) -> str:
        """Human-readable summary, roughly the paper's output-file content."""
        m = self.total
        lines = [
            f"overlap report: rank {self.rank}"
            + (f" ({self.label})" if self.label else ""),
            f"  wall time                  {self.wall_time:.6f} s",
            f"  data transfer time         {m.data_transfer_time:.6f} s",
            f"  min overlapped xfer time   {m.min_overlap_time:.6f} s "
            f"({m.min_overlap_pct:.1f}%)",
            f"  max overlapped xfer time   {m.max_overlap_time:.6f} s "
            f"({m.max_overlap_pct:.1f}%)",
            f"  user computation time      {m.computation_time:.6f} s",
            f"  communication call time    {m.communication_call_time:.6f} s",
            f"  transfers                  {m.transfer_count} "
            f"(case1={m.case_counts[1]} case2={m.case_counts[2]} "
            f"case3={m.case_counts[3]})",
        ]
        if any(b.count for b in m.bins.bins):
            lines.append("  by message size:")
            for i, b in enumerate(m.bins.bins):
                if not b.count:
                    continue
                pct_min = 100.0 * b.min_overlap / b.xfer_time if b.xfer_time else 0.0
                pct_max = 100.0 * b.max_overlap / b.xfer_time if b.xfer_time else 0.0
                lines.append(
                    f"    {m.bins.label_for(i):>18} n={b.count:<7} "
                    f"xfer={b.xfer_time:.6f}s ov=[{pct_min:.1f}%, {pct_max:.1f}%]"
                )
        for name, meas in sorted(self.sections.items()):
            lines.append(
                f"  section {name!r}: xfer={meas.data_transfer_time:.6f}s "
                f"ov=[{meas.min_overlap_pct:.1f}%, {meas.max_overlap_pct:.1f}%]"
            )
        return "\n".join(lines)


def aggregate_reports(reports: typing.Sequence[OverlapReport]) -> OverlapMeasures:
    """Merge per-process totals into one job-wide :class:`OverlapMeasures`."""
    if not reports:
        raise ValueError("no reports to aggregate")
    edges = reports[0].total.bins.edges
    merged = OverlapMeasures(edges)
    for rep in reports:
        merged.merge(rep.total)
    return merged


def aggregate_sections(
    reports: typing.Sequence[OverlapReport], section: str
) -> OverlapMeasures:
    """Merge one named section's measures across ranks (ranks lacking the
    section contribute nothing)."""
    if not reports:
        raise ValueError("no reports to aggregate")
    edges = reports[0].total.bins.edges
    merged = OverlapMeasures(edges)
    for rep in reports:
        if section in rep.sections:
            merged.merge(rep.sections[section])
    return merged
