"""Event kinds and records for the instrumentation framework.

The paper defines four events (Sec. 2.1).  We add three bookkeeping kinds
that never leave the local process: section markers implementing the paper's
"application-level control over sections of code to be monitored", and a
clock-reset marker used when monitoring is paused/resumed so that the paused
interval is not misattributed to computation.
"""

from __future__ import annotations

import enum
import typing


class EventKind(enum.IntEnum):
    """Kinds of time-stamped events logged by the data collection module."""

    #: Application entered the communication library (paper Sec. 2.1).
    CALL_ENTER = 0
    #: Application left the communication library.
    CALL_EXIT = 1
    #: A data-transfer operation was initiated (library's best approximation
    #: of the start of physical data movement, e.g. posting a work request).
    XFER_BEGIN = 2
    #: A data-transfer operation completed (e.g. a completion-queue poll
    #: returned).
    XFER_END = 3
    #: Application opened a named monitoring section.
    SECTION_BEGIN = 4
    #: Application closed the innermost monitoring section.
    SECTION_END = 5
    #: Monitoring resumed after a pause; resets interval attribution.
    RESET = 6


class TimedEvent(typing.NamedTuple):
    """A single logged event.

    Field meaning depends on ``kind``:

    ========================  =======================  =====================
    kind                      ``a``                    ``b``
    ========================  =======================  =====================
    CALL_ENTER                call-name id             0
    CALL_EXIT                 call-name id             0
    XFER_BEGIN                transfer id              message bytes
    XFER_END                  transfer id              message bytes
    SECTION_BEGIN             section-name id          0
    SECTION_END               section-name id          0
    RESET                     0                        0
    ========================  =======================  =====================
    """

    kind: int
    time: float
    a: int
    b: int


class NameRegistry:
    """Bidirectional interning of call/section names to small integers.

    The event queue stores integers only (the paper's queue holds fixed-size
    records); names are resolved at report time.
    """

    def __init__(self) -> None:
        self._by_name: dict[str, int] = {}
        self._by_id: list[str] = []

    def intern(self, name: str) -> int:
        """Return the id for ``name``, assigning one on first use."""
        ident = self._by_name.get(name)
        if ident is None:
            ident = len(self._by_id)
            self._by_name[name] = ident
            self._by_id.append(name)
        return ident

    def name_of(self, ident: int) -> str:
        """Resolve an id back to its name."""
        return self._by_id[ident]

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name
