"""Comparing overlap reports: the Sec. 2.3 tuning workflow as a tool.

"The impact of code changes on values of both bounds is a useful
indicator of the effectiveness of those changes from an overlap
standpoint."  :func:`diff_reports` computes exactly that impact between a
baseline and a modified run (per total, per section, per size range), and
:func:`render_diff` prints it the way the SP study reads.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.measures import OverlapMeasures
from repro.core.report import OverlapReport


@dataclasses.dataclass
class MeasureDelta:
    """Change in one scope's measures between two runs."""

    scope: str
    min_pct_before: float
    min_pct_after: float
    max_pct_before: float
    max_pct_after: float
    xfer_before: float
    xfer_after: float
    call_time_before: float
    call_time_after: float

    @property
    def min_pct_delta(self) -> float:
        return self.min_pct_after - self.min_pct_before

    @property
    def max_pct_delta(self) -> float:
        return self.max_pct_after - self.max_pct_before

    @property
    def call_time_delta_pct(self) -> float:
        """Percent change of in-library time (negative = improvement)."""
        if self.call_time_before <= 0:
            return 0.0
        return 100.0 * (self.call_time_after / self.call_time_before - 1.0)

    @property
    def improved(self) -> bool:
        """Did the change raise either bound without hurting the other?"""
        return (
            self.min_pct_delta >= -1e-9
            and self.max_pct_delta >= -1e-9
            and (self.min_pct_delta > 0 or self.max_pct_delta > 0)
        )


def _delta(scope: str, before: OverlapMeasures, after: OverlapMeasures) -> MeasureDelta:
    return MeasureDelta(
        scope=scope,
        min_pct_before=before.min_overlap_pct,
        min_pct_after=after.min_overlap_pct,
        max_pct_before=before.max_overlap_pct,
        max_pct_after=after.max_overlap_pct,
        xfer_before=before.data_transfer_time,
        xfer_after=after.data_transfer_time,
        call_time_before=before.communication_call_time,
        call_time_after=after.communication_call_time,
    )


def diff_reports(
    before: OverlapReport, after: OverlapReport
) -> list[MeasureDelta]:
    """Deltas for the whole run and for every section present in both."""
    deltas = [_delta("<total>", before.total, after.total)]
    for name in sorted(set(before.sections) & set(after.sections)):
        deltas.append(_delta(name, before.sections[name], after.sections[name]))
    return deltas


def render_diff(deltas: typing.Sequence[MeasureDelta], title: str = "") -> str:
    """Human-readable before/after table."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'scope':>16} {'min%':>13} {'max%':>13} {'lib time':>9} {'verdict':>9}"
    )
    for d in deltas:
        lines.append(
            f"{d.scope:>16} "
            f"{d.min_pct_before:5.1f}->{d.min_pct_after:5.1f} "
            f"{d.max_pct_before:5.1f}->{d.max_pct_after:5.1f} "
            f"{d.call_time_delta_pct:>+8.1f}% "
            f"{'improved' if d.improved else '-':>9}"
        )
    return "\n".join(lines)
