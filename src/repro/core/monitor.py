"""Per-process monitor: the data collection module's public face.

One :class:`Monitor` is instantiated per process (paper Sec. 2.4: "the
framework is instantiated at the individual process level and operates
locally without performing any interprocessor communication").  The
communication library stamps events through it; the application controls
monitoring sections through it; at shutdown it produces the per-process
:class:`~repro.core.report.OverlapReport`.

The monitor owns the fixed-size circular event queue and the data
processing module, wiring the queue's drain to the processor -- the
structure of the paper's Fig. 2.
"""

from __future__ import annotations

import contextlib
import typing

from repro.core.equeue import CircularEventQueue
from repro.core.events import EventKind, NameRegistry, TimedEvent
from repro.core.measures import DEFAULT_BIN_EDGES
from repro.core.peruse import PeruseHub
from repro.core.processor import DataProcessor, InstrumentationError
from repro.core.report import OverlapReport
from repro.core.xfer_table import XferTable

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.metrics import MetricsRegistry

#: Default circular-queue capacity (events).  Small enough to be cache
#: resident, large enough that drains are rare; ablation EA4 sweeps this.
DEFAULT_QUEUE_CAPACITY = 4096


class Monitor:
    """Event stamping API + section control for one process.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time.  The real system
        would use ``gettimeofday``; the simulation passes the engine clock.
    xfer_table:
        The a-priori transfer-time table (loaded "during MPI_Init").
    queue_capacity:
        Circular event queue size.
    bin_edges:
        Message-size-range boundaries for the per-size breakdown.
    enabled:
        Initial monitoring state; a disabled monitor stamps nothing and
        costs (almost) nothing.
    processor_factory:
        Optional ``(xfer_table, bin_edges) -> DataProcessor`` override,
        e.g. :class:`repro.telemetry.windows.WindowedProcessor` for
        time-resolved collection.  Defaults to :class:`DataProcessor`.
    metrics:
        Optional :class:`~repro.metrics.MetricsRegistry` for framework
        self-observability: the monitor registers its own, the queue's,
        the processor's, and the PERUSE hub's health metrics under
        ``metrics_labels`` (typically ``{"rank": "0"}``).  ``None`` (the
        default) is the nil fast path -- stamping is byte-for-byte the
        pre-metrics hot path.
    stamp_loss:
        Optional :class:`~repro.faults.inject.StampLoss`: a seeded
        coin-flipper that makes individual ``XFER_BEGIN`` / ``XFER_END``
        stamps vanish, modeling lossy instrumentation.  A transfer that
        loses one of its two stamps degrades to the paper's Case 3 bounds
        (``min = 0``, ``max = xfer_time``); losing both removes it from
        the report entirely.  ``None`` (the default) stamps everything.
    ring_mode:
        When True the event queue runs as a fixed ring instead of
        draining to the processor: overflow overwrites the *oldest*
        stamps and only the newest ``queue_capacity`` events survive to
        :meth:`finalize`, which sanitizes the surviving suffix (orphaned
        ``CALL_EXIT`` / ``SECTION_END`` whose openers were overwritten
        are discarded; orphaned ``XFER_END`` events pass through and
        resolve as Case 3).  Models a bounded trace buffer that cannot
        afford mid-run processing.
    """

    def __init__(
        self,
        clock: typing.Callable[[], float],
        xfer_table: XferTable,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        bin_edges: typing.Sequence[float] = DEFAULT_BIN_EDGES,
        enabled: bool = True,
        processor_factory: "typing.Callable[[XferTable, typing.Sequence[float]], DataProcessor] | None" = None,
        metrics: "MetricsRegistry | None" = None,
        metrics_labels: "dict[str, str] | None" = None,
        stamp_loss: "typing.Any | None" = None,
        ring_mode: bool = False,
    ) -> None:
        self._clock = clock
        self.names = NameRegistry()
        factory = processor_factory or DataProcessor
        self.processor = factory(xfer_table, bin_edges)
        self._ring_mode = ring_mode
        self.queue = CircularEventQueue(
            queue_capacity, None if ring_mode else self.processor.process
        )
        self._stamp_loss = stamp_loss
        #: PERUSE-style subscription point: external observers of the raw
        #: event stream (tracing, debugging, other performance tools).
        self.peruse = PeruseHub()
        self._next_xfer_id = 0
        self._enabled = enabled
        self._was_paused = False
        self._finalized = False
        #: Total events stamped (drives the Fig. 20 overhead model).
        self.event_count = 0
        #: Per-kind stamp counts (allocated only when metrics are attached).
        self._kind_counts: "list[int] | None" = None
        if metrics is not None:
            self.attach_metrics(metrics, metrics_labels)
        self.start_time = clock()

    def attach_metrics(
        self,
        metrics: "MetricsRegistry",
        labels: "dict[str, str] | None" = None,
    ) -> None:
        """Register monitor/queue/processor/hub health metrics.

        Everything except the per-kind event counters is sampled from
        diagnostics the components maintain anyway; the per-kind counts
        add one list-index increment per stamped event.
        """
        if self._kind_counts is None:
            self._kind_counts = [0] * len(EventKind)
        counts = self._kind_counts
        for kind in EventKind:
            metrics.sampled_counter(
                "repro_monitor_events",
                (lambda k=int(kind): counts[k]),
                "Events stamped, by kind",
                {**(labels or {}), "kind": kind.name.lower()})
        metrics.sampled_gauge(
            "repro_monitor_enabled", lambda: float(self._enabled),
            "1 while the monitor is stamping, 0 while paused", labels)
        self.queue.attach_metrics(metrics, labels)
        self.processor.attach_metrics(metrics, labels)
        self.peruse.attach_metrics(metrics, labels)

    # -- enable / pause -----------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def pause(self) -> None:
        """Stop logging events; intervals while paused are not attributed."""
        self._enabled = False
        self._was_paused = True

    def resume(self) -> None:
        """Resume logging after :meth:`pause`."""
        if not self._enabled:
            self._enabled = True
            if self._was_paused:
                # Tell the processor not to attribute the paused gap.
                self._push(TimedEvent(EventKind.RESET, self._clock(), 0, 0))

    # -- stamping (library-facing) -------------------------------------------
    def call_enter(self, name: str) -> None:
        """Stamp entry into a library call."""
        if self._enabled:
            self._push(
                TimedEvent(
                    EventKind.CALL_ENTER, self._clock(), self.names.intern(name), 0
                )
            )

    def call_exit(self, name: str) -> None:
        """Stamp exit from a library call."""
        if self._enabled:
            self._push(
                TimedEvent(
                    EventKind.CALL_EXIT, self._clock(), self.names.intern(name), 0
                )
            )

    @contextlib.contextmanager
    def call(self, name: str) -> typing.Iterator[None]:
        """Context manager wrapping :meth:`call_enter` / :meth:`call_exit`."""
        self.call_enter(name)
        try:
            yield
        finally:
            self.call_exit(name)

    def new_xfer_id(self) -> int:
        """Allocate an id for a data-transfer operation."""
        ident = self._next_xfer_id
        self._next_xfer_id += 1
        return ident

    def xfer_begin(self, nbytes: float, xfer_id: int | None = None) -> int:
        """Stamp initiation of a data-transfer operation; returns its id."""
        if xfer_id is None:
            xfer_id = self.new_xfer_id()
        if self._enabled:
            loss = self._stamp_loss
            if loss is not None and loss.drop_begin():
                return xfer_id
            self._push(
                TimedEvent(EventKind.XFER_BEGIN, self._clock(), xfer_id, int(nbytes))
            )
        return xfer_id

    def xfer_end(self, xfer_id: int, nbytes: float) -> None:
        """Stamp completion of a data-transfer operation."""
        if self._enabled:
            loss = self._stamp_loss
            if loss is not None and loss.drop_end():
                return
            self._push(
                TimedEvent(EventKind.XFER_END, self._clock(), xfer_id, int(nbytes))
            )

    def xfer_end_only(self, nbytes: float) -> None:
        """Stamp a completion whose initiation was invisible (case 3).

        Used e.g. by the eager receiver: "the initiation of the send is
        transparent to the receiver".
        """
        self.xfer_end(self.new_xfer_id(), nbytes)

    # -- sections (application-facing) ----------------------------------------
    def section_begin(self, name: str) -> None:
        """Open a named monitoring section (Sec. 2.3's code-region control)."""
        if self._enabled:
            self._push(
                TimedEvent(
                    EventKind.SECTION_BEGIN, self._clock(), self.names.intern(name), 0
                )
            )

    def section_end(self, name: str) -> None:
        """Close the innermost monitoring section (must match ``name``)."""
        if self._enabled:
            self._push(
                TimedEvent(
                    EventKind.SECTION_END, self._clock(), self.names.intern(name), 0
                )
            )

    @contextlib.contextmanager
    def section(self, name: str) -> typing.Iterator[None]:
        """Context manager for a monitoring section."""
        self.section_begin(name)
        try:
            yield
        finally:
            self.section_end(name)

    # -- shutdown ----------------------------------------------------------
    def finalize(self, rank: int = 0, label: str = "") -> OverlapReport:
        """Flush the queue, resolve active transfers, build the report."""
        if self._finalized:
            raise InstrumentationError("monitor already finalized")
        end_time = self._clock()
        if self._ring_mode:
            # Ring mode: only the newest ``capacity`` stamps survived.  The
            # suffix may open mid-call / mid-section, so sanitize before
            # feeding the processor (which rejects orphaned closers).
            self.processor.process(_sanitize_suffix(self.queue.events()))
        else:
            self.queue.flush()
        self.processor.finalize(end_time)
        self._finalized = True
        return OverlapReport.from_processor(
            self.processor,
            self.names,
            rank=rank,
            label=label,
            wall_time=end_time - self.start_time,
            event_count=self.event_count,
        )

    # -- internals -----------------------------------------------------------
    def _push(self, event: TimedEvent) -> None:
        if self._finalized:
            raise InstrumentationError("monitor already finalized")
        self.queue.push(event)
        self.event_count += 1
        kind_counts = self._kind_counts
        if kind_counts is not None:
            kind_counts[event.kind] += 1
        # Inlined no-subscriber check: stamping is the library's hot path
        # and the PERUSE hub is idle in normal runs.
        peruse = self.peruse
        if peruse._all or peruse._by_kind:
            peruse.dispatch(event)


def _sanitize_suffix(events: "list[TimedEvent]") -> "list[TimedEvent]":
    """Make a ring-overflow suffix digestible by the processor.

    Overflow overwrites the *oldest* stamps, so the surviving stream can
    close scopes it never opened.  Orphaned ``CALL_EXIT`` (depth would go
    negative) and ``SECTION_END`` (no matching open section) events are
    discarded; everything else passes through in order.  Orphaned
    ``XFER_END`` events are deliberately kept: the processor resolves an
    END without a BEGIN under Case 3, which is exactly the paper's "only
    one of the two events stamped" bound.
    """
    out: list[TimedEvent] = []
    depth = 0
    sections: list[int] = []
    for ev in events:
        kind = ev.kind
        if kind == EventKind.CALL_ENTER:
            depth += 1
        elif kind == EventKind.CALL_EXIT:
            if depth == 0:
                continue
            depth -= 1
        elif kind == EventKind.SECTION_BEGIN:
            sections.append(ev.a)
        elif kind == EventKind.SECTION_END:
            if not sections or sections[-1] != ev.a:
                continue
            sections.pop()
        out.append(ev)
    return out


class NullMonitor:
    """A monitor that records nothing (the 'uninstrumented library').

    Shares the :class:`Monitor` stamping interface so the library code is
    identical in instrumented and uninstrumented builds; used for the
    Fig. 20 overhead comparison.
    """

    enabled = False
    event_count = 0

    def call_enter(self, name: str) -> None:
        pass

    def call_exit(self, name: str) -> None:
        pass

    @contextlib.contextmanager
    def call(self, name: str) -> typing.Iterator[None]:
        yield

    def new_xfer_id(self) -> int:
        return -1

    def xfer_begin(self, nbytes: float, xfer_id: int | None = None) -> int:
        return -1

    def xfer_end(self, xfer_id: int, nbytes: float) -> None:
        pass

    def xfer_end_only(self, nbytes: float) -> None:
        pass

    def section_begin(self, name: str) -> None:
        pass

    def section_end(self, name: str) -> None:
        pass

    @contextlib.contextmanager
    def section(self, name: str) -> typing.Iterator[None]:
        yield

    def pause(self) -> None:
        pass

    def resume(self) -> None:
        pass

    def finalize(self, rank: int = 0, label: str = "") -> None:
        return None
