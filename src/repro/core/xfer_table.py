"""A-priori transfer-time table (the paper's ``perf_main`` step).

The bound arithmetic of Sec. 2.2 consumes ``xfer_time`` -- "the time for the
data transfer operation on the network that is measured a priori by running
a standard microbenchmark test".  This module holds that table: it is built
by a ping-pong measurement (see :func:`repro.experiments.micro.build_xfer_table`
for the simulated ``perf_main``), written to a disk file, and read back into
memory during library initialization, exactly as the paper describes (the
one-time load cost is the Fig. 20 caveat).

Lookups interpolate linearly in message size between measured points and
extrapolate with the boundary bandwidth beyond the measured range.
"""

from __future__ import annotations

import bisect
import io
import os
import typing

import numpy as np

_HEADER = "# repro xfer-time table: bytes<TAB>seconds"

#: Memo-cache entry budget for :meth:`XferTable.time_for`.  NAS kernels
#: reuse a handful of message sizes millions of times, so nearly every
#: lookup is a dict hit; the bound keeps pathological size streams from
#: growing the cache without limit.
_MEMO_CAPACITY = 4096


class XferTable:
    """Message-size to network-transfer-time mapping.

    Parameters
    ----------
    sizes:
        Message sizes in bytes, strictly increasing, all positive.
    times:
        Transfer time in seconds for each size, positive and
        non-decreasing is expected but not enforced (real measurements
        can be noisy).
    """

    def __init__(
        self,
        sizes: typing.Sequence[float],
        times: typing.Sequence[float],
    ) -> None:
        sizes_arr = np.asarray(sizes, dtype=np.float64)
        times_arr = np.asarray(times, dtype=np.float64)
        if sizes_arr.ndim != 1 or sizes_arr.shape != times_arr.shape:
            raise ValueError("sizes and times must be 1-D arrays of equal length")
        if sizes_arr.size == 0:
            raise ValueError("xfer table cannot be empty")
        if np.any(sizes_arr <= 0):
            raise ValueError("message sizes must be positive")
        if np.any(np.diff(sizes_arr) <= 0):
            raise ValueError("message sizes must be strictly increasing")
        if np.any(times_arr <= 0):
            raise ValueError("transfer times must be positive")
        self.sizes = sizes_arr
        self.times = times_arr
        # Hot-path lookup state: plain Python floats (no numpy scalars on
        # the per-XFER_END path), per-segment slopes, and a bounded memo.
        self._sizes_list: list[float] = [float(s) for s in sizes_arr]
        self._times_list: list[float] = [float(t) for t in times_arr]
        self._slopes: list[float] = [
            (t1 - t0) / (s1 - s0)
            for (s0, s1), (t0, t1) in zip(
                zip(self._sizes_list, self._sizes_list[1:]),
                zip(self._times_list, self._times_list[1:]),
            )
        ]
        self._tail_slope = max(self._slopes[-1], 0.0) if self._slopes else 0.0
        self._memo: dict[float, float] = {}

    # -- lookup ----------------------------------------------------------
    def time_for(self, nbytes: float) -> float:
        """Transfer time in seconds for a message of ``nbytes`` bytes.

        Zero-byte operations take zero time; sizes inside the measured
        range interpolate linearly; sizes beyond either end extrapolate at
        the boundary point's marginal bandwidth.  Results are memoized
        (bounded) because applications reuse a handful of message sizes.
        """
        cached = self._memo.get(nbytes)
        if cached is not None:
            return cached
        sizes, times = self._sizes_list, self._times_list
        if nbytes <= 0:
            t = 0.0
        elif nbytes <= sizes[0]:
            # Scale below the smallest measurement by its effective rate,
            # but never below a proportional floor of the smallest time.
            t = times[0] * nbytes / sizes[0]
        elif nbytes >= sizes[-1]:
            if len(sizes) == 1:
                t = times[-1] * nbytes / sizes[-1]
            else:
                # Marginal bandwidth of the last segment.
                t = times[-1] + self._tail_slope * (nbytes - sizes[-1])
        else:
            # Same arithmetic as np.interp: slope * (x - x_lo) + y_lo.
            i = bisect.bisect_right(sizes, nbytes) - 1
            t = self._slopes[i] * (nbytes - sizes[i]) + times[i]
        if len(self._memo) >= _MEMO_CAPACITY:
            self._memo.clear()
        self._memo[float(nbytes)] = t
        return t

    def times_for(self, nbytes: typing.Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`time_for` over an array of sizes.

        Interior sizes go through one ``np.interp`` call; the boundary
        extrapolations are applied with vectorized masks using the same
        arithmetic as the scalar path, so the two agree element for
        element.
        """
        arr = np.asarray(nbytes, dtype=np.float64)
        sizes, times = self.sizes, self.times
        out = np.interp(arr, sizes, times)
        below = arr <= sizes[0]
        if below.any():
            out = np.where(below, times[0] * arr / sizes[0], out)
        above = arr >= sizes[-1]
        if above.any():
            if sizes.size == 1:
                tail = times[-1] * arr / sizes[-1]
            else:
                tail = times[-1] + self._tail_slope * (arr - sizes[-1])
            out = np.where(above, tail, out)
        return np.where(arr <= 0, 0.0, out)

    def bandwidth_for(self, nbytes: float) -> float:
        """Effective bandwidth (bytes/s) for a message of ``nbytes``."""
        t = self.time_for(nbytes)
        return nbytes / t if t > 0 else float("inf")

    # -- persistence ------------------------------------------------------
    def dumps(self) -> str:
        """Serialize to the on-disk text format."""
        buf = io.StringIO()
        buf.write(_HEADER + "\n")
        for size, t in zip(self.sizes, self.times):
            buf.write(f"{size:.17g}\t{t:.17g}\n")
        return buf.getvalue()

    def save(self, path: str | os.PathLike) -> None:
        """Write the table to ``path`` (the paper's disk-resident file)."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    @classmethod
    def loads(cls, text: str) -> "XferTable":
        """Parse the on-disk text format."""
        sizes: list[float] = []
        times: list[float] = []
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed xfer-table line {lineno}: {line!r}")
            sizes.append(float(parts[0]))
            times.append(float(parts[1]))
        return cls(sizes, times)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "XferTable":
        """Read a table previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        latency: float,
        bandwidth: float,
        sizes: typing.Sequence[float] | None = None,
    ) -> "XferTable":
        """Analytic latency+bandwidth table (for tests and defaults).

        ``time(n) = latency + n / bandwidth`` sampled at ``sizes`` (default:
        powers of two from 1 B to 4 MiB).
        """
        if sizes is None:
            sizes = [float(2**k) for k in range(0, 23)]
        times = [latency + s / bandwidth for s in sizes]
        return cls(list(sizes), times)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XferTable):
            return NotImplemented
        return bool(
            np.array_equal(self.sizes, other.sizes)
            and np.array_equal(self.times, other.times)
        )

    def __repr__(self) -> str:
        return (
            f"<XferTable {self.sizes.size} points, "
            f"{self.sizes[0]:.0f}..{self.sizes[-1]:.0f} B>"
        )
