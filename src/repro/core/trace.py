"""Optional event tracing -- the approach the paper's design avoids.

Section 5 contrasts the framework with trace-based tools: tracing suffers
"increases in wall-clock execution time due to the overhead of
instrumentation, possibility of perturbing application behavior, and the
overhead of storing voluminous trace files".  This module implements that
alternative so the trade-off can be measured (ablation EA6): a
:class:`TraceSink` records *every* event with unbounded memory, serializes
to a text format, and reloads for offline analysis.

The offline analyzer (:func:`replay_overlap`) feeds a stored trace back
through the standard :class:`~repro.core.processor.DataProcessor`,
demonstrating that the on-the-fly bounded-memory pipeline computes exactly
what a full trace would.
"""

from __future__ import annotations

import io
import os
import typing

from repro.core.events import EventKind, TimedEvent
from repro.core.measures import DEFAULT_BIN_EDGES
from repro.core.processor import DataProcessor
from repro.core.xfer_table import XferTable

_HEADER = "# repro event trace v1: kind<TAB>time<TAB>a<TAB>b"

#: Bytes per stored record: one 8-byte word per :class:`TimedEvent` field
#: (the paper's queue holds fixed-size records).  Derived from the record
#: definition so the estimate cannot drift if fields are added.
RECORD_NBYTES = 8 * len(TimedEvent._fields)


class TraceSink:
    """Unbounded in-memory event recorder (attach via the PERUSE hub)."""

    def __init__(self) -> None:
        self.events: list[TimedEvent] = []

    def __call__(self, event: TimedEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def nbytes_estimate(self) -> int:
        """Approximate stored size: :data:`RECORD_NBYTES` per record."""
        return RECORD_NBYTES * len(self.events)

    # -- persistence -------------------------------------------------------
    def dumps(self) -> str:
        buf = io.StringIO()
        buf.write(_HEADER + "\n")
        for ev in self.events:
            buf.write(f"{int(ev.kind)}\t{ev.time:.17g}\t{ev.a}\t{ev.b}\n")
        return buf.getvalue()

    def save(self, path: str | os.PathLike) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    @staticmethod
    def loads(text: str) -> list[TimedEvent]:
        events: list[TimedEvent] = []
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise ValueError(f"malformed trace line {lineno}: {line!r}")
            events.append(
                TimedEvent(
                    EventKind(int(parts[0])), float(parts[1]),
                    int(parts[2]), int(parts[3]),
                )
            )
        return events

    @staticmethod
    def load(path: str | os.PathLike) -> list[TimedEvent]:
        with open(path, "r", encoding="utf-8") as fh:
            return TraceSink.loads(fh.read())


def replay_overlap(
    events: typing.Sequence[TimedEvent],
    xfer_table: XferTable,
    bin_edges: typing.Sequence[float] = DEFAULT_BIN_EDGES,
    end_time: float | None = None,
) -> DataProcessor:
    """Offline analysis: run the bounding algorithm over a stored trace.

    Returns the finalized processor; its ``total`` must equal what the
    live bounded-memory pipeline computed (tested property).
    """
    proc = DataProcessor(xfer_table, bin_edges)
    proc.process(list(events))
    if end_time is None and events:
        end_time = events[-1].time
    proc.finalize(end_time)
    return proc
