"""Straightforward reference implementation of the overlap processor.

This is the unoptimized formulation of Sec. 2.2: every event walks the
set of active transfers and appends the interval to each one's own list;
at ``XFER_END`` the interleaved computation / in-library windows are the
exact (``math.fsum``) totals of those lists.  It is retained purely as a
differential-testing oracle for the optimized
:class:`repro.core.processor.DataProcessor`, whose cumulative-clock
subtraction produces the correctly rounded value of the same exact real
sum -- so the two implementations must agree *bit for bit* on every
measure.  See ``tests/test_property_processor_diff.py``.

Do not use this in production paths: it is O(active transfers) per event
and keeps one list per active transfer.
"""

from __future__ import annotations

import math
import typing

from repro.core.events import EventKind, TimedEvent
from repro.core.measures import (
    CASE_ONE_EVENT,
    CASE_SAME_CALL,
    CASE_SPLIT_CALL,
    DEFAULT_BIN_EDGES,
    OverlapMeasures,
)
from repro.core.processor import CallStats, InstrumentationError, _TIME_EPS
from repro.core.xfer_table import XferTable


class _RefActiveXfer:
    """Active transfer carrying its own per-interval attribution lists."""

    __slots__ = ("begin_time", "begin_call", "nbytes", "comp_dts", "noncomp_dts",
                 "sections")

    def __init__(
        self,
        begin_time: float,
        begin_call: int,
        nbytes: float,
        sections: tuple[int, ...],
    ) -> None:
        self.begin_time = begin_time
        self.begin_call = begin_call
        self.nbytes = nbytes
        self.comp_dts: list[float] = []
        self.noncomp_dts: list[float] = []
        self.sections = sections


class ReferenceDataProcessor:
    """Drop-in oracle with the same public surface as ``DataProcessor``."""

    def __init__(
        self,
        xfer_table: XferTable,
        bin_edges: typing.Sequence[float] = DEFAULT_BIN_EDGES,
    ) -> None:
        self.xfer_table = xfer_table
        self._bin_edges = tuple(bin_edges)
        self.total = OverlapMeasures(bin_edges)
        self.sections: dict[int, OverlapMeasures] = {}
        self.call_stats: dict[int, CallStats] = {}

        self._active: dict[int, _RefActiveXfer] = {}
        self._depth = 0
        self._call_seq = 0
        self._call_enter_time = 0.0
        self._call_name = -1
        self._last_time: float | None = None
        self._section_stack: list[int] = []
        self._finalized = False

    # -- event intake -----------------------------------------------------
    def process(self, batch: typing.Sequence[TimedEvent]) -> None:
        if self._finalized:
            raise InstrumentationError("processor already finalized")
        for ev in batch:
            kind = ev.kind
            if kind == EventKind.RESET:
                self._last_time = ev.time
                continue
            self._advance(ev.time)
            if kind == EventKind.CALL_ENTER:
                self._depth += 1
                if self._depth == 1:
                    self._call_seq += 1
                    self._call_enter_time = ev.time
                    self._call_name = ev.a
            elif kind == EventKind.CALL_EXIT:
                if self._depth <= 0:
                    raise InstrumentationError(
                        "CALL_EXIT without a matching CALL_ENTER"
                    )
                self._depth -= 1
                if self._depth == 0:
                    stats = self.call_stats.setdefault(self._call_name, CallStats())
                    stats.count += 1
                    stats.total_time += ev.time - self._call_enter_time
            elif kind == EventKind.XFER_BEGIN:
                self._on_xfer_begin(ev)
            elif kind == EventKind.XFER_END:
                self._on_xfer_end(ev)
            elif kind == EventKind.SECTION_BEGIN:
                self._section_stack.append(ev.a)
                self.sections.setdefault(ev.a, OverlapMeasures(self._bin_edges))
            elif kind == EventKind.SECTION_END:
                if not self._section_stack or self._section_stack[-1] != ev.a:
                    raise InstrumentationError(
                        f"SECTION_END {ev.a} does not match open section stack "
                        f"{self._section_stack}"
                    )
                self._section_stack.pop()
            else:  # pragma: no cover - enum is exhaustive
                raise InstrumentationError(f"unknown event kind {kind}")

    def finalize(self, end_time: float | None = None) -> None:
        if self._finalized:
            return
        if end_time is not None:
            self._advance(end_time)
        for xfer in self._active.values():
            xfer_time = self.xfer_table.time_for(xfer.nbytes)
            self._record(xfer.nbytes, xfer_time, 0.0, xfer_time, CASE_ONE_EVENT,
                         xfer.sections)
        self._active.clear()
        self._finalized = True

    # -- interval attribution ----------------------------------------------
    def _advance(self, t: float) -> None:
        last = self._last_time
        if last is None:
            self._last_time = t
            return
        dt = t - last
        if dt < -_TIME_EPS:
            raise InstrumentationError(
                f"event stream goes backwards in time: {last} -> {t}"
            )
        if dt > 0.0:
            in_call = self._depth > 0
            self.total.add_interval(dt, in_call)
            for sec in self._section_stack:
                self.sections[sec].add_interval(dt, in_call)
            # The straightforward O(active) walk the optimized path avoids.
            if in_call:
                for xfer in self._active.values():
                    xfer.noncomp_dts.append(dt)
            else:
                for xfer in self._active.values():
                    xfer.comp_dts.append(dt)
        self._last_time = t

    # -- event handlers -----------------------------------------------------
    def _on_xfer_begin(self, ev: TimedEvent) -> None:
        if ev.a in self._active:
            raise InstrumentationError(f"duplicate XFER_BEGIN for transfer {ev.a}")
        begin_call = self._call_seq if self._depth > 0 else -1
        self._active[ev.a] = _RefActiveXfer(
            ev.time, begin_call, float(ev.b), tuple(self._section_stack)
        )

    def _on_xfer_end(self, ev: TimedEvent) -> None:
        xfer = self._active.pop(ev.a, None)
        nbytes = float(ev.b)
        if xfer is None:
            xfer_time = self.xfer_table.time_for(nbytes)
            self._record(nbytes, xfer_time, 0.0, xfer_time, CASE_ONE_EVENT,
                         tuple(self._section_stack))
            return
        if xfer.nbytes != nbytes and nbytes > 0:
            raise InstrumentationError(
                f"transfer {ev.a} size mismatch: begin={xfer.nbytes} end={nbytes}"
            )
        xfer_time = self.xfer_table.time_for(xfer.nbytes)
        same_call = (
            self._depth > 0
            and xfer.begin_call == self._call_seq
            and xfer.begin_call != -1
        )
        if same_call:
            self._record(xfer.nbytes, xfer_time, 0.0, 0.0, CASE_SAME_CALL,
                         xfer.sections)
        else:
            comp = math.fsum(xfer.comp_dts)
            noncomp = math.fsum(xfer.noncomp_dts)
            max_ov = min(comp, xfer_time)
            min_ov = max(0.0, xfer_time - noncomp)
            min_ov = min(min_ov, max_ov)
            self._record(xfer.nbytes, xfer_time, min_ov, max_ov, CASE_SPLIT_CALL,
                         xfer.sections)

    def _record(
        self,
        nbytes: float,
        xfer_time: float,
        min_ov: float,
        max_ov: float,
        case: int,
        sections: tuple[int, ...],
    ) -> None:
        self.total.add_transfer(nbytes, xfer_time, min_ov, max_ov, case)
        for sec in sections:
            self.sections[sec].add_transfer(nbytes, xfer_time, min_ov, max_ov, case)

    # -- introspection -------------------------------------------------------
    @property
    def active_transfer_count(self) -> int:
        return len(self._active)

    @property
    def in_call(self) -> bool:
        return self._depth > 0
