"""The application-facing communicator.

Every public method demarcates exactly one instrumented library call
(``CALL_ENTER`` / ``CALL_EXIT``), mirrors the MPI call it models, and is a
generator coroutine (``status = yield from comm.recv(...)``).

Instrumentation overhead (Fig. 20) is modeled here: each event stamped
during a call costs :attr:`~repro.mpisim.config.MpiConfig.overhead_per_event`
of CPU, charged before the call returns.
"""

from __future__ import annotations

import typing

from repro.mpisim import collectives as coll
from repro.mpisim.endpoint import Endpoint
from repro.mpisim.request import PersistentRequest, Request
from repro.mpisim.status import ANY_SOURCE, ANY_TAG, MpiError, Status


#: Shared world-group tuples, one per world size.  Every rank's world
#: communicator used to build its own ``tuple(range(size))`` -- at 4096
#: ranks that is ~570 MB of duplicate int objects and the single largest
#: allocation in a high-rank run.  Groups are immutable, so all ranks of
#: one world can share a single tuple.
_WORLD_GROUPS: dict[int, tuple[int, ...]] = {}


def _world_group(size: int) -> tuple[int, ...]:
    group = _WORLD_GROUPS.get(size)
    if group is None:
        group = _WORLD_GROUPS[size] = tuple(range(size))
    return group


class _GroupEndpoint:
    """Group-scoped endpoint adapter handed to the collective algorithms.

    Exposes exactly the surface the algorithms use (``rank``, ``size``,
    ``coll_seq``, point-to-point internals), with group-rank translation
    and the communicator's context id applied.
    """

    def __init__(self, endpoint: Endpoint, group: tuple[int, ...], ctx: int,
                 rank: "int | None" = None) -> None:
        self._ep = endpoint
        self._group = group
        self._ctx = ctx
        self.rank = group.index(endpoint.rank) if rank is None else rank
        self.size = len(group)
        self.coll_seq = 0  # per-communicator collective counter

    def isend(self, dest: int, tag: int, nbytes: float, data: object = None,
              bufkey: object = None) -> typing.Generator:
        return (
            yield from self._ep.isend(
                self._group[dest], tag, nbytes, data, bufkey, context=self._ctx
            )
        )

    def irecv(self, source: int, tag: int) -> typing.Generator:
        world = self._group[source] if source != ANY_SOURCE else ANY_SOURCE
        return (yield from self._ep.irecv(world, tag, context=self._ctx))

    def wait(self, req: Request) -> typing.Generator:
        return (yield from self._ep.wait(req))

    def wait_all(self, reqs: typing.Sequence[Request]) -> typing.Generator:
        return (yield from self._ep.wait_all(reqs))


class Comm:
    """MPI-like communicator bound to one rank's endpoint.

    The default construction is the world communicator; :meth:`split` and
    :meth:`dup` derive sub-communicators with their own rank numbering and
    an isolated matching context (messages never cross communicators).
    """

    def __init__(
        self,
        endpoint: Endpoint,
        group: tuple[int, ...] | None = None,
        comm_id: int = 0,
    ) -> None:
        self.ep = endpoint
        # ``group is None`` selects the world communicator: group rank ==
        # world rank, so membership is a range check, the group tuple is
        # shared across all ranks, and rank translation is the identity.
        self._identity = group is None
        if group is None:
            if not 0 <= endpoint.rank < endpoint.size:
                raise MpiError(
                    f"rank {endpoint.rank} is not a member of a world of "
                    f"size {endpoint.size}"
                )
            self.group = _world_group(endpoint.size)
        else:
            self.group = group
            if endpoint.rank not in group:
                raise MpiError(
                    f"rank {endpoint.rank} is not a member of group {group}"
                )
        self.comm_id = comm_id
        self._gep = _GroupEndpoint(
            endpoint, self.group, comm_id,
            rank=endpoint.rank if self._identity else None,
        )
        self._split_seq = 0
        # Hot-path caches for _call: one attribute load instead of three
        # per library call (the endpoint's monitor and config never change).
        self._mon = endpoint.monitor
        self._ovh_per_event = endpoint.config.overhead_per_event
        self._elapse = endpoint.engine.elapse

    @property
    def rank(self) -> int:
        """This process's rank *within this communicator*."""
        return self._gep.rank

    @property
    def size(self) -> int:
        return self._gep.size

    # -- rank translation ------------------------------------------------------
    def _world(self, group_rank: int) -> int:
        if group_rank == ANY_SOURCE:
            return ANY_SOURCE
        try:
            return self.group[group_rank]
        except IndexError:
            raise MpiError(
                f"rank {group_rank} out of range for communicator of size "
                f"{self.size}"
            ) from None

    def _local(self, world_rank: int) -> int:
        # World communicators translate per received Status; the O(size)
        # ``tuple.index`` scan here was a leading per-message cost at
        # thousands of ranks.  Identity for world, scan for sub-groups.
        if self._identity:
            return world_rank
        return self.group.index(world_rank)

    def _status(self, status: Status | None) -> Status | None:
        """Translate a Status's source from world to group numbering."""
        if status is None:
            return None
        return Status(self._local(status.source), status.tag, status.nbytes)

    # -- call demarcation ----------------------------------------------------
    def _call(self, name: str, body: typing.Generator) -> typing.Generator:
        """Run ``body`` inside one instrumented library call."""
        mon = self._mon
        n0 = mon.event_count
        mon.call_enter(name)
        result = yield from body
        stamped = mon.event_count - n0
        if stamped:
            # +1 for the CALL_EXIT about to be stamped.
            debt = (stamped + 1) * self._ovh_per_event
            if debt > 0:
                t = self._elapse(debt)
                if t is not None:
                    yield t
        mon.call_exit(name)
        return result

    # -- point-to-point ---------------------------------------------------------
    def isend(
        self,
        dest: int,
        tag: int,
        nbytes: float,
        data: object = None,
        bufkey: object = None,
    ) -> typing.Generator:
        """Non-blocking send; returns a :class:`Request`.

        ``bufkey`` names the send buffer for registration caching (reusing
        the same key models reusing the same application buffer).
        """
        return (
            yield from self._call(
                "MPI_Isend",
                self.ep.isend(self._world(dest), tag, nbytes, data, bufkey,
                              context=self.comm_id),
            )
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> typing.Generator:
        """Non-blocking receive; returns a :class:`Request`."""
        return (
            yield from self._call(
                "MPI_Irecv",
                self.ep.irecv(self._world(source), tag, context=self.comm_id),
            )
        )

    def send(
        self,
        dest: int,
        tag: int,
        nbytes: float,
        data: object = None,
        bufkey: object = None,
    ) -> typing.Generator:
        """Blocking send (returns when the send buffer is reusable)."""

        def body() -> typing.Generator:
            req = yield from self.ep.isend(
                self._world(dest), tag, nbytes, data, bufkey,
                context=self.comm_id,
            )
            yield from self.ep.wait(req)

        return (yield from self._call("MPI_Send", body()))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> typing.Generator:
        """Blocking receive; returns ``(status, data)``."""

        def body() -> typing.Generator:
            req = yield from self.ep.irecv(
                self._world(source), tag, context=self.comm_id
            )
            status = yield from self.ep.wait(req)
            return (self._status(status), req.data)

        return (yield from self._call("MPI_Recv", body()))

    def wait(self, req: Request) -> typing.Generator:
        """Block until ``req`` completes; returns its :class:`Status`
        (source in this communicator's numbering)."""
        status = yield from self._call("MPI_Wait", self.ep.wait(req))
        return self._status(status)

    def waitall(self, reqs: typing.Sequence[Request]) -> typing.Generator:
        """Block until every request completes; returns their statuses."""
        statuses = yield from self._call("MPI_Waitall", self.ep.wait_all(reqs))
        return [self._status(st) for st in statuses]

    def waitany(self, reqs: typing.Sequence[Request]) -> typing.Generator:
        """Block until some request completes; returns its index."""
        return (yield from self._call("MPI_Waitany", self.ep.wait_any(reqs)))

    def waitsome(self, reqs: typing.Sequence[Request]) -> typing.Generator:
        """Block until at least one completes; returns completed indices."""
        return (yield from self._call("MPI_Waitsome", self.ep.wait_some(reqs)))

    def test(self, req: Request) -> typing.Generator:
        """One progress poll; returns True if ``req`` is complete."""
        return (yield from self._call("MPI_Test", self.ep.test(req)))

    def testall(self, reqs: typing.Sequence[Request]) -> typing.Generator:
        """One progress poll; returns True if every request is complete."""
        return (yield from self._call("MPI_Testall", self.ep.test_all(reqs)))

    def cancel(self, req: Request) -> typing.Generator:
        """Cancel an unmatched posted receive; returns True on success."""
        return (yield from self._call("MPI_Cancel", self.ep.cancel(req)))

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> typing.Generator:
        """Non-blocking probe; returns a :class:`Status` or None.

        Besides checking for a matchable arrival this runs the progress
        engine once -- the mechanism exploited to improve NAS SP
        (paper Sec. 4.3).
        """
        status = yield from self._call(
            "MPI_Iprobe",
            self.ep.iprobe(self._world(source), tag, context=self.comm_id),
        )
        return self._status(status)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> typing.Generator:
        """Blocking probe; returns the :class:`Status` of a pending arrival."""
        status = yield from self._call(
            "MPI_Probe",
            self.ep.probe(self._world(source), tag, context=self.comm_id),
        )
        return self._status(status)

    def sendrecv(
        self,
        dest: int,
        sendtag: int,
        send_nbytes: float,
        source: int,
        recvtag: int,
        data: object = None,
    ) -> typing.Generator:
        """Combined send+receive; returns ``(status, data)`` of the receive."""

        def body() -> typing.Generator:
            rreq = yield from self.ep.irecv(
                self._world(source), recvtag, context=self.comm_id
            )
            sreq = yield from self.ep.isend(
                self._world(dest), sendtag, send_nbytes, data,
                context=self.comm_id,
            )
            yield from self.ep.wait_all([sreq, rreq])
            return (self._status(rreq.status), rreq.data)

        return (yield from self._call("MPI_Sendrecv", body()))

    # -- persistent requests ---------------------------------------------------
    def send_init(
        self,
        dest: int,
        tag: int,
        nbytes: float,
        data: object = None,
        bufkey: object = None,
    ) -> PersistentRequest:
        """Build a reusable send recipe (``MPI_Send_init``); no message
        moves until :meth:`start`.  Purely local: not a library call."""
        self._world(dest)  # validate now
        return PersistentRequest("send", dest, tag, nbytes, data, bufkey)

    def recv_init(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> PersistentRequest:
        """Build a reusable receive recipe (``MPI_Recv_init``)."""
        if source != ANY_SOURCE:
            self._world(source)
        return PersistentRequest("recv", source, tag, 0.0)

    def start(self, preq: PersistentRequest) -> typing.Generator:
        """Activate a persistent request (``MPI_Start``)."""

        def body() -> typing.Generator:
            if preq.is_active:
                raise MpiError(f"{preq!r} is already active")
            if preq.kind == "send":
                preq.active = yield from self.ep.isend(
                    self._world(preq.peer), preq.tag, preq.nbytes,
                    preq.data, preq.bufkey, context=self.comm_id,
                )
            else:
                preq.active = yield from self.ep.irecv(
                    self._world(preq.peer), preq.tag, context=self.comm_id
                )

        return (yield from self._call("MPI_Start", body()))

    def startall(
        self, preqs: typing.Sequence[PersistentRequest]
    ) -> typing.Generator:
        """Activate several persistent requests (``MPI_Startall``)."""

        def body() -> typing.Generator:
            for preq in preqs:
                if preq.is_active:
                    raise MpiError(f"{preq!r} is already active")
                if preq.kind == "send":
                    preq.active = yield from self.ep.isend(
                        self._world(preq.peer), preq.tag, preq.nbytes,
                        preq.data, preq.bufkey, context=self.comm_id,
                    )
                else:
                    preq.active = yield from self.ep.irecv(
                        self._world(preq.peer), preq.tag, context=self.comm_id
                    )

        return (yield from self._call("MPI_Startall", body()))

    def wait_persistent(self, preq: PersistentRequest) -> typing.Generator:
        """Complete the current activation; the handle stays reusable.

        Returns ``(status, data)`` for receives, ``(None, None)`` for sends.
        """
        if preq.active is None:
            raise MpiError(f"{preq!r} has not been started")
        req = preq.active
        status = yield from self.wait(req)
        preq.active = None
        return (status, req.data)

    def finalize(self) -> typing.Generator:
        """Drain outstanding completions (``MPI_Finalize``); the launcher
        calls this after the application returns."""
        return (yield from self._call("MPI_Finalize", self.ep.finalize()))

    # -- collectives ---------------------------------------------------------
    def barrier(self) -> typing.Generator:
        """Block until all ranks arrive."""
        return (yield from self._call("MPI_Barrier", coll.barrier(self._gep)))

    def bcast(self, root: int, nbytes: float, data: object = None) -> typing.Generator:
        """Broadcast from ``root``; returns the value everywhere."""
        return (
            yield from self._call("MPI_Bcast", coll.bcast(self._gep, root, nbytes, data))
        )

    def reduce(
        self,
        root: int,
        value: object,
        nbytes: float,
        op: typing.Callable[[object, object], object] | None = None,
    ) -> typing.Generator:
        """Reduce to ``root``; returns the result there, None elsewhere."""
        return (
            yield from self._call(
                "MPI_Reduce", coll.reduce(self._gep, root, value, nbytes, op)
            )
        )

    def allreduce(
        self,
        value: object,
        nbytes: float,
        op: typing.Callable[[object, object], object] | None = None,
    ) -> typing.Generator:
        """Reduce across all ranks; returns the result everywhere."""
        return (
            yield from self._call(
                "MPI_Allreduce", coll.allreduce(self._gep, value, nbytes, op)
            )
        )

    def alltoall(
        self, nbytes_each: float, data: typing.Sequence[object] | None = None
    ) -> typing.Generator:
        """Personalized exchange; returns the rank-indexed received blocks.

        The schedule (pairwise or Bruck) follows the library configuration.
        """
        return (
            yield from self._call(
                "MPI_Alltoall",
                coll.alltoall(self._gep, nbytes_each, data,
                              algorithm=self.ep.config.alltoall_algorithm),
            )
        )

    def alltoallv(
        self,
        send_sizes: typing.Sequence[float],
        data: typing.Sequence[object] | None = None,
    ) -> typing.Generator:
        """Vector personalized exchange."""
        return (
            yield from self._call(
                "MPI_Alltoallv", coll.alltoallv(self._gep, send_sizes, data)
            )
        )

    def scan(
        self,
        value: object,
        nbytes: float,
        op: typing.Callable[[object, object], object] | None = None,
    ) -> typing.Generator:
        """Inclusive prefix reduction; rank r returns the fold over 0..r."""
        return (
            yield from self._call("MPI_Scan", coll.scan(self._gep, value, nbytes, op))
        )

    def reduce_scatter(
        self,
        blocks: typing.Sequence[object],
        block_nbytes: float,
        op: typing.Callable[[object, object], object] | None = None,
    ) -> typing.Generator:
        """Reduce blocks elementwise; rank i returns reduced block i."""
        return (
            yield from self._call(
                "MPI_Reduce_scatter",
                coll.reduce_scatter(self._gep, blocks, block_nbytes, op),
            )
        )

    def allgather(self, nbytes: float, data: object = None) -> typing.Generator:
        """Gather everyone's block everywhere; returns a rank-indexed list."""
        return (
            yield from self._call("MPI_Allgather", coll.allgather(self._gep, nbytes, data))
        )

    def gather(self, root: int, nbytes: float, data: object = None) -> typing.Generator:
        """Gather blocks at ``root``."""
        return (
            yield from self._call("MPI_Gather", coll.gather(self._gep, root, nbytes, data))
        )

    def scatter(
        self,
        root: int,
        nbytes: float,
        blocks: typing.Sequence[object] | None = None,
    ) -> typing.Generator:
        """Scatter root's blocks; returns this rank's block."""
        return (
            yield from self._call(
                "MPI_Scatter", coll.scatter(self._gep, root, nbytes, blocks)
            )
        )

    def gatherv(
        self, root: int, nbytes: float, data: object = None
    ) -> typing.Generator:
        """Variable-size gather (each rank contributes its own size)."""
        return (
            yield from self._call(
                "MPI_Gatherv", coll.gatherv(self._gep, root, nbytes, data)
            )
        )

    def scatterv(
        self,
        root: int,
        nbytes_list: typing.Sequence[float] | None = None,
        blocks: typing.Sequence[object] | None = None,
    ) -> typing.Generator:
        """Variable-size scatter; sizes/blocks significant at the root."""
        return (
            yield from self._call(
                "MPI_Scatterv",
                coll.scatterv(self._gep, root, nbytes_list, blocks),
            )
        )

    # -- communicator management -------------------------------------------------
    def split(self, color: int | None, key: int = 0) -> typing.Generator:
        """Partition this communicator (``MPI_Comm_split``).

        Collective over this communicator.  Ranks passing the same
        ``color`` land in the same new communicator, ordered by
        ``(key, old rank)``; ``color=None`` (MPI_UNDEFINED) returns None.
        The derived communicator gets a fresh matching context, so its
        traffic never crosses into the parent or siblings.
        """
        self._split_seq += 1
        split_seq = self._split_seq

        def body() -> typing.Generator:
            infos = yield from coll.allgather(
                self._gep, 16, (color, key, self.rank)
            )
            return infos

        infos = yield from self._call("MPI_Comm_split", body())
        if color is None:
            return None
        members = sorted(
            (k, old_rank)
            for c, k, old_rank in infos
            if c == color
        )
        new_group = tuple(self._world(old_rank) for _k, old_rank in members)
        # Context id derived identically on every member: parent context,
        # the parent's split counter, and the color.
        new_id = ((self.comm_id * 1009 + split_seq) * 100_003 + color + 1)
        return Comm(self.ep, group=new_group, comm_id=new_id)

    def dup(self) -> typing.Generator:
        """Duplicate this communicator with an isolated context
        (``MPI_Comm_dup``)."""
        new_comm = yield from self.split(color=0, key=self.rank)
        assert new_comm is not None
        return new_comm

    def __repr__(self) -> str:
        return (
            f"<Comm rank {self.rank}/{self.size} ctx={self.comm_id} "
            f"({self.ep.config.name})>"
        )
