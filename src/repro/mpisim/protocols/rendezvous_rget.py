"""Direct RDMA-Read rendezvous (zero copy).

"On networks that provide an RDMA Read operation, like InfiniBand, the
receiver directly reads the sending application buffer upon receiving the
initial request and notifies the sender on transfer completion."
(paper Sec. 3.5.)  This is both Open MPI's ``mpi_leave_pinned`` path and
MVAPICH2's rendezvous design ("the sending user's buffer being pinned
on-the-fly and the receiver doing an RDMA Read on this buffer").

Event stamping follows the paper's Fig. 1 exactly: the sender stamps
``XFER_BEGIN`` inside the initiating call (posting the RTS) and
``XFER_END`` when the receiver's FIN is drained; the receiver stamps
``XFER_BEGIN`` when it posts the RDMA Read and ``XFER_END`` when the read
completion is drained.
"""

from __future__ import annotations

import typing

from repro.mpisim.packets import FinPacket, RtsPacket
from repro.mpisim.protocols.base import RendezvousProtocol
from repro.mpisim.status import Status

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint, RecvState, SendState


class RdmaReadProtocol(RendezvousProtocol):
    mode = "rget"

    # -- sender ----------------------------------------------------------
    def start_send(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        # Pin the send buffer (cache hit is free under leave_pinned).
        pin_cost = ep.regcache.register(st.bufkey, st.nbytes)
        if pin_cost > 0:
            yield ep.busy(pin_cost)
        # RTS carries the rkey (and, in simulation, the payload reference --
        # the bytes only "move" when the read completes).
        yield from ep.send_control(
            st.dest,
            RtsPacket(st.seq, ep.rank, st.tag, st.nbytes, 0.0, st.data,
                      st.req.context),
        )
        st.xfer_id = ep.monitor.xfer_begin(st.nbytes)

    def on_cts(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        raise AssertionError("rget rendezvous uses no CTS")
        yield  # pragma: no cover

    def on_fin_to_sender(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        ep.monitor.xfer_end(st.xfer_id, st.nbytes)
        st.req.complete()
        return
        yield  # pragma: no cover - generator shape

    # -- receiver -----------------------------------------------------------
    def start_recv(
        self,
        ep: "Endpoint",
        rst: "RecvState",
        frag_nbytes: float,
        frag_data: object,
    ) -> typing.Generator:
        # Pin the receive buffer, then read the sender's memory directly.
        pin_cost = ep.regcache.register(("recv", rst.src, rst.tag, rst.nbytes), rst.nbytes)
        if pin_cost > 0:
            yield ep.busy(pin_cost)
        yield ep.busy(ep.params.post_cost)
        rst.xfer_id = ep.monitor.xfer_begin(rst.nbytes)
        data = frag_data  # zero-copy: reference travels with the completion

        def on_read_done() -> typing.Generator:
            ep.monitor.xfer_end(rst.xfer_id, rst.nbytes)
            # Notify the sender its buffer is free.
            yield from ep.send_control(
                rst.src, FinPacket(rst.seq, ep.rank, to_sender=True, data=None)
            )
            ep.recvs.pop((rst.src, rst.seq), None)
            rst.req.complete(Status(rst.src, rst.tag, rst.nbytes), data)

        ep.nics[0].post_rdma_read(
            ep.nic_for(rst.src), rst.nbytes, context=on_read_done
        )

    def on_fin_to_receiver(
        self, ep: "Endpoint", rst: "RecvState", data: object
    ) -> typing.Generator:
        raise AssertionError("rget rendezvous sends no FIN to the receiver")
        yield  # pragma: no cover
