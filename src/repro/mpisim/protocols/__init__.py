"""Long-message rendezvous protocol implementations.

Three schemes, matching the designs the paper evaluates (Sec. 3.5):

* :mod:`~repro.mpisim.protocols.rendezvous_pipelined` -- Open MPI default:
  RTS carries the first fragment; after the receiver's ACK the sender
  pipelines the remaining fragments as RDMA Writes.
* :mod:`~repro.mpisim.protocols.rendezvous_rget` -- direct RDMA Read
  (Open MPI under ``mpi_leave_pinned``; MVAPICH2's zero-copy design).
* :mod:`~repro.mpisim.protocols.rendezvous_rput` -- single-shot RDMA
  Write after a CTS (an ablation variant).
"""

from repro.mpisim.protocols.base import RendezvousProtocol
from repro.mpisim.protocols.rendezvous_pipelined import PipelinedRdmaProtocol
from repro.mpisim.protocols.rendezvous_rget import RdmaReadProtocol
from repro.mpisim.protocols.rendezvous_rput import RdmaWriteProtocol

_REGISTRY: dict[str, type[RendezvousProtocol]] = {
    "pipelined": PipelinedRdmaProtocol,
    "rget": RdmaReadProtocol,
    "rput": RdmaWriteProtocol,
}


def make_protocol(mode: str) -> RendezvousProtocol:
    """Instantiate the rendezvous protocol named ``mode``."""
    try:
        cls = _REGISTRY[mode]
    except KeyError:
        raise ValueError(
            f"unknown rendezvous mode {mode!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return cls()


__all__ = [
    "PipelinedRdmaProtocol",
    "RdmaReadProtocol",
    "RdmaWriteProtocol",
    "RendezvousProtocol",
    "make_protocol",
]
