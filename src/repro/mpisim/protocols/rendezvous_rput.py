"""Single-shot RDMA-Write rendezvous (CTS-then-put; ablation variant).

"Upon receiving an RDMA put request, the sender performs an RDMA Write
into the receive application buffer followed by another message to
indicate write completion." (paper Sec. 3.5.)  Unlike the pipelined
scheme the whole payload moves in one write, so the write is a single
data-transfer operation; unlike rget, the *sender's* NIC does the work
and the transfer cannot start until the sender's progress engine drains
the CTS -- which is what makes this scheme interesting as an ablation.
"""

from __future__ import annotations

import typing

from repro.mpisim.packets import CtsPacket, FinPacket, RtsPacket
from repro.mpisim.protocols.base import RendezvousProtocol
from repro.mpisim.status import Status

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint, RecvState, SendState


class RdmaWriteProtocol(RendezvousProtocol):
    mode = "rput"

    # -- sender ----------------------------------------------------------
    def start_send(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        pin_cost = ep.regcache.register(st.bufkey, st.nbytes)
        if pin_cost > 0:
            yield ep.busy(pin_cost)
        yield from ep.send_control(
            st.dest,
            RtsPacket(st.seq, ep.rank, st.tag, st.nbytes, 0.0, None,
                      st.req.context),
        )
        # The sender knows precisely when it will initiate the write (after
        # the CTS), so no XFER_BEGIN yet -- it is stamped at the write post.

    def on_cts(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        yield ep.busy(ep.params.post_cost)
        st.xfer_id = ep.monitor.xfer_begin(st.nbytes)

        def on_written() -> typing.Generator:
            ep.monitor.xfer_end(st.xfer_id, st.nbytes)
            yield from ep.send_control(
                st.dest, FinPacket(st.seq, ep.rank, to_sender=False, data=st.data)
            )
            ep.sends.pop(st.seq, None)
            st.req.complete()

        ep.nics[0].post_rdma_write(
            ep.nic_for(st.dest), st.nbytes, context=on_written
        )

    def on_fin_to_sender(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        raise AssertionError("rput rendezvous sends no FIN to the sender")
        yield  # pragma: no cover

    # -- receiver -----------------------------------------------------------
    def start_recv(
        self,
        ep: "Endpoint",
        rst: "RecvState",
        frag_nbytes: float,
        frag_data: object,
    ) -> typing.Generator:
        pin_cost = ep.regcache.register(
            ("recv", rst.src, rst.tag, rst.nbytes), rst.nbytes
        )
        if pin_cost > 0:
            yield ep.busy(pin_cost)
        yield from ep.send_control(rst.src, CtsPacket(rst.seq, ep.rank))
        # The receiver's best approximation of transfer start is its CTS.
        rst.remaining = rst.nbytes
        rst.xfer_id = ep.monitor.xfer_begin(rst.nbytes)

    def on_fin_to_receiver(
        self, ep: "Endpoint", rst: "RecvState", data: object
    ) -> typing.Generator:
        ep.monitor.xfer_end(rst.xfer_id, rst.nbytes)
        rst.req.complete(Status(rst.src, rst.tag, rst.nbytes), data)
        return
        yield  # pragma: no cover - generator shape
