"""Rendezvous protocol interface.

A protocol is a stateless strategy object; per-message state lives in
:class:`~repro.mpisim.endpoint.SendState` /
:class:`~repro.mpisim.endpoint.RecvState`.  Every hook is a generator
coroutine executed *inside* the polling progress engine or inside the
initiating library call -- protocol work consumes host CPU exactly where
the real libraries spend it, which is what makes the instrumentation
timestamps meaningful.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint, RecvState, SendState


class RendezvousProtocol:
    """Hooks invoked by the endpoint at protocol transition points."""

    #: Registry/config name of the scheme.
    mode: str = "abstract"

    def start_send(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        """Runs inside the initiating send call (``MPI_Isend``/``Send``)."""
        raise NotImplementedError

    def on_cts(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        """Sender received the receiver's CTS/ACK (drained in a poll)."""
        raise NotImplementedError

    def on_fin_to_sender(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        """Sender received the receiver's completion notification."""
        raise NotImplementedError

    def start_recv(
        self,
        ep: "Endpoint",
        rst: "RecvState",
        frag_nbytes: float,
        frag_data: object,
    ) -> typing.Generator:
        """RTS matched a posted receive (inside whatever call polled it)."""
        raise NotImplementedError

    def on_fin_to_receiver(
        self, ep: "Endpoint", rst: "RecvState", data: object
    ) -> typing.Generator:
        """Receiver learned all data was placed (pipelined / rput)."""
        raise NotImplementedError
